//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the thin slice of `rand` it actually uses: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), and [`rngs::StdRng`]. The generator is xoshiro256**
//! seeded through SplitMix64 — deterministic across platforms and
//! releases, which is exactly what the reproduction harness needs
//! (identical seeds must yield identical operation streams forever).
//!
//! The streams differ numerically from upstream `rand`'s ChaCha-based
//! `StdRng`; nothing in this workspace depends on upstream's exact
//! output, only on determinism.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number generation: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The seed type (kept for API compatibility; unused here).
    type Seed;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (the only constructor this
    /// workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the generator's raw output.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` by rejection from the top of the range
/// (avoids modulo bias; the loop virtually never iterates twice).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        // Close enough to inclusive for test purposes: the right
        // endpoint has measure zero anyway.
        let (lo, hi) = (*self.start(), *self.end());
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// The user-facing extension trait, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: seeds the main generator's state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A deterministic xoshiro256** generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                // All-zero state is a fixed point; nudge it.
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = r.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = r.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn all_values_reachable_in_small_range() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(9);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
