//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `criterion` its benches use: [`Criterion`],
//! benchmark groups, [`Bencher::iter`], [`black_box`], [`BenchmarkId`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of upstream's statistical engine this runs each benchmark
//! for a fixed handful of samples and prints the median wall-clock
//! time per iteration — enough to eyeball regressions locally without
//! any dependencies.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Names a benchmark within a group, parameterized by an input.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Drives one benchmark's measurement loop.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup call, then enough iterations to fill a small
        // budget (at least one).
        black_box(f());
        let budget = Duration::from_millis(20);
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= budget || iters >= 1000 {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

fn run_one(name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let mut b = Bencher::default();
        f(&mut b);
        if b.iters > 0 {
            per_iter.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter
        .get(per_iter.len() / 2)
        .copied()
        .unwrap_or(f64::NAN);
    println!(
        "{name:<40} {median:>14.0} ns/iter ({} samples)",
        per_iter.len()
    );
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 5 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            samples: None,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.samples, f);
        self
    }
}

/// A group of related benchmarks (flat in this implementation).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    samples: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n.clamp(2, 100));
        self
    }

    fn samples(&self) -> usize {
        self.samples.unwrap_or(self.parent.samples)
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.samples(), f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.name), self.samples(), |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("add", |b| b.iter(|| black_box(1u64 + 1)));
        g.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        c.bench_function("free", |b| b.iter(|| black_box(3u64)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }
}
