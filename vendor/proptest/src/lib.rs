//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `proptest` its property tests use: the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_oneof!`] macros, the [`strategy::Strategy`] trait with
//! `prop_map`, range/tuple/`Just` strategies, `any::<T>()`,
//! `prop::collection::vec`, and `prop::sample::{select, Index}`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (test name + case index) and failures are **not
//! shrunk** — the panic message names the failing case index so it can
//! be re-run. That trades minimality of counterexamples for zero
//! dependencies; the properties themselves are checked identically.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Runner configuration and failure plumbing.

    use std::fmt;

    /// Runner configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property did not hold.
        Fail(String),
    }

    impl TestCaseError {
        /// Fails the current case with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}
}

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange};
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// A strategy behind a vtable (what [`crate::prop_oneof!`] builds).
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    /// Boxes a strategy (helper for macro type unification).
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between strategies (equal weights).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union of the given arms (at least one).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    impl<T> Strategy for Range<T>
    where
        Range<T>: SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        RangeInclusive<T>: SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use crate::arbitrary::Arbitrary;
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Picks uniformly from the given non-empty choices.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select() needs at least one choice");
        Select(choices)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }

    /// A position into a collection of as-yet-unknown size.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolves the index against a collection of `len` elements.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            Index(rng.gen())
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring upstream's prelude shape.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespaced module access (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives the deterministic RNG for one test case (FNV-1a over the
/// test name, mixed with the case index).
#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case)))
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::__case_rng(stringify!($name), __case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: {} == {} ({:?} != {:?})",
            stringify!($a),
            stringify!($b),
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "{} ({:?} != {:?})",
            format!($($fmt)+),
            __a,
            __b
        );
    }};
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A(u64),
        B(bool),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0u64..10, pair in (1u32..5, any::<bool>())) {
            prop_assert!(x < 10);
            prop_assert!((1..5).contains(&pair.0));
        }

        #[test]
        fn collections_and_oneof(
            v in prop::collection::vec(
                prop_oneof![
                    (0u64..100).prop_map(Op::A),
                    any::<bool>().prop_map(Op::B),
                ],
                1..20,
            ),
            pick in prop::sample::select(vec![1u8, 2, 3]),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(matches!(pick, 1..=3));
            prop_assert!(idx.index(v.len()) < v.len());
        }

        #[test]
        fn question_mark_works(x in 0u64..4) {
            let r: Result<u64, TestCaseError> = Ok(x);
            let y = r?;
            prop_assert_eq!(x, y);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 1..50);
        let a: Vec<Vec<u64>> = (0..10)
            .map(|c| s.generate(&mut crate::__case_rng("t", c)))
            .collect();
        let b: Vec<Vec<u64>> = (0..10)
            .map(|c| s.generate(&mut crate::__case_rng("t", c)))
            .collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1], "different cases should differ");
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 1000, "x was {}", x);
            }
        }
        always_fails();
    }
}
