//! # specpersist — speculative persistence for NVMM persist barriers
//!
//! A from-scratch reproduction of *"Hiding the Long Latency of Persist
//! Barriers Using Speculative Execution"* (Shin, Tuck, Solihin,
//! ISCA '17): the persistent-memory programming model, the paper's
//! seven write-ahead-logging benchmarks, a trace-driven out-of-order
//! pipeline over a three-level cache hierarchy and NVMM memory
//! controller, and the paper's contribution — *speculative persistence*
//! (SP): checkpointing past stalled `sfence`s so the long-latency
//! `pcommit` completes in the background.
//!
//! This meta-crate re-exports the workspace members:
//!
//! * [`pmem`] — shadow NVMM, trace recording, WAL transactions, crash
//!   simulation and recovery;
//! * [`workloads`] — Table 1's benchmarks (GH/HM/LL/SS/AT/BT/RT);
//! * [`mem`] — caches, write-pending queue, NVMM timing (Table 2);
//! * [`core`] — SSB, bloom filter, checkpoints, epochs, BLT (§4);
//! * [`cpu`] — the pipeline that ties it together.
//!
//! ## Quickstart
//!
//! ```
//! use specpersist::cpu::{CpuConfig, Simulator};
//! use specpersist::pmem::Variant;
//! use specpersist::workloads::{run_benchmark, BenchId, BenchSpec, RunConfig};
//!
//! // Record the failure-safe (Log+P+Sf) build of the linked-list
//! // benchmark, then time it with and without speculative persistence.
//! let out = run_benchmark(&RunConfig {
//!     variant: Variant::LogPSf,
//!     spec: BenchSpec { id: BenchId::LinkedList, init_ops: 64, sim_ops: 16 },
//!     seed: 1,
//!     capture_base: false,
//! });
//! let baseline = Simulator::new(&out.trace.events).run().expect("sound config");
//! let sp = Simulator::new(&out.trace.events)
//!     .config(CpuConfig::with_sp())
//!     .run()
//!     .expect("sound config");
//! assert!(sp.cpu.cycles <= baseline.cpu.cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use spp_core as core;
pub use spp_cpu as cpu;
pub use spp_mem as mem;
pub use spp_pmem as pmem;
pub use spp_workloads as workloads;
