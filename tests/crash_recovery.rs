//! Cross-crate failure-safety tests: crash injection at persist-ordering
//! boundaries, recovery, and structural verification — for every
//! benchmark, under adversarial and randomized writeback schedules.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use specpersist::pmem::{recover, CrashSim, Event, PmemEnv, Variant};
use specpersist::workloads::{make_workload, BenchId, OpOutcome, Workload};

struct Harness {
    w: Box<dyn Workload>,
    base: specpersist::pmem::Space,
    events: Vec<Event>,
    layout: specpersist::pmem::LogLayout,
    states: Vec<BTreeSet<u64>>,
}

fn prepare(id: BenchId, init: u64, ops: u64, seed: u64) -> Harness {
    let mut env = PmemEnv::new(Variant::LogPSf);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = make_workload(id);
    env.set_recording(false);
    w.setup(&mut env, &mut rng, init);
    env.set_recording(true);
    let base = env.snapshot();
    let mut states: Vec<BTreeSet<u64>> = Vec::new();
    states.push(
        w.verify(env.space())
            .expect("post-init")
            .keys
            .into_iter()
            .collect(),
    );
    for op in 0..ops {
        let mut cur = states.last().expect("non-empty").clone();
        match w.run_op(&mut env, &mut rng, op) {
            OpOutcome::Inserted(k) => {
                cur.insert(k);
            }
            OpOutcome::Deleted(k) => {
                cur.remove(&k);
            }
            OpOutcome::Swapped(..) | OpOutcome::Noop => {}
        }
        states.push(cur);
    }
    let layout = env.log_layout();
    Harness {
        w,
        base,
        events: env.take_trace().events,
        layout,
        states,
    }
}

fn check_image(h: &Harness, image: &mut specpersist::pmem::Space, what: &str) {
    recover(image, &h.layout);
    let got: BTreeSet<u64> =
        h.w.verify(image)
            .unwrap_or_else(|e| panic!("{what}: post-recovery structure invalid: {e}"))
            .keys
            .into_iter()
            .collect();
    assert!(
        h.states.contains(&got),
        "{what}: recovered state matches no operation prefix"
    );
}

/// Crash at every persist-instruction boundary (the points where
/// durability state changes) with adversarial writebacks.
#[test]
fn crash_at_every_persist_boundary_recovers() {
    for id in BenchId::ALL {
        let h = prepare(id, 120, 6, 0xAB);
        for (i, ev) in h.events.iter().enumerate() {
            let interesting = matches!(
                ev,
                Event::Clwb { .. } | Event::Pcommit | Event::Sfence | Event::TxBegin(_)
            );
            if !interesting {
                continue;
            }
            // Crash just before and just after the boundary event.
            for crash in [i, i + 1] {
                let sim = CrashSim::new(&h.base, &h.events, crash.min(h.events.len()));
                let mut img = sim.image_guaranteed_only();
                check_image(&h, &mut img, &format!("{id} @event {crash}"));
            }
        }
    }
}

/// Randomized per-block writeback schedules: any mix of stale and fresh
/// blocks must still recover consistently.
#[test]
fn randomized_writeback_schedules_recover() {
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    for id in BenchId::ALL {
        let h = prepare(id, 80, 5, 0xCD);
        for _ in 0..12 {
            let crash = rng.gen_range(0..=h.events.len());
            let sim = CrashSim::new(&h.base, &h.events, crash);
            let seed: u64 = rng.gen();
            let mut img = sim.image_with(|b, g, c| {
                let x = seed ^ b.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
                g + (x as usize) % (c - g + 1).max(1)
            });
            check_image(&h, &mut img, &format!("{id} random @{crash}"));
        }
    }
}

/// The eager image (everything written back instantly) recovers to the
/// exact final prefix at a trace end.
#[test]
fn eager_image_at_end_is_the_final_state() {
    for id in BenchId::ALL {
        let h = prepare(id, 60, 4, 0xEF);
        let sim = CrashSim::new(&h.base, &h.events, h.events.len());
        let mut img = sim.image_everything();
        recover(&mut img, &h.layout);
        let got: BTreeSet<u64> =
            h.w.verify(&img)
                .expect("final image valid")
                .keys
                .into_iter()
                .collect();
        assert_eq!(
            &got,
            h.states.last().expect("states"),
            "{id}: final state mismatch"
        );
    }
}

/// Negative control: without fences (Log+P) there must exist a crash
/// point whose adversarial image is NOT failure safe for at least one
/// benchmark run — demonstrating the fences are load-bearing. (The
/// structure may verify by luck at many points; we only require that
/// recovery CAN observe a state matching no prefix, or an outright
/// verification failure, somewhere.)
#[test]
fn missing_fences_are_observably_unsafe() {
    let mut observed_violation = false;
    'outer: for id in [BenchId::LinkedList, BenchId::AvlTree, BenchId::StringSwap] {
        let mut env = PmemEnv::new(Variant::LogP);
        let mut rng = StdRng::seed_from_u64(0x5AFE);
        let mut w = make_workload(id);
        env.set_recording(false);
        w.setup(&mut env, &mut rng, 100);
        env.set_recording(true);
        let base = env.snapshot();
        let mut states: Vec<BTreeSet<u64>> = Vec::new();
        states.push(
            w.verify(env.space())
                .expect("init")
                .keys
                .into_iter()
                .collect(),
        );
        for op in 0..8 {
            let mut cur = states.last().expect("non-empty").clone();
            match w.run_op(&mut env, &mut rng, op) {
                OpOutcome::Inserted(k) => {
                    cur.insert(k);
                }
                OpOutcome::Deleted(k) => {
                    cur.remove(&k);
                }
                _ => {}
            }
            states.push(cur);
        }
        let layout = env.log_layout();
        let events = env.take_trace().events;
        // Without fences nothing is ever *guaranteed*, so the purely
        // adversarial image is just "nothing persisted" — trivially
        // consistent. The danger is mixed writebacks: some blocks
        // raced ahead, others lagged. Sample such schedules.
        let mut rng = StdRng::seed_from_u64(0xBAD);
        for _ in 0..200 {
            let crash = rng.gen_range(0..=events.len());
            let seed: u64 = rng.gen();
            let sim = CrashSim::new(&base, &events, crash);
            let mut img = sim.image_with(|b, g, c| {
                let x = seed ^ b.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
                g + (x as usize) % (c - g + 1).max(1)
            });
            recover(&mut img, &layout);
            let ok = match w.verify(&img) {
                Err(_) => false,
                Ok(s) => states.contains(&s.keys.into_iter().collect()),
            };
            if !ok {
                observed_violation = true;
                break 'outer;
            }
        }
    }
    assert!(
        observed_violation,
        "Log+P (no fences) never exhibited a recovery violation — the crash model \
         may have stopped exercising unordered persists"
    );
}
