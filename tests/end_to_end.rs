//! Cross-crate integration tests: full benchmark traces through the
//! full pipeline, with and without speculative persistence.

use specpersist::cpu::{CpuConfig, Pipeline, SimResult, Simulator, SpConfig};
use specpersist::pmem::{Event, Variant};
use specpersist::workloads::{run_benchmark, BenchId, BenchSpec, RunConfig};

fn simulate(events: &[Event], cfg: &CpuConfig) -> SimResult {
    Simulator::new(events)
        .config(*cfg)
        .run()
        .expect("benchmark traces must simulate cleanly")
}

fn tiny(id: BenchId) -> BenchSpec {
    BenchSpec::scaled(id, 2500)
}

/// The whole suite flows end-to-end in every variant, and committed
/// micro-op counts match the recorded traces exactly.
#[test]
fn every_benchmark_simulates_in_every_variant() {
    for id in BenchId::ALL {
        for variant in Variant::ALL {
            let out = run_benchmark(&RunConfig {
                variant,
                spec: tiny(id),
                seed: 11,
                capture_base: false,
            });
            let r = simulate(&out.trace.events, &CpuConfig::baseline());
            assert_eq!(
                r.cpu.committed_uops,
                out.trace.counts.total(),
                "{id}/{variant}: committed micro-ops diverge from the trace"
            );
            assert_eq!(r.cpu.pcommits, out.trace.counts.pcommits, "{id}/{variant}");
            assert_eq!(r.cpu.fences, out.trace.counts.fences, "{id}/{variant}");
        }
    }
}

/// SP never changes what commits — only when. And on fence-bearing
/// traces it must not lose to the stalling baseline.
#[test]
fn sp_commits_identically_and_never_loses() {
    for id in BenchId::ALL {
        let out = run_benchmark(&RunConfig {
            variant: Variant::LogPSf,
            spec: tiny(id),
            seed: 13,
            capture_base: false,
        });
        let base = simulate(&out.trace.events, &CpuConfig::baseline());
        let sp = simulate(&out.trace.events, &CpuConfig::with_sp());
        assert_eq!(base.cpu.committed_uops, sp.cpu.committed_uops, "{id}");
        assert!(
            sp.cpu.cycles <= base.cpu.cycles,
            "{id}: SP ({}) slower than stalling baseline ({})",
            sp.cpu.cycles,
            base.cpu.cycles
        );
        assert!(sp.cpu.epochs > 0, "{id}: speculation never triggered");
        assert_eq!(
            sp.cpu.rollbacks, 0,
            "{id}: single-threaded run must never roll back"
        );
    }
}

/// The four variants order as the paper's Fig. 8 bars.
///
/// Cycle counts of *adjacent* variants are not directly comparable at
/// tiny scales: each variant records a different trace (extra logging
/// stores shift every later block's cache fate), so `Log` can
/// legitimately beat `Base` by a hair on a handful of operations — the
/// old ±2% margins here codified luck, not a property. What *is*
/// deterministic at any scale:
/// * the work ladder — each variant strictly adds micro-ops on the
///   same operation stream (logging, then flushes, then barriers);
/// * the fence step — `Log+P+Sf` replays `Log+P`'s structure with
///   strictly more retirement serialization, so it always costs
///   cycles;
/// * the whole ladder — the fully fenced build can never beat the
///   bare one: its persist barriers stall on NVMM drains that `Base`
///   simply does not issue.
#[test]
fn variant_cost_ladder_is_monotone() {
    for id in BenchId::ALL {
        let mut cycles = Vec::new();
        let mut uops = Vec::new();
        for variant in Variant::ALL {
            let out = run_benchmark(&RunConfig {
                variant,
                spec: tiny(id),
                seed: 17,
                capture_base: false,
            });
            cycles.push(
                simulate(&out.trace.events, &CpuConfig::baseline())
                    .cpu
                    .cycles,
            );
            uops.push(out.trace.counts.total());
        }
        assert!(uops[1] > uops[0], "{id}: logging must add micro-ops");
        assert!(uops[2] > uops[1], "{id}: flushes must add micro-ops");
        assert!(uops[3] > uops[2], "{id}: barriers must add micro-ops");
        assert!(cycles[3] > cycles[2], "{id}: fences must cost cycles");
        assert!(
            cycles[3] > cycles[0],
            "{id}: the fenced build ({}) beat Base ({})",
            cycles[3],
            cycles[0]
        );
    }
}

/// Instruction-count ratios (Fig. 9): logging is the dominant
/// contributor; PMEM instructions add little; fences are negligible.
#[test]
fn instruction_count_structure_matches_fig9() {
    for id in BenchId::ALL {
        let counts: Vec<u64> = Variant::ALL
            .iter()
            .map(|&variant| {
                run_benchmark(&RunConfig {
                    variant,
                    spec: tiny(id),
                    seed: 19,
                    capture_base: false,
                })
                .trace
                .counts
                .total()
            })
            .collect();
        let (base, log, logp, logpsf) = (counts[0], counts[1], counts[2], counts[3]);
        assert!(log >= base, "{id}");
        let log_added = log - base;
        let p_added = logp - log;
        let sf_added = logpsf - logp;
        assert!(
            log_added >= p_added && log_added >= sf_added,
            "{id}: logging must dominate the added instructions \
             (log +{log_added}, P +{p_added}, Sf +{sf_added})"
        );
    }
}

/// A coherence conflict mid-run rolls back, re-executes, and still
/// commits every micro-op exactly once with an identical final count.
#[test]
fn rollback_reexecution_is_exact() {
    let out = run_benchmark(&RunConfig {
        variant: Variant::LogPSf,
        spec: tiny(BenchId::LinkedList),
        seed: 23,
        capture_base: false,
    });
    let expected = out.trace.counts.total();

    // Snoop every block the workload ever stored, round-robin, until a
    // conflict lands.
    let stored: Vec<_> = out
        .trace
        .events
        .iter()
        .filter_map(|e| match e {
            specpersist::pmem::Event::Store { addr, .. } => Some(addr.block()),
            _ => None,
        })
        .collect();
    let mut p = Pipeline::new(&out.trace.events, CpuConfig::with_sp());
    let mut rolled = 0;
    let mut i = 0usize;
    while !p.is_done() {
        p.step().unwrap();
        if rolled < 2 && !stored.is_empty() {
            i = (i + 7) % stored.len();
            if p.inject_coherence(stored[i]) {
                rolled += 1;
            }
        }
    }
    let r = p.result();
    assert_eq!(
        r.cpu.committed_uops, expected,
        "rollback corrupted commit accounting"
    );
    assert_eq!(r.cpu.rollbacks, rolled as u64);
}

/// The Fig. 13 U-shape: a 32-entry SSB must be measurably worse than
/// 256 entries on a fence-heavy benchmark.
#[test]
fn small_ssb_pays_structural_hazards() {
    let out = run_benchmark(&RunConfig {
        variant: Variant::LogPSf,
        spec: tiny(BenchId::BTree),
        seed: 29,
        capture_base: false,
    });
    let sp32 = simulate(
        &out.trace.events,
        &CpuConfig {
            sp: Some(SpConfig::with_ssb_entries(32)),
            ..CpuConfig::baseline()
        },
    );
    let sp256 = simulate(
        &out.trace.events,
        &CpuConfig {
            sp: Some(SpConfig::with_ssb_entries(256)),
            ..CpuConfig::baseline()
        },
    );
    assert!(
        sp32.cpu.cycles > sp256.cpu.cycles,
        "32-entry SSB ({}) should trail 256 ({})",
        sp32.cpu.cycles,
        sp256.cpu.cycles
    );
    assert!(sp32.cpu.ssb_full_stall_cycles > sp256.cpu.ssb_full_stall_cycles);
}

/// Regression: four cores hammering a Treiber-style persistent stack
/// once wedged the skip-ahead core with `NoFutureEvent` — after a
/// coherence rollback, the re-entered epoch's commit gate opened
/// immediately and waited only on the stale SSB drain, which was not in
/// the wake set once the SSB emptied. The run must complete, roll back
/// at least once, and keep per-core committed counts exact.
#[test]
fn contended_stack_survives_rollback_reexecution() {
    use specpersist::cpu::MultiCore;
    use specpersist::workloads::{shared_trace, SharedKind, SharedSpec};
    let spec = SharedSpec {
        ops_per_core: 24,
        share_pm: 600,
        seed: 0x5EED,
    };
    let traces: Vec<_> = (0..4)
        .map(|c| shared_trace(SharedKind::TreiberStack, c, &spec))
        .collect();
    let refs: Vec<&[Event]> = traces.iter().map(|t| t.events.as_slice()).collect();
    let results = MultiCore::try_new(&refs, CpuConfig::with_sp())
        .expect("validated multicore config")
        .try_run()
        .expect("contended re-execution must not wedge the scheduler");
    let conflicts: u64 = results.iter().map(|r| r.blt.conflicts).sum();
    assert!(conflicts > 0, "contended cell must produce BLT conflicts");
    for (i, (r, t)) in results.iter().zip(&traces).enumerate() {
        assert_eq!(r.cpu.committed_uops, t.counts.total(), "core {i}");
    }
}

/// Multi-programmed cores running real workload traces: every core
/// commits its own trace exactly, and a core that never rolled back is
/// never faster sharing the controller than running alone. (The
/// benchmarks' address streams overlap, so with coherence wired a
/// speculating core can take a BLT conflict; its re-executed path need
/// not dominate the solo run's cycles.)
#[test]
fn multicore_runs_real_workloads() {
    use specpersist::cpu::MultiCore;
    let traces: Vec<_> = [BenchId::LinkedList, BenchId::HashMap, BenchId::Graph]
        .iter()
        .map(|&id| {
            run_benchmark(&RunConfig {
                variant: Variant::LogPSf,
                spec: tiny(id),
                seed: 37,
                capture_base: false,
            })
            .trace
        })
        .collect();
    let refs: Vec<&[specpersist::pmem::Event]> =
        traces.iter().map(|t| t.events.as_slice()).collect();
    for cfg in [CpuConfig::baseline(), CpuConfig::with_sp()] {
        let solo: Vec<u64> = refs.iter().map(|t| simulate(t, &cfg).cpu.cycles).collect();
        let shared = MultiCore::try_new(&refs, cfg)
            .expect("validated multicore config")
            .try_run()
            .expect("real workload traces never wedge");
        for (i, (r, t)) in shared.iter().zip(&traces).enumerate() {
            assert_eq!(r.cpu.committed_uops, t.counts.total(), "core {i}");
            if r.cpu.rollbacks == 0 {
                assert!(
                    r.cpu.cycles + 16 >= solo[i],
                    "core {i} got faster under sharing ({} vs {})",
                    r.cpu.cycles,
                    solo[i]
                );
            }
        }
    }
}

/// Determinism: identical configurations produce identical results.
#[test]
fn simulation_is_deterministic() {
    let cfgs = [CpuConfig::baseline(), CpuConfig::with_sp()];
    let out = run_benchmark(&RunConfig {
        variant: Variant::LogPSf,
        spec: tiny(BenchId::RbTree),
        seed: 31,
        capture_base: false,
    });
    for cfg in cfgs {
        let a = simulate(&out.trace.events, &cfg);
        let b = simulate(&out.trace.events, &cfg);
        assert_eq!(a.cpu.cycles, b.cpu.cycles);
        assert_eq!(a.cpu.fetch_stall_cycles, b.cpu.fetch_stall_cycles);
        assert_eq!(a.mc.nvmm_writes, b.mc.nvmm_writes);
    }
}
