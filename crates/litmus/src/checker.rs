//! The litmus checker: drives each program through the real stack and
//! asserts reachable ⊆ allowed.
//!
//! One **cell** is a `(program, flush-mode)` pair. Per cell the checker
//! runs five legs:
//!
//! 1. **CrashSim** — for every interleaving and every crash index,
//!    exhaustively enumerate `CrashSim`'s post-crash images and check
//!    them against the model's allowed set *at that crash point* (op i
//!    is event i, so indices align one-to-one);
//! 2. **pipeline × {baseline, SP} × {event-driven, reference}** — run
//!    the trace through the real core with the persist-visibility log
//!    enabled, reconstruct the visibility-order trace, crash it at
//!    every boundary, and check the reached states against the model's
//!    allowed *envelope* (union over interleavings × crash points —
//!    the pipeline's visibility order need not match any single
//!    interleaving's indices, but its states must stay inside the
//!    envelope);
//! 3. **SP differential** — speculation must never widen a program's
//!    reachable set: states reached under SP ⊆ states reached by the
//!    same pipeline without SP.
//!
//! A failing cell carries a lexicographically minimized
//! `(interleaving, crash_idx, seed)` witness (crashfuzz-style): the
//! smallest seeded crash that reproduces a forbidden state.

use std::collections::BTreeSet;

use spp_cpu::{reconstruct, CpuConfig, Pipeline, ReferencePipeline, VisEvent};
use spp_pmem::{CrashSim, Event, FlushMode, Space};
use spp_workloads::litmus::LitmusProgram;

use crate::model::{self, ModelKnob, State};

/// Seeds scanned per crash index during witness minimization.
pub const MINIMIZE_SEEDS: u64 = 4096;

/// A minimized counterexample: the smallest `(interleaving, crash_idx,
/// seed)` — in that lexicographic order — reproducing a state the
/// model forbids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Which leg caught it (`"crashsim"`, `"pipeline-sp"`, …).
    pub leg: &'static str,
    /// Index into [`LitmusProgram::interleavings`].
    pub interleaving: usize,
    /// Crash index into the leg's event trace (the materialized
    /// interleaving for `crashsim`, the reconstructed visibility trace
    /// for pipeline legs).
    pub crash_idx: usize,
    /// `CrashSim::image_seeded` seed reproducing the state; `None` if
    /// only exhaustive enumeration reaches it (then `crash_idx` plus
    /// `for_each_image` reproduces it).
    pub seed: Option<u64>,
    /// The forbidden post-crash state (one value per location).
    pub state: State,
    /// The program, rendered (`t0: St x; … || t1: …`).
    pub program: String,
}

/// The outcome of one `(program, flush-mode)` cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Program name (catalog or generator identifier).
    pub program: String,
    /// The program, rendered for reports.
    pub rendered: String,
    /// Flush mode the cell ran under.
    pub mode: FlushMode,
    /// Model weakening in effect (test-only; `Honest` in production).
    pub knob: ModelKnob,
    /// Interleavings enumerated.
    pub interleavings: usize,
    /// Size of the model's allowed envelope.
    pub allowed_states: usize,
    /// Distinct states reached across all legs.
    pub reached_states: usize,
    /// Leg 1: raw `CrashSim` per-crash-point inclusion.
    pub crashsim_ok: bool,
    /// Event-driven core, no speculation, envelope inclusion.
    pub pipe_base_ok: bool,
    /// Event-driven core with SP, envelope inclusion.
    pub pipe_sp_ok: bool,
    /// Frozen reference stepper, no speculation, envelope inclusion.
    pub ref_base_ok: bool,
    /// Frozen reference stepper with SP, envelope inclusion.
    pub ref_sp_ok: bool,
    /// SP ⊆ baseline on the event-driven core.
    pub sp_differential_ok: bool,
    /// SP ⊆ baseline on the reference stepper.
    pub ref_sp_differential_ok: bool,
    /// A pipeline leg died (watchdog/deadlock); fails the cell.
    pub sim_error: Option<String>,
    /// Minimized counterexample for the first failing leg.
    pub witness: Option<Witness>,
}

impl CellOutcome {
    /// Did every leg pass?
    pub fn ok(&self) -> bool {
        self.crashsim_ok
            && self.pipe_base_ok
            && self.pipe_sp_ok
            && self.ref_base_ok
            && self.ref_sp_ok
            && self.sp_differential_ok
            && self.ref_sp_differential_ok
            && self.sim_error.is_none()
    }
}

/// Reads the litmus state vector out of a post-crash image.
fn read_state(img: &Space, locs: usize) -> State {
    (0..locs)
        .map(|l| img.read_u64(LitmusProgram::addr_of(l as u8)))
        .collect()
}

/// Runs `events` through the chosen core with persist logging and
/// returns the visibility-order reconstruction.
fn visibility_trace(events: &[Event], sp: bool, reference: bool) -> Result<Vec<Event>, String> {
    let cfg = if sp {
        CpuConfig::with_sp()
    } else {
        CpuConfig::baseline()
    };
    let log: Vec<VisEvent> = if reference {
        let mut p = ReferencePipeline::new(events, cfg);
        p.enable_persist_log();
        while !p.is_done() {
            p.step().map_err(|e| e.to_string())?;
        }
        p.take_persist_log()
    } else {
        let mut p = Pipeline::new(events, cfg);
        p.enable_persist_log();
        while !p.is_done() {
            p.step().map_err(|e| e.to_string())?;
        }
        p.take_persist_log()
    };
    Ok(reconstruct(events, &log))
}

/// All states `CrashSim` can produce from `events` crashed at `c`.
fn reachable_at(base: &Space, events: &[Event], c: usize, locs: usize) -> BTreeSet<State> {
    let sim = CrashSim::new(base, events, c);
    let mut out = BTreeSet::new();
    sim.for_each_image(|img| {
        out.insert(read_state(img, locs));
    });
    out
}

/// Lexicographically smallest `(trace, crash_idx, seed)` over the given
/// traces whose seeded crash image falls outside `allowed(trace_idx,
/// crash_idx)`; falls back to a seedless exhaustive witness.
fn minimize(
    base: &Space,
    traces: &[Vec<Event>],
    locs: usize,
    allowed: impl Fn(usize, usize) -> BTreeSet<State>,
) -> Option<(usize, usize, Option<u64>, State)> {
    for (ti, events) in traces.iter().enumerate() {
        for c in 0..=events.len() {
            let ok = allowed(ti, c);
            let sim = CrashSim::new(base, events, c);
            for seed in 0..MINIMIZE_SEEDS {
                let st = read_state(&sim.image_seeded(seed), locs);
                if !ok.contains(&st) {
                    return Some((ti, c, Some(seed), st));
                }
            }
            // Exhaustive fallback: a violating image no seed sampled.
            let mut bad = None;
            sim.for_each_image(|img| {
                let st = read_state(img, locs);
                if bad.is_none() && !ok.contains(&st) {
                    bad = Some(st);
                }
            });
            if let Some(st) = bad {
                return Some((ti, c, None, st));
            }
        }
    }
    None
}

/// Checks one `(program, flush-mode)` cell under the given model knob.
pub fn check_cell(program: &LitmusProgram, mode: FlushMode, knob: ModelKnob) -> CellOutcome {
    let base = Space::new();
    let locs = program.num_locs();
    let ils = program.interleavings();
    let rendered = program.to_string();

    // The reference model: per-crash-point sets and the envelope.
    let allowed_per: Vec<Vec<BTreeSet<State>>> = ils
        .iter()
        .map(|il| model::allowed_states(program, il, mode, knob))
        .collect();
    let mut envelope: BTreeSet<State> = BTreeSet::new();
    for per_crash in &allowed_per {
        for set in per_crash {
            envelope.extend(set.iter().cloned());
        }
    }

    // Leg 1: raw CrashSim, per crash point of each interleaving.
    let raw_traces: Vec<Vec<Event>> = ils.iter().map(|il| program.materialize(il, mode)).collect();
    let mut crashsim_ok = true;
    let mut reached: BTreeSet<State> = BTreeSet::new();
    for (ti, events) in raw_traces.iter().enumerate() {
        // `allowed_per[ti]` has one entry per crash point: `events.len() + 1`.
        for (c, allowed) in allowed_per[ti].iter().enumerate() {
            let states = reachable_at(&base, events, c, locs);
            if !states.is_subset(allowed) {
                crashsim_ok = false;
            }
            reached.extend(states);
        }
    }

    // Legs 2–5: the real cores, checked against the envelope.
    let mut sim_error = None;
    let mut leg_traces: [Vec<Vec<Event>>; 4] = Default::default();
    let mut leg_reached: [BTreeSet<State>; 4] = Default::default();
    // Order: [pipe-base, pipe-sp, ref-base, ref-sp].
    for (li, &(sp, reference)) in [(false, false), (true, false), (false, true), (true, true)]
        .iter()
        .enumerate()
    {
        for events in &raw_traces {
            match visibility_trace(events, sp, reference) {
                Ok(recon) => {
                    for c in 0..=recon.len() {
                        leg_reached[li].extend(reachable_at(&base, &recon, c, locs));
                    }
                    leg_traces[li].push(recon);
                }
                Err(e) => {
                    if sim_error.is_none() {
                        sim_error = Some(e);
                    }
                    leg_traces[li].push(Vec::new());
                }
            }
        }
        reached.extend(leg_reached[li].iter().cloned());
    }
    let pipe_base_ok = leg_reached[0].is_subset(&envelope);
    let pipe_sp_ok = leg_reached[1].is_subset(&envelope);
    let ref_base_ok = leg_reached[2].is_subset(&envelope);
    let ref_sp_ok = leg_reached[3].is_subset(&envelope);
    let sp_differential_ok = leg_reached[1].is_subset(&leg_reached[0]);
    let ref_sp_differential_ok = leg_reached[3].is_subset(&leg_reached[2]);

    // Minimize a witness for the first failing leg (legs in check
    // order; within a leg, lexicographic (interleaving, crash, seed)).
    let mut witness = None;
    if !crashsim_ok {
        witness = minimize(&base, &raw_traces, locs, |ti, c| allowed_per[ti][c].clone()).map(
            |(ti, c, seed, state)| Witness {
                leg: "crashsim",
                interleaving: ti,
                crash_idx: c,
                seed,
                state,
                program: rendered.clone(),
            },
        );
    }
    let pipeline_legs = [
        ("pipeline-base", pipe_base_ok, 0usize),
        ("pipeline-sp", pipe_sp_ok, 1),
        ("reference-base", ref_base_ok, 2),
        ("reference-sp", ref_sp_ok, 3),
    ];
    for (leg, ok, li) in pipeline_legs {
        if witness.is_none() && !ok {
            witness = minimize(&base, &leg_traces[li], locs, |_, _| envelope.clone()).map(
                |(ti, c, seed, state)| Witness {
                    leg,
                    interleaving: ti,
                    crash_idx: c,
                    seed,
                    state,
                    program: rendered.clone(),
                },
            );
        }
    }
    for (leg, ok, li, base_li) in [
        ("sp-differential", sp_differential_ok, 1usize, 0usize),
        ("ref-sp-differential", ref_sp_differential_ok, 3, 2),
    ] {
        if witness.is_none() && !ok {
            let baseline = leg_reached[base_li].clone();
            witness = minimize(&base, &leg_traces[li], locs, |_, _| baseline.clone()).map(
                |(ti, c, seed, state)| Witness {
                    leg,
                    interleaving: ti,
                    crash_idx: c,
                    seed,
                    state,
                    program: rendered.clone(),
                },
            );
        }
    }

    CellOutcome {
        program: program.name.clone(),
        rendered,
        mode,
        knob,
        interleavings: ils.len(),
        allowed_states: envelope.len(),
        reached_states: reached.len(),
        crashsim_ok,
        pipe_base_ok,
        pipe_sp_ok,
        ref_base_ok,
        ref_sp_ok,
        sp_differential_ok,
        ref_sp_differential_ok,
        sim_error,
        witness,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::catalog::{catalog, generate};

    #[test]
    fn honest_catalog_passes_every_mode() {
        for program in catalog() {
            for mode in FlushMode::ALL {
                let out = check_cell(&program, mode, ModelKnob::Honest);
                assert!(
                    out.ok(),
                    "{} under {} failed: crashsim={} pipe=({},{}) ref=({},{}) diff=({},{}) err={:?} witness={:?}",
                    out.program,
                    mode,
                    out.crashsim_ok,
                    out.pipe_base_ok,
                    out.pipe_sp_ok,
                    out.ref_base_ok,
                    out.ref_sp_ok,
                    out.sp_differential_ok,
                    out.ref_sp_differential_ok,
                    out.sim_error,
                    out.witness,
                );
                assert!(out.reached_states <= out.allowed_states);
            }
        }
    }

    #[test]
    fn weakened_model_is_caught_with_a_minimized_witness() {
        let cat = catalog();
        let trap = cat.iter().find(|p| p.name == "knob-trap").unwrap();
        let out = check_cell(
            trap,
            FlushMode::ClflushOpt,
            ModelKnob::ClflushOptProgramOrdered,
        );
        assert!(!out.ok(), "the weakened model must be caught");
        assert!(!out.crashsim_ok, "per-crash-point leg must catch it");
        let w = out.witness.expect("failing cell carries a witness");
        assert_eq!(w.leg, "crashsim");
        assert!(w.seed.is_some(), "seeded reproduction expected");
        // The forbidden state: x stale, the weakly-flushed store lost.
        assert_eq!(w.state[0], 0);
        // Minimality: no earlier (interleaving, crash, seed) violates.
        assert_eq!(w.interleaving, 0);
        // Under the serializing flush the knob is a no-op.
        let out = check_cell(
            trap,
            FlushMode::Clflush,
            ModelKnob::ClflushOptProgramOrdered,
        );
        assert!(out.ok());
    }

    #[test]
    fn generated_programs_pass_honest_checking() {
        for program in generate(0xC0FFEE, 8) {
            for mode in FlushMode::ALL {
                let out = check_cell(&program, mode, ModelKnob::Honest);
                assert!(
                    out.ok(),
                    "{} ({}) under {} failed: witness={:?} err={:?}",
                    out.program,
                    out.rendered,
                    mode,
                    out.witness,
                    out.sim_error,
                );
            }
        }
    }
}
