//! The executable reference Px86 model: exhaustive allowed post-crash
//! states per litmus program, interleaving, and flush mode.
//!
//! The model mirrors the staging discipline `CrashSim` implements —
//! a flush enters *issued*, an `sfence` orders it (*issued* →
//! *ordered*), a `pcommit` moves ordered writebacks into the
//! write-pending queue (*ordered* → *inflight*), and the next `sfence`
//! realizes the guarantee (*inflight* → *guaranteed*); legacy
//! `clflush` skips straight to *ordered* — but is **thread-aware**
//! where `CrashSim` is thread-blind:
//!
//! * an `sfence` on thread *t* orders only thread-*t* issued flushes,
//!   and completes only in-flight writebacks whose `pcommit` was
//!   issued by thread *t* (the ack returns to the issuing core);
//! * a `pcommit` drains the *global* write-pending queue (all ordered
//!   entries, any thread), tagging them with the issuing thread.
//!
//! Because a thread-blind global fence orders strictly more than a
//! per-thread one, the machine under test guarantees at least what the
//! model guarantees, so honest runs satisfy reachable ⊆ allowed; any
//! escape is a real persistency-semantics violation.
//!
//! A crash may persist any suffix-independent subset beyond the
//! guarantees: per location (one cache block each), the persisted
//! value is the guaranteed frontier value or any later store that had
//! reached the coherent domain — exactly `CrashSim`'s per-block cut.
//! Locations are independent (separate blocks), so the allowed set is
//! the cross product of per-location value sets.

use std::collections::BTreeSet;

use spp_workloads::litmus::{LitmusOp, LitmusProgram};

/// A post-crash memory state: the persisted value of each litmus
/// location, in location order (`0` = never persisted).
pub type State = Vec<u64>;

/// Whether a flush instruction is ordered by program order alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModelKnob {
    /// The faithful Px86 rules.
    #[default]
    Honest,
    /// Test-only weakening detector: treats *optimized* (non-
    /// serializing) flushes — `clwb`/`clflushopt` — as ordered by
    /// program order, the pre-`clflushopt` mental model. This makes
    /// the model claim guarantees the machine never provides, so the
    /// harness must find reachable states the knob-model forbids; a
    /// harness that cannot is too weak to trust. No-op under
    /// [`FlushMode::Clflush`], which really is serializing.
    ClflushOptProgramOrdered,
}

impl ModelKnob {
    /// The stable wire/CLI key (`honest` / `clflushopt-po`), used in
    /// journal cell keys and `specpersist/litmus-v1` documents.
    pub fn key(self) -> &'static str {
        match self {
            ModelKnob::Honest => "honest",
            ModelKnob::ClflushOptProgramOrdered => "clflushopt-po",
        }
    }

    /// Parses a [`ModelKnob::key`] spelling (case-insensitive; the
    /// long form `clflushopt-program-ordered` is also accepted).
    pub fn parse(s: &str) -> Option<ModelKnob> {
        match s.to_ascii_lowercase().as_str() {
            "honest" => Some(ModelKnob::Honest),
            "clflushopt-po" | "clflushopt-program-ordered" => {
                Some(ModelKnob::ClflushOptProgramOrdered)
            }
            _ => None,
        }
    }
}

use spp_pmem::FlushMode;

/// Lifecycle stage of one flush's writeback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Executed, unordered: a crash may or may not persist it, and no
    /// guarantee can ever form from it without a fence.
    Issued,
    /// Ordered by the issuing thread's fence (or serializing by
    /// construction): the next `pcommit` will pick it up.
    Ordered,
    /// In the write-pending queue; the payload is the thread whose
    /// `pcommit` issued it (its fence completes the guarantee).
    Inflight(usize),
    /// Durably persisted: the covered stores survive any crash.
    Guaranteed,
}

/// One flush's writeback obligation: it covers the first `covered`
/// stores (in execution order) to `loc`.
#[derive(Debug, Clone, Copy)]
struct WritebackEntry {
    loc: usize,
    covered: usize,
    thread: usize,
    stage: Stage,
}

/// The model's machine state mid-execution of one interleaving.
#[derive(Debug)]
struct ModelState {
    /// Values stored to each location so far, in execution order.
    stores: Vec<Vec<u64>>,
    /// Guaranteed frontier per location: the first `frontier[loc]`
    /// stores are durably persisted.
    frontier: Vec<usize>,
    entries: Vec<WritebackEntry>,
    serializing: bool,
    knob_ordered: bool,
}

impl ModelState {
    fn new(locs: usize, mode: FlushMode, knob: ModelKnob) -> Self {
        ModelState {
            stores: vec![Vec::new(); locs],
            frontier: vec![0; locs],
            entries: Vec::new(),
            serializing: mode == FlushMode::Clflush,
            knob_ordered: knob == ModelKnob::ClflushOptProgramOrdered && mode != FlushMode::Clflush,
        }
    }

    fn apply(&mut self, thread: usize, op: LitmusOp, value: Option<u64>) {
        match op {
            LitmusOp::Store { loc } => {
                let v = value.unwrap_or(0);
                self.stores[loc as usize].push(v);
            }
            LitmusOp::Flush { loc } => {
                let loc = loc as usize;
                self.entries.push(WritebackEntry {
                    loc,
                    covered: self.stores[loc].len(),
                    thread,
                    stage: if self.serializing || self.knob_ordered {
                        Stage::Ordered
                    } else {
                        Stage::Issued
                    },
                });
            }
            LitmusOp::Sfence => {
                // Complete this thread's in-flight writebacks first,
                // then order its issued flushes: one fence never
                // advances the same writeback twice (mirrors
                // `CrashSim`'s drain order).
                for e in &mut self.entries {
                    if e.stage == Stage::Inflight(thread) {
                        e.stage = Stage::Guaranteed;
                        self.frontier[e.loc] = self.frontier[e.loc].max(e.covered);
                    }
                }
                for e in &mut self.entries {
                    if e.stage == Stage::Issued && e.thread == thread {
                        e.stage = Stage::Ordered;
                    }
                }
            }
            LitmusOp::Pcommit => {
                // The write-pending queue is global: every ordered
                // writeback drains, whoever issued it; the ack (and
                // therefore the completing fence) belongs to `thread`.
                for e in &mut self.entries {
                    if e.stage == Stage::Ordered {
                        e.stage = Stage::Inflight(thread);
                    }
                }
            }
        }
    }

    /// Allowed post-crash states right now: per location, the frontier
    /// value or any later store; cross product across locations.
    fn allowed(&self) -> BTreeSet<State> {
        let per_loc: Vec<Vec<u64>> = self
            .stores
            .iter()
            .zip(&self.frontier)
            .map(|(stores, &f)| {
                let mut vals = vec![if f == 0 { 0 } else { stores[f - 1] }];
                for &v in &stores[f..] {
                    if !vals.contains(&v) {
                        vals.push(v);
                    }
                }
                vals
            })
            .collect();
        let mut out = BTreeSet::new();
        let mut state = vec![0u64; per_loc.len()];
        cross(&per_loc, 0, &mut state, &mut out);
        out
    }
}

fn cross(per_loc: &[Vec<u64>], depth: usize, state: &mut State, out: &mut BTreeSet<State>) {
    if depth == per_loc.len() {
        out.insert(state.clone());
        return;
    }
    for &v in &per_loc[depth] {
        state[depth] = v;
        cross(per_loc, depth + 1, state, out);
    }
}

/// Allowed post-crash states of `program` along `interleaving` under
/// `mode`, one set per crash point: entry `c` is the allowed set after
/// the first `c` ops executed (so the result has `len + 1` entries and
/// entry 0 is the all-zero initial state).
pub fn allowed_states(
    program: &LitmusProgram,
    interleaving: &[(usize, usize)],
    mode: FlushMode,
    knob: ModelKnob,
) -> Vec<BTreeSet<State>> {
    let mut m = ModelState::new(program.num_locs(), mode, knob);
    let mut out = Vec::with_capacity(interleaving.len() + 1);
    out.push(m.allowed());
    for &(t, i) in interleaving {
        m.apply(t, program.threads[t][i], program.store_value(t, i));
        out.push(m.allowed());
    }
    out
}

/// The allowed envelope of `program` under `mode`: the union of
/// allowed states over every interleaving and every crash point. This
/// is the reference set the pipeline legs are checked against (their
/// visibility order need not match any one interleaving's crash
/// indices, but every state they can reach must live in the envelope).
pub fn allowed_union(program: &LitmusProgram, mode: FlushMode, knob: ModelKnob) -> BTreeSet<State> {
    let mut union = BTreeSet::new();
    for il in program.interleavings() {
        for set in allowed_states(program, &il, mode, knob) {
            union.extend(set);
        }
    }
    union
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn st(loc: u8) -> LitmusOp {
        LitmusOp::Store { loc }
    }
    fn fl(loc: u8) -> LitmusOp {
        LitmusOp::Flush { loc }
    }

    #[test]
    fn full_epoch_guarantees_the_store() {
        let p = LitmusProgram::single(
            "full-epoch",
            vec![
                st(0),
                fl(0),
                LitmusOp::Sfence,
                LitmusOp::Pcommit,
                LitmusOp::Sfence,
            ],
        );
        let il = p.program_order();
        let sets = allowed_states(&p, &il, FlushMode::Clwb, ModelKnob::Honest);
        assert_eq!(sets[0], BTreeSet::from([vec![0]]));
        // Mid-epoch the store may or may not have persisted.
        assert_eq!(sets[3], BTreeSet::from([vec![0], vec![1]]));
        // After the trailing fence it is guaranteed.
        assert_eq!(sets[5], BTreeSet::from([vec![1]]));
    }

    #[test]
    fn pcommit_without_flush_guarantees_nothing() {
        let p = LitmusProgram::single(
            "no-flush",
            vec![st(0), LitmusOp::Sfence, LitmusOp::Pcommit, LitmusOp::Sfence],
        );
        let sets = allowed_states(&p, &p.program_order(), FlushMode::Clwb, ModelKnob::Honest);
        assert_eq!(*sets.last().unwrap(), BTreeSet::from([vec![0], vec![1]]));
    }

    #[test]
    fn clflush_skips_the_ordering_fence() {
        // St x; Fl x; Pcommit; Sfence — guaranteed only if the flush
        // is serializing.
        let p = LitmusProgram::single(
            "clflush-path",
            vec![st(0), fl(0), LitmusOp::Pcommit, LitmusOp::Sfence],
        );
        let il = p.program_order();
        let weak = allowed_states(&p, &il, FlushMode::ClflushOpt, ModelKnob::Honest);
        assert_eq!(*weak.last().unwrap(), BTreeSet::from([vec![0], vec![1]]));
        let strong = allowed_states(&p, &il, FlushMode::Clflush, ModelKnob::Honest);
        assert_eq!(*strong.last().unwrap(), BTreeSet::from([vec![1]]));
    }

    #[test]
    fn knob_forbids_the_stale_flush_state() {
        // The knob-trap shape: under the weakened model the optimized
        // flush is "ordered" at the pcommit, so (x=0, y=2) — y persists
        // by crash while x stays stale — becomes forbidden, even
        // though the honest model (and real hardware) allows it.
        let p = LitmusProgram::single(
            "knob-trap",
            vec![st(0), fl(0), LitmusOp::Pcommit, LitmusOp::Sfence, st(1)],
        );
        let honest = allowed_union(&p, FlushMode::ClflushOpt, ModelKnob::Honest);
        assert!(honest.contains(&vec![0, 2]));
        let knob = allowed_union(
            &p,
            FlushMode::ClflushOpt,
            ModelKnob::ClflushOptProgramOrdered,
        );
        assert!(!knob.contains(&vec![0, 2]));
        // Serializing flushes are unaffected by the knob.
        let clflush_honest = allowed_union(&p, FlushMode::Clflush, ModelKnob::Honest);
        let clflush_knob =
            allowed_union(&p, FlushMode::Clflush, ModelKnob::ClflushOptProgramOrdered);
        assert_eq!(clflush_honest, clflush_knob);
    }

    #[test]
    fn foreign_fence_orders_nothing_in_the_model() {
        // t0: St x; Fl x || t1: Sfence; Pcommit; Sfence — t1's fences
        // never order t0's issued flush, so x is never guaranteed.
        let p = LitmusProgram::pair(
            "foreign-fence",
            vec![st(0), fl(0)],
            vec![LitmusOp::Sfence, LitmusOp::Pcommit, LitmusOp::Sfence],
        );
        for il in p.interleavings() {
            let sets = allowed_states(&p, &il, FlushMode::Clwb, ModelKnob::Honest);
            assert_eq!(*sets.last().unwrap(), BTreeSet::from([vec![0], vec![1]]));
        }
    }

    #[test]
    fn cross_thread_pcommit_completed_by_issuing_thread() {
        // t0: St x; Fl x; Sfence || t1: Pcommit; Sfence — t1's pcommit
        // drains the global WPQ (picking up t0's ordered flush) and
        // t1's own fence completes it: interleavings where everything
        // lines up guarantee x.
        let p = LitmusProgram::pair(
            "pcommit-relay",
            vec![st(0), fl(0), LitmusOp::Sfence],
            vec![LitmusOp::Pcommit, LitmusOp::Sfence],
        );
        let union = allowed_union(&p, FlushMode::Clwb, ModelKnob::Honest);
        assert!(union.contains(&vec![0]) && union.contains(&vec![1]));
        // The thread-major interleaving: t0 fully orders, then t1
        // commits and fences — guaranteed at the end.
        let sets = allowed_states(&p, &p.program_order(), FlushMode::Clwb, ModelKnob::Honest);
        assert_eq!(*sets.last().unwrap(), BTreeSet::from([vec![1]]));
    }
}
