//! # spp-litmus — the Px86 persistency litmus harness
//!
//! Proves that the simulator's persist semantics — `CrashSim`'s
//! post-crash image enumeration and both pipeline cores' persist
//! ordering, with and without speculative persistence — agree with an
//! executable reference model of Px86 (the `clwb`/`clflushopt`/
//! `pcommit`/`sfence` persistency rules the paper's machine follows).
//!
//! Three layers:
//!
//! * [`catalog`] — ~21 curated canonical programs (2–6 persist-relevant
//!   ops over 1–2 threads) plus a seeded generative enumerator;
//! * [`model`] — the thread-aware reference model, exhaustively
//!   computing every allowed post-crash state per program ×
//!   interleaving × crash point × flush mode;
//! * [`checker`] — drives each program through the real stack
//!   (`CrashSim` at every crash point; the event-driven core and the
//!   frozen reference stepper, baseline and SP, via the
//!   persist-visibility log) and asserts reachable ⊆ allowed, with
//!   lexicographic `(interleaving, crash_idx, seed)` witness
//!   minimization on failure.
//!
//! The [`model::ModelKnob`] weakening exists so the harness can prove
//! its own teeth: under `ClflushOptProgramOrdered` the model forbids a
//! state the machine legitimately reaches, and the checker must find
//! it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Simulation code must degrade to typed errors, never abort mid-run:
// `.unwrap()`/`.expect()` are banned outside tests (CI runs clippy with
// `-D warnings`, making these hard errors there).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod catalog;
pub mod checker;
pub mod model;

pub use catalog::{catalog, generate};
pub use checker::{check_cell, CellOutcome, Witness, MINIMIZE_SEEDS};
pub use model::{allowed_states, allowed_union, ModelKnob, State};
pub use spp_workloads::litmus::{LitmusOp, LitmusProgram};
