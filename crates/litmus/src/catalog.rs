//! The curated litmus catalog and the seeded generative enumerator.
//!
//! The catalog holds ~21 canonical Px86 shapes — every persist-barrier
//! idiom the paper's workloads exercise plus the classic ways to get
//! one wrong (missing trailing fence, flush without pcommit, foreign
//! fences, cross-thread flushes). The generator extends coverage with
//! pseudo-random programs derived from a `SplitMix64` chain, so a
//! `--seed` sweep explores shapes nobody thought to curate while
//! staying perfectly reproducible.

use spp_pmem::rng::splitmix64;
use spp_workloads::litmus::{LitmusOp, LitmusProgram};

fn st(loc: u8) -> LitmusOp {
    LitmusOp::Store { loc }
}
fn fl(loc: u8) -> LitmusOp {
    LitmusOp::Flush { loc }
}
const SF: LitmusOp = LitmusOp::Sfence;
const PC: LitmusOp = LitmusOp::Pcommit;

/// The curated catalog, in canonical order (stable: cell keys, golden
/// reports, and witness minimization all cite programs by this order).
pub fn catalog() -> Vec<LitmusProgram> {
    vec![
        // -- single-thread epoch anatomy --------------------------------
        LitmusProgram::single("full-epoch", vec![st(0), fl(0), SF, PC, SF]),
        LitmusProgram::single("store-only", vec![st(0), st(1)]),
        LitmusProgram::single("flush-no-fence", vec![st(0), fl(0)]),
        LitmusProgram::single("flush-fence-no-pcommit", vec![st(0), fl(0), SF]),
        LitmusProgram::single("missing-trailing-fence", vec![st(0), fl(0), SF, PC]),
        LitmusProgram::single("pcommit-without-flush", vec![st(0), SF, PC, SF]),
        LitmusProgram::single(
            "two-stores-one-flush",
            vec![st(0), st(1), fl(0), SF, PC, SF],
        ),
        LitmusProgram::single("epoch-then-store", vec![st(0), fl(0), SF, PC, SF, st(1)]),
        LitmusProgram::single("overwrite", vec![st(0), st(0), fl(0), SF]),
        LitmusProgram::single("barriers-only", vec![SF, PC, SF]),
        LitmusProgram::single(
            "flush-both-then-barrier",
            vec![st(0), st(1), fl(0), fl(1), SF, PC],
        ),
        // The knob trap: the weak flush is never ordered (no fence
        // between it and the pcommit), so x can stay stale while the
        // trailing store persists by crash — the exact state the
        // `ClflushOptProgramOrdered` weakening forbids.
        LitmusProgram::single("knob-trap", vec![st(0), fl(0), PC, SF, st(1)]),
        LitmusProgram::single("clflush-path", vec![st(0), fl(0), PC, SF]),
        LitmusProgram::single("double-pcommit", vec![st(0), fl(0), SF, PC, PC, SF]),
        LitmusProgram::single("fence-sandwich", vec![SF, st(0), fl(0), SF]),
        // -- two-thread shapes ------------------------------------------
        LitmusProgram::pair(
            "parallel-epochs",
            vec![st(0), fl(0), SF],
            vec![st(1), fl(1), SF],
        ),
        LitmusProgram::pair("cross-thread-flush", vec![st(0)], vec![fl(0), SF, PC, SF]),
        LitmusProgram::pair("foreign-fence", vec![st(0), fl(0)], vec![SF, PC, SF]),
        LitmusProgram::pair("pcommit-split", vec![st(0), fl(0), SF, PC], vec![SF]),
        LitmusProgram::pair("independent-stores", vec![st(0)], vec![st(1)]),
        LitmusProgram::pair(
            "writer-flusher",
            vec![st(0), st(1)],
            vec![fl(0), SF, PC, SF],
        ),
        LitmusProgram::pair("same-loc-race", vec![st(0)], vec![st(0), fl(0), SF]),
    ]
}

/// Generates `n` pseudo-random litmus programs from `seed`: 1–2
/// threads, 2–6 ops over locations `x`/`y`, every op kind equally
/// likely. Fully determined by `(seed, n)`.
pub fn generate(seed: u64, n: usize) -> Vec<LitmusProgram> {
    let mut state = splitmix64(seed ^ 0x4C49_544D_5553_5F31); // "LITMUS_1"
    let mut next = || {
        state = splitmix64(state);
        state
    };
    (0..n)
        .map(|i| {
            let threads = 1 + (next() % 2) as usize;
            let total = 2 + (next() % 5) as usize; // 2..=6 ops
            let mut per_thread = vec![Vec::new(); threads];
            for k in 0..total {
                let t = if threads == 2 && total >= 2 {
                    // Keep both threads non-empty, otherwise random.
                    if k < 2 {
                        k
                    } else {
                        (next() % 2) as usize
                    }
                } else {
                    0
                };
                let op = match next() % 4 {
                    0 => st((next() % 2) as u8),
                    1 => fl((next() % 2) as u8),
                    2 => SF,
                    _ => PC,
                };
                per_thread[t].push(op);
            }
            LitmusProgram {
                name: format!("gen{i:03}-s{seed:#x}"),
                threads: per_thread,
            }
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_at_least_twenty_well_formed_programs() {
        let cat = catalog();
        assert!(cat.len() >= 20, "catalog has {} programs", cat.len());
        for p in &cat {
            assert!((1..=2).contains(&p.threads.len()), "{}", p.name);
            assert!((2..=6).contains(&p.num_ops()), "{}", p.name);
            assert!(p.num_locs() <= 2, "{}", p.name);
        }
        // Names are unique (they become cell keys).
        let mut names: Vec<_> = cat.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cat.len());
        // The knob trap must be present: it is what makes the
        // weakened-model self-test demonstrably fail.
        assert!(cat.iter().any(|p| p.name == "knob-trap"));
    }

    #[test]
    fn generator_is_deterministic_and_bounded() {
        let a = generate(7, 10);
        let b = generate(7, 10);
        assert_eq!(a, b);
        let c = generate(8, 10);
        assert_ne!(a, c);
        for p in &a {
            assert!((2..=6).contains(&p.num_ops()), "{}", p.name);
            assert!((1..=2).contains(&p.threads.len()));
            assert!(p.threads.iter().all(|t| !t.is_empty()));
        }
    }
}
