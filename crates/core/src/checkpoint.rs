//! The checkpoint buffer (§4.1-4.2).
//!
//! Each speculative epoch begins by capturing the architectural
//! registers into a hardware checkpoint. The buffer holds four entries
//! (Table 2) — Fig. 11 shows at most four pcommits are ever concurrently
//! in flight, so four checkpoints suffice. When no checkpoint is free,
//! the pipeline stalls at the fence that needed one.
//!
//! In the trace-driven model a checkpoint's "register state" is simply
//! the trace position to resume from on rollback (plus the cycle it was
//! taken, for statistics).

/// Identifier of an allocated checkpoint slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CheckpointId(u64);

impl CheckpointId {
    /// The raw allocation number (monotonically increasing).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One live checkpoint: where to resume on rollback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    /// Allocation id.
    pub id: CheckpointId,
    /// Trace index of the first instruction after the checkpoint (the
    /// rollback target).
    pub resume_idx: usize,
    /// Cycle the checkpoint was captured.
    pub taken_at: u64,
}

/// Statistics for checkpoint pressure analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Checkpoints taken.
    pub taken: u64,
    /// Allocation attempts that failed (pipeline had to stall).
    pub exhaustions: u64,
    /// Maximum simultaneously live checkpoints.
    pub high_water: usize,
}

/// A fixed-capacity buffer of live checkpoints, freed oldest-first as
/// epochs commit.
///
/// ```
/// use spp_core::CheckpointBuffer;
///
/// let mut cb = CheckpointBuffer::new(4);
/// let a = cb.take(0, 100).unwrap();
/// let b = cb.take(50, 400).unwrap();
/// assert_eq!(cb.live(), 2);
/// cb.release_oldest(); // epoch of `a` committed
/// assert_eq!(cb.oldest().unwrap().id, b.id);
/// # let _ = (a, b);
/// ```
#[derive(Debug)]
pub struct CheckpointBuffer {
    capacity: usize,
    live: Vec<Checkpoint>,
    next_id: u64,
    stats: CheckpointStats,
}

impl CheckpointBuffer {
    /// Creates a buffer with `capacity` slots (the paper uses 4).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "checkpoint buffer needs at least one slot");
        CheckpointBuffer {
            capacity,
            live: Vec::new(),
            next_id: 0,
            stats: CheckpointStats::default(),
        }
    }

    /// Slots configured.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live checkpoints.
    pub fn live(&self) -> usize {
        self.live.len()
    }

    /// Is a slot available?
    pub fn available(&self) -> bool {
        self.live.len() < self.capacity
    }

    /// Captures a checkpoint; `None` (and an exhaustion tick) if all
    /// slots are in use.
    pub fn take(&mut self, resume_idx: usize, now: u64) -> Option<Checkpoint> {
        if self.live.len() >= self.capacity {
            self.stats.exhaustions += 1;
            return None;
        }
        let cp = Checkpoint {
            id: CheckpointId(self.next_id),
            resume_idx,
            taken_at: now,
        };
        self.next_id += 1;
        self.live.push(cp);
        self.stats.taken += 1;
        self.stats.high_water = self.stats.high_water.max(self.live.len());
        Some(cp)
    }

    /// The oldest live checkpoint (the rollback target).
    pub fn oldest(&self) -> Option<Checkpoint> {
        self.live.first().copied()
    }

    /// Frees the oldest checkpoint (its epoch committed); `None` when no
    /// checkpoint is live.
    pub fn release_oldest(&mut self) -> Option<Checkpoint> {
        if self.live.is_empty() {
            return None;
        }
        Some(self.live.remove(0))
    }

    /// Frees everything and returns the oldest (rollback: execution
    /// resumes from its `resume_idx`).
    pub fn rollback_all(&mut self) -> Option<Checkpoint> {
        let oldest = self.oldest();
        self.live.clear();
        oldest
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> CheckpointStats {
        self.stats
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn allocation_exhausts_at_capacity() {
        let mut cb = CheckpointBuffer::new(2);
        assert!(cb.take(0, 0).is_some());
        assert!(cb.take(1, 1).is_some());
        assert!(cb.take(2, 2).is_none());
        assert_eq!(cb.stats().exhaustions, 1);
        assert_eq!(cb.stats().high_water, 2);
    }

    #[test]
    fn release_frees_in_fifo_order() {
        let mut cb = CheckpointBuffer::new(4);
        let a = cb.take(10, 0).unwrap();
        let b = cb.take(20, 5).unwrap();
        let freed = cb.release_oldest().unwrap();
        assert_eq!(freed.id, a.id);
        assert_eq!(freed.resume_idx, 10);
        assert_eq!(cb.oldest().unwrap().id, b.id);
        assert!(cb.available());
    }

    #[test]
    fn rollback_targets_the_oldest() {
        let mut cb = CheckpointBuffer::new(4);
        cb.take(100, 0).unwrap();
        cb.take(200, 1).unwrap();
        cb.take(300, 2).unwrap();
        let target = cb.rollback_all().unwrap();
        assert_eq!(target.resume_idx, 100);
        assert_eq!(cb.live(), 0);
    }

    #[test]
    fn ids_are_unique_across_reuse() {
        let mut cb = CheckpointBuffer::new(1);
        let a = cb.take(0, 0).unwrap();
        cb.release_oldest();
        let b = cb.take(0, 1).unwrap();
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn release_on_empty_returns_none() {
        assert_eq!(CheckpointBuffer::new(1).release_oldest(), None);
    }
}
