//! The Speculative Store Buffer (SSB, §4.2).
//!
//! A FIFO holding speculatively retired stores and delayed PMEM
//! instructions, tagged with the epoch they belong to. Loads executed
//! during speculation snoop the SSB for store-to-load forwarding; on
//! epoch commit the epoch's entries drain to the cache / memory
//! controller in order. Table 3 gives the size/latency design points.

use std::collections::VecDeque;

use spp_pmem::{BlockId, PAddr};

/// Table 3: SSB configurations and parameters.
pub const SSB_DESIGN_POINTS: [(usize, u64); 6] =
    [(32, 2), (64, 3), (128, 4), (256, 5), (512, 7), (1024, 10)];

/// SSB geometry: entry count and CAM+RAM access latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsbConfig {
    /// Number of entries.
    pub entries: usize,
    /// Lookup latency in cycles.
    pub latency: u64,
}

impl SsbConfig {
    /// The Table 3 design point for `entries`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not one of Table 3's sizes; use the struct
    /// literal for custom points.
    pub fn table3(entries: usize) -> Self {
        let (_, latency) = SSB_DESIGN_POINTS
            .iter()
            .copied()
            .find(|&(e, _)| e == entries)
            .unwrap_or_else(|| panic!("{entries} is not a Table 3 SSB size"));
        SsbConfig { entries, latency }
    }

    /// The paper's default design point (256 entries, 5 cycles — the
    /// "SP256" configuration of Fig. 8).
    pub fn paper_default() -> Self {
        Self::table3(256)
    }
}

/// One operation held in the SSB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SsbOp {
    /// A speculatively retired store (8-byte granule address).
    Store {
        /// Granule address for store-to-load forwarding.
        addr: PAddr,
    },
    /// A delayed `clwb`, replayed at epoch commit.
    Clwb {
        /// Block to write back.
        block: BlockId,
    },
    /// A delayed `clflushopt`, replayed at epoch commit.
    ClflushOpt {
        /// Block to write back and evict.
        block: BlockId,
    },
    /// A delayed bare `pcommit` (no fence followed it inside the epoch).
    Pcommit,
    /// The combined opcode for an `sfence; pcommit; sfence` sequence
    /// (§4.2.2): instead of burning a checkpoint per fence, one
    /// checkpoint is taken for the trailing sfence and this marker
    /// records that a pcommit must complete before the *next* epoch may
    /// commit.
    SfencePcommitSfence,
}

/// One SSB slot: the operation plus its owning epoch and provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsbEntry {
    /// The buffered operation.
    pub op: SsbOp,
    /// The speculative epoch that retired it.
    pub epoch: u64,
    /// Index of the source trace event (the micro-op's `trace_idx`).
    /// Lets the drain stage attribute each writeback to the original
    /// instruction — the persist-visibility log uses this to rebuild a
    /// crash-equivalent event order for `CrashSim`.
    pub trace_idx: usize,
}

/// SSB occupancy statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SsbStats {
    /// Entries ever inserted.
    pub inserts: u64,
    /// Lookups performed (loads that actually searched the CAM).
    pub lookups: u64,
    /// Lookups that found a matching store.
    pub hits: u64,
    /// Inserts rejected because the buffer was full.
    pub full_rejections: u64,
    /// Maximum occupancy observed.
    pub high_water: usize,
}

/// The speculative store buffer.
///
/// ```
/// use spp_core::{Ssb, SsbConfig, SsbEntry, SsbOp};
/// use spp_pmem::PAddr;
///
/// let mut ssb = Ssb::new(SsbConfig::table3(32));
/// let a = PAddr::new(0x1000);
/// ssb.push(SsbEntry { op: SsbOp::Store { addr: a }, epoch: 0, trace_idx: 0 }).unwrap();
/// assert!(ssb.forwards(a));
/// assert!(!ssb.forwards(PAddr::new(0x2000)));
/// let drained = ssb.drain_epoch(0);
/// assert_eq!(drained.len(), 1);
/// assert!(ssb.is_empty());
/// ```
#[derive(Debug)]
pub struct Ssb {
    cfg: SsbConfig,
    fifo: VecDeque<SsbEntry>,
    stats: SsbStats,
}

/// Error returned when pushing into a full SSB; the pipeline must stall
/// (a structural hazard, the cause of small-SSB slowdowns in Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsbFull;

impl std::fmt::Display for SsbFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("speculative store buffer is full")
    }
}

impl std::error::Error for SsbFull {}

impl Ssb {
    /// Creates an empty SSB.
    pub fn new(cfg: SsbConfig) -> Self {
        Ssb {
            cfg,
            fifo: VecDeque::with_capacity(cfg.entries),
            stats: SsbStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> SsbConfig {
        self.cfg
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Free slots remaining.
    pub fn free(&self) -> usize {
        self.cfg.entries - self.fifo.len()
    }

    /// Appends an entry in program order.
    ///
    /// # Errors
    ///
    /// Returns [`SsbFull`] when at capacity; the caller must stall.
    pub fn push(&mut self, entry: SsbEntry) -> Result<(), SsbFull> {
        if self.fifo.len() >= self.cfg.entries {
            self.stats.full_rejections += 1;
            return Err(SsbFull);
        }
        debug_assert!(
            self.fifo.back().is_none_or(|b| b.epoch <= entry.epoch),
            "epochs must be pushed in order"
        );
        self.fifo.push_back(entry);
        self.stats.inserts += 1;
        self.stats.high_water = self.stats.high_water.max(self.fifo.len());
        Ok(())
    }

    /// CAM lookup: does any buffered store match `addr` (8-byte
    /// granule)? Counts toward lookup statistics — call only when the
    /// bloom filter did not reject the access.
    pub fn forwards(&mut self, addr: PAddr) -> bool {
        self.stats.lookups += 1;
        let hit = self
            .fifo
            .iter()
            .rev()
            .any(|e| matches!(e.op, SsbOp::Store { addr: a } if a == addr));
        if hit {
            self.stats.hits += 1;
        }
        hit
    }

    /// Removes and returns all entries of `epoch`, which must be the
    /// oldest epoch present (epochs commit in order).
    ///
    /// # Panics
    ///
    /// Panics (debug) if an older epoch's entries are still buffered.
    pub fn drain_epoch(&mut self, epoch: u64) -> Vec<SsbEntry> {
        debug_assert!(
            self.fifo.front().is_none_or(|f| f.epoch >= epoch),
            "draining an epoch while an older one is still buffered"
        );
        let mut out = Vec::new();
        while let Some(e) = self.fifo.pop_front() {
            if e.epoch == epoch {
                out.push(e);
            } else {
                self.fifo.push_front(e);
                break;
            }
        }
        out
    }

    /// Iterates over the buffered entries in program order (oldest
    /// first), without touching lookup statistics — for invariant
    /// checks and debugging, not for forwarding (use
    /// [`Ssb::forwards`]).
    pub fn iter(&self) -> impl Iterator<Item = &SsbEntry> {
        self.fifo.iter()
    }

    /// The oldest entry, if any (incremental drain).
    pub fn peek_front(&self) -> Option<SsbEntry> {
        self.fifo.front().copied()
    }

    /// Removes and returns the oldest entry.
    pub fn pop_front(&mut self) -> Option<SsbEntry> {
        self.fifo.pop_front()
    }

    /// Discards everything (rollback).
    pub fn flush_all(&mut self) {
        self.fifo.clear();
    }

    /// Discards every entry belonging to epoch `epoch` or younger
    /// (rollback that spares already-committed, still-draining entries).
    pub fn flush_from(&mut self, epoch: u64) {
        while self.fifo.back().is_some_and(|b| b.epoch >= epoch) {
            self.fifo.pop_back();
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> SsbStats {
        self.stats
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn store(addr: u64, epoch: u64) -> SsbEntry {
        SsbEntry {
            op: SsbOp::Store {
                addr: PAddr::new(addr),
            },
            epoch,
            trace_idx: 0,
        }
    }

    #[test]
    fn table3_points() {
        assert_eq!(SsbConfig::table3(32).latency, 2);
        assert_eq!(SsbConfig::table3(256).latency, 5);
        assert_eq!(SsbConfig::table3(1024).latency, 10);
        assert_eq!(SsbConfig::paper_default().entries, 256);
    }

    #[test]
    #[should_panic(expected = "not a Table 3")]
    fn unknown_size_panics() {
        let _ = SsbConfig::table3(48);
    }

    #[test]
    fn fifo_order_and_capacity() {
        let mut s = Ssb::new(SsbConfig {
            entries: 2,
            latency: 1,
        });
        s.push(store(8, 0)).unwrap();
        s.push(store(16, 0)).unwrap();
        assert_eq!(s.push(store(24, 0)), Err(SsbFull));
        assert_eq!(s.stats().full_rejections, 1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.free(), 0);
    }

    #[test]
    fn forwarding_matches_granules() {
        let mut s = Ssb::new(SsbConfig::table3(32));
        s.push(store(0x100, 0)).unwrap();
        assert!(s.forwards(PAddr::new(0x100)));
        assert!(!s.forwards(PAddr::new(0x108)), "different granule");
        assert_eq!(s.stats().lookups, 2);
        assert_eq!(s.stats().hits, 1);
    }

    #[test]
    fn drain_removes_only_the_oldest_epoch() {
        let mut s = Ssb::new(SsbConfig::table3(32));
        s.push(store(8, 0)).unwrap();
        s.push(SsbEntry {
            op: SsbOp::Clwb {
                block: BlockId::new(1),
            },
            epoch: 0,
            trace_idx: 0,
        })
        .unwrap();
        s.push(SsbEntry {
            op: SsbOp::SfencePcommitSfence,
            epoch: 0,
            trace_idx: 0,
        })
        .unwrap();
        s.push(store(64, 1)).unwrap();
        let e0 = s.drain_epoch(0);
        assert_eq!(e0.len(), 3);
        assert_eq!(e0[2].op, SsbOp::SfencePcommitSfence);
        assert_eq!(s.len(), 1);
        assert!(s.forwards(PAddr::new(64)), "younger epoch still buffered");
        let e1 = s.drain_epoch(1);
        assert_eq!(e1.len(), 1);
        assert!(s.is_empty());
    }

    #[test]
    fn drain_preserves_program_order() {
        let mut s = Ssb::new(SsbConfig::table3(32));
        for i in 0..5 {
            s.push(store(i * 8, 0)).unwrap();
        }
        let drained = s.drain_epoch(0);
        let addrs: Vec<u64> = drained
            .iter()
            .map(|e| match e.op {
                SsbOp::Store { addr } => addr.raw(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(addrs, vec![0, 8, 16, 24, 32]);
    }

    #[test]
    fn flush_all_clears_for_rollback() {
        let mut s = Ssb::new(SsbConfig::table3(32));
        s.push(store(8, 0)).unwrap();
        s.push(store(8, 1)).unwrap();
        s.flush_all();
        assert!(s.is_empty());
        assert!(!s.forwards(PAddr::new(8)));
    }

    #[test]
    fn incremental_pop_and_peek() {
        let mut s = Ssb::new(SsbConfig::table3(32));
        s.push(store(8, 0)).unwrap();
        s.push(store(16, 0)).unwrap();
        assert_eq!(s.peek_front(), Some(store(8, 0)));
        assert_eq!(s.pop_front(), Some(store(8, 0)));
        assert_eq!(s.pop_front(), Some(store(16, 0)));
        assert_eq!(s.pop_front(), None);
    }

    #[test]
    fn flush_from_spares_older_epochs() {
        let mut s = Ssb::new(SsbConfig::table3(32));
        s.push(store(8, 0)).unwrap();
        s.push(store(16, 1)).unwrap();
        s.push(store(24, 2)).unwrap();
        s.flush_from(1);
        assert_eq!(s.len(), 1);
        assert_eq!(s.peek_front(), Some(store(8, 0)));
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut s = Ssb::new(SsbConfig::table3(32));
        for i in 0..7 {
            s.push(store(i * 8, 0)).unwrap();
        }
        s.drain_epoch(0);
        assert_eq!(s.stats().high_water, 7);
        assert!(s.is_empty());
    }
}
