//! The Block Lookup Table (BLT, §4.2.2).
//!
//! While a core speculates, its speculative state must not become
//! visible to other cores, and it must not consume data another core has
//! since modified. The BLT (as in SC++) records every cache block
//! touched by speculative loads and stores; an external coherence
//! request that matches the BLT is an atomicity violation and triggers a
//! rollback to the oldest checkpoint. The table deliberately does not
//! distinguish epochs — any match rolls everything back (the paper keeps
//! the design simple because speculation failure is expected to be
//! extremely rare).

use std::collections::HashSet;

use spp_pmem::BlockId;

/// BLT statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BltStats {
    /// Blocks recorded (including re-recordings).
    pub records: u64,
    /// Coherence requests checked.
    pub snoops: u64,
    /// Conflicts detected (each triggers a rollback).
    pub conflicts: u64,
    /// Maximum distinct blocks tracked at once.
    pub high_water: usize,
    /// Flash-clears of the table (speculation exits and rollbacks).
    /// `clears > 0` with `conflicts == 0` distinguishes "speculated and
    /// committed cleanly" from "never speculated at all".
    pub clears: u64,
}

/// The block lookup table.
///
/// ```
/// use spp_core::Blt;
/// use spp_pmem::BlockId;
///
/// let mut blt = Blt::new();
/// blt.record(BlockId::new(7));
/// assert!(blt.snoop(BlockId::new(7)), "conflict: rollback required");
/// assert!(!blt.snoop(BlockId::new(8)));
/// blt.clear();
/// assert!(!blt.snoop(BlockId::new(7)));
/// ```
#[derive(Debug, Default)]
pub struct Blt {
    blocks: HashSet<BlockId>,
    stats: BltStats,
}

impl Blt {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a block touched by a speculative load or store.
    pub fn record(&mut self, block: BlockId) {
        self.blocks.insert(block);
        self.stats.records += 1;
        self.stats.high_water = self.stats.high_water.max(self.blocks.len());
    }

    /// Checks an external coherence request; `true` means conflict
    /// (the caller must roll back and [`clear`](Self::clear)).
    pub fn snoop(&mut self, block: BlockId) -> bool {
        self.stats.snoops += 1;
        let hit = self.blocks.contains(&block);
        if hit {
            self.stats.conflicts += 1;
        }
        hit
    }

    /// Distinct blocks currently tracked.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Empties the table (speculation exit or rollback). Every clear is
    /// counted in [`BltStats::clears`] so reports can tell an idle table
    /// from one that was filled and flash-cleared.
    pub fn clear(&mut self) {
        self.blocks.clear();
        self.stats.clears += 1;
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> BltStats {
        self.stats
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn records_both_reads_and_writes_uniformly() {
        let mut blt = Blt::new();
        blt.record(BlockId::new(1));
        blt.record(BlockId::new(2));
        blt.record(BlockId::new(1)); // idempotent
        assert_eq!(blt.len(), 2);
        assert_eq!(blt.stats().records, 3);
    }

    #[test]
    fn snoop_conflict_counting() {
        let mut blt = Blt::new();
        blt.record(BlockId::new(5));
        assert!(!blt.snoop(BlockId::new(4)));
        assert!(blt.snoop(BlockId::new(5)));
        assert_eq!(blt.stats().snoops, 2);
        assert_eq!(blt.stats().conflicts, 1);
    }

    #[test]
    fn clear_resets_contents_but_not_stats() {
        let mut blt = Blt::new();
        blt.record(BlockId::new(9));
        blt.clear();
        assert!(blt.is_empty());
        assert!(!blt.snoop(BlockId::new(9)));
        assert_eq!(blt.stats().records, 1);
        assert_eq!(blt.stats().high_water, 1);
    }

    #[test]
    fn every_clear_is_counted() {
        let mut blt = Blt::new();
        assert_eq!(blt.stats().clears, 0);
        blt.clear(); // clearing an empty table still counts
        blt.record(BlockId::new(3));
        blt.clear();
        assert_eq!(blt.stats().clears, 2);
        assert_eq!(blt.stats().conflicts, 0, "clears are not conflicts");
    }
}
