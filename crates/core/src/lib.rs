//! # spp-core — speculative persistence mechanisms
//!
//! The architectural contribution of *"Hiding the Long Latency of
//! Persist Barriers Using Speculative Execution"* (ISCA '17, §4), as
//! standalone, unit-testable hardware structures:
//!
//! * [`Ssb`] — the Speculative Store Buffer: a FIFO of speculatively
//!   retired stores and *delayed* PMEM instructions, tagged by epoch,
//!   drained in order at epoch commit (Table 3 design points);
//! * [`BloomFilter`] — the 512-byte filter that keeps loads off the
//!   SSB's slow CAM path (false positives possible, false negatives
//!   impossible);
//! * [`CheckpointBuffer`] — the four-entry register-checkpoint store;
//! * [`EpochManager`] — speculative epochs with strictly oldest-first
//!   commit and rollback-to-oldest semantics;
//! * [`Blt`] — the Block Lookup Table that detects external coherence
//!   conflicts with speculative state.
//!
//! The pipeline in `spp-cpu` composes these into the full *speculative
//! persistence* (SP) design: when an `sfence` stalls on a pending
//! `pcommit`, a checkpoint is taken, the fence retires speculatively,
//! younger stores go to the SSB, in-shadow PMEM instructions are delayed
//! to their epoch's commit, and further fences open child epochs — up to
//! the checkpoint capacity.
//!
//! ```
//! use spp_core::{EpochManager, Ssb, SsbConfig, SsbEntry, SsbOp};
//! use spp_pmem::PAddr;
//!
//! let mut epochs = EpochManager::new(4);
//! let mut ssb = Ssb::new(SsbConfig::paper_default());
//!
//! // An sfence stalls on a pcommit: speculate!
//! let e0 = epochs.begin(0, 0).unwrap();
//! ssb.push(SsbEntry { op: SsbOp::Store { addr: PAddr::new(0x40) }, epoch: e0 }).unwrap();
//! // A second persist barrier inside the shadow: child epoch.
//! ssb.push(SsbEntry { op: SsbOp::SfencePcommitSfence, epoch: e0 }).unwrap();
//! let e1 = epochs.begin(10, 50).unwrap();
//!
//! // The first pcommit acknowledges: epoch 0 commits and drains.
//! let drained = ssb.drain_epoch(epochs.commit_oldest().unwrap().id);
//! assert_eq!(drained.len(), 2);
//! assert_eq!(epochs.oldest().unwrap().id, e1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Simulation code must degrade to typed errors, never abort mid-run:
// `.unwrap()`/`.expect()` are banned outside tests (CI runs clippy with
// `-D warnings`, making these hard errors there).
#![warn(clippy::unwrap_used, clippy::expect_used)]

mod bloom;
mod blt;
mod checkpoint;
mod epoch;
mod ssb;

pub use bloom::{BloomFilter, BloomStats, PAPER_FILTER_BYTES};
pub use blt::{Blt, BltStats};
pub use checkpoint::{Checkpoint, CheckpointBuffer, CheckpointId, CheckpointStats};
pub use epoch::{Epoch, EpochManager, EpochState, NoCheckpointFree};
pub use ssb::{Ssb, SsbConfig, SsbEntry, SsbFull, SsbOp, SsbStats, SSB_DESIGN_POINTS};
