//! # spp-core — speculative persistence mechanisms
//!
//! The architectural contribution of *"Hiding the Long Latency of
//! Persist Barriers Using Speculative Execution"* (ISCA '17, §4), as
//! standalone, unit-testable hardware structures:
//!
//! * [`Ssb`] — the Speculative Store Buffer: a FIFO of speculatively
//!   retired stores and *delayed* PMEM instructions, tagged by epoch,
//!   drained in order at epoch commit (Table 3 design points);
//! * [`BloomFilter`] — the 512-byte filter that keeps loads off the
//!   SSB's slow CAM path (false positives possible, false negatives
//!   impossible);
//! * [`CheckpointBuffer`] — the four-entry register-checkpoint store;
//! * [`EpochManager`] — speculative epochs with strictly oldest-first
//!   commit and rollback-to-oldest semantics;
//! * [`Blt`] — the Block Lookup Table that detects external coherence
//!   conflicts with speculative state.
//!
//! The pipeline in `spp-cpu` composes these into the full *speculative
//! persistence* (SP) design: when an `sfence` stalls on a pending
//! `pcommit`, a checkpoint is taken, the fence retires speculatively,
//! younger stores go to the SSB, in-shadow PMEM instructions are delayed
//! to their epoch's commit, and further fences open child epochs — up to
//! the checkpoint capacity.
//!
//! ```
//! use spp_core::{EpochManager, Ssb, SsbConfig, SsbEntry, SsbOp};
//! use spp_pmem::PAddr;
//!
//! let mut epochs = EpochManager::new(4);
//! let mut ssb = Ssb::new(SsbConfig::paper_default());
//!
//! // An sfence stalls on a pcommit: speculate!
//! let e0 = epochs.begin(0, 0).unwrap();
//! ssb.push(SsbEntry { op: SsbOp::Store { addr: PAddr::new(0x40) }, epoch: e0, trace_idx: 0 }).unwrap();
//! // A second persist barrier inside the shadow: child epoch.
//! ssb.push(SsbEntry { op: SsbOp::SfencePcommitSfence, epoch: e0, trace_idx: 1 }).unwrap();
//! let e1 = epochs.begin(10, 50).unwrap();
//!
//! // The first pcommit acknowledges: epoch 0 commits and drains.
//! let drained = ssb.drain_epoch(epochs.commit_oldest().unwrap().id);
//! assert_eq!(drained.len(), 2);
//! assert_eq!(epochs.oldest().unwrap().id, e1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Simulation code must degrade to typed errors, never abort mid-run:
// `.unwrap()`/`.expect()` are banned outside tests (CI runs clippy with
// `-D warnings`, making these hard errors there).
#![warn(clippy::unwrap_used, clippy::expect_used)]

mod bloom;
mod blt;
mod checkpoint;
mod epoch;
mod ssb;

pub use bloom::{BloomFilter, BloomStats, PAPER_FILTER_BYTES};
pub use blt::{Blt, BltStats};
pub use checkpoint::{Checkpoint, CheckpointBuffer, CheckpointId, CheckpointStats};
pub use epoch::{Epoch, EpochManager, EpochState, NoCheckpointFree};
pub use ssb::{Ssb, SsbConfig, SsbEntry, SsbFull, SsbOp, SsbStats, SSB_DESIGN_POINTS};

/// The blessed import surface: `use spp_core::prelude::*;` pulls in the
/// five SP hardware structures, their configs/stats, and the canonical
/// deterministic mixing utilities — everything a harness or pipeline
/// integration typically needs, without reaching into module paths.
pub mod prelude {
    pub use crate::bloom::{BloomFilter, BloomStats, PAPER_FILTER_BYTES};
    pub use crate::blt::{Blt, BltStats};
    pub use crate::checkpoint::{Checkpoint, CheckpointBuffer, CheckpointId, CheckpointStats};
    pub use crate::epoch::{Epoch, EpochManager, EpochState, NoCheckpointFree};
    pub use crate::ssb::{Ssb, SsbConfig, SsbEntry, SsbFull, SsbOp, SsbStats, SSB_DESIGN_POINTS};
    pub use crate::{hash64, splitmix64};
}

/// The workspace's shared deterministic mixing/hashing utilities.
///
/// One implementation serves every crate: adversarial writeback
/// schedules (`spp-pmem`), per-site hardware-fault streams (`spp-mem`),
/// seed derivation and journal checksums (`spp-bench`). The
/// implementation lives in `spp-pmem` (the root of the dependency
/// graph, so even the crates below `spp-core` can reach it); this is
/// the canonical public re-export, and the test below pins the output
/// stream so no copy can ever drift again.
pub use spp_pmem::rng::{hash64, splitmix64};

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod rng_reexport_tests {
    use super::{hash64, splitmix64};

    /// The published SplitMix64 reference vector, pinned at the
    /// canonical re-export: every crate that calls `splitmix64` — by
    /// any path — mixes exactly this stream.
    #[test]
    fn canonical_splitmix64_stream_is_pinned() {
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
        assert_eq!(splitmix64(2), 0x9758_35DE_1C97_56CE);
        assert_eq!(splitmix64(0x5EED), 0x09F1_FD9D_03F0_A9B4);
        assert_eq!(splitmix64(u64::MAX), 0xE4D9_7177_1B65_2C20);
        assert_eq!(hash64(b"journal-v1"), 0x9B2B_0858_CEC3_B425);
    }
}
