//! The SSB bloom filter (§4.2.2).
//!
//! A 256-entry SSB needs a 5-cycle CAM access — longer than the L1D.
//! To keep loads off that path, a 512-byte bloom filter summarizes the
//! buffered store addresses (as in CPR): a load checks the filter first
//! and only searches the SSB on a positive. Bits are set as stores are
//! inserted and the whole filter resets when speculation ends, so it
//! yields false positives but never false negatives. False positives
//! also arise when a store has drained from the SSB while its bits
//! linger until the next reset — the effect behind String Swap's
//! outlier rate in Fig. 14.

use spp_pmem::PAddr;

/// Default filter size: 512 bytes = 4096 bits (§4.2.2).
pub const PAPER_FILTER_BYTES: usize = 512;

/// Filter statistics for the Fig. 14 false-positive analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BloomStats {
    /// Membership queries.
    pub queries: u64,
    /// Queries that returned "maybe present".
    pub positives: u64,
    /// Positives the caller reported as false (SSB lookup missed).
    pub false_positives: u64,
    /// Addresses inserted.
    pub inserts: u64,
    /// Filter resets (speculation exits).
    pub resets: u64,
}

/// A fixed-size bloom filter over 8-byte store granule addresses.
///
/// ```
/// use spp_core::BloomFilter;
/// use spp_pmem::PAddr;
///
/// let mut bf = BloomFilter::with_bytes(512);
/// bf.insert(PAddr::new(0x40));
/// assert!(bf.query(PAddr::new(0x40)), "no false negatives, ever");
/// bf.reset();
/// assert!(!bf.query(PAddr::new(0x40)));
/// ```
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    mask: u64,
    stats: BloomStats,
}

impl BloomFilter {
    /// Creates a filter of `bytes` (must be a power of two ≥ 8).
    ///
    /// # Panics
    ///
    /// Panics on a non-power-of-two or undersized `bytes`.
    pub fn with_bytes(bytes: usize) -> Self {
        assert!(
            bytes >= 8 && bytes.is_power_of_two(),
            "filter size must be a power of two >= 8"
        );
        let nbits = (bytes * 8) as u64;
        BloomFilter {
            bits: vec![0; bytes / 8],
            mask: nbits - 1,
            stats: BloomStats::default(),
        }
    }

    /// The paper's 512-byte filter.
    pub fn paper_default() -> Self {
        Self::with_bytes(PAPER_FILTER_BYTES)
    }

    fn hashes(&self, addr: PAddr) -> (u64, u64) {
        let g = addr.raw() >> 3; // granule number
        let h1 = g.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 13;
        let h2 = g.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) >> 29;
        (h1 & self.mask, h2 & self.mask)
    }

    fn set(&mut self, bit: u64) {
        self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
    }

    fn get(&self, bit: u64) -> bool {
        self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
    }

    /// Records a store address (called as the store enters the SSB).
    pub fn insert(&mut self, addr: PAddr) {
        let (a, b) = self.hashes(addr);
        self.set(a);
        self.set(b);
        self.stats.inserts += 1;
    }

    /// Membership test: `false` definitely absent, `true` maybe present.
    pub fn query(&mut self, addr: PAddr) -> bool {
        self.stats.queries += 1;
        let (a, b) = self.hashes(addr);
        let hit = self.get(a) && self.get(b);
        if hit {
            self.stats.positives += 1;
        }
        hit
    }

    /// Non-mutating membership test for invariant checks: like
    /// [`BloomFilter::query`] but without counting toward the Fig. 14
    /// statistics (which model real pipeline lookups only).
    pub fn contains(&self, addr: PAddr) -> bool {
        let (a, b) = self.hashes(addr);
        self.get(a) && self.get(b)
    }

    /// Records that the last positive was false (the SSB search missed)
    /// — maintained by the pipeline for Fig. 14.
    pub fn record_false_positive(&mut self) {
        self.stats.false_positives += 1;
    }

    /// Clears every bit (speculation exit).
    pub fn reset(&mut self) {
        self.bits.fill(0);
        self.stats.resets += 1;
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> BloomStats {
        self.stats
    }

    /// Fraction of queries that were false positives (Fig. 14 metric);
    /// `None` before any query.
    pub fn false_positive_rate(&self) -> Option<f64> {
        (self.stats.queries > 0)
            .then(|| self.stats.false_positives as f64 / self.stats.queries as f64)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives_under_load() {
        let mut bf = BloomFilter::paper_default();
        let addrs: Vec<PAddr> = (0..500).map(|i| PAddr::new(i * 8 + 0x1000)).collect();
        for &a in &addrs {
            bf.insert(a);
        }
        for &a in &addrs {
            assert!(bf.query(a), "false negative at {a}");
        }
    }

    #[test]
    fn fresh_filter_rejects_everything() {
        let mut bf = BloomFilter::paper_default();
        for i in 0..1000 {
            assert!(!bf.query(PAddr::new(i * 64)));
        }
        assert_eq!(bf.stats().positives, 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut bf = BloomFilter::paper_default();
        bf.insert(PAddr::new(0x88));
        bf.reset();
        assert!(!bf.query(PAddr::new(0x88)));
        assert_eq!(bf.stats().resets, 1);
    }

    #[test]
    fn false_positive_rate_accounting() {
        let mut bf = BloomFilter::paper_default();
        bf.insert(PAddr::new(8));
        assert!(bf.query(PAddr::new(8)));
        // Suppose a stale positive: the caller reports it.
        if bf.query(PAddr::new(16)) {
            bf.record_false_positive();
        }
        let rate = bf.false_positive_rate().unwrap();
        assert!(rate <= 0.5);
    }

    #[test]
    fn small_filter_saturates_but_stays_sound() {
        let mut bf = BloomFilter::with_bytes(8); // 64 bits: will saturate
        let addrs: Vec<PAddr> = (0..200).map(|i| PAddr::new(i * 8)).collect();
        for &a in &addrs {
            bf.insert(a);
        }
        for &a in &addrs {
            assert!(bf.query(a));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn size_validated() {
        let _ = BloomFilter::with_bytes(100);
    }
}
