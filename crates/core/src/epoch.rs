//! Speculative epochs and their in-order commit discipline (§4.1).
//!
//! A *speculative epoch* runs from the fence that began speculating to
//! the point that fence would have retired. Fences (and other
//! strongly-ordered instructions) inside the shadow of an outstanding
//! persist barrier cannot be re-ordered, so each one ends the current
//! epoch and begins a *child* epoch with a fresh checkpoint. Epochs
//! commit strictly oldest-first: an epoch may commit only after its
//! predecessor has fully committed and its own pending persist work has
//! completed, preserving the transactional ordering the fences demanded.

use std::collections::VecDeque;

use crate::checkpoint::{Checkpoint, CheckpointBuffer, CheckpointStats};

/// Why an epoch could not be started.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoCheckpointFree;

impl std::fmt::Display for NoCheckpointFree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("all checkpoints are in use; the pipeline must stall")
    }
}

impl std::error::Error for NoCheckpointFree {}

/// Execution state of one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochState {
    /// The youngest epoch: still retiring instructions speculatively.
    Executing,
    /// Done executing (a child epoch exists); awaiting its turn to
    /// commit.
    Ended,
}

/// One speculative epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Epoch {
    /// Monotonically increasing epoch number (used as the SSB tag).
    pub id: u64,
    /// The register checkpoint backing this epoch.
    pub checkpoint: Checkpoint,
    /// Current state.
    pub state: EpochState,
}

/// Manager of the live speculative epochs and their checkpoints.
///
/// ```
/// use spp_core::EpochManager;
///
/// let mut em = EpochManager::new(4);
/// let e0 = em.begin(100, 0).unwrap();
/// let e1 = em.begin(150, 10).unwrap(); // child epoch: e0 ends
/// assert_eq!(em.oldest().unwrap().id, e0);
/// em.commit_oldest();
/// assert_eq!(em.oldest().unwrap().id, e1);
/// em.commit_oldest();
/// assert!(!em.speculating());
/// ```
#[derive(Debug)]
pub struct EpochManager {
    epochs: VecDeque<Epoch>,
    checkpoints: CheckpointBuffer,
    next_id: u64,
    epochs_started: u64,
    rollbacks: u64,
}

impl EpochManager {
    /// Creates a manager with `checkpoints` checkpoint slots (the paper
    /// uses 4).
    pub fn new(checkpoints: usize) -> Self {
        EpochManager {
            epochs: VecDeque::new(),
            checkpoints: CheckpointBuffer::new(checkpoints),
            next_id: 0,
            epochs_started: 0,
            rollbacks: 0,
        }
    }

    /// Is the core in speculative mode?
    pub fn speculating(&self) -> bool {
        !self.epochs.is_empty()
    }

    /// Number of live epochs.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// `true` when no epoch is live.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// Is a checkpoint free (can a new epoch begin)?
    pub fn can_begin(&self) -> bool {
        self.checkpoints.available()
    }

    /// Begins a new epoch checkpointed at `resume_idx`/`now`; the
    /// previously youngest epoch (if any) transitions to
    /// [`EpochState::Ended`]. Returns the new epoch's id (the SSB tag).
    ///
    /// # Errors
    ///
    /// [`NoCheckpointFree`] when the checkpoint buffer is exhausted; the
    /// pipeline must stall until an epoch commits.
    pub fn begin(&mut self, resume_idx: usize, now: u64) -> Result<u64, NoCheckpointFree> {
        let checkpoint = self
            .checkpoints
            .take(resume_idx, now)
            .ok_or(NoCheckpointFree)?;
        if let Some(youngest) = self.epochs.back_mut() {
            youngest.state = EpochState::Ended;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.epochs_started += 1;
        self.epochs.push_back(Epoch {
            id,
            checkpoint,
            state: EpochState::Executing,
        });
        Ok(id)
    }

    /// The oldest live epoch (next to commit).
    pub fn oldest(&self) -> Option<Epoch> {
        self.epochs.front().copied()
    }

    /// The youngest live epoch (currently executing).
    pub fn youngest(&self) -> Option<Epoch> {
        self.epochs.back().copied()
    }

    /// Commits the oldest epoch, freeing its checkpoint. Returns `None`
    /// (and changes nothing) when no epoch is live, so a confused caller
    /// can surface a typed error instead of aborting the simulation.
    pub fn commit_oldest(&mut self) -> Option<Epoch> {
        let e = self.epochs.pop_front()?;
        let freed = self.checkpoints.release_oldest();
        debug_assert!(
            freed.is_some_and(|f| f.id == e.checkpoint.id),
            "checkpoints must free in epoch order"
        );
        Some(e)
    }

    /// Live checkpoints (diagnostic snapshots).
    pub fn checkpoints_live(&self) -> usize {
        self.checkpoints.live()
    }

    /// Checkpoint slots configured (diagnostic snapshots).
    pub fn checkpoint_capacity(&self) -> usize {
        self.checkpoints.capacity()
    }

    /// Rolls back all speculation to the oldest checkpoint; returns the
    /// trace index to resume from (`None` if nothing was speculative).
    pub fn rollback(&mut self) -> Option<usize> {
        let target = self.checkpoints.rollback_all();
        self.epochs.clear();
        if target.is_some() {
            self.rollbacks += 1;
        }
        target.map(|c| c.resume_idx)
    }

    /// Checkpoint-pressure statistics.
    pub fn checkpoint_stats(&self) -> CheckpointStats {
        self.checkpoints.stats()
    }

    /// `(epochs_started, rollbacks)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.epochs_started, self.rollbacks)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn child_epoch_ends_its_parent() {
        let mut em = EpochManager::new(4);
        let e0 = em.begin(0, 0).unwrap();
        assert_eq!(em.youngest().unwrap().state, EpochState::Executing);
        let e1 = em.begin(10, 5).unwrap();
        assert!(e1 > e0);
        assert_eq!(em.oldest().unwrap().state, EpochState::Ended);
        assert_eq!(em.youngest().unwrap().state, EpochState::Executing);
        assert_eq!(em.len(), 2);
    }

    #[test]
    fn commit_is_strictly_oldest_first() {
        let mut em = EpochManager::new(4);
        let ids: Vec<u64> = (0..3).map(|i| em.begin(i, i as u64).unwrap()).collect();
        assert_eq!(em.commit_oldest().unwrap().id, ids[0]);
        assert_eq!(em.commit_oldest().unwrap().id, ids[1]);
        assert_eq!(em.commit_oldest().unwrap().id, ids[2]);
        assert!(!em.speculating());
        assert_eq!(em.commit_oldest(), None, "nothing left to commit");
    }

    #[test]
    fn checkpoint_exhaustion_blocks_new_epochs() {
        let mut em = EpochManager::new(2);
        em.begin(0, 0).unwrap();
        em.begin(1, 1).unwrap();
        assert_eq!(em.begin(2, 2), Err(NoCheckpointFree));
        assert!(!em.can_begin());
        em.commit_oldest();
        assert!(em.can_begin());
        em.begin(2, 3).unwrap();
        assert_eq!(em.checkpoint_stats().exhaustions, 1);
    }

    #[test]
    fn rollback_returns_oldest_resume_point() {
        let mut em = EpochManager::new(4);
        em.begin(111, 0).unwrap();
        em.begin(222, 1).unwrap();
        assert_eq!(em.rollback(), Some(111));
        assert!(em.is_empty());
        assert_eq!(em.counters().1, 1);
        assert_eq!(em.rollback(), None, "nothing speculative anymore");
    }

    #[test]
    fn epoch_ids_are_monotone_across_sessions() {
        let mut em = EpochManager::new(2);
        let a = em.begin(0, 0).unwrap();
        em.commit_oldest();
        let b = em.begin(0, 1).unwrap();
        assert!(b > a, "SSB tags must never repeat while entries linger");
    }
}
