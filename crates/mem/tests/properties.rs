//! Property tests for the memory system, checked against independent
//! reference models.

use std::collections::HashMap;

use proptest::prelude::*;
use spp_mem::{AccessKind, Cache, CacheConfig, HitLevel, MemConfig, MemCtrl, MemorySystem};
use spp_pmem::BlockId;

/// A trivially correct fully-explicit LRU cache model.
#[derive(Debug, Default)]
struct RefCache {
    sets: u64,
    ways: usize,
    /// Per set: (block, dirty), most-recently-used last.
    sets_v: HashMap<u64, Vec<(u64, bool)>>,
}

impl RefCache {
    fn new(sets: u64, ways: usize) -> Self {
        RefCache {
            sets,
            ways,
            sets_v: HashMap::new(),
        }
    }

    fn set_of(&self, b: u64) -> u64 {
        b % self.sets
    }

    fn access(&mut self, b: u64, dirty: bool) -> bool {
        let set = self.sets_v.entry(self.set_of(b)).or_default();
        if let Some(pos) = set.iter().position(|&(x, _)| x == b) {
            let (_, d) = set.remove(pos);
            set.push((b, d || dirty));
            true
        } else {
            false
        }
    }

    fn insert(&mut self, b: u64, dirty: bool) -> Option<(u64, bool)> {
        let ways = self.ways;
        let set = self.sets_v.entry(self.set_of(b)).or_default();
        if let Some(pos) = set.iter().position(|&(x, _)| x == b) {
            let (_, d) = set.remove(pos);
            set.push((b, d || dirty));
            return None;
        }
        let victim = if set.len() >= ways {
            Some(set.remove(0))
        } else {
            None
        };
        set.push((b, dirty));
        victim
    }

    fn probe(&self, b: u64) -> Option<bool> {
        self.sets_v
            .get(&self.set_of(b))
            .and_then(|s| s.iter().find(|&&(x, _)| x == b))
            .map(|&(_, d)| d)
    }

    fn clean(&mut self, b: u64, invalidate: bool) -> bool {
        let set_idx = self.set_of(b);
        let Some(set) = self.sets_v.get_mut(&set_idx) else {
            return false;
        };
        if let Some(pos) = set.iter().position(|&(x, _)| x == b) {
            let dirty = set[pos].1;
            if invalidate {
                set.remove(pos);
            } else {
                set[pos].1 = false;
            }
            dirty
        } else {
            false
        }
    }
}

#[derive(Debug, Clone)]
enum CacheOp {
    Access { block: u64, dirty: bool },
    Insert { block: u64, dirty: bool },
    Clean { block: u64, invalidate: bool },
    Probe { block: u64 },
}

fn cache_ops() -> impl Strategy<Value = Vec<CacheOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..64, any::<bool>()).prop_map(|(block, dirty)| CacheOp::Access { block, dirty }),
            (0u64..64, any::<bool>()).prop_map(|(block, dirty)| CacheOp::Insert { block, dirty }),
            (0u64..64, any::<bool>())
                .prop_map(|(block, invalidate)| CacheOp::Clean { block, invalidate }),
            (0u64..64).prop_map(|block| CacheOp::Probe { block }),
        ],
        0..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The tag array agrees with the explicit reference LRU model on
    /// every operation's outcome.
    #[test]
    fn cache_matches_reference_lru(ops in cache_ops()) {
        // 4 sets x 4 ways over a 64-block universe.
        let cfg = CacheConfig { size_bytes: 16 * 64, ways: 4, latency: 1 };
        let mut dut = Cache::new(&cfg);
        let mut r = RefCache::new(4, 4);
        for op in ops {
            match op {
                CacheOp::Access { block, dirty } => {
                    prop_assert_eq!(
                        dut.access(BlockId::new(block), dirty),
                        r.access(block, dirty),
                        "access({})", block
                    );
                }
                CacheOp::Insert { block, dirty } => {
                    let got = dut.insert(BlockId::new(block), dirty);
                    let want = r.insert(block, dirty);
                    prop_assert_eq!(
                        got.map(|e| (e.block.raw(), e.dirty)),
                        want,
                        "insert({})", block
                    );
                }
                CacheOp::Clean { block, invalidate } => {
                    prop_assert_eq!(
                        dut.clean(BlockId::new(block), invalidate),
                        r.clean(block, invalidate),
                        "clean({})", block
                    );
                }
                CacheOp::Probe { block } => {
                    prop_assert_eq!(dut.probe(BlockId::new(block)), r.probe(block));
                }
            }
        }
    }

    /// Memory-controller sanity under arbitrary schedules:
    /// * write durability times are monotone in admission order;
    /// * pcommit covers every prior write and never waits on later ones;
    /// * a write is never durable before one write latency has passed.
    #[test]
    fn memctrl_ordering_invariants(
        gaps in prop::collection::vec(0u64..600, 1..80),
        pcommit_at in prop::collection::vec(any::<prop::sample::Index>(), 1..8),
    ) {
        let cfg = MemConfig { nvmm_banks: 2, wpq_entries: 8, ..MemConfig::paper() };
        let mut mc = MemCtrl::try_new(cfg).unwrap();
        let mut now = 0u64;
        let mut dones: Vec<u64> = Vec::new();
        let commit_points: Vec<usize> =
            pcommit_at.iter().map(|i| i.index(gaps.len())).collect();
        for (i, gap) in gaps.iter().enumerate() {
            now += gap;
            let (admitted, done) = mc.write_back(now);
            prop_assert!(admitted >= now);
            prop_assert!(done >= admitted + cfg.nvmm_write);
            if let Some(&prev) = dones.last() {
                prop_assert!(done >= prev, "durability must be FIFO-monotone");
            }
            dones.push(done);
            if commit_points.contains(&i) {
                let ack = mc.pcommit(now + 1);
                let max_done = *dones.iter().max().expect("non-empty");
                prop_assert!(ack >= (now + 1).min(max_done));
                prop_assert!(
                    ack >= max_done || ack > now,
                    "pcommit must cover all prior writes"
                );
                prop_assert!(ack >= max_done || max_done <= now + 1,
                    "ack {ack} leaves write at {max_done} unflushed");
            }
        }
    }

    /// Controller time is monotone for *every* request class, including
    /// reads: interleaved reads/writes/pcommits with arbitrarily lagging
    /// arrival times (as drifting multi-core clocks produce) never
    /// complete before an earlier-granted request's arrival point.
    #[test]
    fn memctrl_reads_respect_time_monotonicity(
        reqs in prop::collection::vec((0u64..3, 0u64..2000), 1..100),
    ) {
        let cfg = MemConfig { nvmm_banks: 2, wpq_entries: 8, ..MemConfig::paper() };
        let mut mc = MemCtrl::try_new(cfg).unwrap();
        let mut high_water = 0u64;
        for (kind, t) in reqs {
            let completed = match kind {
                0 => mc.read(t),
                1 => mc.write_back(t).0,
                _ => mc.pcommit(t),
            };
            high_water = high_water.max(t);
            prop_assert!(
                completed >= high_water,
                "request ({kind}, {t}) completed at {completed}, before the \
                 controller's high-water arrival {high_water}"
            );
            if kind == 0 {
                prop_assert!(
                    completed >= high_water + cfg.nvmm_read,
                    "read must take the full NVMM read latency from clamped time"
                );
            }
        }
    }

    /// Hierarchy locality: after any access, an immediate re-access hits
    /// L1 and is never slower.
    #[test]
    fn reaccess_always_hits_l1(blocks in prop::collection::vec(0u64..4096, 1..100)) {
        let mut m = MemorySystem::new(MemConfig::paper());
        let mut t = 0u64;
        for b in blocks {
            let (done, _) = m.access(t, BlockId::new(b), AccessKind::Load);
            let (done2, lvl) = m.access(done, BlockId::new(b), AccessKind::Load);
            prop_assert_eq!(lvl, HitLevel::L1, "block {} not resident after fill", b);
            prop_assert_eq!(done2 - done, 2, "L1 hit latency");
            t = done2;
        }
    }

    /// Flush idempotence: flushing twice writes back at most once, and a
    /// clean block never generates NVMM traffic.
    #[test]
    fn flush_writes_back_at_most_once(
        blocks in prop::collection::vec(0u64..512, 1..60),
        store in any::<bool>(),
    ) {
        let mut m = MemorySystem::new(MemConfig::paper());
        let mut t = 0u64;
        for b in &blocks {
            let kind = if store { AccessKind::Store } else { AccessKind::Load };
            let (done, _) = m.access(t, BlockId::new(*b), kind);
            t = done;
        }
        let writes_before = m.mc_stats().nvmm_writes;
        for b in &blocks {
            let f1 = m.flush(t, BlockId::new(*b), false);
            let f2 = m.flush(f1.visible_at, BlockId::new(*b), false);
            prop_assert!(!f2.wrote_back, "second flush of {b} wrote back again");
            t = f2.visible_at;
        }
        let new_writes = m.mc_stats().nvmm_writes - writes_before;
        if store {
            // Distinct dirty blocks wrote back exactly once each.
            let distinct = blocks.iter().collect::<std::collections::HashSet<_>>().len() as u64;
            // Capacity evictions may have cleaned some early; never more
            // than one writeback per distinct block from the flushes.
            prop_assert!(new_writes <= distinct);
        } else {
            prop_assert_eq!(new_writes, 0, "clean blocks must not write back");
        }
    }
}
