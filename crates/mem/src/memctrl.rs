//! The memory controller: write-pending queue (WPQ), bank-parallel NVMM
//! write draining, and `pcommit` completion tracking.
//!
//! `clwb`/`clflushopt` writebacks become *globally visible* once admitted
//! to the WPQ; they are *durable* only once the bank write finishes.
//! `pcommit` completes when every write admitted before it has drained —
//! this is the long-latency operation (hundreds to thousands of cycles)
//! that the paper's speculative persistence hides.

use std::collections::VecDeque;

use spp_obs::{ProbeEvent, ProbeHandle};

use crate::config::{Cycle, MemConfig, MemConfigError};
use crate::fault::{Fault, FaultSite, FaultState, FaultStats, MEM_STREAM};

/// Statistics collected by the memory controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct McStats {
    /// NVMM block writes performed (WPQ drains).
    pub nvmm_writes: u64,
    /// NVMM block reads performed (LLC miss fills).
    pub nvmm_reads: u64,
    /// Cycles writebacks spent waiting for a WPQ slot.
    pub wpq_stall_cycles: u64,
    /// Maximum WPQ occupancy observed at admission.
    pub wpq_high_water: usize,
    /// Admissions that found every WPQ slot fault-held (full occlusion):
    /// the writeback stalled until the queue drained completely.
    pub wpq_occlusions: u64,
    /// `pcommit` operations issued.
    pub pcommits: u64,
    /// Total cycles from `pcommit` issue to completion.
    pub pcommit_latency_total: u64,
    /// Worst single `pcommit` latency.
    pub pcommit_latency_max: u64,
}

/// The memory controller model.
///
/// Time advances only through the caller-provided `now` arguments, which
/// must be non-decreasing across calls (the pipeline drives this with
/// its own clock).
#[derive(Debug)]
pub struct MemCtrl {
    cfg: MemConfig,
    /// Completion times of writes admitted to the WPQ, in admission
    /// order (monotone, since every write takes equally long and banks
    /// are granted in order).
    inflight: VecDeque<Cycle>,
    /// Per-bank next-free times.
    bank_free: Vec<Cycle>,
    /// High-water mark of observed request times. Multi-core callers
    /// whose local clocks drift slightly are clamped forward to keep
    /// the admission order monotone.
    last_seen: Cycle,
    /// Seeded fault injection (memory-side sites), when configured.
    faults: Option<FaultState>,
    /// Observability sink; disabled by default (one dead branch per
    /// emission site).
    probe: ProbeHandle,
    stats: McStats,
}

impl MemCtrl {
    /// Creates a controller, rejecting structurally invalid
    /// configurations (zero banks, zero WPQ entries) up front instead
    /// of clamping them silently or failing mid-simulation.
    ///
    /// # Errors
    ///
    /// Returns the first [`MemConfigError`] found by
    /// [`MemConfig::validate`].
    pub fn try_new(cfg: MemConfig) -> Result<Self, MemConfigError> {
        cfg.validate()?;
        Ok(MemCtrl {
            inflight: VecDeque::new(),
            bank_free: vec![0; cfg.nvmm_banks],
            last_seen: 0,
            faults: cfg.fault.map(|spec| FaultState::new(spec, MEM_STREAM)),
            probe: ProbeHandle::disabled(),
            cfg,
            stats: McStats::default(),
        })
    }

    /// Attaches an observability probe. Probes observe timing; they can
    /// never change it (see `spp-obs`).
    pub fn set_probe(&mut self, probe: ProbeHandle) {
        self.probe = probe;
    }

    fn clamp_time(&mut self, t: Cycle) -> Cycle {
        self.last_seen = self.last_seen.max(t);
        self.last_seen
    }

    fn drop_completed(&mut self, now: Cycle) {
        while self.inflight.front().is_some_and(|&d| d <= now) {
            self.inflight.pop_front();
        }
    }

    /// Current WPQ occupancy (writes admitted but not yet drained).
    pub fn wpq_occupancy(&mut self, now: Cycle) -> usize {
        self.drop_completed(now);
        self.inflight.len()
    }

    /// Earliest in-flight WPQ completion strictly after `now`, if any —
    /// the controller's next-event report. The pipeline scheduler does
    /// not need to poll this (every posting interface already returns
    /// absolute completion times that it mirrors into its own event
    /// set); it exists for diagnostics and external harnesses.
    pub fn next_completion(&self, now: Cycle) -> Option<Cycle> {
        // `inflight` is monotone in admission order, so the first
        // not-yet-drained entry is the earliest.
        self.inflight.iter().copied().find(|&d| d > now)
    }

    /// Admits a block writeback arriving at the controller at `arrival`.
    /// Returns `(admitted_at, durable_at)`: the writeback is globally
    /// visible at `admitted_at` (it may first wait for a WPQ slot) and
    /// durable at `durable_at`.
    pub fn write_back(&mut self, arrival: Cycle) -> (Cycle, Cycle) {
        let arrival = self.clamp_time(arrival);
        self.drop_completed(arrival);
        // Transient WPQ backpressure: held slots shrink the queue for
        // this admission only. Full occlusion (`held >= wpq_entries`) is
        // a typed outcome, not a silent 1-slot floor: the admission
        // stalls until the queue drains completely, the wait lands in
        // `wpq_stall_cycles`, and `wpq_occlusions` counts the event.
        let mut entries = self.cfg.wpq_entries;
        if let Some(f) = &mut self.faults {
            if let Some(Fault::WpqBackpressure { held }) = f.draw(FaultSite::WpqAdmit) {
                entries = entries.saturating_sub(held);
            }
        }
        let mut admitted = arrival;
        if entries == 0 {
            self.stats.wpq_occlusions += 1;
        }
        if self.inflight.len() >= entries {
            let free_at = if entries == 0 {
                // Every slot is held away: wait out the whole queue.
                self.inflight.back().copied().unwrap_or(arrival)
            } else {
                // Wait for the oldest in-flight write to drain (FIFO
                // slots).
                self.inflight[self.inflight.len() - entries]
            };
            admitted = admitted.max(free_at);
            self.stats.wpq_stall_cycles += free_at.saturating_sub(arrival);
        }
        self.stats.wpq_high_water = self.stats.wpq_high_water.max(self.inflight.len() + 1);
        // Grant the earliest-free bank. `bank_free` is non-empty by
        // construction: `try_new` rejects zero-bank configurations.
        let mut bank = 0;
        for i in 1..self.bank_free.len() {
            if self.bank_free[i] < self.bank_free[bank] {
                bank = i;
            }
        }
        let mut start = self.bank_free[bank].max(admitted);
        let mut write_latency = self.cfg.nvmm_write;
        if let Some(f) = &mut self.faults {
            if let Some(Fault::BankStall { extra }) = f.draw(FaultSite::BankGrant) {
                start += extra;
            }
            if let Some(Fault::NvmmWriteSpike { extra }) = f.draw(FaultSite::NvmmWrite) {
                write_latency += extra;
            }
        }
        // Completion times stay monotone in admission order even when a
        // spiked write outlasts its successors: the WPQ drains FIFO, so
        // a later write's slot frees no earlier than an earlier one's.
        let done = (start + write_latency).max(self.inflight.back().copied().unwrap_or(0));
        self.bank_free[bank] = done;
        debug_assert!(self.inflight.back().is_none_or(|&b| b <= done));
        self.inflight.push_back(done);
        self.stats.nvmm_writes += 1;
        self.probe.emit(ProbeEvent::WpqOccupancy {
            now: admitted,
            occupancy: self.inflight.len(),
            capacity: self.cfg.wpq_entries,
        });
        (admitted, done)
    }

    /// Issues a `pcommit` arriving at the controller at `arrival`.
    /// Returns the cycle at which every write admitted so far has
    /// drained and the acknowledgement is back at the core.
    pub fn pcommit(&mut self, arrival: Cycle) -> Cycle {
        let arrival = self.clamp_time(arrival);
        self.drop_completed(arrival);
        let done = self
            .inflight
            .back()
            .copied()
            .unwrap_or(arrival)
            .max(arrival);
        self.stats.pcommits += 1;
        let lat = done - arrival;
        self.stats.pcommit_latency_total += lat;
        self.stats.pcommit_latency_max = self.stats.pcommit_latency_max.max(lat);
        self.probe.emit(ProbeEvent::PcommitIssue {
            now: arrival,
            ack_at: done,
        });
        done
    }

    /// A read fill for an LLC miss arriving at `arrival`; returns its
    /// completion time. Reads bypass the WPQ (the controller prioritizes
    /// them on a dedicated path), but still advance the controller's
    /// clock: a multi-core caller whose local time lags `last_seen` must
    /// not observe a completion earlier than requests already granted.
    pub fn read(&mut self, arrival: Cycle) -> Cycle {
        let arrival = self.clamp_time(arrival);
        self.stats.nvmm_reads += 1;
        let mut latency = self.cfg.nvmm_read;
        if let Some(f) = &mut self.faults {
            if let Some(Fault::NvmmReadSpike { extra }) = f.draw(FaultSite::NvmmRead) {
                latency += extra;
            }
        }
        arrival + latency
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> McStats {
        self.stats
    }

    /// Memory-side fault-injection counters (zero when no plan is
    /// configured).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults
            .as_ref()
            .map(FaultState::stats)
            .unwrap_or_default()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn mc(banks: usize, wpq: usize) -> MemCtrl {
        let cfg = MemConfig {
            nvmm_banks: banks,
            wpq_entries: wpq,
            ..MemConfig::paper()
        };
        MemCtrl::try_new(cfg).unwrap()
    }

    #[test]
    fn single_write_takes_write_latency() {
        let mut m = mc(1, 8);
        let (adm, done) = m.write_back(100);
        assert_eq!(adm, 100);
        assert_eq!(done, 100 + 315);
    }

    #[test]
    fn banks_drain_in_parallel() {
        let mut m = mc(2, 8);
        let (_, d0) = m.write_back(0);
        let (_, d1) = m.write_back(0);
        let (_, d2) = m.write_back(0);
        assert_eq!(d0, 315);
        assert_eq!(d1, 315);
        assert_eq!(d2, 630, "third write waits for a bank");
    }

    #[test]
    fn pcommit_waits_for_all_prior_writes() {
        let mut m = mc(1, 8);
        m.write_back(0);
        m.write_back(0);
        let done = m.pcommit(10);
        assert_eq!(done, 630);
        assert_eq!(m.stats().pcommit_latency_max, 620);
    }

    #[test]
    fn pcommit_on_empty_wpq_is_immediate() {
        let mut m = mc(2, 8);
        assert_eq!(m.pcommit(42), 42);
        // A drained queue behaves the same.
        m.write_back(50);
        assert_eq!(m.pcommit(1000), 1000);
    }

    #[test]
    fn pcommit_ignores_later_writes() {
        let mut m = mc(1, 8);
        m.write_back(0);
        let done = m.pcommit(5);
        assert_eq!(done, 315);
        // A write arriving after the pcommit does not extend it.
        let (_, d2) = m.write_back(10);
        assert!(d2 > done);
        assert_eq!(m.pcommit(5), 315.max(d2).max(5)); // new pcommit sees it
    }

    #[test]
    fn wpq_backpressure_delays_admission() {
        let mut m = mc(1, 2);
        let (a0, _) = m.write_back(0);
        let (a1, _) = m.write_back(0);
        let (a2, d2) = m.write_back(0);
        assert_eq!((a0, a1), (0, 0));
        // Queue of 2 is full; third admission waits for the first drain.
        assert_eq!(a2, 315);
        assert_eq!(d2, 3 * 315);
        assert!(m.stats().wpq_stall_cycles >= 315);
    }

    #[test]
    fn occupancy_tracks_time() {
        let mut m = mc(2, 8);
        m.write_back(0);
        m.write_back(0);
        assert_eq!(m.wpq_occupancy(1), 2);
        assert_eq!(m.wpq_occupancy(315), 0);
    }

    #[test]
    fn reads_have_fixed_latency() {
        let mut m = mc(1, 2);
        assert_eq!(m.read(7), 7 + 105);
        assert_eq!(m.stats().nvmm_reads, 1);
    }

    #[test]
    fn zero_bank_config_rejected() {
        let cfg = MemConfig {
            nvmm_banks: 0,
            ..MemConfig::paper()
        };
        assert_eq!(MemCtrl::try_new(cfg).err(), Some(MemConfigError::ZeroBanks));
    }

    #[test]
    fn zero_wpq_config_rejected() {
        let cfg = MemConfig {
            wpq_entries: 0,
            ..MemConfig::paper()
        };
        assert_eq!(
            MemCtrl::try_new(cfg).err(),
            Some(MemConfigError::ZeroWpqEntries)
        );
        assert_eq!(
            MemConfigError::ZeroWpqEntries.to_string(),
            "wpq_entries must be at least 1"
        );
    }

    /// Satellite regression: a plan holding at least every WPQ slot
    /// (`held >= wpq_entries`) must stall the admission until the queue
    /// drains completely — the silent `.max(1)` floor used to let it
    /// sneak through a phantom slot.
    #[test]
    fn fully_occluded_wpq_stalls_until_complete_drain() {
        let cfg = MemConfig {
            nvmm_banks: 1,
            wpq_entries: 2,
            // pm 1000: the backpressure site fires on every admission,
            // and 8 held slots occlude the 2-entry queue outright.
            fault: Some(crate::FaultSpec {
                wpq_pressure_pm: 1000,
                wpq_held_slots: 8,
                ..crate::FaultSpec::none(3)
            }),
            ..MemConfig::paper()
        };
        let mut m = MemCtrl::try_new(cfg).unwrap();
        // Empty queue: nothing to drain, the occluded admission still
        // proceeds at arrival (no wedge on an idle controller).
        let (a0, d0) = m.write_back(0);
        assert_eq!((a0, d0), (0, 315));
        // Occupied queue: the next admission waits for *every* in-flight
        // write, not just for capacity-minus-one of them.
        let (a1, d1) = m.write_back(1);
        assert_eq!(a1, d0, "occluded admission must wait out the full drain");
        assert_eq!(d1, d0 + 315);
        let s = m.stats();
        assert_eq!(s.wpq_occlusions, 2);
        assert!(s.wpq_stall_cycles >= 314);
        // The controller's next-event report tracks the queue.
        assert_eq!(m.next_completion(0), Some(315));
        assert_eq!(m.next_completion(d1), None);
    }

    #[test]
    fn probe_observes_pcommit_and_wpq_without_changing_timing() {
        use spp_obs::{Collector, ProbeHandle};

        let mut plain = mc(1, 8);
        let mut probed = mc(1, 8);
        let collector = Collector::shared();
        probed.set_probe(ProbeHandle::new(collector.clone()));
        for i in 0..20u64 {
            assert_eq!(plain.write_back(i * 10), probed.write_back(i * 10));
        }
        assert_eq!(plain.pcommit(5), probed.pcommit(5));
        assert_eq!(plain.stats(), probed.stats());
        let s = collector.borrow().summary();
        assert_eq!(s.pcommits, 1);
        assert_eq!(s.wpq.transitions, 20);
        assert_eq!(s.wpq.capacity, 8);
        assert!(s.pcommit_latency.max.is_some_and(|m| m > 0));
    }

    #[test]
    fn fault_plan_perturbs_timing_but_keeps_completion_monotone() {
        let cfg = MemConfig {
            fault: Some(crate::FaultSpec::storm(5)),
            ..MemConfig::paper()
        };
        let mut faulty = MemCtrl::try_new(cfg).unwrap();
        let mut clean = mc(32, 128);
        let mut prev = 0;
        let mut diverged = false;
        for i in 0..500u64 {
            let t = i * 3;
            let (_, df) = faulty.write_back(t);
            let (_, dc) = clean.write_back(t);
            assert!(df >= prev, "completion order must stay monotone");
            prev = df;
            diverged |= df != dc;
        }
        assert!(diverged, "storm plan must actually perturb timing");
        assert!(faulty.fault_stats().total() > 0);
        assert_eq!(clean.fault_stats().total(), 0);
        // Reads spike too, and never below the nominal latency.
        for i in 0..200u64 {
            let t = 10_000 + i * 400;
            assert!(faulty.read(t) >= t + 105);
        }
    }

    #[test]
    fn identical_fault_plans_give_identical_timings() {
        let cfg = MemConfig {
            fault: Some(crate::FaultSpec::storm(11)),
            ..MemConfig::paper()
        };
        let mut a = MemCtrl::try_new(cfg).unwrap();
        let mut b = MemCtrl::try_new(cfg).unwrap();
        for i in 0..300u64 {
            assert_eq!(a.write_back(i * 2), b.write_back(i * 2));
            assert_eq!(a.pcommit(i * 2 + 1), b.pcommit(i * 2 + 1));
        }
        assert_eq!(a.fault_stats(), b.fault_stats());
    }

    #[test]
    fn lagging_read_is_clamped_to_controller_time() {
        let mut m = mc(1, 8);
        m.write_back(1000);
        // A read from a core whose clock lags the controller's
        // high-water mark completes as if it arrived at that mark —
        // time never runs backwards at the shared controller.
        assert_eq!(m.read(3), 1000 + 105);
        // And reads advance the mark for later requests.
        let mut m2 = mc(1, 8);
        m2.read(500);
        let (adm, _) = m2.write_back(0);
        assert_eq!(adm, 500);
    }
}
