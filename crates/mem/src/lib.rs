//! # spp-mem — memory-system timing model
//!
//! The cache hierarchy, memory controller, and NVMM timing substrate of
//! the `specpersist` reproduction (Table 2 of *"Hiding the Long Latency
//! of Persist Barriers Using Speculative Execution"*, ISCA '17):
//!
//! * [`Cache`] — set-associative, write-back, true-LRU tag arrays;
//! * [`MemorySystem`] — L1D (32 KB) / L2 (256 KB) / L3 (2 MB) with
//!   write-allocate fills, cascading dirty evictions, and
//!   `clwb`/`clflushopt` flush plumbing;
//! * [`MemCtrl`] — the NVMM write-pending queue, bank-parallel 150 ns
//!   writes, 50 ns reads, and `pcommit` drain tracking — the source of
//!   the persist-barrier latency that speculative persistence hides.
//!
//! The model is timing-only: values live in `spp-pmem`'s functional
//! shadow memory; every method here takes the current cycle and returns
//! completion cycles.
//!
//! ```
//! use spp_mem::{AccessKind, MemConfig, MemorySystem};
//! use spp_pmem::BlockId;
//!
//! let mut mem = MemorySystem::new(MemConfig::paper());
//! // A store misses to NVMM, fills the hierarchy, dirties L1.
//! let (done, _) = mem.access(0, BlockId::new(42), AccessKind::Store);
//! // clwb pushes the dirty line into the controller's WPQ...
//! let flush = mem.flush(done, BlockId::new(42), false);
//! // ...and pcommit waits for the WPQ to drain to NVMM: this gap is
//! // the long-latency persist barrier.
//! let ack = mem.pcommit(flush.visible_at);
//! assert!(ack > flush.visible_at);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Simulation hot paths must surface faults as typed errors, not abort.
#![warn(clippy::unwrap_used, clippy::expect_used)]

mod cache;
mod config;
mod fault;
mod hierarchy;
mod memctrl;

pub use cache::{Cache, Eviction};
pub use config::{CacheConfig, Cycle, MemConfig, MemConfigError};
pub use fault::{
    splitmix64, Fault, FaultSite, FaultSpec, FaultSpecError, FaultState, FaultStats, MEM_STREAM,
    PIPE_STREAM,
};
pub use hierarchy::{
    shared_mem_ctrl, AccessKind, FlushOutcome, HitLevel, MemStats, MemorySystem, SharedMemCtrl,
};
pub use memctrl::{McStats, MemCtrl};
