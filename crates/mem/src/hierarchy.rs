//! The three-level cache hierarchy glued to the memory controller.

use std::cell::RefCell;
use std::rc::Rc;

use spp_obs::ProbeHandle;
use spp_pmem::BlockId;

use crate::cache::Cache;
use crate::config::{Cycle, MemConfig, MemConfigError};
use crate::memctrl::{McStats, MemCtrl};

/// A memory controller shared by several cores' memory systems (the
/// multi-programmed extension: private caches, one WPQ and NVMM).
pub type SharedMemCtrl = Rc<RefCell<MemCtrl>>;

/// Creates a controller for sharing across [`MemorySystem`]s.
///
/// # Errors
///
/// Returns the first [`MemConfigError`] found by
/// [`MemConfig::validate`].
pub fn shared_mem_ctrl(cfg: MemConfig) -> Result<SharedMemCtrl, MemConfigError> {
    Ok(Rc::new(RefCell::new(MemCtrl::try_new(cfg)?)))
}

/// What kind of demand access is being performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load (read).
    Load,
    /// A store committing its data to the L1D (write-allocate).
    Store,
}

/// Where a demand access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// L1 data cache.
    L1,
    /// Unified L2.
    L2,
    /// Shared L3.
    L3,
    /// NVMM.
    Memory,
}

/// Outcome of a `clwb`/`clflushopt`: when the writeback became globally
/// visible (admitted to the WPQ) and when it becomes durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushOutcome {
    /// Cycle at which the flush is globally visible to a following
    /// fence. For clean/absent blocks this is just the probe latency.
    pub visible_at: Cycle,
    /// Whether dirty data was actually written back.
    pub wrote_back: bool,
}

/// Hierarchy + memory-controller statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Demand accesses satisfied per level.
    pub hits_l1: u64,
    /// Demand accesses satisfied in L2.
    pub hits_l2: u64,
    /// Demand accesses satisfied in L3.
    pub hits_l3: u64,
    /// Demand accesses that went to NVMM.
    pub mem_accesses: u64,
    /// Dirty blocks written back due to capacity evictions.
    pub capacity_writebacks: u64,
    /// Dirty blocks written back due to `clwb`/`clflushopt`.
    pub flush_writebacks: u64,
}

/// The memory system: L1D/L2/L3 plus the NVMM memory controller.
///
/// Purely a timing model: every method takes the current cycle and
/// returns completion cycles; data contents live in the functional
/// shadow memory of `spp-pmem`.
#[derive(Debug)]
pub struct MemorySystem {
    cfg: MemConfig,
    l1: Cache,
    l2: Cache,
    l3: Cache,
    mc: SharedMemCtrl,
    stats: MemStats,
}

impl MemorySystem {
    /// Builds the memory system for `cfg` with its own private memory
    /// controller.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is structurally invalid; use
    /// [`MemorySystem::try_new`] to handle the error instead.
    pub fn new(cfg: MemConfig) -> Self {
        match Self::try_new(cfg) {
            Ok(m) => m,
            Err(e) => panic!("invalid memory configuration: {e}"),
        }
    }

    /// Builds the memory system for `cfg`, rejecting structurally
    /// invalid configurations up front.
    ///
    /// # Errors
    ///
    /// Returns the first [`MemConfigError`] found by
    /// [`MemConfig::validate`].
    pub fn try_new(cfg: MemConfig) -> Result<Self, MemConfigError> {
        Ok(Self::with_shared_mc(cfg, shared_mem_ctrl(cfg)?))
    }

    /// Builds a memory system whose caches are private but whose memory
    /// controller (WPQ + NVMM banks) is shared with other cores — the
    /// multi-programmed configuration.
    pub fn with_shared_mc(cfg: MemConfig, mc: SharedMemCtrl) -> Self {
        MemorySystem {
            l1: Cache::new(&cfg.l1d),
            l2: Cache::new(&cfg.l2),
            l3: Cache::new(&cfg.l3),
            mc,
            cfg,
            stats: MemStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Attaches an observability probe to the memory controller (WPQ
    /// occupancy, `pcommit` issue/ack). With a shared controller, the
    /// last probe attached wins for the shared sites.
    pub fn set_probe(&mut self, probe: ProbeHandle) {
        self.mc.borrow_mut().set_probe(probe);
    }

    /// Performs a demand access to `block` at cycle `now`; returns the
    /// completion cycle and the level that satisfied it. Misses fill all
    /// levels (write-allocate for stores); dirty victims cascade down
    /// and, from L3, enter the memory controller's WPQ.
    pub fn access(&mut self, now: Cycle, block: BlockId, kind: AccessKind) -> (Cycle, HitLevel) {
        let dirty = kind == AccessKind::Store;
        let l1_lat = self.cfg.l1d.latency;
        if self.l1.access(block, dirty) {
            self.stats.hits_l1 += 1;
            return (now + l1_lat, HitLevel::L1);
        }
        let l2_lat = l1_lat + self.cfg.l2.latency;
        if self.l2.access(block, false) {
            self.stats.hits_l2 += 1;
            self.fill_l1(now + l2_lat, block, dirty);
            return (now + l2_lat, HitLevel::L2);
        }
        let l3_lat = l2_lat + self.cfg.l3.latency;
        if self.l3.access(block, false) {
            self.stats.hits_l3 += 1;
            self.fill_l2(now + l3_lat, block);
            self.fill_l1(now + l3_lat, block, dirty);
            return (now + l3_lat, HitLevel::L3);
        }
        // Miss to memory.
        self.stats.mem_accesses += 1;
        let done = self
            .mc
            .borrow_mut()
            .read(now + l3_lat + self.cfg.transfer_latency);
        self.fill_l3(done, block);
        self.fill_l2(done, block);
        self.fill_l1(done, block, dirty);
        (done, HitLevel::Memory)
    }

    fn fill_l1(&mut self, now: Cycle, block: BlockId, dirty: bool) {
        if let Some(ev) = self.l1.insert(block, dirty) {
            if ev.dirty {
                // Dirty L1 victim merges into L2.
                self.fill_l2_dirty(now, ev.block, true);
            }
        }
    }

    fn fill_l2(&mut self, now: Cycle, block: BlockId) {
        self.fill_l2_dirty(now, block, false);
    }

    fn fill_l2_dirty(&mut self, now: Cycle, block: BlockId, dirty: bool) {
        if self.l2.probe(block).is_some() {
            if dirty {
                self.l2.access(block, true);
            }
            return;
        }
        if let Some(ev) = self.l2.insert(block, dirty) {
            if ev.dirty {
                self.fill_l3_dirty(now, ev.block, true);
            }
        }
    }

    fn fill_l3(&mut self, now: Cycle, block: BlockId) {
        self.fill_l3_dirty(now, block, false);
    }

    fn fill_l3_dirty(&mut self, now: Cycle, block: BlockId, dirty: bool) {
        if self.l3.probe(block).is_some() {
            if dirty {
                self.l3.access(block, true);
            }
            return;
        }
        if let Some(ev) = self.l3.insert(block, dirty) {
            if ev.dirty {
                // Capacity writeback to NVMM.
                self.stats.capacity_writebacks += 1;
                let _ = self
                    .mc
                    .borrow_mut()
                    .write_back(now + self.cfg.transfer_latency);
            }
        }
    }

    /// Executes a `clwb` (or `clflushopt` with `invalidate`) of `block`
    /// issued at `now`. Cleans the block everywhere; if dirty data was
    /// found, sends one writeback to the memory controller.
    pub fn flush(&mut self, now: Cycle, block: BlockId, invalidate: bool) -> FlushOutcome {
        let probe = self.cfg.full_probe_latency();
        let d1 = self.l1.clean(block, invalidate);
        let d2 = self.l2.clean(block, invalidate);
        let d3 = self.l3.clean(block, invalidate);
        if d1 || d2 || d3 {
            self.stats.flush_writebacks += 1;
            let (admitted, _durable) = self
                .mc
                .borrow_mut()
                .write_back(now + probe + self.cfg.transfer_latency);
            FlushOutcome {
                visible_at: admitted,
                wrote_back: true,
            }
        } else {
            FlushOutcome {
                visible_at: now + probe,
                wrote_back: false,
            }
        }
    }

    /// Issues a `pcommit` at `now`; returns the cycle its
    /// acknowledgement reaches the core.
    pub fn pcommit(&mut self, now: Cycle) -> Cycle {
        self.mc.borrow_mut().pcommit(now)
    }

    /// Current WPQ occupancy.
    pub fn wpq_occupancy(&mut self, now: Cycle) -> usize {
        self.mc.borrow_mut().wpq_occupancy(now)
    }

    /// Earliest in-flight WPQ completion strictly after `now`, if any
    /// (see [`MemCtrl::next_completion`]).
    pub fn next_completion(&self, now: Cycle) -> Option<Cycle> {
        self.mc.borrow().next_completion(now)
    }

    /// Hierarchy statistics.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Memory-controller statistics.
    pub fn mc_stats(&self) -> McStats {
        self.mc.borrow().stats()
    }

    /// Counts of faults the memory controller's injection plan has fired
    /// so far (all zero when no plan is configured).
    pub fn fault_stats(&self) -> crate::FaultStats {
        self.mc.borrow().fault_stats()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn b(n: u64) -> BlockId {
        BlockId::new(n)
    }

    #[test]
    fn first_touch_misses_to_memory_then_hits_l1() {
        let mut m = MemorySystem::new(MemConfig::paper());
        let (done, lvl) = m.access(0, b(1), AccessKind::Load);
        assert_eq!(lvl, HitLevel::Memory);
        assert_eq!(done, 33 + 8 + 105);
        let (done2, lvl2) = m.access(done, b(1), AccessKind::Load);
        assert_eq!(lvl2, HitLevel::L1);
        assert_eq!(done2, done + 2);
    }

    #[test]
    fn l1_capacity_falls_back_to_l2() {
        let cfg = MemConfig::paper();
        let mut m = MemorySystem::new(cfg);
        // L1: 64 sets * 8 ways. Touch 9 blocks in the same L1 set.
        for i in 0..9 {
            m.access(i * 1000, b(1 + i * 64), AccessKind::Load);
        }
        // Block 1 was evicted from L1 but lives in L2.
        let (_, lvl) = m.access(100_000, b(1), AccessKind::Load);
        assert_eq!(lvl, HitLevel::L2);
    }

    #[test]
    fn flush_of_dirty_block_writes_back_once() {
        let mut m = MemorySystem::new(MemConfig::paper());
        m.access(0, b(5), AccessKind::Store);
        let f = m.flush(200, b(5), false);
        assert!(f.wrote_back);
        assert!(f.visible_at >= 200 + 33);
        assert_eq!(m.mc_stats().nvmm_writes, 1);
        // Clean now: a second flush writes nothing.
        let f2 = m.flush(f.visible_at, b(5), false);
        assert!(!f2.wrote_back);
        assert_eq!(m.mc_stats().nvmm_writes, 1);
        // Block still resident (clwb does not evict).
        let (_, lvl) = m.access(f2.visible_at, b(5), AccessKind::Load);
        assert_eq!(lvl, HitLevel::L1);
    }

    #[test]
    fn clflushopt_invalidates() {
        let mut m = MemorySystem::new(MemConfig::paper());
        m.access(0, b(7), AccessKind::Store);
        let f = m.flush(100, b(7), true);
        assert!(f.wrote_back);
        let (_, lvl) = m.access(f.visible_at + 1, b(7), AccessKind::Load);
        assert_eq!(lvl, HitLevel::Memory, "flushed + evicted");
    }

    #[test]
    fn flush_then_pcommit_orders_durability() {
        let mut m = MemorySystem::new(MemConfig::paper());
        m.access(0, b(9), AccessKind::Store);
        let f = m.flush(10, b(9), false);
        let ack = m.pcommit(f.visible_at);
        assert!(
            ack >= f.visible_at + 315 - 1,
            "pcommit waits for the NVMM write"
        );
    }

    #[test]
    fn pcommit_with_clean_wpq_is_fast() {
        let mut m = MemorySystem::new(MemConfig::paper());
        assert_eq!(m.pcommit(500), 500);
    }

    #[test]
    fn stores_mark_dirty_and_evictions_write_back() {
        let cfg = MemConfig {
            l1d: crate::config::CacheConfig {
                size_bytes: 2 * 64,
                ways: 1,
                latency: 2,
            },
            l2: crate::config::CacheConfig {
                size_bytes: 2 * 64,
                ways: 1,
                latency: 11,
            },
            l3: crate::config::CacheConfig {
                size_bytes: 2 * 64,
                ways: 1,
                latency: 20,
            },
            ..MemConfig::paper()
        };
        let mut m = MemorySystem::new(cfg);
        m.access(0, b(0), AccessKind::Store);
        // All even blocks map to the same (single-way) set at every
        // level; enough of them push the dirty block 0 out to memory.
        for i in 1..=4 {
            m.access(i * 1000, b(i * 2), AccessKind::Store);
        }
        assert!(m.stats().capacity_writebacks >= 1);
        assert!(m.mc_stats().nvmm_writes >= 1);
    }
}
