//! A set-associative, write-back, LRU cache tag array.

use spp_pmem::BlockId;

use crate::config::CacheConfig;

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    lru: u64,
}

/// Result of inserting a block: the evicted victim, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The evicted block.
    pub block: BlockId,
    /// Whether the victim held dirty data (needs writing downstream).
    pub dirty: bool,
}

/// One cache level: tags, valid/dirty bits, and true-LRU replacement.
/// Purely a timing structure — data contents live in the functional
/// shadow memory.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: u64,
    ways: u64,
    lines: Vec<Line>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds an empty cache with the given geometry.
    pub fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.sets();
        Cache {
            sets,
            ways: cfg.ways,
            lines: vec![Line::default(); (sets * cfg.ways) as usize],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_range(&self, block: BlockId) -> std::ops::Range<usize> {
        let set = (block.raw() % self.sets) as usize;
        let w = self.ways as usize;
        set * w..(set + 1) * w
    }

    fn tag(&self, block: BlockId) -> u64 {
        block.raw() / self.sets
    }

    /// Looks up `block`; on a hit, refreshes LRU and optionally marks it
    /// dirty. Returns whether it hit.
    pub fn access(&mut self, block: BlockId, mark_dirty: bool) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let tag = self.tag(block);
        let range = self.set_range(block);
        for line in &mut self.lines[range] {
            if line.valid && line.tag == tag {
                line.lru = tick;
                line.dirty |= mark_dirty;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Checks residency without perturbing LRU or statistics.
    pub fn probe(&self, block: BlockId) -> Option<bool> {
        let tag = self.tag(block);
        self.lines[self.set_range(block)]
            .iter()
            .find(|l| l.valid && l.tag == tag)
            .map(|l| l.dirty)
    }

    /// Inserts `block` (after a miss), evicting the LRU victim if the
    /// set is full. Re-inserting a resident block just updates its
    /// dirty bit and LRU.
    pub fn insert(&mut self, block: BlockId, dirty: bool) -> Option<Eviction> {
        self.tick += 1;
        let tick = self.tick;
        let tag = self.tag(block);
        let sets = self.sets;
        let range = self.set_range(block);
        // Already resident?
        if let Some(line) = self.lines[range.clone()]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
        {
            line.dirty |= dirty;
            line.lru = tick;
            return None;
        }
        // Free way?
        let set_base = range.start;
        if let Some(line) = self.lines[range.clone()].iter_mut().find(|l| !l.valid) {
            *line = Line {
                valid: true,
                dirty,
                tag,
                lru: tick,
            };
            return None;
        }
        // Evict LRU. Every way is valid here (no free way above), so the
        // scan always finds a victim; start from way 0 rather than
        // unwrapping an Option.
        let victim_idx = {
            let lines = &self.lines[range];
            let mut best = 0;
            for (i, l) in lines.iter().enumerate().skip(1) {
                if l.lru < lines[best].lru {
                    best = i;
                }
            }
            set_base + best
        };
        let victim = self.lines[victim_idx];
        let set = block.raw() % sets;
        let evicted = BlockId::new(victim.tag * sets + set);
        self.lines[victim_idx] = Line {
            valid: true,
            dirty,
            tag,
            lru: tick,
        };
        Some(Eviction {
            block: evicted,
            dirty: victim.dirty,
        })
    }

    /// Clears the dirty bit of `block` if resident; returns whether it
    /// was dirty. With `invalidate`, the line is also dropped.
    pub fn clean(&mut self, block: BlockId, invalidate: bool) -> bool {
        let tag = self.tag(block);
        let range = self.set_range(block);
        for line in &mut self.lines[range] {
            if line.valid && line.tag == tag {
                let was_dirty = line.dirty;
                line.dirty = false;
                if invalidate {
                    line.valid = false;
                }
                return was_dirty;
            }
        }
        false
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways.
        Cache::new(&CacheConfig {
            size_bytes: 4 * 64,
            ways: 2,
            latency: 1,
        })
    }

    fn b(n: u64) -> BlockId {
        BlockId::new(n)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(b(0), false));
        c.insert(b(0), false);
        assert!(c.access(b(0), false));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Blocks 0, 2, 4 all map to set 0 (2 sets).
        c.insert(b(0), false);
        c.insert(b(2), false);
        assert!(c.access(b(0), false)); // refresh 0; LRU is now 2
        let ev = c.insert(b(4), true).expect("eviction");
        assert_eq!(ev.block, b(2));
        assert!(!ev.dirty);
        assert!(c.probe(b(0)).is_some());
        assert!(c.probe(b(2)).is_none());
        assert_eq!(c.probe(b(4)), Some(true));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = tiny();
        c.insert(b(0), false);
        assert!(c.access(b(0), true)); // dirty it
        c.insert(b(2), false);
        let ev = c.insert(b(4), false).expect("eviction");
        assert_eq!(ev.block, b(0));
        assert!(ev.dirty, "victim was stored to");
    }

    #[test]
    fn clean_clears_dirty_and_can_invalidate() {
        let mut c = tiny();
        c.insert(b(3), true);
        assert!(c.clean(b(3), false));
        assert_eq!(c.probe(b(3)), Some(false));
        assert!(!c.clean(b(3), false), "already clean");
        c.access(b(3), true);
        assert!(c.clean(b(3), true));
        assert!(c.probe(b(3)).is_none(), "invalidated");
    }

    #[test]
    fn reinsert_merges_dirty() {
        let mut c = tiny();
        c.insert(b(1), true);
        assert!(c.insert(b(1), false).is_none());
        assert_eq!(c.probe(b(1)), Some(true), "dirty bit survives re-fill");
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = tiny();
        c.insert(b(0), false);
        c.insert(b(1), false);
        c.insert(b(2), false);
        c.insert(b(3), false);
        // Set 0 holds {0,2}; set 1 holds {1,3}. All resident.
        for i in 0..4 {
            assert!(c.probe(b(i)).is_some(), "block {i}");
        }
    }
}
