//! Memory-system configuration (Table 2 of the paper).

use std::fmt;

/// A cycle count or timestamp at the simulated 2.1 GHz core clock.
pub type Cycle = u64;

/// A structurally invalid [`MemConfig`], rejected at construction time
/// (rather than silently clamped or left to panic mid-simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemConfigError {
    /// `nvmm_banks` was zero: no bank could ever drain a write.
    ZeroBanks,
    /// `wpq_entries` was zero: no writeback could ever be admitted.
    ZeroWpqEntries,
}

impl fmt::Display for MemConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MemConfigError::ZeroBanks => "nvmm_banks must be at least 1",
            MemConfigError::ZeroWpqEntries => "wpq_entries must be at least 1",
        })
    }
}

impl std::error::Error for MemConfigError {}

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u64,
    /// Access latency in cycles.
    pub latency: Cycle,
}

impl CacheConfig {
    /// Number of sets for 64-byte blocks.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways, or capacity not
    /// a multiple of `ways * 64`).
    pub fn sets(&self) -> u64 {
        assert!(self.ways > 0, "cache must have at least one way");
        let sets = self.size_bytes / (self.ways * 64);
        assert!(sets > 0, "cache smaller than one set");
        assert_eq!(
            self.size_bytes % (self.ways * 64),
            0,
            "capacity not way-aligned"
        );
        sets
    }
}

/// Full memory-system configuration.
///
/// Defaults ([`MemConfig::paper`]) reproduce Table 2: three cache levels
/// over an NVMM with 50 ns reads and 150 ns writes (105 / 315 cycles at
/// 2.1 GHz).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// L1 data cache (32 KB, 8-way, 2 cycles). The instruction cache of
    /// Table 2 is not modelled: the micro-op trace carries no
    /// instruction addresses and the kernels' code footprints fit L1I.
    pub l1d: CacheConfig,
    /// Unified L2 (256 KB, 8-way, 11 cycles).
    pub l2: CacheConfig,
    /// Shared L3 (2 MB, 16-way, 20 cycles).
    pub l3: CacheConfig,
    /// NVMM read latency in cycles (50 ns at 2.1 GHz).
    pub nvmm_read: Cycle,
    /// NVMM write latency in cycles (150 ns at 2.1 GHz).
    pub nvmm_write: Cycle,
    /// Write-pending-queue capacity in the memory controller.
    pub wpq_entries: usize,
    /// NVMM banks writable in parallel while draining the WPQ.
    pub nvmm_banks: usize,
    /// Cycles to transfer an evicted/flushed block from the LLC to the
    /// memory controller.
    pub transfer_latency: Cycle,
    /// Optional seeded fault-injection plan. `None` (the default) means
    /// a fault-free machine; a plan threads deterministic timing faults
    /// through the memory controller and the pipeline (see
    /// [`crate::FaultSpec`]).
    pub fault: Option<crate::FaultSpec>,
}

impl MemConfig {
    /// The paper's Table 2 configuration.
    pub fn paper() -> Self {
        MemConfig {
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                latency: 2,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                ways: 8,
                latency: 11,
            },
            l3: CacheConfig {
                size_bytes: 2 * 1024 * 1024,
                ways: 16,
                latency: 20,
            },
            nvmm_read: 105,
            nvmm_write: 315,
            // Table 2 does not specify the memory controller's internals.
            // The paper's pcommit latencies ("100s to 1000s of cycles")
            // imply a bandwidth-generous WPQ whose drain time is
            // dominated by the 315-cycle write latency rather than by
            // bank contention, so the defaults keep write bandwidth off
            // the critical path at the benchmarks' writeback rates.
            wpq_entries: 128,
            nvmm_banks: 32,
            transfer_latency: 8,
            fault: None,
        }
    }

    /// Validating constructor: returns the configuration unchanged if it
    /// is structurally sound (the workspace-wide `try_new` idiom — see
    /// also `MemCtrl::try_new`, `MemorySystem::try_new`,
    /// `MultiCore::try_new`).
    ///
    /// # Errors
    ///
    /// Returns the first [`MemConfigError`] found by
    /// [`MemConfig::validate`].
    pub fn try_new(cfg: MemConfig) -> Result<MemConfig, MemConfigError> {
        cfg.validate()?;
        Ok(cfg)
    }

    /// Latency of walking all three tag arrays (a full-hierarchy probe,
    /// e.g. for a `clwb` of a block whose location is unknown).
    pub fn full_probe_latency(&self) -> Cycle {
        self.l1d.latency + self.l2.latency + self.l3.latency
    }

    /// Checks the configuration for structurally impossible values.
    ///
    /// # Errors
    ///
    /// Returns the first [`MemConfigError`] found (zero banks, zero WPQ
    /// entries).
    pub fn validate(&self) -> Result<(), MemConfigError> {
        if self.nvmm_banks == 0 {
            return Err(MemConfigError::ZeroBanks);
        }
        if self.wpq_entries == 0 {
            return Err(MemConfigError::ZeroWpqEntries);
        }
        Ok(())
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry() {
        let c = MemConfig::paper();
        assert_eq!(c.l1d.sets(), 64);
        assert_eq!(c.l2.sets(), 512);
        assert_eq!(c.l3.sets(), 2048);
        assert_eq!(c.full_probe_latency(), 33);
    }

    #[test]
    fn latencies_match_50_and_150_ns_at_2_1_ghz() {
        let c = MemConfig::paper();
        assert_eq!(c.nvmm_read, 105); // 50 ns * 2.1 GHz
        assert_eq!(c.nvmm_write, 315); // 150 ns * 2.1 GHz
    }

    #[test]
    fn try_new_accepts_sound_and_rejects_degenerate_configs() {
        assert_eq!(
            MemConfig::try_new(MemConfig::paper()),
            Ok(MemConfig::paper())
        );
        let bad = MemConfig {
            nvmm_banks: 0,
            ..MemConfig::paper()
        };
        assert_eq!(MemConfig::try_new(bad), Err(MemConfigError::ZeroBanks));
    }

    #[test]
    #[should_panic(expected = "way-aligned")]
    fn degenerate_geometry_rejected() {
        let c = CacheConfig {
            size_bytes: 1000,
            ways: 3,
            latency: 1,
        };
        let _ = c.sets();
    }
}
