//! Deterministic hardware fault injection.
//!
//! A [`FaultSpec`] is a *plan*: per-site per-mille rates and magnitude
//! bounds for transient hardware adversity — NVMM latency spikes, WPQ
//! backpressure, bounded bank stalls, delayed/duplicated `pcommit`
//! acknowledgements, and SSB/checkpoint exhaustion pressure. Each
//! injection point owns an independent splitmix64 counter stream seeded
//! from `(spec.seed, component salt, site)`, so the faults drawn by a
//! simulation are a pure function of the spec and the simulation's own
//! decision sequence: runs are reproducible and `--jobs`-invariant, and
//! the same plan replayed on the same trace injects the same faults.
//!
//! Faults are *timing-only* by construction. They stretch latencies and
//! deny resources for a cycle at a time; they never drop, reorder, or
//! corrupt a request. The `repro faultsim` harness mechanizes the
//! resulting invariant: a faulted run must commit exactly the same
//! architectural work as a fault-free run — only cycle counts may move.

use crate::config::Cycle;

/// The splitmix64 mixer (Steele et al.), the repository's standard
/// deterministic stream generator — the single shared implementation
/// lives in `spp-pmem` (canonically re-exported as
/// `spp_core::splitmix64`); this re-export keeps `spp_mem::splitmix64`
/// working for existing callers.
pub use spp_pmem::rng::splitmix64;

/// One injected fault, as drawn at an injection site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// A transient NVMM read-latency spike of `extra` cycles.
    NvmmReadSpike {
        /// Additional read latency.
        extra: Cycle,
    },
    /// A transient NVMM write-latency spike of `extra` cycles.
    NvmmWriteSpike {
        /// Additional write latency.
        extra: Cycle,
    },
    /// Transient WPQ backpressure: `held` slots are unavailable for this
    /// admission (e.g. claimed by refresh or a peer requester).
    WpqBackpressure {
        /// Slots denied to this admission.
        held: usize,
    },
    /// A bounded bank stall: the granted bank starts `extra` cycles late.
    BankStall {
        /// Extra cycles before the bank accepts the write.
        extra: Cycle,
    },
    /// The `pcommit` acknowledgement is delayed `extra` cycles on its way
    /// back to the core.
    PcommitAckDelay {
        /// Extra cycles before the ack arrives.
        extra: Cycle,
    },
    /// The `pcommit` acknowledgement is delivered twice; the duplicate
    /// arrives `redelivery` cycles after the first and must be tolerated
    /// (it may cost cycles, never correctness).
    PcommitAckDuplicate {
        /// Lag of the duplicate behind the real ack.
        redelivery: Cycle,
    },
    /// Transient SSB pressure: `held` entries are unavailable this cycle.
    SsbPressure {
        /// SSB slots denied this cycle.
        held: usize,
    },
    /// Transient checkpoint-buffer pressure: no checkpoint may be
    /// allocated this cycle even if one is architecturally free.
    CheckpointPressure,
}

/// Injection sites, each with an independent deterministic stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// NVMM read path ([`Fault::NvmmReadSpike`]).
    NvmmRead,
    /// NVMM write path ([`Fault::NvmmWriteSpike`]).
    NvmmWrite,
    /// WPQ admission ([`Fault::WpqBackpressure`]).
    WpqAdmit,
    /// Bank grant ([`Fault::BankStall`]).
    BankGrant,
    /// `pcommit` ack return ([`Fault::PcommitAckDelay`]).
    AckReturn,
    /// `pcommit` ack duplication ([`Fault::PcommitAckDuplicate`]).
    AckDuplicate,
    /// SSB allocation ([`Fault::SsbPressure`]).
    SsbAlloc,
    /// Checkpoint allocation ([`Fault::CheckpointPressure`]).
    CheckpointAlloc,
}

const NUM_SITES: usize = 8;

/// A seeded fault plan: per-mille rates and magnitude bounds per site.
///
/// All rates are per-mille (0 = never, 1000 = every opportunity); all
/// magnitudes are inclusive upper bounds, drawn uniformly in
/// `1..=bound`. The plan is `Copy`/`Eq` so it can ride inside
/// `MemConfig` without disturbing config comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// Seed of every injection stream.
    pub seed: u64,
    /// NVMM read-spike rate (per-mille per read).
    pub read_spike_pm: u16,
    /// Largest read spike, cycles.
    pub read_spike_max: Cycle,
    /// NVMM write-spike rate (per-mille per writeback).
    pub write_spike_pm: u16,
    /// Largest write spike, cycles.
    pub write_spike_max: Cycle,
    /// WPQ-backpressure rate (per-mille per admission).
    pub wpq_pressure_pm: u16,
    /// WPQ slots held away from a pressured admission.
    pub wpq_held_slots: usize,
    /// Bank-stall rate (per-mille per grant).
    pub bank_stall_pm: u16,
    /// Largest bank stall, cycles.
    pub bank_stall_max: Cycle,
    /// Ack-delay rate (per-mille per pcommit).
    pub ack_delay_pm: u16,
    /// Largest ack delay, cycles.
    pub ack_delay_max: Cycle,
    /// Ack-duplication rate (per-mille per pcommit).
    pub ack_duplicate_pm: u16,
    /// Largest duplicate-redelivery lag, cycles.
    pub ack_duplicate_max: Cycle,
    /// SSB-pressure rate (per-mille per allocation attempt).
    pub ssb_pressure_pm: u16,
    /// SSB slots held away while pressured.
    pub ssb_held_slots: usize,
    /// Checkpoint-pressure rate (per-mille per allocation attempt).
    pub checkpoint_pressure_pm: u16,
}

impl FaultSpec {
    /// A plan that injects nothing (useful as a struct-literal base).
    pub fn none(seed: u64) -> Self {
        FaultSpec {
            seed,
            read_spike_pm: 0,
            read_spike_max: 0,
            write_spike_pm: 0,
            write_spike_max: 0,
            wpq_pressure_pm: 0,
            wpq_held_slots: 0,
            bank_stall_pm: 0,
            bank_stall_max: 0,
            ack_delay_pm: 0,
            ack_delay_max: 0,
            ack_duplicate_pm: 0,
            ack_duplicate_max: 0,
            ssb_pressure_pm: 0,
            ssb_held_slots: 0,
            checkpoint_pressure_pm: 0,
        }
    }

    /// A low-rate plan: rare, small disturbances — the "background
    /// radiation" leg of `repro faultsim`.
    pub fn quiet(seed: u64) -> Self {
        FaultSpec {
            read_spike_pm: 3,
            read_spike_max: 200,
            write_spike_pm: 3,
            write_spike_max: 400,
            wpq_pressure_pm: 2,
            wpq_held_slots: 96,
            bank_stall_pm: 2,
            bank_stall_max: 200,
            ack_delay_pm: 5,
            ack_delay_max: 500,
            ack_duplicate_pm: 3,
            ack_duplicate_max: 300,
            ssb_pressure_pm: 2,
            ssb_held_slots: 192,
            checkpoint_pressure_pm: 2,
            ..FaultSpec::none(seed)
        }
    }

    /// A high-rate plan: frequent, large disturbances at every site —
    /// the adversarial leg of `repro faultsim`.
    pub fn storm(seed: u64) -> Self {
        FaultSpec {
            read_spike_pm: 60,
            read_spike_max: 1500,
            write_spike_pm: 60,
            write_spike_max: 2500,
            wpq_pressure_pm: 40,
            wpq_held_slots: 126,
            bank_stall_pm: 40,
            bank_stall_max: 1000,
            ack_delay_pm: 120,
            ack_delay_max: 4000,
            ack_duplicate_pm: 60,
            ack_duplicate_max: 2000,
            ssb_pressure_pm: 50,
            ssb_held_slots: 255,
            checkpoint_pressure_pm: 50,
            ..FaultSpec::none(seed)
        }
    }

    /// A deliberate-livelock fixture: SSB and checkpoint allocation are
    /// denied on *every* attempt, so a speculating pipeline can never
    /// make retirement progress again. Exists to prove the watchdog
    /// converts livelock into a typed error — never use it expecting a
    /// run to finish.
    pub fn wedge(seed: u64) -> Self {
        FaultSpec {
            ssb_pressure_pm: 1000,
            ssb_held_slots: usize::MAX,
            checkpoint_pressure_pm: 1000,
            ..FaultSpec::none(seed)
        }
    }

    /// Does the plan deny SSB or checkpoint resources? (The pipeline
    /// retries such stalls cycle-by-cycle instead of sleeping until the
    /// next scheduled event, since the denial can clear on any retry.)
    pub fn denies_resources(&self) -> bool {
        self.ssb_pressure_pm > 0 || self.checkpoint_pressure_pm > 0
    }

    /// Validating constructor (the workspace-wide `try_new` idiom):
    /// returns the plan unchanged if every rate is a legal per-mille
    /// value. The presets ([`FaultSpec::none`], [`FaultSpec::quiet`],
    /// [`FaultSpec::storm`], [`FaultSpec::wedge`]) are valid by
    /// construction; hand-built plans should pass through here.
    ///
    /// # Errors
    ///
    /// Returns [`FaultSpecError::RateOutOfRange`] naming the first field
    /// whose rate exceeds 1000 per-mille.
    pub fn try_new(spec: FaultSpec) -> Result<FaultSpec, FaultSpecError> {
        let rates = [
            ("read_spike_pm", spec.read_spike_pm),
            ("write_spike_pm", spec.write_spike_pm),
            ("wpq_pressure_pm", spec.wpq_pressure_pm),
            ("bank_stall_pm", spec.bank_stall_pm),
            ("ack_delay_pm", spec.ack_delay_pm),
            ("ack_duplicate_pm", spec.ack_duplicate_pm),
            ("ssb_pressure_pm", spec.ssb_pressure_pm),
            ("checkpoint_pressure_pm", spec.checkpoint_pressure_pm),
        ];
        for (field, pm) in rates {
            if pm > 1000 {
                return Err(FaultSpecError::RateOutOfRange { field, pm });
            }
        }
        Ok(spec)
    }
}

/// A structurally invalid [`FaultSpec`], rejected at construction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultSpecError {
    /// A per-mille rate exceeded 1000 (more than "every opportunity").
    RateOutOfRange {
        /// The offending field.
        field: &'static str,
        /// The rejected value.
        pm: u16,
    },
}

impl core::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FaultSpecError::RateOutOfRange { field, pm } => {
                write!(f, "{field} is per-mille (0..=1000), got {pm}")
            }
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// Counts of injected faults (and the cycles they directly added).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// NVMM read spikes injected.
    pub read_spikes: u64,
    /// NVMM write spikes injected.
    pub write_spikes: u64,
    /// WPQ-backpressure events injected.
    pub wpq_pressure: u64,
    /// Bank stalls injected.
    pub bank_stalls: u64,
    /// Delayed pcommit acks.
    pub ack_delays: u64,
    /// Duplicated pcommit acks.
    pub ack_duplicates: u64,
    /// SSB allocation denials.
    pub ssb_pressure: u64,
    /// Checkpoint allocation denials.
    pub checkpoint_pressure: u64,
    /// Latency directly added by spikes/stalls/delays, cycles.
    pub extra_cycles: u64,
}

impl FaultStats {
    /// Total faults injected across every site.
    pub fn total(&self) -> u64 {
        self.read_spikes
            + self.write_spikes
            + self.wpq_pressure
            + self.bank_stalls
            + self.ack_delays
            + self.ack_duplicates
            + self.ssb_pressure
            + self.checkpoint_pressure
    }

    /// Field-wise sum (combining the memory- and pipeline-side streams).
    pub fn merged(self, o: FaultStats) -> FaultStats {
        FaultStats {
            read_spikes: self.read_spikes + o.read_spikes,
            write_spikes: self.write_spikes + o.write_spikes,
            wpq_pressure: self.wpq_pressure + o.wpq_pressure,
            bank_stalls: self.bank_stalls + o.bank_stalls,
            ack_delays: self.ack_delays + o.ack_delays,
            ack_duplicates: self.ack_duplicates + o.ack_duplicates,
            ssb_pressure: self.ssb_pressure + o.ssb_pressure,
            checkpoint_pressure: self.checkpoint_pressure + o.checkpoint_pressure,
            extra_cycles: self.extra_cycles + o.extra_cycles,
        }
    }
}

/// Stream salt for the memory-controller injection sites.
pub const MEM_STREAM: u64 = 0x4D45_4D43_5452_4C00; // "MEMCTRL"

/// Stream salt for the pipeline injection sites.
pub const PIPE_STREAM: u64 = 0x5049_5045_4C49_4E45; // "PIPELINE"

/// Live injection state: one splitmix64 counter stream per site.
///
/// Each `draw` advances only its own site's counter, so the fault
/// sequence observed at a site depends only on the spec, the stream
/// salt, and how many times that site has been consulted — not on
/// scheduling, threading, or other sites' activity.
#[derive(Debug, Clone)]
pub struct FaultState {
    spec: FaultSpec,
    stream_seeds: [u64; NUM_SITES],
    counters: [u64; NUM_SITES],
    stats: FaultStats,
}

impl FaultState {
    /// Creates the injection state for `spec` under a component salt
    /// ([`MEM_STREAM`] or [`PIPE_STREAM`]).
    pub fn new(spec: FaultSpec, salt: u64) -> Self {
        let mut stream_seeds = [0u64; NUM_SITES];
        for (i, s) in stream_seeds.iter_mut().enumerate() {
            *s = splitmix64(spec.seed ^ salt ^ ((i as u64 + 1) << 56));
        }
        FaultState {
            spec,
            stream_seeds,
            counters: [0; NUM_SITES],
            stats: FaultStats::default(),
        }
    }

    /// The plan being executed.
    pub fn spec(&self) -> FaultSpec {
        self.spec
    }

    /// Injection counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Advances `site`'s stream; `Some(entropy)` when the event fires.
    fn roll(&mut self, site: FaultSite, pm: u16) -> Option<u64> {
        if pm == 0 {
            return None;
        }
        let i = site as usize;
        let n = self.counters[i];
        self.counters[i] = n + 1;
        let x =
            splitmix64(self.stream_seeds[i].wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        if x % 1000 < u64::from(pm) {
            Some(splitmix64(x))
        } else {
            None
        }
    }

    fn magnitude(entropy: u64, max: Cycle) -> Cycle {
        if max == 0 {
            0
        } else {
            1 + entropy % max
        }
    }

    /// Consults `site` once; returns the fault to apply, if any. Updates
    /// injection statistics for fired faults.
    pub fn draw(&mut self, site: FaultSite) -> Option<Fault> {
        let spec = self.spec;
        let fault = match site {
            FaultSite::NvmmRead => {
                self.roll(site, spec.read_spike_pm)
                    .map(|e| Fault::NvmmReadSpike {
                        extra: Self::magnitude(e, spec.read_spike_max),
                    })
            }
            FaultSite::NvmmWrite => {
                self.roll(site, spec.write_spike_pm)
                    .map(|e| Fault::NvmmWriteSpike {
                        extra: Self::magnitude(e, spec.write_spike_max),
                    })
            }
            FaultSite::WpqAdmit => {
                self.roll(site, spec.wpq_pressure_pm)
                    .map(|_| Fault::WpqBackpressure {
                        held: spec.wpq_held_slots,
                    })
            }
            FaultSite::BankGrant => self
                .roll(site, spec.bank_stall_pm)
                .map(|e| Fault::BankStall {
                    extra: Self::magnitude(e, spec.bank_stall_max),
                }),
            FaultSite::AckReturn => {
                self.roll(site, spec.ack_delay_pm)
                    .map(|e| Fault::PcommitAckDelay {
                        extra: Self::magnitude(e, spec.ack_delay_max),
                    })
            }
            FaultSite::AckDuplicate => {
                self.roll(site, spec.ack_duplicate_pm)
                    .map(|e| Fault::PcommitAckDuplicate {
                        redelivery: Self::magnitude(e, spec.ack_duplicate_max),
                    })
            }
            FaultSite::SsbAlloc => {
                self.roll(site, spec.ssb_pressure_pm)
                    .map(|_| Fault::SsbPressure {
                        held: spec.ssb_held_slots,
                    })
            }
            FaultSite::CheckpointAlloc => self
                .roll(site, spec.checkpoint_pressure_pm)
                .map(|_| Fault::CheckpointPressure),
        };
        if let Some(f) = fault {
            match f {
                Fault::NvmmReadSpike { extra } => {
                    self.stats.read_spikes += 1;
                    self.stats.extra_cycles += extra;
                }
                Fault::NvmmWriteSpike { extra } => {
                    self.stats.write_spikes += 1;
                    self.stats.extra_cycles += extra;
                }
                Fault::WpqBackpressure { .. } => self.stats.wpq_pressure += 1,
                Fault::BankStall { extra } => {
                    self.stats.bank_stalls += 1;
                    self.stats.extra_cycles += extra;
                }
                Fault::PcommitAckDelay { extra } => {
                    self.stats.ack_delays += 1;
                    self.stats.extra_cycles += extra;
                }
                Fault::PcommitAckDuplicate { .. } => self.stats.ack_duplicates += 1,
                Fault::SsbPressure { .. } => self.stats.ssb_pressure += 1,
                Fault::CheckpointPressure => self.stats.checkpoint_pressure += 1,
            }
        }
        fault
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn try_new_accepts_presets_and_rejects_illegal_rates() {
        for spec in [
            FaultSpec::none(1),
            FaultSpec::quiet(1),
            FaultSpec::storm(1),
            FaultSpec::wedge(1),
        ] {
            assert_eq!(FaultSpec::try_new(spec), Ok(spec));
        }
        let bad = FaultSpec {
            ack_delay_pm: 1001,
            ..FaultSpec::none(1)
        };
        let err = FaultSpec::try_new(bad).unwrap_err();
        assert_eq!(
            err,
            FaultSpecError::RateOutOfRange {
                field: "ack_delay_pm",
                pm: 1001
            }
        );
        assert!(err.to_string().contains("ack_delay_pm"));
    }

    #[test]
    fn streams_are_deterministic_and_independent() {
        let spec = FaultSpec::storm(7);
        let mut a = FaultState::new(spec, MEM_STREAM);
        let mut b = FaultState::new(spec, MEM_STREAM);
        // Interleave differently across sites: per-site sequences must
        // still agree, because every site owns its own counter.
        let mut seq_a = Vec::new();
        for _ in 0..200 {
            seq_a.push(a.draw(FaultSite::NvmmWrite));
        }
        let mut seq_b = Vec::new();
        for i in 0..200 {
            if i % 3 == 0 {
                let _ = b.draw(FaultSite::NvmmRead);
            }
            seq_b.push(b.draw(FaultSite::NvmmWrite));
        }
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = FaultState::new(FaultSpec::storm(1), MEM_STREAM);
        let mut b = FaultState::new(FaultSpec::storm(2), MEM_STREAM);
        let sa: Vec<_> = (0..300).map(|_| a.draw(FaultSite::AckReturn)).collect();
        let sb: Vec<_> = (0..300).map(|_| b.draw(FaultSite::AckReturn)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn rates_are_roughly_honored() {
        let mut s = FaultState::new(FaultSpec::storm(3), PIPE_STREAM);
        let n = 10_000;
        let fired = (0..n)
            .filter(|_| s.draw(FaultSite::AckReturn).is_some())
            .count();
        // 120‰ nominal; allow a generous band.
        assert!((800..=1600).contains(&fired), "fired {fired}/{n}");
        assert_eq!(s.stats().ack_delays as usize, fired);
        assert!(s.stats().extra_cycles > 0);
    }

    #[test]
    fn magnitudes_are_bounded_and_positive() {
        let spec = FaultSpec::storm(9);
        let mut s = FaultState::new(spec, MEM_STREAM);
        for _ in 0..5_000 {
            if let Some(Fault::NvmmWriteSpike { extra }) = s.draw(FaultSite::NvmmWrite) {
                assert!((1..=spec.write_spike_max).contains(&extra));
            }
        }
    }

    #[test]
    fn none_plan_never_fires_and_wedge_always_denies() {
        let mut none = FaultState::new(FaultSpec::none(4), MEM_STREAM);
        for _ in 0..1000 {
            assert_eq!(none.draw(FaultSite::NvmmWrite), None);
            assert_eq!(none.draw(FaultSite::CheckpointAlloc), None);
        }
        assert_eq!(none.stats().total(), 0);
        let mut wedge = FaultState::new(FaultSpec::wedge(4), PIPE_STREAM);
        for _ in 0..100 {
            assert_eq!(
                wedge.draw(FaultSite::CheckpointAlloc),
                Some(Fault::CheckpointPressure)
            );
            assert!(matches!(
                wedge.draw(FaultSite::SsbAlloc),
                Some(Fault::SsbPressure { held: usize::MAX })
            ));
        }
        assert!(FaultSpec::wedge(4).denies_resources());
        assert!(!FaultSpec::none(4).denies_resources());
    }

    #[test]
    fn merged_stats_sum_fieldwise() {
        let a = FaultStats {
            read_spikes: 1,
            extra_cycles: 10,
            ..FaultStats::default()
        };
        let b = FaultStats {
            read_spikes: 2,
            ack_duplicates: 3,
            extra_cycles: 5,
            ..FaultStats::default()
        };
        let m = a.merged(b);
        assert_eq!(m.read_spikes, 3);
        assert_eq!(m.ack_duplicates, 3);
        assert_eq!(m.extra_cycles, 15);
        assert_eq!(m.total(), 6);
    }
}
