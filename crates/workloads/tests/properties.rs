//! Property tests: every benchmark holds its invariants under random
//! operation sequences, and the Log+P+Sf build recovers to a
//! transaction-atomic state from an adversarial crash at any point.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spp_pmem::{recover, CrashSim, PmemEnv, Variant};
use spp_workloads::{make_workload, BenchId, OpOutcome};
use std::collections::BTreeSet;

fn structural_bench_ids() -> impl Strategy<Value = BenchId> {
    prop::sample::select(vec![
        BenchId::Graph,
        BenchId::HashMap,
        BenchId::LinkedList,
        BenchId::AvlTree,
        BenchId::BTree,
        BenchId::RbTree,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariants hold at every step of a random op sequence, and the
    /// reported key set tracks the outcomes exactly.
    #[test]
    fn invariants_hold_under_random_ops(
        id in structural_bench_ids(),
        init in 0u64..150,
        ops in 1u64..120,
        seed in any::<u64>(),
    ) {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = make_workload(id);
        env.set_recording(false);
        w.setup(&mut env, &mut rng, init);
        let mut oracle: BTreeSet<u64> =
            w.verify(env.space()).unwrap().keys.into_iter().collect();
        for op in 0..ops {
            match w.run_op(&mut env, &mut rng, op) {
                OpOutcome::Inserted(k) => prop_assert!(oracle.insert(k)),
                OpOutcome::Deleted(k) => prop_assert!(oracle.remove(&k)),
                OpOutcome::Swapped(..) | OpOutcome::Noop => {}
            }
        }
        let s = w.verify(env.space()).unwrap();
        let got: BTreeSet<u64> = s.keys.iter().copied().collect();
        prop_assert_eq!(got, oracle);
    }

    /// The headline failure-safety property across the whole suite: crash
    /// the Log+P+Sf build at an arbitrary point with adversarial
    /// writebacks; after recovery the structure is valid and equals the
    /// state after some prefix of the operations.
    #[test]
    fn crash_recovery_is_prefix_consistent(
        id in prop::sample::select(BenchId::ALL.to_vec()),
        init in 2u64..60,
        ops in 1u64..25,
        seed in any::<u64>(),
        crash_frac in 0.0f64..=1.0,
    ) {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = make_workload(id);
        env.set_recording(false);
        w.setup(&mut env, &mut rng, init);
        env.set_recording(true);
        let base = env.snapshot();

        // Track the key set after every op prefix.
        let mut states: Vec<BTreeSet<u64>> = Vec::with_capacity(ops as usize + 1);
        let mut cur: BTreeSet<u64> =
            w.verify(env.space()).unwrap().keys.into_iter().collect();
        states.push(cur.clone());
        for op in 0..ops {
            match w.run_op(&mut env, &mut rng, op) {
                OpOutcome::Inserted(k) => { cur.insert(k); }
                OpOutcome::Deleted(k) => { cur.remove(&k); }
                OpOutcome::Swapped(..) | OpOutcome::Noop => {}
            }
            states.push(cur.clone());
        }
        let trace = env.take_trace();
        let layout = env.log_layout();

        let crash = ((trace.events.len() as f64) * crash_frac) as usize;
        let sim = CrashSim::new(&base, &trace.events, crash.min(trace.events.len()));
        let mut img = sim.image_guaranteed_only();
        recover(&mut img, &layout);

        let s = w.verify(&img).map_err(|e| {
            TestCaseError::fail(format!("{id}: post-recovery invalid: {e}"))
        })?;
        let got: BTreeSet<u64> = s.keys.iter().copied().collect();
        prop_assert!(
            states.contains(&got),
            "{}: recovered state matches no operation prefix (crash at {}/{})",
            id, crash, trace.events.len()
        );
    }
}
