//! GH: a persistent directed graph with adjacency lists.
//!
//! Vertices live in a contiguous head-pointer table; each edge is one
//! 64-byte node on a singly linked adjacency list. An operation picks a
//! random ordered pair `(u, v)` and deletes the edge if present,
//! inserts it at the head of `u`'s list otherwise — logging only the
//! link being spliced plus the edge-count header (the paper's "few
//! nodes involved" benchmark type).

use rand::rngs::StdRng;
use rand::Rng;
use spp_pmem::{PAddr, PmemEnv, Space};

use crate::spec::BenchId;
use crate::staged::Staged;
use crate::{OpOutcome, VerifyError, VerifySummary, Workload};

// Header block layout.
const VTABLE: u64 = 0;
const NVERTS: u64 = 8;
const NEDGES: u64 = 16;

// Edge node layout (one 64-byte block).
const TO: u64 = 0;
const NEXT: u64 = 8;
const WEIGHT: u64 = 16;

const ROOT_SLOT: usize = 0;
/// Average target degree used to derive the vertex count from Table 1's
/// `#InitOps` (2.6 M initial edge operations). Adjacency lists average
/// 16 edges, so an operation's list walk is a short pointer chase and
/// the persist barriers remain a significant fraction of the operation
/// (the paper singles GH out as fence-sensitive).
const TARGET_DEGREE: u64 = 16;

fn weight_for(u: u64, v: u64) -> u64 {
    (u << 32 | v).wrapping_mul(0x5851_F42D_4C95_7F2D)
}

/// Encodes an edge for [`VerifySummary::keys`].
pub fn edge_key(u: u64, v: u64) -> u64 {
    (u << 32) | v
}

/// The GH benchmark: adjacency-list graph with WAL edge transactions.
#[derive(Debug, Default, Clone)]
pub struct Graph {
    header: PAddr,
    vtable: PAddr,
    nverts: u64,
}

impl Graph {
    /// Creates an uninitialized benchmark; call
    /// [`setup`](Workload::setup) first.
    pub fn new() -> Self {
        Self::default()
    }

    fn head_addr(&self, u: u64) -> PAddr {
        self.vtable.offset(u * 8)
    }

    /// One insert-or-delete operation on edge `(u, v)`.
    fn op(&self, env: &mut PmemEnv, u: u64, v: u64, op_id: u64) -> OpOutcome {
        let mut tx = Staged::begin(env, op_id);
        let h = self.header;
        // `link` is the address of the pointer that points at `cur`:
        // first the vertex-table head slot, then edge `next` fields.
        let mut link = self.head_addr(u);
        let mut cur = tx.read_ptr(link);
        let outcome = loop {
            if cur.is_null() {
                // Absent: insert at the head of u's list.
                let e = tx.alloc_block();
                let head_addr = self.head_addr(u);
                let head = tx.read_ptr(head_addr);
                tx.write(e.offset(TO), v);
                tx.write_ptr(e.offset(NEXT), head);
                tx.write(e.offset(WEIGHT), weight_for(u, v));
                tx.write_ptr(head_addr, e);
                let n = tx.read(h.offset(NEDGES));
                tx.write(h.offset(NEDGES), n + 1);
                break OpOutcome::Inserted(edge_key(u, v));
            }
            let to = tx.read_dep(cur.offset(TO));
            tx.compute(3);
            if to == v {
                // Present: splice it out of the list.
                let next = tx.read_ptr(cur.offset(NEXT));
                tx.write_ptr(link, next);
                let n = tx.read(h.offset(NEDGES));
                tx.write(h.offset(NEDGES), n - 1);
                break OpOutcome::Deleted(edge_key(u, v));
            }
            link = cur.offset(NEXT);
            cur = tx.read_ptr(link);
        };
        tx.finish();
        outcome
    }

    fn pick_edge(&self, rng: &mut StdRng) -> (u64, u64) {
        let u = rng.gen_range(0..self.nverts);
        let mut v = rng.gen_range(0..self.nverts);
        if v == u {
            v = (v + 1) % self.nverts;
        }
        (u, v)
    }
}

impl Workload for Graph {
    fn id(&self) -> BenchId {
        BenchId::Graph
    }

    fn clone_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    fn setup(&mut self, env: &mut PmemEnv, rng: &mut StdRng, init_ops: u64) {
        self.nverts = (init_ops / TARGET_DEGREE).max(16);
        self.header = env.alloc_block();
        let vtable_blocks = (self.nverts * 8).div_ceil(64);
        self.vtable = env.alloc_blocks(vtable_blocks);
        env.store_ptr(self.header.offset(VTABLE), self.vtable);
        env.store_u64(self.header.offset(NVERTS), self.nverts);
        env.store_u64(self.header.offset(NEDGES), 0);
        env.set_root(ROOT_SLOT, self.header);
        for op in 0..init_ops {
            let (u, v) = self.pick_edge(rng);
            self.op(env, u, v, u64::MAX - op);
        }
    }

    fn run_op(&mut self, env: &mut PmemEnv, rng: &mut StdRng, op_id: u64) -> OpOutcome {
        let (u, v) = self.pick_edge(rng);
        self.op(env, u, v, op_id)
    }

    fn verify(&self, space: &Space) -> Result<VerifySummary, VerifyError> {
        let h = PAddr::new(space.read_u64(PmemEnv::root_addr(ROOT_SLOT)));
        let vtable = PAddr::new(space.read_u64(h.offset(VTABLE)));
        let nverts = space.read_u64(h.offset(NVERTS));
        let nedges = space.read_u64(h.offset(NEDGES));
        let mut keys = Vec::new();
        for u in 0..nverts {
            let mut cur = PAddr::new(space.read_u64(vtable.offset(u * 8)));
            let mut seen = std::collections::HashSet::new();
            let mut walked = 0u64;
            while !cur.is_null() {
                walked += 1;
                if walked > nedges + 1 {
                    return Err(VerifyError::new(format!("GH: cycle in vertex {u} list")));
                }
                let to = space.read_u64(cur.offset(TO));
                if to >= nverts {
                    return Err(VerifyError::new(format!("GH: edge to invalid vertex {to}")));
                }
                if !seen.insert(to) {
                    return Err(VerifyError::new(format!("GH: duplicate edge ({u}, {to})")));
                }
                if space.read_u64(cur.offset(WEIGHT)) != weight_for(u, to) {
                    return Err(VerifyError::new(format!("GH: torn weight on ({u}, {to})")));
                }
                keys.push(edge_key(u, to));
                cur = PAddr::new(space.read_u64(cur.offset(NEXT)));
            }
        }
        if keys.len() as u64 != nedges {
            return Err(VerifyError::new(format!(
                "GH: edge count {nedges} != walked {}",
                keys.len()
            )));
        }
        keys.sort_unstable();
        Ok(VerifySummary { keys, size: nedges })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::oracle_check;
    use rand::SeedableRng;
    use spp_pmem::Variant;

    #[test]
    fn oracle_agreement_all_variants() {
        for v in Variant::ALL {
            oracle_check(BenchId::Graph, v, 300, 300, 3);
        }
    }

    #[test]
    fn insert_delete_specific_edges() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let mut rng = StdRng::seed_from_u64(0);
        let mut g = Graph::new();
        g.setup(&mut env, &mut rng, 0);
        assert_eq!(g.op(&mut env, 1, 2, 0), OpOutcome::Inserted(edge_key(1, 2)));
        assert_eq!(g.op(&mut env, 1, 3, 1), OpOutcome::Inserted(edge_key(1, 3)));
        assert_eq!(g.op(&mut env, 2, 1, 2), OpOutcome::Inserted(edge_key(2, 1)));
        let s = g.verify(env.space()).unwrap();
        assert_eq!(s.size, 3);
        // Delete the middle-of-list edge (1,2) — inserted first, so it is
        // now at the tail of vertex 1's list.
        assert_eq!(g.op(&mut env, 1, 2, 3), OpOutcome::Deleted(edge_key(1, 2)));
        let s = g.verify(env.space()).unwrap();
        assert_eq!(s.keys, vec![edge_key(1, 3), edge_key(2, 1)]);
    }

    #[test]
    fn self_edges_are_never_generated() {
        let mut g = Graph::new();
        g.nverts = 16;
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let (u, v) = g.pick_edge(&mut rng);
            assert_ne!(u, v);
            assert!(u < 16 && v < 16);
        }
    }

    #[test]
    fn direction_matters() {
        let mut env = PmemEnv::new(Variant::Base);
        let mut rng = StdRng::seed_from_u64(0);
        let mut g = Graph::new();
        g.setup(&mut env, &mut rng, 0);
        g.op(&mut env, 4, 5, 0);
        // (5,4) is a different edge: this inserts rather than deletes.
        assert_eq!(g.op(&mut env, 5, 4, 1), OpOutcome::Inserted(edge_key(5, 4)));
    }
}
