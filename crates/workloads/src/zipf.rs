//! Seeded zipfian key sampler for the YCSB-style KV driver.
//!
//! The classic Gray et al. "Quickly generating billion-record synthetic
//! databases" rejection-free zipfian generator, as popularised by YCSB:
//! rank 0 is the most popular key, rank `n-1` the least, and the
//! probability of rank `i` is proportional to `1 / (i+1)^theta`.
//!
//! Determinism is part of the contract: the uniform stream is drawn
//! from [`spp_pmem::rng::splitmix64`] over an internal counter, not
//! from a `rand` RNG, so the exact key sequence for a `(n, theta,
//! seed)` triple is pinned by the published-vector test below and the
//! `repro kv` report stays byte-stable across refactors of everything
//! around it.

use spp_pmem::rng::splitmix64;

/// The YCSB default skew.
pub const DEFAULT_THETA: f64 = 0.99;

/// A seeded zipfian sampler over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    seed: u64,
    drawn: u64,
}

impl Zipf {
    /// Creates a sampler over `0..n` with skew `theta` (YCSB uses
    /// `0.99`; `0` degenerates towards uniform). Construction is `O(n)`
    /// (the harmonic normaliser is summed once).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `[0, 1)`.
    pub fn new(n: u64, theta: f64, seed: u64) -> Self {
        assert!(n > 0, "zipf: empty key space");
        assert!(
            (0.0..1.0).contains(&theta),
            "zipf: theta must be in [0, 1), got {theta}"
        );
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
            seed,
            drawn: 0,
        }
    }

    /// The size of the key space.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws the next rank in `0..n` (0 = most popular).
    pub fn next_rank(&mut self) -> u64 {
        // The i-th draw hashes (seed, i): the stream is a pure function
        // of the constructor arguments, independent of call-site
        // structure.
        let bits = splitmix64(self.seed.wrapping_add(self.drawn.wrapping_mul(0x9E37_79B9)));
        self.drawn += 1;
        let u = (bits >> 11) as f64 / (1u64 << 53) as f64;
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

/// The generalized harmonic number `sum_{i=1..n} 1/i^theta`.
fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Published vectors: the first draws of fixed `(n, theta, seed)`
    /// triples. These pin the exact stream `repro kv` consumes — any
    /// refactor that changes them changes the report bytes and must be
    /// treated as a breaking change to the study, not a cleanup.
    #[test]
    fn published_vectors_are_stable() {
        let mut z = Zipf::new(1000, DEFAULT_THETA, 42);
        let first: Vec<u64> = (0..16).map(|_| z.next_rank()).collect();
        assert_eq!(
            first,
            [141, 0, 353, 4, 0, 0, 258, 0, 913, 10, 5, 437, 467, 96, 0, 0]
        );
        let mut z = Zipf::new(64, 0.5, 7);
        let first: Vec<u64> = (0..8).map(|_| z.next_rank()).collect();
        assert_eq!(first, [11, 42, 22, 41, 49, 25, 42, 27]);
    }

    #[test]
    fn stream_is_a_pure_function_of_the_seed() {
        let mut a = Zipf::new(500, DEFAULT_THETA, 9);
        let mut b = Zipf::new(500, DEFAULT_THETA, 9);
        for _ in 0..256 {
            assert_eq!(a.next_rank(), b.next_rank());
        }
        let mut c = Zipf::new(500, DEFAULT_THETA, 10);
        let diverged = (0..256).any(|_| a.next_rank() != c.next_rank());
        assert!(diverged, "different seeds must give different streams");
    }

    #[test]
    fn head_is_hot() {
        // With theta = 0.99, rank 0 alone should carry far more than
        // its uniform share of the mass.
        let mut z = Zipf::new(10_000, DEFAULT_THETA, 3);
        let draws = 20_000;
        let zeros = (0..draws).filter(|_| z.next_rank() == 0).count();
        assert!(
            zeros > draws / 100,
            "rank 0 got {zeros}/{draws}, expected a hot head"
        );
    }

    proptest! {
        #[test]
        fn ranks_in_range_and_skewed(n in 2u64..5000, seed in any::<u64>()) {
            let mut z = Zipf::new(n, DEFAULT_THETA, seed);
            let draws = 2000u64;
            let mut head = 0u64; // draws landing in the first ~10%
            let cut = (n / 10).max(1);
            for _ in 0..draws {
                let r = z.next_rank();
                prop_assert!(r < n, "rank {} out of range 0..{}", r, n);
                if r < cut {
                    head += 1;
                }
            }
            // The hot head must beat its uniform share (cut/n of the
            // mass) by a wide margin — zipf(0.99) concentrates over
            // half the mass in the first decile for any n here.
            let uniform_share = draws * cut / n;
            prop_assert!(
                head > uniform_share + draws / 5,
                "head draws {} not skewed (uniform share {})",
                head,
                uniform_share
            );
        }
    }
}
