//! LL: a sorted, singly linked persistent list (max 1024 nodes).
//!
//! This is the structure the paper walks through in detail (§3.1.1,
//! Fig. 2): inserting or deleting a node logs the predecessor node before
//! splicing, giving one small transaction with four persist barriers.

use rand::rngs::StdRng;
use rand::Rng;
use spp_pmem::{PAddr, PmemEnv, Space};

use crate::spec::BenchId;
use crate::staged::Staged;
use crate::{OpOutcome, VerifyError, VerifySummary, Workload};

/// Table 1: "Max:1024" — the list is capped so search time does not
/// dominate the operation.
pub const MAX_NODES: u64 = 1024;

// Node layout (one 64-byte block).
const KEY: u64 = 0;
const VALUE: u64 = 8;
const NEXT: u64 = 16;
// Sentinel-only field.
const SIZE: u64 = 24;

const ROOT_SLOT: usize = 0;

fn value_for(key: u64) -> u64 {
    key.wrapping_mul(31).wrapping_add(7)
}

/// The LL benchmark: sorted singly linked list with WAL transactions.
#[derive(Debug, Default, Clone)]
pub struct LinkedList {
    sentinel: PAddr,
    key_range: u64,
}

impl LinkedList {
    /// Creates an uninitialized benchmark; call
    /// [`setup`](Workload::setup) before running operations.
    pub fn new() -> Self {
        Self::default()
    }

    /// One insert-or-delete operation on `key`.
    fn op(&self, env: &mut PmemEnv, key: u64, op_id: u64) -> OpOutcome {
        let mut tx = Staged::begin(env, op_id);
        let sent = self.sentinel;
        let mut prev = sent;
        let mut cur = tx.read_ptr(prev.offset(NEXT));
        let outcome = loop {
            if cur.is_null() {
                break self.insert_at(&mut tx, prev, PAddr::NULL, key);
            }
            let k = tx.read_dep(cur.offset(KEY));
            tx.compute(3); // compare, branch, address generation
            if k == key {
                // Delete: splice out `cur`; the node is not garbage
                // collected (paper assumption), so only `prev` changes.
                let next = tx.read_ptr(cur.offset(NEXT));
                tx.write_ptr(prev.offset(NEXT), next);
                let size = tx.read(sent.offset(SIZE));
                tx.write(sent.offset(SIZE), size - 1);
                break OpOutcome::Deleted(key);
            }
            if k > key {
                break self.insert_at(&mut tx, prev, cur, key);
            }
            prev = cur;
            cur = tx.read_ptr(cur.offset(NEXT));
        };
        tx.finish();
        outcome
    }

    fn insert_at(&self, tx: &mut Staged<'_>, prev: PAddr, cur: PAddr, key: u64) -> OpOutcome {
        let size = tx.read(self.sentinel.offset(SIZE));
        tx.compute(1);
        if size >= MAX_NODES {
            return OpOutcome::Noop;
        }
        let node = tx.alloc_block();
        tx.write(node.offset(KEY), key);
        tx.write(node.offset(VALUE), value_for(key));
        tx.write_ptr(node.offset(NEXT), cur);
        tx.write_ptr(prev.offset(NEXT), node);
        tx.write(self.sentinel.offset(SIZE), size + 1);
        OpOutcome::Inserted(key)
    }

    fn pick_key(&self, rng: &mut StdRng) -> u64 {
        rng.gen_range(0..self.key_range)
    }
}

impl Workload for LinkedList {
    fn id(&self) -> BenchId {
        BenchId::LinkedList
    }

    fn clone_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    fn setup(&mut self, env: &mut PmemEnv, rng: &mut StdRng, init_ops: u64) {
        self.key_range = MAX_NODES;
        self.sentinel = env.alloc_block();
        env.store_u64(self.sentinel.offset(NEXT), 0);
        env.store_u64(self.sentinel.offset(SIZE), 0);
        env.set_root(ROOT_SLOT, self.sentinel);
        for op in 0..init_ops {
            let key = self.pick_key(rng);
            self.op(env, key, u64::MAX - op);
        }
    }

    fn run_op(&mut self, env: &mut PmemEnv, rng: &mut StdRng, op_id: u64) -> OpOutcome {
        let key = self.pick_key(rng);
        self.op(env, key, op_id)
    }

    fn verify(&self, space: &Space) -> Result<VerifySummary, VerifyError> {
        let sent = PAddr::new(space.read_u64(PmemEnv::root_addr(ROOT_SLOT)));
        if sent.is_null() {
            return Err(VerifyError::new("LL: null sentinel"));
        }
        let size = space.read_u64(sent.offset(SIZE));
        let mut keys = Vec::new();
        let mut cur = PAddr::new(space.read_u64(sent.offset(NEXT)));
        let mut last: Option<u64> = None;
        while !cur.is_null() {
            if keys.len() as u64 > MAX_NODES {
                return Err(VerifyError::new("LL: list longer than cap (cycle?)"));
            }
            let k = space.read_u64(cur.offset(KEY));
            if let Some(prev) = last {
                if prev >= k {
                    return Err(VerifyError::new(format!(
                        "LL: order violated ({prev} >= {k})"
                    )));
                }
            }
            if space.read_u64(cur.offset(VALUE)) != value_for(k) {
                return Err(VerifyError::new(format!("LL: torn value for key {k}")));
            }
            keys.push(k);
            last = Some(k);
            cur = PAddr::new(space.read_u64(cur.offset(NEXT)));
        }
        if keys.len() as u64 != size {
            return Err(VerifyError::new(format!(
                "LL: size field {size} != walked count {}",
                keys.len()
            )));
        }
        Ok(VerifySummary { keys, size })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::oracle_check;
    use spp_pmem::Variant;

    #[test]
    fn oracle_agreement_all_variants() {
        for v in Variant::ALL {
            oracle_check(BenchId::LinkedList, v, 100, 300, 1);
        }
    }

    #[test]
    fn empty_list_verifies() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        let mut ll = LinkedList::new();
        ll.setup(&mut env, &mut rng, 0);
        let s = ll.verify(env.space()).unwrap();
        assert_eq!(s.size, 0);
        assert!(s.keys.is_empty());
    }

    #[test]
    fn cap_is_enforced() {
        let mut env = PmemEnv::new(Variant::Base);
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        let mut ll = LinkedList::new();
        ll.setup(&mut env, &mut rng, 0);
        // Insert every key: 1024 inserts succeed, further keys can't exist.
        for k in 0..MAX_NODES {
            assert_eq!(ll.op(&mut env, k, k), OpOutcome::Inserted(k));
        }
        let s = ll.verify(env.space()).unwrap();
        assert_eq!(s.size, MAX_NODES);
        // The next op on an existing key still deletes.
        assert_eq!(ll.op(&mut env, 5, 9999), OpOutcome::Deleted(5));
    }

    #[test]
    fn insert_then_delete_round_trips() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        let mut ll = LinkedList::new();
        ll.setup(&mut env, &mut rng, 0);
        assert_eq!(ll.op(&mut env, 42, 0), OpOutcome::Inserted(42));
        assert_eq!(ll.op(&mut env, 42, 1), OpOutcome::Deleted(42));
        let s = ll.verify(env.space()).unwrap();
        assert_eq!(s.size, 0);
    }

    #[test]
    fn four_pcommits_per_operation() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        let mut ll = LinkedList::new();
        env.set_recording(false);
        ll.setup(&mut env, &mut rng, 10);
        env.set_recording(true);
        ll.op(&mut env, 7, 0);
        assert_eq!(env.trace().counts.pcommits, 4);
        assert_eq!(env.trace().counts.fences, 8);
    }
}
