//! Persistency litmus programs: tiny multi-threaded shapes of
//! persist-relevant instructions, the unit of work for the Px86 litmus
//! harness (`spp-litmus`).
//!
//! A [`LitmusProgram`] is one or two threads of 2–6 [`LitmusOp`]s —
//! stores, flushes, fences, and `pcommit`s over a handful of named
//! persistent locations. The representation is deliberately abstract:
//! a `Flush` names a location, not an instruction, so the same program
//! can be materialized under each [`FlushMode`] (`clwb`,
//! `clflushopt`, legacy `clflush`) and checked under all three.
//!
//! Three properties make programs comparable across the harness's legs:
//!
//! * **one op is one event** — [`LitmusProgram::materialize`] maps the
//!   i-th op of an interleaving to the i-th [`Event`] of the trace, so
//!   crash indices align between the reference model and `CrashSim`;
//! * **store values are program-level** — each store carries a unique
//!   nonzero value assigned in thread-major program order, so a
//!   post-crash memory image reads back to the same state vector no
//!   matter which interleaving produced it;
//! * **locations are cache-block disjoint** — location `n` lives at
//!   its own 64-byte block, so per-block crash enumeration treats each
//!   location independently (exactly the Px86 granularity).

use std::fmt;

use spp_pmem::{Event, FlushMode, PAddr};

/// Base physical address of litmus location 0; locations step by one
/// 64-byte cache block.
pub const LITMUS_BASE: u64 = 4096;

/// One instruction of a litmus thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LitmusOp {
    /// A store to litmus location `loc` (value assigned program-wide).
    Store {
        /// Location index (0 = `x`, 1 = `y`, …), its own cache block.
        loc: u8,
    },
    /// A flush of location `loc`'s cache block; the concrete
    /// instruction (`clwb` / `clflushopt` / `clflush`) comes from the
    /// [`FlushMode`] at materialization.
    Flush {
        /// Location index whose block is written back.
        loc: u8,
    },
    /// `sfence`: orders prior stores and pending flush/`pcommit` acks.
    Sfence,
    /// `pcommit`: drains the memory-controller write-pending queue.
    Pcommit,
}

impl fmt::Display for LitmusOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LitmusOp::Store { loc } => write!(f, "St {}", loc_name(loc)),
            LitmusOp::Flush { loc } => write!(f, "Fl {}", loc_name(loc)),
            LitmusOp::Sfence => f.write_str("Sfence"),
            LitmusOp::Pcommit => f.write_str("Pcommit"),
        }
    }
}

/// Human name of a litmus location: `x`, `y`, `z`, `w`, then `l4`…
pub fn loc_name(loc: u8) -> String {
    match loc {
        0 => "x".into(),
        1 => "y".into(),
        2 => "z".into(),
        3 => "w".into(),
        n => format!("l{n}"),
    }
}

/// A named litmus program: one or two threads of [`LitmusOp`]s.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LitmusProgram {
    /// Stable identifier (catalog name or generator-derived).
    pub name: String,
    /// Per-thread instruction sequences (1 or 2 threads, 2–6 ops total).
    pub threads: Vec<Vec<LitmusOp>>,
}

impl LitmusProgram {
    /// A single-threaded program.
    pub fn single(name: impl Into<String>, ops: Vec<LitmusOp>) -> Self {
        LitmusProgram {
            name: name.into(),
            threads: vec![ops],
        }
    }

    /// A two-threaded program.
    pub fn pair(name: impl Into<String>, t0: Vec<LitmusOp>, t1: Vec<LitmusOp>) -> Self {
        LitmusProgram {
            name: name.into(),
            threads: vec![t0, t1],
        }
    }

    /// Total op count across threads.
    pub fn num_ops(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }

    /// Number of distinct locations (max location index + 1).
    pub fn num_locs(&self) -> usize {
        self.threads
            .iter()
            .flatten()
            .filter_map(|op| match *op {
                LitmusOp::Store { loc } | LitmusOp::Flush { loc } => Some(loc as usize + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Physical address of litmus location `loc` (its own cache block).
    pub fn addr_of(loc: u8) -> PAddr {
        PAddr::new(LITMUS_BASE + u64::from(loc) * 64)
    }

    /// The program-wide value written by the store at `(thread, idx)`:
    /// stores are numbered 1, 2, … in thread-major program order, so a
    /// crash image decodes to the same state vector regardless of the
    /// interleaving that produced it. Zero means "no store persisted".
    ///
    /// Returns `None` if `(thread, idx)` is not a store.
    pub fn store_value(&self, thread: usize, idx: usize) -> Option<u64> {
        let mut n = 0;
        for (t, ops) in self.threads.iter().enumerate() {
            for (i, op) in ops.iter().enumerate() {
                if matches!(op, LitmusOp::Store { .. }) {
                    n += 1;
                    if t == thread && i == idx {
                        return Some(n);
                    }
                }
            }
        }
        None
    }

    /// Every order-preserving merge of the threads, as sequences of
    /// `(thread, op_index)` pairs. A single-threaded program has
    /// exactly one interleaving; a 3+3 two-threaded program has
    /// C(6,3) = 20. Deterministic order (thread 0 first at each fork).
    pub fn interleavings(&self) -> Vec<Vec<(usize, usize)>> {
        let mut out = Vec::new();
        let mut cursor = vec![0usize; self.threads.len()];
        let mut prefix = Vec::with_capacity(self.num_ops());
        self.merge(&mut cursor, &mut prefix, &mut out);
        out
    }

    fn merge(
        &self,
        cursor: &mut [usize],
        prefix: &mut Vec<(usize, usize)>,
        out: &mut Vec<Vec<(usize, usize)>>,
    ) {
        if prefix.len() == self.num_ops() {
            out.push(prefix.clone());
            return;
        }
        for t in 0..self.threads.len() {
            if cursor[t] < self.threads[t].len() {
                prefix.push((t, cursor[t]));
                cursor[t] += 1;
                self.merge(cursor, prefix, out);
                cursor[t] -= 1;
                prefix.pop();
            }
        }
    }

    /// Materializes one interleaving as a `CrashSim`-ready event trace
    /// under the given flush mode. Op i becomes event i (8-byte stores,
    /// unique nonzero values from [`LitmusProgram::store_value`]), so
    /// crash indices align one-to-one with interleaving positions.
    ///
    /// # Panics
    ///
    /// Panics if `order` references an op outside the program — the
    /// harness generates orders from [`LitmusProgram::interleavings`],
    /// so a mismatch is a checker bug worth failing loudly on.
    pub fn materialize(&self, order: &[(usize, usize)], mode: FlushMode) -> Vec<Event> {
        order
            .iter()
            .map(|&(t, i)| match self.threads[t][i] {
                LitmusOp::Store { loc } => Event::Store {
                    addr: Self::addr_of(loc),
                    size: 8,
                    value: match self.store_value(t, i) {
                        Some(v) => v,
                        None => unreachable!("op (t{t}, {i}) is a store"),
                    },
                },
                LitmusOp::Flush { loc } => {
                    let addr = Self::addr_of(loc);
                    match mode {
                        FlushMode::Clwb => Event::Clwb { addr },
                        FlushMode::ClflushOpt => Event::ClflushOpt { addr },
                        FlushMode::Clflush => Event::Clflush { addr },
                    }
                }
                LitmusOp::Sfence => Event::Sfence,
                LitmusOp::Pcommit => Event::Pcommit,
            })
            .collect()
    }

    /// The thread-major (t0 before t1) interleaving — the program order
    /// a sequential pipeline run uses.
    pub fn program_order(&self) -> Vec<(usize, usize)> {
        self.threads
            .iter()
            .enumerate()
            .flat_map(|(t, ops)| (0..ops.len()).map(move |i| (t, i)))
            .collect()
    }
}

impl fmt::Display for LitmusProgram {
    /// `t0: St x; Fl x; Sfence || t1: St y` — witness-friendly.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, ops) in self.threads.iter().enumerate() {
            if t > 0 {
                f.write_str(" || ")?;
            }
            write!(f, "t{t}:")?;
            for (i, op) in ops.iter().enumerate() {
                f.write_str(if i == 0 { " " } else { "; " })?;
                write!(f, "{op}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn epoch_xy() -> LitmusProgram {
        LitmusProgram::pair(
            "epoch-xy",
            vec![
                LitmusOp::Store { loc: 0 },
                LitmusOp::Flush { loc: 0 },
                LitmusOp::Sfence,
            ],
            vec![LitmusOp::Store { loc: 1 }],
        )
    }

    #[test]
    fn store_values_are_unique_thread_major() {
        let p = epoch_xy();
        assert_eq!(p.store_value(0, 0), Some(1));
        assert_eq!(p.store_value(1, 0), Some(2));
        assert_eq!(p.store_value(0, 1), None); // a flush, not a store
        assert_eq!(p.num_locs(), 2);
        assert_eq!(p.num_ops(), 4);
    }

    #[test]
    fn interleavings_are_order_preserving_merges() {
        let p = epoch_xy();
        let ils = p.interleavings();
        // C(4,1) = 4 placements of the lone t1 op.
        assert_eq!(ils.len(), 4);
        for il in &ils {
            assert_eq!(il.len(), 4);
            // Thread-local order is preserved.
            let t0: Vec<usize> = il
                .iter()
                .filter(|&&(t, _)| t == 0)
                .map(|&(_, i)| i)
                .collect();
            assert_eq!(t0, vec![0, 1, 2]);
        }
        // Deterministic: first is thread-major program order.
        assert_eq!(ils[0], p.program_order());
    }

    #[test]
    fn materialize_maps_op_i_to_event_i() {
        let p = epoch_xy();
        let ev = p.materialize(&p.program_order(), FlushMode::Clwb);
        assert_eq!(
            ev,
            vec![
                Event::Store {
                    addr: LitmusProgram::addr_of(0),
                    size: 8,
                    value: 1
                },
                Event::Clwb {
                    addr: LitmusProgram::addr_of(0)
                },
                Event::Sfence,
                Event::Store {
                    addr: LitmusProgram::addr_of(1),
                    size: 8,
                    value: 2
                },
            ]
        );
        // Flush mode drives the flush instruction choice.
        let ev = p.materialize(&p.program_order(), FlushMode::Clflush);
        assert!(matches!(ev[1], Event::Clflush { .. }));
    }

    #[test]
    fn display_is_witness_friendly() {
        let p = epoch_xy();
        assert_eq!(p.to_string(), "t0: St x; Fl x; Sfence || t1: St y");
    }
}
