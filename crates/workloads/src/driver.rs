//! The application-context driver surrounding each operation.
//!
//! The paper measures its benchmarks under full-system simulation:
//! every data-structure operation is embedded in a real program (key
//! preparation, driver loop, allocation, statistics), so an "operation"
//! retires thousands of instructions and hundreds of cycles of
//! application memory traffic beyond the structure accesses themselves.
//! Trace-driven workloads are leaner, which would make the fixed-cost
//! persist barriers look disproportionately large and leave speculative
//! persistence nothing to overlap with.
//!
//! [`Driver`] restores that context: per operation it executes a fixed
//! block of compute micro-ops plus a short dependent pointer-chase over
//! a large ring (application working-set traffic), calibrated so one
//! operation's application work is on the order of a persist-barrier
//! cluster — the regime the paper's benchmarks occupy. The driver is
//! identical across build variants, so relative overheads stay
//! apples-to-apples.

use rand::rngs::StdRng;
use rand::Rng;
use spp_pmem::{PAddr, PmemEnv, BLOCK_SIZE};

/// Ring size: 8 MiB (131072 blocks) — far beyond the L3, so ring steps
/// are memory accesses like the surrounding application's.
pub const RING_BLOCKS: u64 = 131_072;
/// Dependent ring steps per operation.
pub const STEPS_PER_OP: u32 = 8;
/// Compute micro-ops before each operation (key preparation, driver
/// loop, call overhead).
pub const PRE_COMPUTE: u32 = 192;
/// Compute micro-ops per ring step (work on the fetched data).
pub const STEP_COMPUTE: u32 = 24;

/// Per-run application-context state.
#[derive(Debug)]
pub struct Driver {
    ring: PAddr,
    cursor: PAddr,
}

impl Driver {
    /// Allocates and links the pointer ring (in fast-forward: the ring
    /// is application state that exists before measurement).
    pub fn new(env: &mut PmemEnv, rng: &mut StdRng) -> Self {
        let was_recording = env.recording();
        env.set_recording(false);
        let ring = env.alloc_blocks(RING_BLOCKS);
        // A random permutation cycle over the blocks: block perm[i]
        // points to perm[i+1], so walks are unpredictable pointer
        // chases.
        let mut perm: Vec<u64> = (0..RING_BLOCKS).collect();
        for i in (1..perm.len()).rev() {
            perm.swap(i, rng.gen_range(0..=i));
        }
        for w in perm.windows(2) {
            env.store_u64(
                ring.offset(w[0] * BLOCK_SIZE),
                ring.offset(w[1] * BLOCK_SIZE).raw(),
            );
        }
        let last = perm[perm.len() - 1];
        env.store_u64(
            ring.offset(last * BLOCK_SIZE),
            ring.offset(perm[0] * BLOCK_SIZE).raw(),
        );
        env.set_recording(was_recording);
        Driver {
            ring,
            cursor: ring.offset(perm[0] * BLOCK_SIZE),
        }
    }

    /// Emits one operation's worth of application work.
    pub fn before_op(&mut self, env: &mut PmemEnv) {
        env.compute(PRE_COMPUTE);
        for _ in 0..STEPS_PER_OP {
            self.cursor = env.load_ptr(self.cursor);
            env.compute(STEP_COMPUTE);
        }
    }

    /// Base address of the ring (diagnostics).
    pub fn ring(&self) -> PAddr {
        self.ring
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spp_pmem::Variant;

    #[test]
    fn ring_is_a_single_cycle() {
        let mut env = PmemEnv::new(Variant::Base);
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = Driver::new(&mut env, &mut rng);
        // Walk RING_BLOCKS steps functionally: must return to the start
        // without hitting null.
        let start = d.cursor;
        env.set_recording(false);
        let mut cur = start;
        for _ in 0..RING_BLOCKS {
            cur = PAddr::new(env.space().read_u64(cur));
            assert!(!cur.is_null(), "broken ring link");
        }
        assert_eq!(cur, start, "ring is not a single cycle");
        d.before_op(&mut env);
    }

    #[test]
    fn before_op_emits_loads_and_compute() {
        let mut env = PmemEnv::new(Variant::Base);
        let mut rng = StdRng::seed_from_u64(4);
        let mut d = Driver::new(&mut env, &mut rng);
        env.set_recording(true);
        d.before_op(&mut env);
        let c = env.trace().counts;
        assert_eq!(c.loads, u64::from(STEPS_PER_OP));
        assert_eq!(
            c.compute,
            u64::from(PRE_COMPUTE + STEPS_PER_OP * STEP_COMPUTE)
        );
        assert_eq!(c.stores, 0, "the driver must not dirty persistent state");
    }

    #[test]
    fn identical_seeds_walk_identically() {
        let walk = |seed: u64| {
            let mut env = PmemEnv::new(Variant::Base);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut d = Driver::new(&mut env, &mut rng);
            env.set_recording(true);
            d.before_op(&mut env);
            env.take_trace().events
        };
        assert_eq!(walk(9), walk(9));
    }
}
