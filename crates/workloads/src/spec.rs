//! Table 1: the benchmark suite and its sizing.

use std::fmt;

/// Identifies one of the paper's seven benchmarks (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BenchId {
    /// Insert or delete edges in a graph (GH).
    Graph,
    /// Insert or delete entries in a hash map (HM).
    HashMap,
    /// Insert or delete nodes in a sorted linked list, max 1024 nodes (LL).
    LinkedList,
    /// Swap strings in a string array (SS).
    StringSwap,
    /// Insert or delete nodes in an AVL tree (AT).
    AvlTree,
    /// Insert or delete nodes in a B-tree (BT).
    BTree,
    /// Insert or delete nodes in a red-black tree (RT).
    RbTree,
}

impl BenchId {
    /// All benchmarks in Table 1 order.
    pub const ALL: [BenchId; 7] = [
        BenchId::Graph,
        BenchId::HashMap,
        BenchId::LinkedList,
        BenchId::StringSwap,
        BenchId::AvlTree,
        BenchId::BTree,
        BenchId::RbTree,
    ];

    /// The paper's two-letter abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            BenchId::Graph => "GH",
            BenchId::HashMap => "HM",
            BenchId::LinkedList => "LL",
            BenchId::StringSwap => "SS",
            BenchId::AvlTree => "AT",
            BenchId::BTree => "BT",
            BenchId::RbTree => "RT",
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            BenchId::Graph => "Graph",
            BenchId::HashMap => "Hash-Map",
            BenchId::LinkedList => "Linked-List",
            BenchId::StringSwap => "String Swap",
            BenchId::AvlTree => "AVL-tree",
            BenchId::BTree => "B-tree",
            BenchId::RbTree => "RB-tree",
        }
    }

    /// Is this one of the self-balancing trees (the second benchmark
    /// type in §3.2, with full logging and heavy logging overheads)?
    pub fn is_tree(self) -> bool {
        matches!(self, BenchId::AvlTree | BenchId::BTree | BenchId::RbTree)
    }
}

impl fmt::Display for BenchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Sizing of one benchmark run: how many operations populate the
/// structure (executed in fast-forward, unrecorded) and how many are
/// measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BenchSpec {
    /// Which benchmark.
    pub id: BenchId,
    /// `#InitOps` from Table 1 (possibly scaled).
    pub init_ops: u64,
    /// `#SimOps` from Table 1 (possibly scaled).
    pub sim_ops: u64,
}

impl BenchSpec {
    /// The paper's Table 1 sizing.
    pub fn paper(id: BenchId) -> Self {
        let (init_ops, sim_ops) = match id {
            BenchId::Graph => (2_600_000, 100_000),
            BenchId::HashMap => (1_500_000, 100_000),
            BenchId::LinkedList => (500, 50_000),
            BenchId::StringSwap => (120_000, 500_000),
            BenchId::AvlTree => (1_000_000, 50_000),
            BenchId::BTree => (1_000_000, 50_000),
            BenchId::RbTree => (1_500_000, 50_000),
        };
        BenchSpec {
            id,
            init_ops,
            sim_ops,
        }
    }

    /// Scales the op counts down by `divisor` (minimum 1 op each).
    ///
    /// The populated structure shrinks by only `divisor / 4` so that,
    /// at the default harness scale, working sets still exceed the L3
    /// the way the paper's full-size structures do — otherwise the
    /// cheap, cache-resident baseline operations would inflate every
    /// relative overhead. The linked list is never scaled below its
    /// paper sizing: its 500 initial nodes are already tiny and define
    /// its behaviour (the 1024-node cap).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn scaled(id: BenchId, divisor: u64) -> Self {
        assert!(divisor > 0, "scale divisor must be positive");
        let p = Self::paper(id);
        if id == BenchId::LinkedList {
            return BenchSpec {
                id,
                init_ops: p.init_ops,
                sim_ops: (p.sim_ops / divisor).max(1),
            };
        }
        // Trees and String Swap shrink even less: their per-operation
        // working sets (deep search paths, 512-byte swaps) must stay
        // NVMM-resident for the paper's relative costs to hold.
        let init_divisor = match id {
            BenchId::AvlTree | BenchId::BTree | BenchId::RbTree | BenchId::StringSwap => {
                (divisor / 8).max(1)
            }
            _ => (divisor / 4).max(1),
        };
        BenchSpec {
            id,
            init_ops: (p.init_ops / init_divisor).max(1),
            sim_ops: (p.sim_ops / divisor).max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_match_table_1() {
        let g = BenchSpec::paper(BenchId::Graph);
        assert_eq!((g.init_ops, g.sim_ops), (2_600_000, 100_000));
        let ll = BenchSpec::paper(BenchId::LinkedList);
        assert_eq!((ll.init_ops, ll.sim_ops), (500, 50_000));
        let ss = BenchSpec::paper(BenchId::StringSwap);
        assert_eq!((ss.init_ops, ss.sim_ops), (120_000, 500_000));
    }

    #[test]
    fn scaling_preserves_linked_list_population() {
        let ll = BenchSpec::scaled(BenchId::LinkedList, 100);
        assert_eq!(ll.init_ops, 500);
        assert_eq!(ll.sim_ops, 500);
    }

    #[test]
    fn scaling_divides() {
        let at = BenchSpec::scaled(BenchId::AvlTree, 50);
        // Tree populations shrink by divisor/8 so working sets stay big.
        assert_eq!(at.init_ops, 1_000_000 / 6);
        assert_eq!(at.sim_ops, 1_000);
        let hm = BenchSpec::scaled(BenchId::HashMap, 50);
        assert_eq!(hm.init_ops, 1_500_000 / 12);
        let small = BenchSpec::scaled(BenchId::AvlTree, 2);
        assert_eq!(small.init_ops, 1_000_000);
        assert_eq!(small.sim_ops, 25_000);
    }

    #[test]
    fn abbrevs_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for id in BenchId::ALL {
            assert!(seen.insert(id.abbrev()));
        }
    }

    #[test]
    fn trees_classified() {
        assert!(BenchId::AvlTree.is_tree());
        assert!(BenchId::BTree.is_tree());
        assert!(BenchId::RbTree.is_tree());
        assert!(!BenchId::Graph.is_tree());
        assert!(!BenchId::StringSwap.is_tree());
    }
}
