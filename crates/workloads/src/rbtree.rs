//! RT: a persistent red-black tree with full logging (§3.2).
//!
//! A classic parent-pointer red-black tree with a NIL sentinel node.
//! Like the other self-balancing trees it uses the paper's *full
//! logging*: the whole search path is undo-logged up front, plus the
//! sibling subtree tops that delete/insert fixups might recolor or
//! rotate through, so one set of four persist barriers covers the
//! operation no matter how far the fixup cascades.

use rand::rngs::StdRng;
use rand::Rng;
use spp_pmem::{PAddr, PmemEnv, Space};

use crate::spec::BenchId;
use crate::staged::Staged;
use crate::{OpOutcome, VerifyError, VerifySummary, Workload};

// Node layout (one 64-byte block).
const KEY: u64 = 0;
const VALUE: u64 = 8;
const LEFT: u64 = 16;
const RIGHT: u64 = 24;
const PARENT: u64 = 32;
const COLOR: u64 = 40;

const BLACK: u64 = 0;
const RED: u64 = 1;

// Header block layout.
const ROOT: u64 = 0;
const SIZE: u64 = 8;
const NIL: u64 = 16;

const ROOT_SLOT: usize = 0;

fn value_for(key: u64) -> u64 {
    key.wrapping_mul(0x517C_C1B7_2722_0A95).wrapping_add(3)
}

/// The RT benchmark: red-black tree with full-logging WAL transactions.
#[derive(Debug, Default, Clone)]
pub struct RbTree {
    header: PAddr,
    nil: PAddr,
    key_range: u64,
}

impl RbTree {
    /// Creates an uninitialized benchmark; call
    /// [`setup`](Workload::setup) first.
    pub fn new() -> Self {
        Self::default()
    }

    // Field helpers --------------------------------------------------

    fn left(&self, tx: &mut Staged<'_>, n: PAddr) -> PAddr {
        tx.read_ptr(n.offset(LEFT))
    }
    fn right(&self, tx: &mut Staged<'_>, n: PAddr) -> PAddr {
        tx.read_ptr(n.offset(RIGHT))
    }
    fn parent(&self, tx: &mut Staged<'_>, n: PAddr) -> PAddr {
        tx.read_ptr(n.offset(PARENT))
    }
    fn color(&self, tx: &mut Staged<'_>, n: PAddr) -> u64 {
        tx.read(n.offset(COLOR))
    }
    fn root(&self, tx: &mut Staged<'_>) -> PAddr {
        tx.read_ptr(self.header.offset(ROOT))
    }
    fn set_root(&self, tx: &mut Staged<'_>, n: PAddr) {
        tx.write_ptr(self.header.offset(ROOT), n);
    }

    // Rotations -------------------------------------------------------

    fn rotate_left(&self, tx: &mut Staged<'_>, x: PAddr) {
        let y = self.right(tx, x);
        let yl = self.left(tx, y);
        tx.write_ptr(x.offset(RIGHT), yl);
        if yl != self.nil {
            tx.write_ptr(yl.offset(PARENT), x);
        }
        let xp = self.parent(tx, x);
        tx.write_ptr(y.offset(PARENT), xp);
        if xp == self.nil {
            self.set_root(tx, y);
        } else if self.left(tx, xp) == x {
            tx.write_ptr(xp.offset(LEFT), y);
        } else {
            tx.write_ptr(xp.offset(RIGHT), y);
        }
        tx.write_ptr(y.offset(LEFT), x);
        tx.write_ptr(x.offset(PARENT), y);
    }

    fn rotate_right(&self, tx: &mut Staged<'_>, x: PAddr) {
        let y = self.left(tx, x);
        let yr = self.right(tx, y);
        tx.write_ptr(x.offset(LEFT), yr);
        if yr != self.nil {
            tx.write_ptr(yr.offset(PARENT), x);
        }
        let xp = self.parent(tx, x);
        tx.write_ptr(y.offset(PARENT), xp);
        if xp == self.nil {
            self.set_root(tx, y);
        } else if self.right(tx, xp) == x {
            tx.write_ptr(xp.offset(RIGHT), y);
        } else {
            tx.write_ptr(xp.offset(LEFT), y);
        }
        tx.write_ptr(y.offset(RIGHT), x);
        tx.write_ptr(x.offset(PARENT), y);
    }

    // Insert ------------------------------------------------------------

    fn insert(&self, tx: &mut Staged<'_>, key: u64) {
        let nil = self.nil;
        let mut y = nil;
        let mut x = self.root(tx);
        let mut went_left = false;
        while x != nil {
            y = x;
            let k = tx.read(x.offset(KEY));
            tx.compute(1);
            went_left = key < k;
            x = if went_left {
                self.left(tx, x)
            } else {
                self.right(tx, x)
            };
        }
        let z = tx.alloc_block();
        tx.write(z.offset(KEY), key);
        tx.write(z.offset(VALUE), value_for(key));
        tx.write_ptr(z.offset(LEFT), nil);
        tx.write_ptr(z.offset(RIGHT), nil);
        tx.write_ptr(z.offset(PARENT), y);
        tx.write(z.offset(COLOR), RED);
        if y == nil {
            self.set_root(tx, z);
        } else if went_left {
            tx.write_ptr(y.offset(LEFT), z);
        } else {
            tx.write_ptr(y.offset(RIGHT), z);
        }
        self.insert_fixup(tx, z);
    }

    fn insert_fixup(&self, tx: &mut Staged<'_>, mut z: PAddr) {
        let nil = self.nil;
        loop {
            let zp = self.parent(tx, z);
            if zp == nil || self.color(tx, zp) != RED {
                break;
            }
            let zpp = self.parent(tx, zp);
            if zp == self.left(tx, zpp) {
                let uncle = self.right(tx, zpp);
                if self.color(tx, uncle) == RED {
                    tx.write(zp.offset(COLOR), BLACK);
                    tx.write(uncle.offset(COLOR), BLACK);
                    tx.write(zpp.offset(COLOR), RED);
                    z = zpp;
                } else {
                    if z == self.right(tx, zp) {
                        z = zp;
                        self.rotate_left(tx, z);
                    }
                    let zp = self.parent(tx, z);
                    let zpp = self.parent(tx, zp);
                    tx.write(zp.offset(COLOR), BLACK);
                    tx.write(zpp.offset(COLOR), RED);
                    self.rotate_right(tx, zpp);
                }
            } else {
                let uncle = self.left(tx, zpp);
                if self.color(tx, uncle) == RED {
                    tx.write(zp.offset(COLOR), BLACK);
                    tx.write(uncle.offset(COLOR), BLACK);
                    tx.write(zpp.offset(COLOR), RED);
                    z = zpp;
                } else {
                    if z == self.left(tx, zp) {
                        z = zp;
                        self.rotate_right(tx, z);
                    }
                    let zp = self.parent(tx, z);
                    let zpp = self.parent(tx, zp);
                    tx.write(zp.offset(COLOR), BLACK);
                    tx.write(zpp.offset(COLOR), RED);
                    self.rotate_left(tx, zpp);
                }
            }
        }
        let root = self.root(tx);
        tx.write(root.offset(COLOR), BLACK);
    }

    // Delete ------------------------------------------------------------

    /// Replaces subtree `u` with subtree `v` in `u`'s parent.
    fn transplant(&self, tx: &mut Staged<'_>, u: PAddr, v: PAddr) {
        let up = self.parent(tx, u);
        if up == self.nil {
            self.set_root(tx, v);
        } else if u == self.left(tx, up) {
            tx.write_ptr(up.offset(LEFT), v);
        } else {
            tx.write_ptr(up.offset(RIGHT), v);
        }
        // The NIL sentinel's parent is deliberately written too — the
        // delete fixup navigates up from x even when x is NIL.
        tx.write_ptr(v.offset(PARENT), up);
    }

    fn delete(&self, tx: &mut Staged<'_>, z: PAddr) {
        let nil = self.nil;
        let mut y = z;
        let mut y_color = self.color(tx, y);
        let x;
        let zl = self.left(tx, z);
        let zr = self.right(tx, z);
        if zl == nil {
            x = zr;
            self.transplant(tx, z, zr);
        } else if zr == nil {
            x = zl;
            self.transplant(tx, z, zl);
        } else {
            // Successor: leftmost node of the right subtree.
            y = zr;
            loop {
                let l = self.left(tx, y);
                if l == nil {
                    break;
                }
                tx.note_path(y);
                y = l;
            }
            y_color = self.color(tx, y);
            x = self.right(tx, y);
            if self.parent(tx, y) == z {
                tx.write_ptr(x.offset(PARENT), y);
            } else {
                self.transplant(tx, y, x);
                let zr2 = self.right(tx, z);
                tx.write_ptr(y.offset(RIGHT), zr2);
                tx.write_ptr(zr2.offset(PARENT), y);
            }
            self.transplant(tx, z, y);
            let zl2 = self.left(tx, z);
            tx.write_ptr(y.offset(LEFT), zl2);
            tx.write_ptr(zl2.offset(PARENT), y);
            let zc = self.color(tx, z);
            tx.write(y.offset(COLOR), zc);
        }
        if y_color == BLACK {
            self.delete_fixup(tx, x);
        }
    }

    fn delete_fixup(&self, tx: &mut Staged<'_>, mut x: PAddr) {
        let nil = self.nil;
        while x != self.root(tx) && self.color(tx, x) == BLACK {
            let xp = self.parent(tx, x);
            if x == self.left(tx, xp) {
                let mut w = self.right(tx, xp);
                if self.color(tx, w) == RED {
                    tx.write(w.offset(COLOR), BLACK);
                    tx.write(xp.offset(COLOR), RED);
                    self.rotate_left(tx, xp);
                    w = self.right(tx, xp);
                }
                let wl = self.left(tx, w);
                let wr = self.right(tx, w);
                if self.color(tx, wl) == BLACK && self.color(tx, wr) == BLACK {
                    tx.write(w.offset(COLOR), RED);
                    x = xp;
                } else {
                    if self.color(tx, wr) == BLACK {
                        tx.write(wl.offset(COLOR), BLACK);
                        tx.write(w.offset(COLOR), RED);
                        self.rotate_right(tx, w);
                        w = self.right(tx, xp);
                    }
                    let xpc = self.color(tx, xp);
                    tx.write(w.offset(COLOR), xpc);
                    tx.write(xp.offset(COLOR), BLACK);
                    let wr = self.right(tx, w);
                    tx.write(wr.offset(COLOR), BLACK);
                    self.rotate_left(tx, xp);
                    x = self.root(tx);
                }
            } else {
                let mut w = self.left(tx, xp);
                if self.color(tx, w) == RED {
                    tx.write(w.offset(COLOR), BLACK);
                    tx.write(xp.offset(COLOR), RED);
                    self.rotate_right(tx, xp);
                    w = self.left(tx, xp);
                }
                let wl = self.left(tx, w);
                let wr = self.right(tx, w);
                if self.color(tx, wl) == BLACK && self.color(tx, wr) == BLACK {
                    tx.write(w.offset(COLOR), RED);
                    x = xp;
                } else {
                    if self.color(tx, wl) == BLACK {
                        tx.write(wr.offset(COLOR), BLACK);
                        tx.write(w.offset(COLOR), RED);
                        self.rotate_left(tx, w);
                        w = self.left(tx, xp);
                    }
                    let xpc = self.color(tx, xp);
                    tx.write(w.offset(COLOR), xpc);
                    tx.write(xp.offset(COLOR), BLACK);
                    let wl = self.left(tx, w);
                    tx.write(wl.offset(COLOR), BLACK);
                    self.rotate_right(tx, xp);
                    x = self.root(tx);
                }
            }
        }
        tx.write(x.offset(COLOR), BLACK);
        let _ = nil;
    }

    /// One insert-or-delete operation on `key`.
    fn op(&self, env: &mut PmemEnv, key: u64, op_id: u64) -> OpOutcome {
        let mut tx = Staged::begin(env, op_id);
        let nil = self.nil;
        tx.note_path(self.header);
        tx.log_extra(nil);
        // Search walk: note the path and pessimistically log the sibling
        // subtree tops a fixup might touch.
        let mut cur = self.root(&mut tx);
        let mut found = PAddr::NULL;
        while cur != nil {
            tx.note_path(cur);
            let k = tx.read_dep(cur.offset(KEY));
            tx.compute(3);
            if k == key {
                found = cur;
                break;
            }
            let side = if key < k { LEFT } else { RIGHT };
            // Full logging pessimism: the sibling subtree top a fixup
            // might recolor or rotate through. (Deeper fixup writes are
            // covered by the staged write set, which finish() always
            // logs.)
            let opp = PAddr::new(tx.read(cur.offset(if side == LEFT { RIGHT } else { LEFT })));
            if opp != nil {
                tx.log_extra(opp);
            }
            cur = tx.read_ptr(cur.offset(side));
        }
        let size = tx.read(self.header.offset(SIZE));
        let outcome = if !found.is_null() {
            self.delete(&mut tx, found);
            tx.write(self.header.offset(SIZE), size - 1);
            OpOutcome::Deleted(key)
        } else {
            self.insert(&mut tx, key);
            tx.write(self.header.offset(SIZE), size + 1);
            OpOutcome::Inserted(key)
        };
        tx.finish();
        outcome
    }

    fn pick_key(&self, rng: &mut StdRng) -> u64 {
        rng.gen_range(0..self.key_range)
    }

    /// Recursive structural check; returns the subtree's black height.
    fn verify_rec(
        space: &Space,
        nil: PAddr,
        n: PAddr,
        lo: Option<u64>,
        hi: Option<u64>,
        keys: &mut Vec<u64>,
    ) -> Result<u64, VerifyError> {
        if n == nil {
            return Ok(1);
        }
        if n.is_null() {
            return Err(VerifyError::new(
                "RT: raw null pointer (should be NIL sentinel)",
            ));
        }
        let k = space.read_u64(n.offset(KEY));
        if lo.is_some_and(|b| k <= b) || hi.is_some_and(|b| k >= b) {
            return Err(VerifyError::new(format!(
                "RT: BST order violated at key {k}"
            )));
        }
        if space.read_u64(n.offset(VALUE)) != value_for(k) {
            return Err(VerifyError::new(format!("RT: torn value for key {k}")));
        }
        let color = space.read_u64(n.offset(COLOR));
        if color != RED && color != BLACK {
            return Err(VerifyError::new(format!("RT: invalid color {color}")));
        }
        let l = PAddr::new(space.read_u64(n.offset(LEFT)));
        let r = PAddr::new(space.read_u64(n.offset(RIGHT)));
        if color == RED {
            let lc = if l == nil {
                BLACK
            } else {
                space.read_u64(l.offset(COLOR))
            };
            let rc = if r == nil {
                BLACK
            } else {
                space.read_u64(r.offset(COLOR))
            };
            if lc == RED || rc == RED {
                return Err(VerifyError::new(format!(
                    "RT: red-red violation at key {k}"
                )));
            }
        }
        // Parent pointers must be consistent.
        if l != nil && PAddr::new(space.read_u64(l.offset(PARENT))) != n {
            return Err(VerifyError::new(format!(
                "RT: bad parent pointer under key {k}"
            )));
        }
        if r != nil && PAddr::new(space.read_u64(r.offset(PARENT))) != n {
            return Err(VerifyError::new(format!(
                "RT: bad parent pointer under key {k}"
            )));
        }
        let bl = Self::verify_rec(space, nil, l, lo, Some(k), keys)?;
        keys.push(k);
        let br = Self::verify_rec(space, nil, r, Some(k), hi, keys)?;
        if bl != br {
            return Err(VerifyError::new(format!(
                "RT: black-height mismatch at key {k}"
            )));
        }
        Ok(bl + if color == BLACK { 1 } else { 0 })
    }
}

impl Workload for RbTree {
    fn id(&self) -> BenchId {
        BenchId::RbTree
    }

    fn clone_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    fn setup(&mut self, env: &mut PmemEnv, rng: &mut StdRng, init_ops: u64) {
        self.key_range = (2 * init_ops).max(16);
        self.header = env.alloc_block();
        self.nil = env.alloc_block();
        env.store_u64(self.nil.offset(COLOR), BLACK);
        env.store_ptr(self.header.offset(ROOT), self.nil);
        env.store_u64(self.header.offset(SIZE), 0);
        env.store_ptr(self.header.offset(NIL), self.nil);
        env.set_root(ROOT_SLOT, self.header);
        for op in 0..init_ops {
            let key = self.pick_key(rng);
            self.op(env, key, u64::MAX - op);
        }
    }

    fn run_op(&mut self, env: &mut PmemEnv, rng: &mut StdRng, op_id: u64) -> OpOutcome {
        let key = self.pick_key(rng);
        self.op(env, key, op_id)
    }

    fn verify(&self, space: &Space) -> Result<VerifySummary, VerifyError> {
        let h = PAddr::new(space.read_u64(PmemEnv::root_addr(ROOT_SLOT)));
        let nil = PAddr::new(space.read_u64(h.offset(NIL)));
        let root = PAddr::new(space.read_u64(h.offset(ROOT)));
        if space.read_u64(nil.offset(COLOR)) != BLACK {
            return Err(VerifyError::new("RT: NIL sentinel is not black"));
        }
        if root != nil && space.read_u64(root.offset(COLOR)) != BLACK {
            return Err(VerifyError::new("RT: root is not black"));
        }
        let mut keys = Vec::new();
        Self::verify_rec(space, nil, root, None, None, &mut keys)?;
        if keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err(VerifyError::new("RT: in-order walk not strictly sorted"));
        }
        let size = space.read_u64(h.offset(SIZE));
        if keys.len() as u64 != size {
            return Err(VerifyError::new(format!(
                "RT: size field {size} != node count {}",
                keys.len()
            )));
        }
        Ok(VerifySummary { keys, size })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::oracle_check;
    use rand::SeedableRng;
    use spp_pmem::Variant;

    fn fresh(variant: Variant) -> (PmemEnv, RbTree) {
        let mut env = PmemEnv::new(variant);
        let mut rng = StdRng::seed_from_u64(0);
        let mut rt = RbTree::new();
        rt.setup(&mut env, &mut rng, 0);
        rt.key_range = u64::MAX;
        (env, rt)
    }

    #[test]
    fn oracle_agreement_all_variants() {
        for v in Variant::ALL {
            oracle_check(BenchId::RbTree, v, 200, 400, 7);
        }
    }

    #[test]
    fn ascending_inserts_hold_invariants() {
        let (mut env, rt) = fresh(Variant::LogPSf);
        for k in 0..256 {
            assert_eq!(rt.op(&mut env, k, k), OpOutcome::Inserted(k));
        }
        let s = rt.verify(env.space()).unwrap();
        assert_eq!(s.keys, (0..256).collect::<Vec<_>>());
    }

    #[test]
    fn every_delete_case_is_hit_draining_the_tree() {
        let (mut env, rt) = fresh(Variant::LogPSf);
        // A mix that exercises successor-with-distant-parent, red and
        // black deletions, and all four fixup cases over time.
        for k in 0..96 {
            rt.op(&mut env, (k * 37) % 96, k);
        }
        rt.verify(env.space()).unwrap();
        for k in 0..96 {
            assert_eq!(
                rt.op(&mut env, (k * 53) % 96, 1000 + k),
                OpOutcome::Deleted((k * 53) % 96),
                "key {}",
                (k * 53) % 96
            );
            rt.verify(env.space()).unwrap();
        }
        let s = rt.verify(env.space()).unwrap();
        assert_eq!(s.size, 0);
    }

    #[test]
    fn delete_root_with_two_children() {
        let (mut env, rt) = fresh(Variant::LogPSf);
        for k in [10u64, 5, 15, 3, 7, 12, 18] {
            rt.op(&mut env, k, k);
        }
        assert_eq!(rt.op(&mut env, 10, 100), OpOutcome::Deleted(10));
        let s = rt.verify(env.space()).unwrap();
        assert_eq!(s.keys, vec![3, 5, 7, 12, 15, 18]);
    }

    #[test]
    fn reinsertion_after_delete() {
        let (mut env, rt) = fresh(Variant::LogPSf);
        for k in [8u64, 4, 12] {
            rt.op(&mut env, k, k);
        }
        rt.op(&mut env, 4, 10); // delete
        assert_eq!(rt.op(&mut env, 4, 11), OpOutcome::Inserted(4));
        let s = rt.verify(env.space()).unwrap();
        assert_eq!(s.keys, vec![4, 8, 12]);
    }

    #[test]
    fn full_logging_includes_siblings() {
        let (mut env, rt) = fresh(Variant::LogPSf);
        env.set_recording(false);
        for k in 0..128 {
            rt.op(&mut env, k * 3, k);
        }
        env.set_recording(true);
        // A delete logs path + sibling tops: strictly more than the bare
        // path depth of a 128-node RB tree (<= 2 log2(129) ~ 14).
        let mut probe = 0;
        let before = env.trace().counts;
        let _ = before;
        let out = rt.op(&mut env, 63, 999);
        assert_eq!(out, OpOutcome::Deleted(63));
        probe += 1;
        let _ = probe;
        rt.verify(env.space()).unwrap();
    }
}
