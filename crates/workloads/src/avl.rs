//! AT: a persistent AVL tree with full logging (§3.2).
//!
//! Tree operations use the paper's *full logging* policy: the entire
//! root-to-leaf search path is undo-logged before any modification, so a
//! single set of four persist barriers covers the operation whether or
//! not rebalancing triggers, and the tree is always balanced after
//! recovery. Deletions additionally log the rebalancing pivots they
//! *might* rotate through (the opposite-direction child of every path
//! node and its children), matching the paper's "always assume the
//! worst" stance.

use rand::rngs::StdRng;
use rand::Rng;
use spp_pmem::{PAddr, PmemEnv, Space};

use crate::spec::BenchId;
use crate::staged::Staged;
use crate::{OpOutcome, VerifyError, VerifySummary, Workload};

// Node layout (one 64-byte block).
const KEY: u64 = 0;
const VALUE: u64 = 8;
const LEFT: u64 = 16;
const RIGHT: u64 = 24;
const HEIGHT: u64 = 32;

// Header block layout.
const ROOT: u64 = 0;
const SIZE: u64 = 8;

const ROOT_SLOT: usize = 0;

fn value_for(key: u64) -> u64 {
    key.wrapping_mul(0x100_0193).wrapping_add(0x811C)
}

/// The AT benchmark: AVL tree with full-logging WAL transactions.
#[derive(Debug, Default, Clone)]
pub struct AvlTree {
    header: PAddr,
    key_range: u64,
}

impl AvlTree {
    /// Creates an uninitialized benchmark; call
    /// [`setup`](Workload::setup) first.
    pub fn new() -> Self {
        Self::default()
    }

    fn height(tx: &mut Staged<'_>, n: PAddr) -> u64 {
        if n.is_null() {
            tx.compute(1);
            0
        } else {
            tx.read(n.offset(HEIGHT))
        }
    }

    fn fix_height(tx: &mut Staged<'_>, n: PAddr) {
        let l = tx.read_ptr(n.offset(LEFT));
        let r = tx.read_ptr(n.offset(RIGHT));
        let hl = Self::height(tx, l);
        let hr = Self::height(tx, r);
        tx.write(n.offset(HEIGHT), hl.max(hr) + 1);
    }

    /// Right rotation around `z`; returns the new subtree root.
    fn rotate_right(tx: &mut Staged<'_>, z: PAddr) -> PAddr {
        let y = tx.read_ptr(z.offset(LEFT));
        let t = tx.read_ptr(y.offset(RIGHT));
        tx.write_ptr(z.offset(LEFT), t);
        tx.write_ptr(y.offset(RIGHT), z);
        Self::fix_height(tx, z);
        Self::fix_height(tx, y);
        y
    }

    /// Left rotation around `z`; returns the new subtree root.
    fn rotate_left(tx: &mut Staged<'_>, z: PAddr) -> PAddr {
        let y = tx.read_ptr(z.offset(RIGHT));
        let t = tx.read_ptr(y.offset(LEFT));
        tx.write_ptr(z.offset(RIGHT), t);
        tx.write_ptr(y.offset(LEFT), z);
        Self::fix_height(tx, z);
        Self::fix_height(tx, y);
        y
    }

    /// Restores the AVL invariant at `n`; returns the subtree root.
    fn rebalance(tx: &mut Staged<'_>, n: PAddr) -> PAddr {
        let l = tx.read_ptr(n.offset(LEFT));
        let r = tx.read_ptr(n.offset(RIGHT));
        let hl = Self::height(tx, l);
        let hr = Self::height(tx, r);
        tx.compute(2);
        if hl > hr + 1 {
            let ll = tx.read_ptr(l.offset(LEFT));
            let lr = tx.read_ptr(l.offset(RIGHT));
            if Self::height(tx, ll) >= Self::height(tx, lr) {
                Self::rotate_right(tx, n)
            } else {
                let nl = Self::rotate_left(tx, l);
                tx.write_ptr(n.offset(LEFT), nl);
                Self::rotate_right(tx, n)
            }
        } else if hr > hl + 1 {
            let rl = tx.read_ptr(r.offset(LEFT));
            let rr = tx.read_ptr(r.offset(RIGHT));
            if Self::height(tx, rr) >= Self::height(tx, rl) {
                Self::rotate_left(tx, n)
            } else {
                let nr = Self::rotate_right(tx, r);
                tx.write_ptr(n.offset(RIGHT), nr);
                Self::rotate_left(tx, n)
            }
        } else {
            tx.write(n.offset(HEIGHT), hl.max(hr) + 1);
            n
        }
    }

    /// Inserts `key`; returns `(new_subtree_root, inserted)`.
    fn insert_rec(tx: &mut Staged<'_>, n: PAddr, key: u64) -> (PAddr, bool) {
        if n.is_null() {
            let m = tx.alloc_block();
            tx.write(m.offset(KEY), key);
            tx.write(m.offset(VALUE), value_for(key));
            tx.write_ptr(m.offset(LEFT), PAddr::NULL);
            tx.write_ptr(m.offset(RIGHT), PAddr::NULL);
            tx.write(m.offset(HEIGHT), 1);
            return (m, true);
        }
        tx.note_path(n);
        let k = tx.read(n.offset(KEY));
        tx.compute(1);
        if k == key {
            return (n, false);
        }
        let side = if key < k { LEFT } else { RIGHT };
        let child = tx.read_ptr(n.offset(side));
        let (child2, inserted) = Self::insert_rec(tx, child, key);
        if child2 != child {
            tx.write_ptr(n.offset(side), child2);
        }
        if !inserted {
            return (n, false);
        }
        (Self::rebalance(tx, n), true)
    }

    /// Deletes `key`; returns `(new_subtree_root, deleted)`.
    fn delete_rec(tx: &mut Staged<'_>, n: PAddr, key: u64) -> (PAddr, bool) {
        if n.is_null() {
            return (PAddr::NULL, false);
        }
        tx.note_path(n);
        let k = tx.read(n.offset(KEY));
        tx.compute(1);
        if key != k {
            let side = if key < k { LEFT } else { RIGHT };
            // Full logging pessimism: the opposite child is the pivot a
            // rebalance at `n` could rotate through. (Double rotations
            // also write the pivot's child; that block enters the log
            // set through the staged write set, which finish() always
            // logs.)
            let opp = PAddr::new(tx.read(n.offset(if side == LEFT { RIGHT } else { LEFT })));
            tx.log_extra(opp);
            let child = tx.read_ptr(n.offset(side));
            let (child2, deleted) = Self::delete_rec(tx, child, key);
            if child2 != child {
                tx.write_ptr(n.offset(side), child2);
            }
            if !deleted {
                return (n, false);
            }
            return (Self::rebalance(tx, n), true);
        }
        // Found `n`.
        let l = tx.read_ptr(n.offset(LEFT));
        let r = tx.read_ptr(n.offset(RIGHT));
        tx.compute(1);
        if l.is_null() {
            return (r, true);
        }
        if r.is_null() {
            return (l, true);
        }
        // Two children: replace with the successor (leftmost of the
        // right subtree), then delete the successor from that subtree.
        let mut m = r;
        loop {
            tx.note_path(m);
            let ml = tx.read_ptr(m.offset(LEFT));
            if ml.is_null() {
                break;
            }
            m = ml;
        }
        let succ_key = tx.read(m.offset(KEY));
        let succ_val = tx.read(m.offset(VALUE));
        tx.write(n.offset(KEY), succ_key);
        tx.write(n.offset(VALUE), succ_val);
        let (r2, _) = Self::delete_rec(tx, r, succ_key);
        if r2 != r {
            tx.write_ptr(n.offset(RIGHT), r2);
        }
        (Self::rebalance(tx, n), true)
    }

    /// One insert-or-delete operation on `key`.
    fn op(&self, env: &mut PmemEnv, key: u64, op_id: u64) -> OpOutcome {
        let mut tx = Staged::begin(env, op_id);
        let h = self.header;
        tx.note_path(h);
        let root = tx.read_ptr(h.offset(ROOT));
        // Search to decide insert vs delete (one walk, noting the path —
        // this is the walk full logging piggybacks on).
        let mut cur = root;
        let mut found = false;
        while !cur.is_null() {
            tx.note_path(cur);
            let k = tx.read_dep(cur.offset(KEY));
            tx.compute(3);
            if k == key {
                found = true;
                break;
            }
            cur = tx.read_ptr(cur.offset(if key < k { LEFT } else { RIGHT }));
        }
        let size = tx.read(h.offset(SIZE));
        let outcome = if found {
            let (root2, deleted) = Self::delete_rec(&mut tx, root, key);
            debug_assert!(deleted);
            tx.write_ptr(h.offset(ROOT), root2);
            tx.write(h.offset(SIZE), size - 1);
            OpOutcome::Deleted(key)
        } else {
            let (root2, inserted) = Self::insert_rec(&mut tx, root, key);
            debug_assert!(inserted);
            tx.write_ptr(h.offset(ROOT), root2);
            tx.write(h.offset(SIZE), size + 1);
            OpOutcome::Inserted(key)
        };
        tx.finish();
        outcome
    }

    fn pick_key(&self, rng: &mut StdRng) -> u64 {
        rng.gen_range(0..self.key_range)
    }

    fn verify_rec(
        space: &Space,
        n: PAddr,
        lo: Option<u64>,
        hi: Option<u64>,
        keys: &mut Vec<u64>,
    ) -> Result<u64, VerifyError> {
        if n.is_null() {
            return Ok(0);
        }
        if keys.len() > 10_000_000 {
            return Err(VerifyError::new("AT: runaway traversal (cycle?)"));
        }
        let k = space.read_u64(n.offset(KEY));
        if lo.is_some_and(|b| k <= b) || hi.is_some_and(|b| k >= b) {
            return Err(VerifyError::new(format!(
                "AT: BST order violated at key {k}"
            )));
        }
        if space.read_u64(n.offset(VALUE)) != value_for(k) {
            return Err(VerifyError::new(format!("AT: torn value for key {k}")));
        }
        let hl = Self::verify_rec(
            space,
            PAddr::new(space.read_u64(n.offset(LEFT))),
            lo,
            Some(k),
            keys,
        )?;
        keys.push(k);
        let hr = Self::verify_rec(
            space,
            PAddr::new(space.read_u64(n.offset(RIGHT))),
            Some(k),
            hi,
            keys,
        )?;
        if hl.abs_diff(hr) > 1 {
            return Err(VerifyError::new(format!("AT: balance violated at key {k}")));
        }
        let h = hl.max(hr) + 1;
        if space.read_u64(n.offset(HEIGHT)) != h {
            return Err(VerifyError::new(format!("AT: stale height at key {k}")));
        }
        Ok(h)
    }
}

impl Workload for AvlTree {
    fn id(&self) -> BenchId {
        BenchId::AvlTree
    }

    fn clone_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    fn setup(&mut self, env: &mut PmemEnv, rng: &mut StdRng, init_ops: u64) {
        self.key_range = (2 * init_ops).max(16);
        self.header = env.alloc_block();
        env.store_ptr(self.header.offset(ROOT), PAddr::NULL);
        env.store_u64(self.header.offset(SIZE), 0);
        env.set_root(ROOT_SLOT, self.header);
        for op in 0..init_ops {
            let key = self.pick_key(rng);
            self.op(env, key, u64::MAX - op);
        }
    }

    fn run_op(&mut self, env: &mut PmemEnv, rng: &mut StdRng, op_id: u64) -> OpOutcome {
        let key = self.pick_key(rng);
        self.op(env, key, op_id)
    }

    fn verify(&self, space: &Space) -> Result<VerifySummary, VerifyError> {
        let h = PAddr::new(space.read_u64(PmemEnv::root_addr(ROOT_SLOT)));
        let root = PAddr::new(space.read_u64(h.offset(ROOT)));
        let mut keys = Vec::new();
        Self::verify_rec(space, root, None, None, &mut keys)?;
        if keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err(VerifyError::new("AT: in-order walk not strictly sorted"));
        }
        let size = space.read_u64(h.offset(SIZE));
        if keys.len() as u64 != size {
            return Err(VerifyError::new(format!(
                "AT: size field {size} != node count {}",
                keys.len()
            )));
        }
        Ok(VerifySummary { keys, size })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::oracle_check;
    use rand::SeedableRng;
    use spp_pmem::Variant;

    #[test]
    fn oracle_agreement_all_variants() {
        for v in Variant::ALL {
            oracle_check(BenchId::AvlTree, v, 200, 400, 5);
        }
    }

    #[test]
    fn sequential_inserts_stay_balanced() {
        // Ascending inserts are the classic AVL stress: every insert
        // rotates.
        let mut env = PmemEnv::new(Variant::LogPSf);
        let mut rng = StdRng::seed_from_u64(0);
        let mut at = AvlTree::new();
        at.setup(&mut env, &mut rng, 0);
        at.key_range = u64::MAX;
        for k in 0..256 {
            assert_eq!(at.op(&mut env, k, k), OpOutcome::Inserted(k));
        }
        let s = at.verify(env.space()).unwrap();
        assert_eq!(s.size, 256);
        assert_eq!(s.keys, (0..256).collect::<Vec<_>>());
        // Height of a 256-node AVL tree is at most 1.44 log2(257) ≈ 12.
        let root = PAddr::new(env.space().read_u64(at.header.offset(ROOT)));
        assert!(env.space().read_u64(root.offset(HEIGHT)) <= 12);
    }

    #[test]
    fn descending_deletes_stay_balanced() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let mut rng = StdRng::seed_from_u64(0);
        let mut at = AvlTree::new();
        at.setup(&mut env, &mut rng, 0);
        at.key_range = u64::MAX;
        for k in 0..128 {
            at.op(&mut env, k, k);
        }
        for k in (32..128).rev() {
            assert_eq!(at.op(&mut env, k, 1000 + k), OpOutcome::Deleted(k));
            at.verify(env.space()).unwrap();
        }
        let s = at.verify(env.space()).unwrap();
        assert_eq!(s.keys, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn delete_node_with_two_children() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let mut rng = StdRng::seed_from_u64(0);
        let mut at = AvlTree::new();
        at.setup(&mut env, &mut rng, 0);
        at.key_range = u64::MAX;
        for k in [50, 25, 75, 10, 30, 60, 90, 27, 35] {
            at.op(&mut env, k, k);
        }
        // 25 has two children; successor is 27.
        assert_eq!(at.op(&mut env, 25, 100), OpOutcome::Deleted(25));
        let s = at.verify(env.space()).unwrap();
        assert!(!s.keys.contains(&25));
        assert!(s.keys.contains(&27));
    }

    #[test]
    fn delete_root() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let mut rng = StdRng::seed_from_u64(0);
        let mut at = AvlTree::new();
        at.setup(&mut env, &mut rng, 0);
        at.key_range = u64::MAX;
        for k in [2, 1, 3] {
            at.op(&mut env, k, k);
        }
        assert_eq!(at.op(&mut env, 2, 10), OpOutcome::Deleted(2));
        let s = at.verify(env.space()).unwrap();
        assert_eq!(s.keys, vec![1, 3]);
    }

    #[test]
    fn full_logging_covers_the_path() {
        // A deep insert must log at least the whole search path.
        let mut env = PmemEnv::new(Variant::LogPSf);
        let mut rng = StdRng::seed_from_u64(0);
        let mut at = AvlTree::new();
        at.setup(&mut env, &mut rng, 0);
        at.key_range = u64::MAX;
        env.set_recording(false);
        for k in 0..512 {
            at.op(&mut env, k * 2, k);
        }
        env.set_recording(true);
        let mut tx = Staged::begin(&mut env, 0);
        tx.note_path(at.header);
        let root = tx.read_ptr(at.header.offset(ROOT));
        let (r2, ins) = AvlTree::insert_rec(&mut tx, root, 601);
        assert!(ins);
        tx.write_ptr(at.header.offset(ROOT), r2);
        let sz = tx.read(at.header.offset(SIZE));
        tx.write(at.header.offset(SIZE), sz + 1);
        let logged = tx.finish();
        assert!(logged >= 8, "expected path-length logging, got {logged}");
    }
}
