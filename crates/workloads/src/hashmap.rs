//! HM: a persistent open-addressing hash map with transactional resize.
//!
//! The paper's hash map uses a chained-probing collision policy ("the
//! next consecutive entry is checked"), undo-logs the touched entry and
//! the table header per operation, and doubles the table when no free
//! entry can be found — copying every record into the new table with a
//! `clwb` per insertion and a final `pcommit` (§3.2).

use rand::rngs::StdRng;
use rand::Rng;
use spp_pmem::{PAddr, PmemEnv, Space, BLOCK_SIZE};

use crate::spec::BenchId;
use crate::staged::Staged;
use crate::{OpOutcome, VerifyError, VerifySummary, Workload};

// Header block layout.
const TABLE: u64 = 0;
const CAPACITY: u64 = 8;
const SIZE: u64 = 16;
const TOMBSTONES: u64 = 24;

// Entry layout (one 64-byte block per entry).
const STATE: u64 = 0;
const KEY: u64 = 8;
const VALUE: u64 = 16;

const EMPTY: u64 = 0;
const OCCUPIED: u64 = 1;
const TOMBSTONE: u64 = 2;

const ROOT_SLOT: usize = 0;
const INITIAL_CAPACITY: u64 = 1024;

fn value_for(key: u64) -> u64 {
    key.rotate_left(17) ^ 0xC0FF_EE00_D15E_A5E5
}

fn hash(key: u64, capacity: u64) -> u64 {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) & (capacity - 1)
}

/// The HM benchmark: linear-probing hash map, tombstone deletes, and
/// transactional doubling resize.
#[derive(Debug, Default, Clone)]
pub struct HashMap {
    header: PAddr,
    key_range: u64,
}

impl HashMap {
    /// Creates an uninitialized benchmark; call
    /// [`setup`](Workload::setup) first.
    pub fn new() -> Self {
        Self::default()
    }

    fn entry_addr(table: PAddr, i: u64) -> PAddr {
        table.offset(i * BLOCK_SIZE)
    }

    /// One insert-or-delete operation on `key`. May run a resize
    /// transaction first.
    fn op(&self, env: &mut PmemEnv, key: u64, op_id: u64) -> OpOutcome {
        // Resize outside the operation's transaction if the table is
        // too full to guarantee a probe terminates quickly.
        if self.needs_resize(env) {
            self.resize(env, op_id);
        }
        let mut tx = Staged::begin(env, op_id);
        let h = self.header;
        let table = tx.read_ptr(h.offset(TABLE));
        let cap = tx.read(h.offset(CAPACITY));
        let mut i = hash(key, cap);
        tx.compute(2); // hash computation
        let mut reuse: Option<PAddr> = None;
        let outcome = loop {
            let e = Self::entry_addr(table, i);
            let state = tx.read(e.offset(STATE));
            tx.compute(1);
            if state == EMPTY {
                // Absent: insert into the first reusable slot seen.
                let (slot, reused) = match reuse {
                    Some(t) => (t, true),
                    None => (e, false),
                };
                tx.write(slot.offset(STATE), OCCUPIED);
                tx.write(slot.offset(KEY), key);
                tx.write(slot.offset(VALUE), value_for(key));
                let size = tx.read(h.offset(SIZE));
                tx.write(h.offset(SIZE), size + 1);
                if reused {
                    let t = tx.read(h.offset(TOMBSTONES));
                    tx.write(h.offset(TOMBSTONES), t - 1);
                }
                break OpOutcome::Inserted(key);
            }
            if state == OCCUPIED && tx.read(e.offset(KEY)) == key {
                tx.write(e.offset(STATE), TOMBSTONE);
                let size = tx.read(h.offset(SIZE));
                tx.write(h.offset(SIZE), size - 1);
                let t = tx.read(h.offset(TOMBSTONES));
                tx.write(h.offset(TOMBSTONES), t + 1);
                break OpOutcome::Deleted(key);
            }
            if state == TOMBSTONE && reuse.is_none() {
                reuse = Some(e);
            }
            i = (i + 1) & (cap - 1);
            tx.compute(1);
        };
        tx.finish();
        outcome
    }

    fn needs_resize(&self, env: &mut PmemEnv) -> bool {
        let h = self.header;
        let cap = env.load_u64(h.offset(CAPACITY));
        let size = env.load_u64(h.offset(SIZE));
        let tombs = env.load_u64(h.offset(TOMBSTONES));
        env.compute(3);
        (size + tombs + 1) * 10 >= cap * 7
    }

    /// Doubles the table in its own transaction. The new table is a
    /// fresh allocation, so only the header needs undo logging: a crash
    /// mid-copy recovers the header and the old table is untouched.
    fn resize(&self, env: &mut PmemEnv, op_id: u64) {
        let h = self.header;
        let mut tx = Staged::begin(env, op_id | (1 << 63));
        let old_table = tx.read_ptr(h.offset(TABLE));
        let old_cap = tx.read(h.offset(CAPACITY));
        let new_cap = old_cap * 2;
        let new_table = tx.alloc_blocks(new_cap);
        let mut size = 0u64;
        for i in 0..old_cap {
            let e = Self::entry_addr(old_table, i);
            if tx.read(e.offset(STATE)) != OCCUPIED {
                tx.compute(1);
                continue;
            }
            let key = tx.read(e.offset(KEY));
            let val = tx.read(e.offset(VALUE));
            let mut j = hash(key, new_cap);
            tx.compute(2);
            loop {
                let ne = Self::entry_addr(new_table, j);
                if tx.read(ne.offset(STATE)) == EMPTY {
                    tx.write(ne.offset(STATE), OCCUPIED);
                    tx.write(ne.offset(KEY), key);
                    tx.write(ne.offset(VALUE), val);
                    break;
                }
                j = (j + 1) & (new_cap - 1);
                tx.compute(1);
            }
            size += 1;
        }
        tx.write_ptr(h.offset(TABLE), new_table);
        tx.write(h.offset(CAPACITY), new_cap);
        tx.write(h.offset(SIZE), size);
        tx.write(h.offset(TOMBSTONES), 0);
        tx.finish();
    }

    fn pick_key(&self, rng: &mut StdRng) -> u64 {
        rng.gen_range(0..self.key_range)
    }
}

impl Workload for HashMap {
    fn id(&self) -> BenchId {
        BenchId::HashMap
    }

    fn clone_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    fn setup(&mut self, env: &mut PmemEnv, rng: &mut StdRng, init_ops: u64) {
        self.key_range = (2 * init_ops).max(16);
        self.header = env.alloc_block();
        let table = env.alloc_blocks(INITIAL_CAPACITY);
        env.store_ptr(self.header.offset(TABLE), table);
        env.store_u64(self.header.offset(CAPACITY), INITIAL_CAPACITY);
        env.store_u64(self.header.offset(SIZE), 0);
        env.store_u64(self.header.offset(TOMBSTONES), 0);
        env.set_root(ROOT_SLOT, self.header);
        for op in 0..init_ops {
            let key = self.pick_key(rng);
            self.op(env, key, u64::MAX - op);
        }
        // Leave headroom so the measured phase does not immediately run
        // into a table doubling (the resize path stays exercised through
        // population and through explicit tests).
        while {
            let cap = env.load_u64(self.header.offset(CAPACITY));
            let size = env.load_u64(self.header.offset(SIZE));
            let tombs = env.load_u64(self.header.offset(TOMBSTONES));
            (size + tombs) * 10 >= cap * 6
        } {
            self.resize(env, u64::MAX);
        }
    }

    fn run_op(&mut self, env: &mut PmemEnv, rng: &mut StdRng, op_id: u64) -> OpOutcome {
        let key = self.pick_key(rng);
        self.op(env, key, op_id)
    }

    fn verify(&self, space: &Space) -> Result<VerifySummary, VerifyError> {
        let h = PAddr::new(space.read_u64(PmemEnv::root_addr(ROOT_SLOT)));
        let table = PAddr::new(space.read_u64(h.offset(TABLE)));
        let cap = space.read_u64(h.offset(CAPACITY));
        if cap == 0 || (cap & (cap - 1)) != 0 {
            return Err(VerifyError::new(format!(
                "HM: capacity {cap} not a power of two"
            )));
        }
        let mut keys = Vec::new();
        let mut tombs = 0u64;
        for i in 0..cap {
            let e = Self::entry_addr(table, i);
            match space.read_u64(e.offset(STATE)) {
                EMPTY => {}
                TOMBSTONE => tombs += 1,
                OCCUPIED => {
                    let k = space.read_u64(e.offset(KEY));
                    if space.read_u64(e.offset(VALUE)) != value_for(k) {
                        return Err(VerifyError::new(format!("HM: torn value for key {k}")));
                    }
                    // Probe-chain reachability: walking from hash(k), the
                    // entry must appear before any EMPTY slot.
                    let mut j = hash(k, cap);
                    loop {
                        if j == i {
                            break;
                        }
                        let s = space.read_u64(Self::entry_addr(table, j).offset(STATE));
                        if s == EMPTY {
                            return Err(VerifyError::new(format!(
                                "HM: key {k} unreachable from its hash slot"
                            )));
                        }
                        j = (j + 1) & (cap - 1);
                    }
                    keys.push(k);
                }
                s => return Err(VerifyError::new(format!("HM: invalid entry state {s}"))),
            }
        }
        let size = space.read_u64(h.offset(SIZE));
        if keys.len() as u64 != size {
            return Err(VerifyError::new(format!(
                "HM: size field {size} != occupied count {}",
                keys.len()
            )));
        }
        if space.read_u64(h.offset(TOMBSTONES)) != tombs {
            return Err(VerifyError::new("HM: tombstone count mismatch"));
        }
        keys.sort_unstable();
        if keys.windows(2).any(|w| w[0] == w[1]) {
            return Err(VerifyError::new("HM: duplicate key"));
        }
        Ok(VerifySummary { keys, size })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::oracle_check;
    use rand::SeedableRng;
    use spp_pmem::Variant;

    #[test]
    fn oracle_agreement_all_variants() {
        for v in Variant::ALL {
            oracle_check(BenchId::HashMap, v, 200, 300, 2);
        }
    }

    #[test]
    fn resize_preserves_contents() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let mut rng = StdRng::seed_from_u64(0);
        let mut hm = HashMap::new();
        hm.key_range = 1 << 40; // force distinct keys
        hm.setup(&mut env, &mut rng, 0);
        hm.key_range = 1 << 40;
        // Insert enough distinct keys to force at least one doubling.
        let n = INITIAL_CAPACITY; // > 0.7 * capacity
        for k in 0..n {
            assert_eq!(
                hm.op(&mut env, k * 3 + 1, k),
                OpOutcome::Inserted(k * 3 + 1)
            );
        }
        let s = hm.verify(env.space()).unwrap();
        assert_eq!(s.size, n);
        let cap = env.space().read_u64(hm.header.offset(CAPACITY));
        assert!(
            cap > INITIAL_CAPACITY,
            "expected a resize, capacity still {cap}"
        );
    }

    #[test]
    fn tombstones_are_reused() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let mut rng = StdRng::seed_from_u64(0);
        let mut hm = HashMap::new();
        hm.setup(&mut env, &mut rng, 0);
        hm.key_range = 1 << 40;
        hm.op(&mut env, 10, 0);
        hm.op(&mut env, 10, 1); // delete -> tombstone
        assert_eq!(env.space().read_u64(hm.header.offset(TOMBSTONES)), 1);
        hm.op(&mut env, 10, 2); // reinsert reuses the slot
        assert_eq!(env.space().read_u64(hm.header.offset(TOMBSTONES)), 0);
        hm.verify(env.space()).unwrap();
    }

    #[test]
    fn collision_chains_probe_linearly() {
        let mut env = PmemEnv::new(Variant::Base);
        let mut rng = StdRng::seed_from_u64(0);
        let mut hm = HashMap::new();
        hm.setup(&mut env, &mut rng, 0);
        hm.key_range = 1 << 40;
        // Find three keys that collide in the initial table.
        let mut colliders = Vec::new();
        let mut k = 1u64;
        let target = hash(77, INITIAL_CAPACITY);
        while colliders.len() < 3 {
            if hash(k, INITIAL_CAPACITY) == target {
                colliders.push(k);
            }
            k += 1;
        }
        for (i, &c) in colliders.iter().enumerate() {
            assert_eq!(hm.op(&mut env, c, i as u64), OpOutcome::Inserted(c));
        }
        let s = hm.verify(env.space()).unwrap();
        assert_eq!(s.size, 3);
        // Delete the middle one; the chain must stay reachable.
        hm.op(&mut env, colliders[1], 10);
        hm.verify(env.space()).unwrap();
        // And the last one must still be found (delete works through the
        // tombstone).
        assert_eq!(
            hm.op(&mut env, colliders[2], 11),
            OpOutcome::Deleted(colliders[2])
        );
        hm.verify(env.space()).unwrap();
    }
}
