//! KV: a crash-recoverable copy-on-write B+tree storage engine with a
//! ring write-ahead log, driven by a YCSB-style mixed workload.
//!
//! This is the suite's production-shaped workload: unlike the paper's
//! seven small structures (one undo-logged operation per transaction),
//! the KV engine has a genuine multi-step recovery path.
//!
//! ## Design
//!
//! - **Stable/working roots.** The on-NVMM tree is immutable between
//!   checkpoints. Mutations copy every node on the root-to-leaf path to
//!   a fresh page (copy-on-write); a volatile working root tracks the
//!   current tree. A *checkpoint* flushes all pages written since the
//!   previous checkpoint, then publishes the working root with one
//!   atomic meta-block write. Pages replaced since the previous
//!   checkpoint are reclaimed only after the *next* checkpoint commits,
//!   so the previous stable tree stays intact for fallback.
//! - **Dual meta blocks.** Checkpoint `seq` writes meta slot `seq % 2`.
//!   Recovery picks the checksum-valid meta with the highest sequence
//!   number; a torn meta write therefore falls back one checkpoint.
//! - **Ring WAL.** Every mutation first appends one checksummed record
//!   (lsn, kind, key, value) to a ring of 64-byte slots and makes it
//!   durable with `clwb; sfence; pcommit; sfence` before touching the
//!   tree. Recovery *replays* the ring from the chosen checkpoint's
//!   LSN, stopping at the first slot whose stored LSN or checksum does
//!   not match — torn-tail detection, exactly like the report journal.
//!   The ring must hold at least two checkpoint intervals
//!   (`wal_cap >= 2 * ckpt_every`) so the fallback meta's records are
//!   never overwritten before its successor commits.
//!
//! The crash oracle ([`KvBundle`]) is replay-based: it recovers a crash
//! image end to end (meta election → structural walk → WAL replay) and
//! requires the result to equal the shadow state at the exact mutation
//! count the surviving WAL tail implies — not merely one of two
//! adjacent states. A test-only knob that elides the WAL record
//! checksum makes the oracle fail, proving the replay path is
//! load-bearing.

use std::collections::{BTreeMap, BTreeSet};

use spp_pmem::{
    hash64, splitmix64, CrashSim, Event, FlushMode, PAddr, PmemEnv, Space, Variant, BLOCK_SIZE,
};

use crate::oracle::{check_scan_window, OracleViolation, ViolationKind};
use crate::zipf::Zipf;
use crate::VerifyError;

/// Root-directory slot holding the meta-pair base address.
pub const META_SLOT: usize = 0;

/// Maximum keys per tree node (same 2-3-4 geometry as the paper's BT).
pub const MAX_KEYS: usize = 3;

// Node layout (one 64-byte block), shared with `btree.rs` idiom:
// header low byte = nkeys, bit 8 = leaf flag.
const HDR: u64 = 0;
const KEYS: u64 = 8; // 3 x u64 at 8, 16, 24
const CHILDREN: u64 = 32; // internal: 4 x u64
const VALUES: u64 = 32; // leaf: 3 x u64
const LEAF_FLAG: u64 = 1 << 8;

// Meta block field offsets (u64 each); CKSUM covers the six fields.
const M_SEQ: u64 = 0;
const M_ROOT: u64 = 8;
const M_COUNT: u64 = 16;
const M_LSN: u64 = 24;
const M_WAL_BASE: u64 = 32;
const M_WAL_CAP: u64 = 40;
const M_CKSUM: u64 = 48;

// WAL record field offsets (one 64-byte slot per record).
const R_LSN: u64 = 0;
const R_KIND: u64 = 8;
const R_KEY: u64 = 16;
const R_VAL: u64 = 24;
const R_CKSUM: u64 = 32;

/// WAL record kind: upsert.
const REC_PUT: u64 = 1;

const GOLD: u64 = 0x9E37_79B9_7F4A_7C15;

fn le_cat(fields: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 * fields.len());
    for f in fields {
        out.extend_from_slice(&f.to_le_bytes());
    }
    out
}

fn record_checksum(lsn: u64, kind: u64, key: u64, val: u64) -> u64 {
    hash64(&le_cat(&[lsn, kind, key, val]))
}

fn meta_checksum(m: &Meta) -> u64 {
    hash64(&le_cat(&[
        m.seq, m.root, m.count, m.lsn, m.wal_base, m.wal_cap,
    ]))
}

/// One decoded checkpoint meta block.
#[derive(Debug, Clone, Copy)]
struct Meta {
    seq: u64,
    root: u64,
    count: u64,
    lsn: u64,
    wal_base: u64,
    wal_cap: u64,
}

fn read_meta(space: &Space, slot: PAddr) -> Option<Meta> {
    let m = Meta {
        seq: space.read_u64(slot.offset(M_SEQ)),
        root: space.read_u64(slot.offset(M_ROOT)),
        count: space.read_u64(slot.offset(M_COUNT)),
        lsn: space.read_u64(slot.offset(M_LSN)),
        wal_base: space.read_u64(slot.offset(M_WAL_BASE)),
        wal_cap: space.read_u64(slot.offset(M_WAL_CAP)),
    };
    (space.read_u64(slot.offset(M_CKSUM)) == meta_checksum(&m) && m.wal_cap >= 2).then_some(m)
}

/// A volatile view of one tree page (read once, edited, written back).
#[derive(Debug, Clone)]
struct Page {
    addr: PAddr,
    leaf: bool,
    keys: Vec<u64>,
    /// Children (internal) or values (leaf).
    slots: Vec<u64>,
}

impl Page {
    fn load(env: &mut PmemEnv, addr: PAddr) -> Page {
        let hdr = env.load_ptr(addr.offset(HDR)).raw(); // dependent first touch
        let leaf = hdr & LEAF_FLAG != 0;
        let n = (hdr & 0xFF) as usize;
        let mut keys = Vec::with_capacity(3);
        for i in 0..n {
            keys.push(env.load_u64(addr.offset(KEYS + 8 * i as u64)));
        }
        let nslots = if leaf { n } else { n + 1 };
        let base = if leaf { VALUES } else { CHILDREN };
        let mut slots = Vec::with_capacity(4);
        for i in 0..nslots {
            slots.push(env.load_u64(addr.offset(base + 8 * i as u64)));
        }
        Page {
            addr,
            leaf,
            keys,
            slots,
        }
    }

    fn store(&self, env: &mut PmemEnv) {
        let hdr = self.keys.len() as u64 | if self.leaf { LEAF_FLAG } else { 0 };
        env.store_u64(self.addr.offset(HDR), hdr);
        for (i, &k) in self.keys.iter().enumerate() {
            env.store_u64(self.addr.offset(KEYS + 8 * i as u64), k);
        }
        let base = if self.leaf { VALUES } else { CHILDREN };
        for (i, &s) in self.slots.iter().enumerate() {
            env.store_u64(self.addr.offset(base + 8 * i as u64), s);
        }
    }

    fn nkeys(&self) -> usize {
        self.keys.len()
    }
}

/// Event-trace coordinates of one WAL append, used by the crash oracle
/// to decide which mutations are guaranteed durable at a crash point.
#[derive(Debug, Clone, Copy)]
pub struct MutationTrace {
    /// The ring slot the record was written to.
    pub wal_slot: PAddr,
    /// Trace index of the record's first store.
    pub first_store_idx: usize,
    /// Trace index of the record's last store (the checksum).
    pub last_store_idx: usize,
}

/// The recovered logical state of a KV image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvRecovered {
    /// Full key → value contents after checkpoint walk + WAL replay.
    pub contents: BTreeMap<u64, u64>,
    /// The elected checkpoint's sequence number.
    pub ckpt_seq: u64,
    /// LSN the elected checkpoint was taken at.
    pub stable_lsn: u64,
    /// WAL records replayed on top of the checkpoint.
    pub replayed: u64,
    /// `stable_lsn + replayed`: total mutations recovered.
    pub total_lsn: u64,
}

/// The COW-checkpointed B+tree KV engine.
#[derive(Debug, Clone)]
pub struct KvEngine {
    meta: PAddr,
    wal: PAddr,
    wal_cap: u64,
    ckpt_every: u64,
    /// Working root; diverges from the stable root between checkpoints.
    root: PAddr,
    count: u64,
    lsn: u64,
    stable_lsn: u64,
    ckpt_seq: u64,
    /// Pages written since the last checkpoint (raw addresses; a
    /// `BTreeSet` so checkpoint flush order is deterministic).
    owned: BTreeSet<u64>,
    /// Stable-tree pages replaced since the last checkpoint; reclaimed
    /// only after the next checkpoint commits.
    retired: Vec<PAddr>,
    free: Vec<PAddr>,
    checkpoints: u64,
    elide_checksum: bool,
    track_mutations: bool,
    muts: Vec<MutationTrace>,
}

impl KvEngine {
    /// Creates and persists an empty engine: meta pair, WAL ring, and an
    /// empty leaf root, published as checkpoint 1.
    ///
    /// # Panics
    ///
    /// Panics unless `ckpt_every >= 1` and `wal_cap >= 2 * ckpt_every`
    /// (the ring must hold two checkpoint intervals so a torn-meta
    /// fallback still finds all of its records).
    pub fn create(env: &mut PmemEnv, ckpt_every: u64, wal_cap: u64) -> Self {
        assert!(ckpt_every >= 1, "kv: ckpt_every must be >= 1");
        assert!(
            wal_cap >= 2 * ckpt_every,
            "kv: wal_cap {wal_cap} must be >= 2 * ckpt_every {ckpt_every}"
        );
        let meta = env.alloc_blocks(2);
        let wal = env.alloc_blocks(wal_cap);
        let root = env.alloc_block();
        env.store_u64(root.offset(HDR), LEAF_FLAG); // empty leaf
        env.clwb(root);
        env.set_root(META_SLOT, meta);
        env.clwb(PmemEnv::root_addr(META_SLOT));
        env.persist_barrier();
        let mut engine = KvEngine {
            meta,
            wal,
            wal_cap,
            ckpt_every,
            root,
            count: 0,
            lsn: 0,
            stable_lsn: 0,
            ckpt_seq: 0,
            owned: BTreeSet::new(),
            retired: Vec::new(),
            free: Vec::new(),
            checkpoints: 0,
            elide_checksum: false,
            track_mutations: false,
            muts: Vec::new(),
        };
        engine.write_meta(env, 1);
        engine.ckpt_seq = 1;
        engine
    }

    /// Total mutations applied (the next record's LSN).
    pub fn lsn(&self) -> u64 {
        self.lsn
    }

    /// LSN of the most recent checkpoint.
    pub fn stable_lsn(&self) -> u64 {
        self.stable_lsn
    }

    /// Number of key/value pairs stored.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Checkpoints taken since creation (excluding the creation meta).
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// Free-list length (reclaimed COW pages awaiting reuse).
    pub fn free_pages(&self) -> usize {
        self.free.len()
    }

    /// Test-only: corrupt every subsequent WAL record checksum. Recovery
    /// replay must then stop short and the oracle must flag the loss —
    /// this knob exists to prove the checksum is load-bearing.
    pub fn set_elide_checksum(&mut self, on: bool) {
        self.elide_checksum = on;
    }

    /// Enables per-mutation trace bookkeeping for the crash oracle.
    /// Off by default: a streamed multi-million-op run must not
    /// accumulate an unbounded side vector.
    pub fn set_track_mutations(&mut self, on: bool) {
        self.track_mutations = on;
    }

    /// Drains the recorded [`MutationTrace`]s.
    pub fn take_mutations(&mut self) -> Vec<MutationTrace> {
        std::mem::take(&mut self.muts)
    }

    fn alloc_page(&mut self, env: &mut PmemEnv) -> PAddr {
        match self.free.pop() {
            Some(p) => p,
            None => env.alloc_block(),
        }
    }

    /// A fresh owned page (split sibling or new root).
    fn fresh_page(&mut self, env: &mut PmemEnv, leaf: bool) -> Page {
        let addr = self.alloc_page(env);
        self.owned.insert(addr.raw());
        Page {
            addr,
            leaf,
            keys: Vec::new(),
            slots: Vec::new(),
        }
    }

    /// Copy-on-write: returns an owned page holding `addr`'s contents.
    /// Already-owned pages are edited in place.
    fn cow(&mut self, env: &mut PmemEnv, addr: PAddr) -> PAddr {
        if self.owned.contains(&addr.raw()) {
            return addr;
        }
        let fresh = self.alloc_page(env);
        for i in 0..(BLOCK_SIZE / 8) {
            let v = env.load_u64(addr.offset(8 * i));
            env.store_u64(fresh.offset(8 * i), v);
        }
        self.retired.push(addr);
        self.owned.insert(fresh.raw());
        fresh
    }

    fn split_child(&mut self, env: &mut PmemEnv, parent: &mut Page, idx: usize, child: &mut Page) {
        debug_assert_eq!(child.nkeys(), MAX_KEYS);
        let mut right = self.fresh_page(env, child.leaf);
        let sep = if child.leaf {
            // B+tree leaf split: the separator is *copied* up, the key
            // stays in the right leaf.
            right.keys = child.keys.split_off(1);
            right.slots = child.slots.split_off(1);
            right.keys[0]
        } else {
            right.keys = child.keys.split_off(2);
            right.slots = child.slots.split_off(2);
            child.keys.pop().unwrap_or_default()
        };
        parent.keys.insert(idx, sep);
        parent.slots.insert(idx + 1, right.addr.raw());
        child.store(env);
        right.store(env);
        parent.store(env);
    }

    /// Applies one upsert to the working tree via a single preemptive-
    /// split COW descent. Returns `true` if the key was newly inserted.
    fn apply(&mut self, env: &mut PmemEnv, key: u64, val: u64) -> bool {
        self.root = self.cow(env, self.root);
        let mut node = Page::load(env, self.root);
        if node.nkeys() == MAX_KEYS {
            let mut new_root = self.fresh_page(env, false);
            new_root.slots.push(node.addr.raw());
            self.split_child(env, &mut new_root, 0, &mut node);
            self.root = new_root.addr;
            node = new_root;
        }
        loop {
            env.compute(node.nkeys() as u32 + 1);
            if node.leaf {
                let pos = node.keys.iter().position(|&k| key <= k);
                if let Some(p) = pos {
                    if node.keys[p] == key {
                        node.slots[p] = val; // update
                        node.store(env);
                        return false;
                    }
                }
                let p = pos.unwrap_or(node.keys.len());
                node.keys.insert(p, key);
                node.slots.insert(p, val);
                node.store(env);
                self.count += 1;
                return true;
            }
            let idx = node
                .keys
                .iter()
                .position(|&k| key < k)
                .unwrap_or(node.keys.len());
            let child_addr = self.cow(env, PAddr::new(node.slots[idx]));
            if child_addr.raw() != node.slots[idx] {
                node.slots[idx] = child_addr.raw();
                node.store(env);
            }
            let mut child = Page::load(env, child_addr);
            if child.nkeys() == MAX_KEYS {
                self.split_child(env, &mut node, idx, &mut child);
                let idx = node
                    .keys
                    .iter()
                    .position(|&k| key < k)
                    .unwrap_or(node.keys.len());
                node = Page::load(env, PAddr::new(node.slots[idx]));
            } else {
                node = child;
            }
        }
    }

    /// One durable upsert: WAL append (made durable with a full persist
    /// barrier) → COW tree apply → checkpoint when the interval is due.
    /// Returns `true` if the key was newly inserted.
    pub fn put(&mut self, env: &mut PmemEnv, key: u64, val: u64) -> bool {
        let slot = self.wal.offset((self.lsn % self.wal_cap) * BLOCK_SIZE);
        let first = env.trace().len();
        env.store_u64(slot.offset(R_LSN), self.lsn);
        env.store_u64(slot.offset(R_KIND), REC_PUT);
        env.store_u64(slot.offset(R_KEY), key);
        env.store_u64(slot.offset(R_VAL), val);
        let mut ck = record_checksum(self.lsn, REC_PUT, key, val);
        if self.elide_checksum {
            ck ^= 0xDEAD_BEEF;
        }
        env.store_u64(slot.offset(R_CKSUM), ck);
        env.clwb(slot);
        env.persist_barrier();
        if self.track_mutations && env.recording() {
            self.muts.push(MutationTrace {
                wal_slot: slot,
                first_store_idx: first,
                last_store_idx: first + 4,
            });
        }
        let inserted = self.apply(env, key, val);
        self.lsn += 1;
        if self.lsn - self.stable_lsn >= self.ckpt_every {
            self.checkpoint(env);
        }
        inserted
    }

    fn write_meta(&mut self, env: &mut PmemEnv, seq: u64) {
        let slot = self.meta.offset((seq % 2) * BLOCK_SIZE);
        let m = Meta {
            seq,
            root: self.root.raw(),
            count: self.count,
            lsn: self.lsn,
            wal_base: self.wal.raw(),
            wal_cap: self.wal_cap,
        };
        env.store_u64(slot.offset(M_SEQ), m.seq);
        env.store_u64(slot.offset(M_ROOT), m.root);
        env.store_u64(slot.offset(M_COUNT), m.count);
        env.store_u64(slot.offset(M_LSN), m.lsn);
        env.store_u64(slot.offset(M_WAL_BASE), m.wal_base);
        env.store_u64(slot.offset(M_WAL_CAP), m.wal_cap);
        env.store_u64(slot.offset(M_CKSUM), meta_checksum(&m));
        env.clwb(slot);
        env.persist_barrier();
    }

    /// Publishes the working tree: flush every page written since the
    /// last checkpoint, barrier, then the atomic dual-meta root swap.
    /// Retired pages of the *previous* stable tree become reusable.
    pub fn checkpoint(&mut self, env: &mut PmemEnv) {
        if self.lsn == self.stable_lsn {
            return; // nothing to publish
        }
        for &p in &self.owned {
            env.clwb(PAddr::new(p));
        }
        env.persist_barrier();
        let seq = self.ckpt_seq + 1;
        self.write_meta(env, seq);
        self.ckpt_seq = seq;
        self.stable_lsn = self.lsn;
        let retired = std::mem::take(&mut self.retired);
        self.free.extend(retired);
        self.owned.clear();
        self.checkpoints += 1;
    }

    /// Point lookup against the working tree.
    pub fn get(&self, env: &mut PmemEnv, key: u64) -> Option<u64> {
        let mut addr = self.root;
        loop {
            let node = Page::load(env, addr);
            env.compute(node.nkeys() as u32 + 1);
            if node.leaf {
                return node
                    .keys
                    .iter()
                    .position(|&k| k == key)
                    .map(|p| node.slots[p]);
            }
            let idx = node
                .keys
                .iter()
                .position(|&k| key < k)
                .unwrap_or(node.keys.len());
            addr = PAddr::new(node.slots[idx]);
        }
    }

    /// Range scan: up to `limit` pairs with key >= `lo`, ascending.
    pub fn scan(&self, env: &mut PmemEnv, lo: u64, limit: usize) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(limit);
        Self::scan_rec(env, self.root, lo, limit, &mut out);
        out
    }

    fn scan_rec(env: &mut PmemEnv, addr: PAddr, lo: u64, limit: usize, out: &mut Vec<(u64, u64)>) {
        if out.len() >= limit {
            return;
        }
        let node = Page::load(env, addr);
        env.compute(node.nkeys() as u32 + 1);
        if node.leaf {
            for (i, &k) in node.keys.iter().enumerate() {
                if k >= lo && out.len() < limit {
                    out.push((k, node.slots[i]));
                }
            }
            return;
        }
        for i in 0..node.slots.len() {
            // Child i covers keys < keys[i]; skip it when that whole
            // range is below `lo`.
            if i < node.keys.len() && node.keys[i] <= lo {
                continue;
            }
            Self::scan_rec(env, PAddr::new(node.slots[i]), lo, limit, out);
            if out.len() >= limit {
                return;
            }
        }
    }

    /// Structural walk of a stable tree in `space`, collecting contents.
    /// Checks node arity, key ordering, separator ranges, and uniform
    /// leaf depth.
    fn walk(
        space: &Space,
        addr: PAddr,
        lo: Option<u64>,
        hi: Option<u64>,
        is_root: bool,
        out: &mut BTreeMap<u64, u64>,
    ) -> Result<u64, VerifyError> {
        if addr.is_null() {
            return Err(VerifyError::new("kv: null page pointer"));
        }
        let hdr = space.read_u64(addr.offset(HDR));
        let leaf = hdr & LEAF_FLAG != 0;
        let nkeys = (hdr & 0xFF) as usize;
        if hdr >> 9 != 0 {
            return Err(VerifyError::new("kv: garbage page header"));
        }
        if nkeys > MAX_KEYS {
            return Err(VerifyError::new(format!("kv: page with {nkeys} keys")));
        }
        if !is_root && nkeys == 0 {
            return Err(VerifyError::new("kv: empty non-root page"));
        }
        let mut ks = Vec::with_capacity(nkeys);
        for i in 0..nkeys {
            ks.push(space.read_u64(addr.offset(KEYS + 8 * i as u64)));
        }
        if ks.windows(2).any(|w| w[0] >= w[1]) {
            return Err(VerifyError::new("kv: page keys not strictly sorted"));
        }
        for &k in &ks {
            if lo.is_some_and(|b| k < b) || hi.is_some_and(|b| k >= b) {
                return Err(VerifyError::new(format!(
                    "kv: key {k} outside separator range"
                )));
            }
        }
        if leaf {
            for (i, &k) in ks.iter().enumerate() {
                let v = space.read_u64(addr.offset(VALUES + 8 * i as u64));
                if out.insert(k, v).is_some() {
                    return Err(VerifyError::new(format!("kv: duplicate key {k}")));
                }
            }
            return Ok(0);
        }
        let mut depth = None;
        for i in 0..=nkeys {
            let c = PAddr::new(space.read_u64(addr.offset(CHILDREN + 8 * i as u64)));
            let clo = if i == 0 { lo } else { Some(ks[i - 1]) };
            let chi = if i == nkeys { hi } else { Some(ks[i]) };
            let d = Self::walk(space, c, clo, chi, false, out)?;
            if *depth.get_or_insert(d) != d {
                return Err(VerifyError::new("kv: leaves at non-uniform depth"));
            }
        }
        Ok(depth.unwrap_or(0) + 1)
    }

    /// Recovers the logical contents of a (possibly crash-torn) image:
    /// meta election → stable-tree structural walk → WAL ring replay
    /// with torn-tail detection.
    ///
    /// # Errors
    ///
    /// Returns a [`VerifyError`] when no checksum-valid meta exists or
    /// the elected stable tree violates a structural invariant. A torn
    /// WAL *tail* is not an error — replay stops there by design.
    pub fn recover(space: &Space) -> Result<KvRecovered, VerifyError> {
        let meta_base = PAddr::new(space.read_u64(PmemEnv::root_addr(META_SLOT)));
        if meta_base.is_null() {
            return Err(VerifyError::new("kv: null meta directory pointer"));
        }
        let a = read_meta(space, meta_base);
        let b = read_meta(space, meta_base.offset(BLOCK_SIZE));
        let m = match (a, b) {
            (Some(x), Some(y)) => {
                if x.seq >= y.seq {
                    x
                } else {
                    y
                }
            }
            (Some(x), None) => x,
            (None, Some(y)) => y,
            (None, None) => return Err(VerifyError::new("kv: no checksum-valid meta block")),
        };
        let mut contents = BTreeMap::new();
        Self::walk(space, PAddr::new(m.root), None, None, true, &mut contents)?;
        if contents.len() as u64 != m.count {
            return Err(VerifyError::new(format!(
                "kv: checkpoint count {} != walked keys {}",
                m.count,
                contents.len()
            )));
        }
        let wal = PAddr::new(m.wal_base);
        let mut replayed = 0u64;
        let mut l = m.lsn;
        while replayed < m.wal_cap {
            let slot = wal.offset((l % m.wal_cap) * BLOCK_SIZE);
            let lsn = space.read_u64(slot.offset(R_LSN));
            let kind = space.read_u64(slot.offset(R_KIND));
            let key = space.read_u64(slot.offset(R_KEY));
            let val = space.read_u64(slot.offset(R_VAL));
            let ck = space.read_u64(slot.offset(R_CKSUM));
            if lsn != l || kind != REC_PUT || ck != record_checksum(lsn, kind, key, val) {
                break; // torn tail, stale slot, or corrupt record
            }
            contents.insert(key, val);
            replayed += 1;
            l += 1;
        }
        Ok(KvRecovered {
            contents,
            ckpt_seq: m.seq,
            stable_lsn: m.lsn,
            replayed,
            total_lsn: l,
        })
    }
}

/// Operation mix for the YCSB-style driver, in permille (must sum to
/// 1000).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvMix {
    /// Point lookups per 1000 ops.
    pub read_pm: u32,
    /// Updates of existing keys per 1000 ops.
    pub update_pm: u32,
    /// Inserts of fresh keys per 1000 ops.
    pub insert_pm: u32,
    /// Range scans per 1000 ops.
    pub scan_pm: u32,
    /// Pairs returned per scan.
    pub scan_len: usize,
    /// Zipfian skew for key choice.
    pub theta: f64,
}

impl KvMix {
    /// The default mixed profile: 40% reads, 40% updates, 15% inserts,
    /// 5% scans over a zipf(0.99) key distribution (YCSB-A shaped, with
    /// an insert/scan tail exercising splits and range reads).
    pub const MIXED: KvMix = KvMix {
        read_pm: 400,
        update_pm: 400,
        insert_pm: 150,
        scan_pm: 50,
        scan_len: 16,
        theta: crate::zipf::DEFAULT_THETA,
    };

    /// An update-heavy profile (maximum persist-barrier pressure).
    pub const UPDATE_HEAVY: KvMix = KvMix {
        read_pm: 100,
        update_pm: 850,
        insert_pm: 50,
        scan_pm: 0,
        scan_len: 16,
        theta: crate::zipf::DEFAULT_THETA,
    };
}

impl Default for KvMix {
    fn default() -> Self {
        KvMix::MIXED
    }
}

/// Sizing and identity of one KV run.
#[derive(Debug, Clone, Copy)]
pub struct KvSpec {
    /// Keys loaded before recording starts.
    pub init_keys: u64,
    /// Driver operations to run.
    pub ops: u64,
    /// Mutations between checkpoints.
    pub ckpt_every: u64,
    /// WAL ring slots (must be >= `2 * ckpt_every`).
    pub wal_cap: u64,
    /// Seed for keys, values, and the op mix.
    pub seed: u64,
    /// Operation mix.
    pub mix: KvMix,
}

impl KvSpec {
    /// A small, test-sized spec.
    pub fn small(seed: u64) -> Self {
        KvSpec {
            init_keys: 64,
            ops: 200,
            ckpt_every: 8,
            wal_cap: 16,
            seed,
            mix: KvMix::MIXED,
        }
    }
}

/// Per-run driver counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct KvRunStats {
    /// Ops executed.
    pub ops: u64,
    /// Point reads.
    pub reads: u64,
    /// Updates of existing keys.
    pub updates: u64,
    /// Fresh-key inserts.
    pub inserts: u64,
    /// Range scans.
    pub scans: u64,
    /// Total pairs returned by scans.
    pub scan_items: u64,
    /// WAL records appended (mutations).
    pub mutations: u64,
}

/// The YCSB-style driver: zipfian key choice over the live key
/// population, deterministic op mix, shadow map for oracle states.
#[derive(Debug)]
pub struct KvWorkload {
    spec: KvSpec,
    engine: KvEngine,
    zipf: Zipf,
    /// Insertion-ordered key universe; zipf rank 0 maps to the newest
    /// key, so the hot set tracks recent inserts.
    keys: Vec<u64>,
    next_key: u64,
    shadow: BTreeMap<u64, u64>,
    stats: KvRunStats,
}

fn fresh_key(seed: u64, ordinal: u64) -> u64 {
    // splitmix64 is a bijection, so distinct ordinals give distinct keys.
    splitmix64(seed ^ ordinal.wrapping_mul(GOLD))
}

fn value_for(seed: u64, key: u64, lsn: u64) -> u64 {
    splitmix64(seed ^ key ^ lsn.wrapping_mul(0xA24B_AED4_963E_E407))
}

impl KvWorkload {
    /// Creates an unpopulated driver; call [`KvWorkload::setup`] next.
    ///
    /// # Panics
    ///
    /// Panics if the mix permilles don't sum to 1000 or
    /// `init_keys == 0`.
    pub fn new(spec: KvSpec) -> Self {
        let m = spec.mix;
        assert_eq!(
            m.read_pm + m.update_pm + m.insert_pm + m.scan_pm,
            1000,
            "kv: mix permilles must sum to 1000"
        );
        assert!(spec.init_keys > 0, "kv: init_keys must be > 0");
        KvWorkload {
            spec,
            engine: KvEngine {
                // Placeholder until setup(); never used before it.
                meta: PAddr::NULL,
                wal: PAddr::NULL,
                wal_cap: 2,
                ckpt_every: 1,
                root: PAddr::NULL,
                count: 0,
                lsn: 0,
                stable_lsn: 0,
                ckpt_seq: 0,
                owned: BTreeSet::new(),
                retired: Vec::new(),
                free: Vec::new(),
                checkpoints: 0,
                elide_checksum: false,
                track_mutations: false,
                muts: Vec::new(),
            },
            zipf: Zipf::new(1, 0.0, spec.seed),
            keys: Vec::new(),
            next_key: 0,
            shadow: BTreeMap::new(),
            stats: KvRunStats::default(),
        }
    }

    /// Creates the engine and loads `init_keys` fresh keys, finishing
    /// at a checkpoint boundary (quiesced). Run with recording off to
    /// keep the load phase out of the simulated trace.
    pub fn setup(&mut self, env: &mut PmemEnv) {
        self.engine = KvEngine::create(env, self.spec.ckpt_every, self.spec.wal_cap);
        self.zipf = Zipf::new(
            self.spec.init_keys.max(1),
            self.spec.mix.theta,
            self.spec.seed,
        );
        for _ in 0..self.spec.init_keys {
            self.insert_fresh(env);
        }
        self.engine.checkpoint(env);
        self.stats = KvRunStats::default();
    }

    fn insert_fresh(&mut self, env: &mut PmemEnv) {
        let key = fresh_key(self.spec.seed, self.next_key);
        self.next_key += 1;
        let val = value_for(self.spec.seed, key, self.engine.lsn());
        self.engine.put(env, key, val);
        self.shadow.insert(key, val);
        self.keys.push(key);
        self.stats.mutations += 1;
    }

    fn pick_key(&mut self) -> u64 {
        // Rank 0 = newest key. The zipf range is pinned to init_keys so
        // the stream stays a pure function of the spec; ranks past the
        // current population clamp to the oldest key.
        let r = self.zipf.next_rank() as usize;
        let idx = self.keys.len().saturating_sub(1 + r);
        self.keys[idx]
    }

    /// Runs one driver op. `op_id` must be the dense op index so the op
    /// mix is a pure function of `(seed, op_id)`.
    pub fn run_op(&mut self, env: &mut PmemEnv, op_id: u64) {
        let roll = splitmix64(self.spec.seed ^ 0xABCD ^ op_id.wrapping_mul(GOLD)) % 1000;
        let m = self.spec.mix;
        let roll = roll as u32;
        if roll < m.read_pm {
            let key = self.pick_key();
            let got = self.engine.get(env, key);
            debug_assert_eq!(got, self.shadow.get(&key).copied());
            self.stats.reads += 1;
        } else if roll < m.read_pm + m.update_pm {
            let key = self.pick_key();
            let val = value_for(self.spec.seed, key, self.engine.lsn());
            self.engine.put(env, key, val);
            self.shadow.insert(key, val);
            self.stats.updates += 1;
            self.stats.mutations += 1;
        } else if roll < m.read_pm + m.update_pm + m.insert_pm {
            self.insert_fresh(env);
            self.stats.inserts += 1;
        } else {
            let lo = self.pick_key();
            let got = self.engine.scan(env, lo, m.scan_len);
            self.stats.scan_items += got.len() as u64;
            self.stats.scans += 1;
        }
        self.stats.ops += 1;
    }

    /// The engine (for checkpoint forcing and stats).
    pub fn engine(&self) -> &KvEngine {
        &self.engine
    }

    /// Mutable engine access (oracle knobs).
    pub fn engine_mut(&mut self) -> &mut KvEngine {
        &mut self.engine
    }

    /// The shadow map: the expected logical contents right now.
    pub fn shadow(&self) -> &BTreeMap<u64, u64> {
        &self.shadow
    }

    /// Driver counters.
    pub fn stats(&self) -> KvRunStats {
        self.stats
    }
}

/// Identity of one recorded KV crash bundle.
#[derive(Debug, Clone, Copy)]
pub struct KvBundleSpec {
    /// Build variant whose persistence machinery is traced.
    pub variant: Variant,
    /// Flush instruction the build emits.
    pub flush_mode: FlushMode,
    /// Driver sizing.
    pub spec: KvSpec,
    /// Test-only: corrupt WAL record checksums (the oracle must fail).
    pub elide_checksum: bool,
}

/// A recorded KV run prepared for crash injection: base image, events,
/// per-mutation WAL coordinates, and the shadow state after every
/// mutation.
#[derive(Debug)]
pub struct KvBundle {
    base: Space,
    events: Vec<Event>,
    /// Shadow contents after 0, 1, ..., n mutations since the base.
    states: Vec<BTreeMap<u64, u64>>,
    muts: Vec<MutationTrace>,
    base_lsn: u64,
}

/// Records a KV bundle: populate unrecorded, snapshot the quiesced
/// image, then record the mixed-op stream tracking shadow state at
/// every mutation boundary.
///
/// # Panics
///
/// Panics on a driver-level invariant failure (never an expected
/// outcome).
pub fn record_kv_bundle(bspec: &KvBundleSpec) -> KvBundle {
    let mut env = PmemEnv::new(bspec.variant);
    env.set_flush_mode(bspec.flush_mode);
    let mut w = KvWorkload::new(bspec.spec);
    env.set_recording(false);
    w.setup(&mut env);
    env.set_recording(true);
    w.engine_mut().set_track_mutations(true);
    w.engine_mut().set_elide_checksum(bspec.elide_checksum);
    let base = env.snapshot();
    let base_lsn = w.engine().lsn();
    let mut states = vec![w.shadow().clone()];
    let mut seen = 0usize;
    for op in 0..bspec.spec.ops {
        w.run_op(&mut env, op);
        let muts = w.engine().muts.len();
        if muts > seen {
            debug_assert_eq!(muts, seen + 1, "one op appends at most one record");
            states.push(w.shadow().clone());
            seen = muts;
        }
    }
    // A final checkpoint is *not* forced: the trace ends mid-interval so
    // crash points cover the replay-from-WAL path, not just quiesced
    // images.
    let muts = w.engine_mut().take_mutations();
    KvBundle {
        base,
        events: env.take_trace().events,
        states,
        muts,
        base_lsn,
    }
}

impl KvBundle {
    /// The recorded event stream (crash indices range over
    /// `0..=events().len()`).
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Mutations recorded since the base image.
    pub fn mutation_count(&self) -> usize {
        self.muts.len()
    }

    /// Mutations whose WAL record is guaranteed durable at `crash_idx`
    /// (a contiguous prefix: every record is barriered before the next
    /// begins).
    pub fn completed(&self, sim: &CrashSim<'_>) -> usize {
        self.muts
            .iter()
            .take_while(|m| sim.guarantee(m.wal_slot.block()) > m.last_store_idx)
            .count()
    }

    /// Mutations whose WAL append began before `crash_idx`.
    pub fn started(&self, crash_idx: usize) -> usize {
        self.muts
            .iter()
            .take_while(|m| m.first_store_idx < crash_idx)
            .count()
    }

    /// Runs full replay-based recovery against `image` and checks the
    /// result: the recovered mutation count `j` must satisfy
    /// `completed <= j <= started`, and the recovered contents must
    /// equal the shadow state after exactly `j` mutations — losing a
    /// guaranteed-durable record or resurrecting an unwritten one both
    /// fail.
    ///
    /// # Errors
    ///
    /// Returns the violation for an inconsistent image.
    pub fn check_image(
        &self,
        image: &Space,
        completed: usize,
        started: usize,
    ) -> Result<(), OracleViolation> {
        let rec = KvEngine::recover(image).map_err(|e| OracleViolation {
            kind: ViolationKind::StructureInvalid,
            detail: e.to_string(),
        })?;
        let j64 = rec.total_lsn.saturating_sub(self.base_lsn);
        let j = j64 as usize;
        if j < completed || j > started {
            return Err(OracleViolation {
                kind: ViolationKind::StateMismatch,
                detail: format!(
                    "recovered {j} mutations past the base, but {completed} were guaranteed \
                     durable and only {started} had started"
                ),
            });
        }
        let want = &self.states[j];
        if &rec.contents != want {
            return Err(OracleViolation {
                kind: ViolationKind::StateMismatch,
                detail: format!(
                    "recovered contents ({} keys) differ from the shadow state after {j} \
                     mutations ({} keys)",
                    rec.contents.len(),
                    want.len()
                ),
            });
        }
        // Scan-window check: every window around a key mutated in the
        // crash neighbourhood must read as a consistent multi-key scan
        // against the adjacent boundary states.
        let prev: BTreeSet<u64> = self.states[completed].keys().copied().collect();
        let next: BTreeSet<u64> = want.keys().copied().collect();
        let got_keys: Vec<u64> = rec.contents.keys().copied().collect();
        for &k in prev.symmetric_difference(&next) {
            let lo = k.saturating_sub(1);
            let hi = k.saturating_add(1);
            let window: Vec<u64> = got_keys
                .iter()
                .copied()
                .filter(|&x| (lo..=hi).contains(&x))
                .collect();
            check_scan_window(&window, lo, hi, &prev, &next)?;
        }
        Ok(())
    }

    /// Replays one adversarial schedule end to end: crash at
    /// `crash_idx`, per-block writeback cuts drawn from `seed`, then
    /// replay-based recovery and the oracle.
    ///
    /// # Errors
    ///
    /// Returns the violation for a failing schedule.
    ///
    /// # Panics
    ///
    /// Panics if `crash_idx > events().len()`.
    pub fn check_crash(&self, crash_idx: usize, seed: u64) -> Result<(), OracleViolation> {
        let sim = CrashSim::new(&self.base, &self.events, crash_idx);
        let img = sim.image_seeded(seed);
        self.check_image(&img, self.completed(&sim), self.started(crash_idx))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use spp_pmem::persist_boundaries;

    fn run_workload(spec: KvSpec, variant: Variant) -> (PmemEnv, KvWorkload) {
        let mut env = PmemEnv::new(variant);
        let mut w = KvWorkload::new(spec);
        env.set_recording(false);
        w.setup(&mut env);
        env.set_recording(true);
        for op in 0..spec.ops {
            w.run_op(&mut env, op);
        }
        (env, w)
    }

    #[test]
    fn live_engine_agrees_with_shadow_map() {
        let (mut env, w) = run_workload(KvSpec::small(11), Variant::LogPSf);
        let shadow = w.shadow().clone();
        assert!(shadow.len() > 64, "inserts must have grown the tree");
        for (&k, &v) in &shadow {
            assert_eq!(w.engine().get(&mut env, k), Some(v));
        }
        assert_eq!(w.engine().count(), shadow.len() as u64);
        assert!(w.engine().checkpoints() > 1);
    }

    #[test]
    fn scan_matches_shadow_ranges() {
        let (mut env, w) = run_workload(KvSpec::small(5), Variant::Base);
        let shadow = w.shadow();
        for lo in shadow.keys().copied().step_by(7) {
            let got = w.engine().scan(&mut env, lo, 9);
            let want: Vec<(u64, u64)> = shadow.range(lo..).take(9).map(|(&k, &v)| (k, v)).collect();
            assert_eq!(got, want, "scan from {lo} diverged");
        }
    }

    #[test]
    fn quiesced_image_recovers_exactly() {
        let (mut env, mut w) = run_workload(KvSpec::small(3), Variant::LogPSf);
        w.engine_mut().checkpoint(&mut env);
        let rec = KvEngine::recover(env.space()).expect("quiesced image must recover");
        assert_eq!(&rec.contents, w.shadow());
        assert_eq!(rec.total_lsn, w.engine().lsn());
        assert_eq!(rec.replayed, 0, "post-checkpoint image has no WAL tail");
    }

    #[test]
    fn mid_interval_image_replays_the_wal_tail() {
        // Stop between checkpoints: recovery must replay a non-empty
        // tail to reach the shadow state.
        let spec = KvSpec::small(7);
        let (mut env, mut w) = run_workload(spec, Variant::LogPSf);
        let mut op = spec.ops;
        while w.engine().lsn() == w.engine().stable_lsn() {
            w.run_op(&mut env, op);
            op += 1;
        }
        let rec = KvEngine::recover(env.space()).expect("image must recover");
        assert_eq!(&rec.contents, w.shadow());
        assert!(rec.replayed > 0, "expected a WAL tail replay");
        assert_eq!(rec.total_lsn, w.engine().lsn());
    }

    #[test]
    fn ring_wraps_without_losing_records() {
        // Tiny ring, many mutations: the ring wraps many times over.
        let spec = KvSpec {
            init_keys: 8,
            ops: 400,
            ckpt_every: 2,
            wal_cap: 4,
            ..KvSpec::small(13)
        };
        let (env, w) = run_workload(spec, Variant::LogPSf);
        assert!(
            w.engine().lsn() > 2 * spec.wal_cap,
            "ring must have wrapped"
        );
        let rec = KvEngine::recover(env.space()).expect("image must recover");
        assert_eq!(&rec.contents, w.shadow());
    }

    #[test]
    fn cow_reclaims_pages_bounding_the_heap() {
        let spec = KvSpec {
            init_keys: 32,
            ops: 600,
            ckpt_every: 4,
            wal_cap: 8,
            mix: KvMix::UPDATE_HEAVY,
            ..KvSpec::small(17)
        };
        let mut env = PmemEnv::new(Variant::Base);
        let mut w = KvWorkload::new(spec);
        env.set_recording(false);
        w.setup(&mut env);
        for op in 0..200 {
            w.run_op(&mut env, op);
        }
        let heap_early = env.heap_used();
        for op in 200..spec.ops {
            w.run_op(&mut env, op);
        }
        let grown = env.heap_used() - heap_early;
        // Update-heavy traffic recycles retired pages: the heap must
        // grow far slower than one page per mutation.
        assert!(
            grown < 64 * spec.ops,
            "heap grew {grown} bytes over {} ops: free list not recycling",
            spec.ops - 200
        );
        assert!(w.engine().free_pages() > 0);
    }

    fn bundle_spec(variant: Variant, elide: bool) -> KvBundleSpec {
        KvBundleSpec {
            variant,
            flush_mode: FlushMode::default(),
            spec: KvSpec {
                init_keys: 48,
                ops: 60,
                ckpt_every: 6,
                wal_cap: 12,
                seed: 0xFACE,
                mix: KvMix::MIXED,
            },
            elide_checksum: elide,
        }
    }

    #[test]
    fn logpsf_passes_oracle_at_every_boundary() {
        let b = record_kv_bundle(&bundle_spec(Variant::LogPSf, false));
        assert!(b.mutation_count() > 10);
        for &p in &persist_boundaries(b.events()) {
            for seed in 0..2u64 {
                if let Err(v) = b.check_crash(p, seed) {
                    panic!("kv @ {p} seed {seed}: {v}");
                }
            }
        }
    }

    #[test]
    fn log_variant_fails_oracle_somewhere() {
        // No flushes, no fences: nothing is guaranteed, so adversarial
        // schedules can tear the tree or the WAL into inconsistency.
        let b = record_kv_bundle(&bundle_spec(Variant::Log, false));
        let n = b.events().len();
        let mut found = false;
        'outer: for p in (0..=n).step_by((n / 64).max(1)) {
            for seed in 0..4u64 {
                if b.check_crash(p, seed).is_err() {
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "Log (no persist ops) never violated the kv oracle");
    }

    #[test]
    fn elided_checksum_makes_the_oracle_fail() {
        // Corrupt record checksums: replay stops at the first recorded
        // mutation, so any crash image past a durable record recovers
        // short of the guaranteed count. This proves the oracle actually
        // replays the WAL rather than comparing pre/post states.
        let b = record_kv_bundle(&bundle_spec(Variant::LogPSf, true));
        let end = b.events().len();
        let err = b
            .check_crash(end, 0)
            .expect_err("elided checksums must lose guaranteed-durable records");
        assert_eq!(err.kind, ViolationKind::StateMismatch, "{err}");
    }

    #[test]
    fn eager_final_image_is_the_last_state() {
        let b = record_kv_bundle(&bundle_spec(Variant::LogPSf, false));
        let sim = CrashSim::new(&b.base, b.events(), b.events().len());
        let img = sim.image_everything();
        let n = b.mutation_count();
        b.check_image(&img, n, n)
            .expect("eager final image must be the final state");
    }

    #[test]
    fn torn_meta_falls_back_one_checkpoint() {
        // Quiesce, then hand-tear the newest meta block: recovery must
        // elect the older meta and replay the ring back to the same
        // contents.
        let (mut env, mut w) = run_workload(KvSpec::small(23), Variant::LogPSf);
        w.engine_mut().checkpoint(&mut env);
        let meta = PAddr::new(env.space().read_u64(PmemEnv::root_addr(META_SLOT)));
        let newest = meta.offset((w.engine().ckpt_seq % 2) * BLOCK_SIZE);
        let mut img = env.snapshot();
        img.write_uint(newest.offset(M_CKSUM), 8, 0xBAD);
        let rec = KvEngine::recover(&img).expect("fallback meta must recover");
        assert_eq!(rec.ckpt_seq, w.engine().ckpt_seq - 1);
        assert_eq!(&rec.contents, w.shadow());
    }

    #[test]
    fn both_metas_torn_is_a_structural_error() {
        let (env, w) = run_workload(KvSpec::small(29), Variant::LogPSf);
        let meta = PAddr::new(env.space().read_u64(PmemEnv::root_addr(META_SLOT)));
        let mut img = env.snapshot();
        img.write_uint(meta.offset(M_CKSUM), 8, 1);
        img.write_uint(meta.offset(BLOCK_SIZE + M_CKSUM), 8, 1);
        let _ = w;
        assert!(KvEngine::recover(&img).is_err());
    }

    #[test]
    fn driver_is_deterministic() {
        let (_, a) = run_workload(KvSpec::small(31), Variant::LogPSf);
        let (_, b) = run_workload(KvSpec::small(31), Variant::LogPSf);
        assert_eq!(a.shadow(), b.shadow());
        let (sa, sb) = (a.stats(), b.stats());
        assert_eq!(sa.mutations, sb.mutations);
        assert_eq!(sa.scan_items, sb.scan_items);
        let (_, c) = run_workload(KvSpec::small(32), Variant::LogPSf);
        assert_ne!(a.shadow(), c.shadow(), "different seeds must diverge");
    }

    #[test]
    fn mix_permilles_are_enforced() {
        let mut spec = KvSpec::small(1);
        spec.mix.read_pm = 999;
        let r = std::panic::catch_unwind(|| KvWorkload::new(spec));
        assert!(r.is_err(), "bad mix must be rejected");
    }
}
