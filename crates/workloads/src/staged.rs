//! Staged transactions: write-set discovery for write-ahead logging.
//!
//! A workload operation runs its algorithm against a [`Staged`] view:
//! reads come from the persistent memory (through the trace recorder),
//! writes are staged in a volatile overlay (registers/stack in a real
//! implementation). When the operation finishes, [`Staged::finish`]
//! drives the four-step WAL protocol of the paper's §3.1:
//!
//! 1. undo-log the *pessimistic* log set — the recorded search path plus
//!    any extra blocks the workload conservatively nominated (the
//!    paper's *full logging* for trees) plus, always, every staged
//!    write block — and make the log durable;
//! 2. durably publish `logged_bit`;
//! 3. apply the staged writes to memory and `clwb` every dirtied block;
//! 4. durably clear `logged_bit`.
//!
//! Because the log set always contains the staged write set, recovery is
//! sound by construction, which the `PmemEnv` strict checks verify at
//! store granularity in debug builds.

use std::collections::{HashMap, HashSet};

use spp_pmem::{BlockId, FastHashBuilder, PAddr, PmemEnv};

/// An in-flight staged transaction (one benchmark operation).
///
/// ```
/// use spp_pmem::{PmemEnv, Variant};
/// use spp_workloads::Staged;
///
/// let mut env = PmemEnv::new(Variant::LogPSf);
/// let cell = env.alloc_block();
/// let mut tx = Staged::begin(&mut env, 0);
/// let old = tx.read(cell);
/// tx.write(cell, old + 1);
/// assert_eq!(tx.read(cell), 1); // reads observe staged writes
/// tx.finish();
/// assert_eq!(env.space().read_u64(cell), 1);
/// ```
#[derive(Debug)]
pub struct Staged<'e> {
    env: &'e mut PmemEnv,
    /// Staged values, keyed by 8-byte granule address.
    overlay: HashMap<u64, u64, FastHashBuilder>,
    /// Granules in first-write order (the order stores are applied).
    write_order: Vec<PAddr>,
    /// Blocks on the structure's search path (full-logging set).
    path: Vec<BlockId>,
    /// Extra blocks conservatively nominated for logging.
    extra: Vec<BlockId>,
    /// Heap watermark at begin: blocks at or above are fresh
    /// allocations and need no undo logging.
    watermark: u64,
}

impl<'e> Staged<'e> {
    /// Opens transaction `id` on `env`.
    pub fn begin(env: &'e mut PmemEnv, id: u64) -> Self {
        let watermark = env.heap_used();
        env.tx_begin(id);
        Staged {
            env,
            overlay: HashMap::default(),
            write_order: Vec::new(),
            path: Vec::new(),
            extra: Vec::new(),
            watermark,
        }
    }

    /// Reads a `u64`. A staged value is served from the overlay (a
    /// register in real code, charged as one compute micro-op); otherwise
    /// this is a load.
    pub fn read(&mut self, addr: PAddr) -> u64 {
        debug_assert_eq!(addr.raw() % 8, 0, "staged access must be 8-byte aligned");
        match self.overlay.get(&addr.raw()) {
            Some(&v) => {
                self.env.compute(1);
                v
            }
            None => self.env.load_u64(addr),
        }
    }

    /// Reads a `u64` as part of a pointer chain: the access is marked
    /// address-dependent, so the timing model serializes it behind the
    /// previous dependent load. Use for the first touch of a node whose
    /// address came from a pointer load.
    pub fn read_dep(&mut self, addr: PAddr) -> u64 {
        debug_assert_eq!(addr.raw() % 8, 0, "staged access must be 8-byte aligned");
        match self.overlay.get(&addr.raw()) {
            Some(&v) => {
                self.env.compute(1);
                v
            }
            None => {
                self.env.load_ptr(addr).raw() // dependent load
            }
        }
    }

    /// Reads a pointer; an actual memory access is marked
    /// address-dependent (pointer chasing) for the timing model.
    pub fn read_ptr(&mut self, addr: PAddr) -> PAddr {
        debug_assert_eq!(addr.raw() % 8, 0, "staged access must be 8-byte aligned");
        match self.overlay.get(&addr.raw()) {
            Some(&v) => {
                self.env.compute(1);
                PAddr::new(v)
            }
            None => self.env.load_ptr(addr),
        }
    }

    /// Stages a `u64` write (one compute micro-op now; the store is
    /// emitted at [`finish`](Self::finish)).
    pub fn write(&mut self, addr: PAddr, value: u64) {
        debug_assert_eq!(addr.raw() % 8, 0, "staged access must be 8-byte aligned");
        self.env.compute(1);
        if self.overlay.insert(addr.raw(), value).is_none() {
            self.write_order.push(addr);
        }
    }

    /// Stages a pointer write.
    pub fn write_ptr(&mut self, addr: PAddr, value: PAddr) {
        self.write(addr, value.raw());
    }

    /// Reads `buf.len()` bytes (8-byte-aligned base), honouring staged
    /// writes at granule granularity.
    pub fn read_bytes(&mut self, addr: PAddr, buf: &mut [u8]) {
        assert_eq!(addr.raw() % 8, 0, "staged access must be 8-byte aligned");
        assert_eq!(
            buf.len() % 8,
            0,
            "staged byte access must be whole granules"
        );
        for (i, chunk) in buf.chunks_mut(8).enumerate() {
            let v = self.read(addr.offset(8 * i as u64));
            chunk.copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Stages a byte-range write (8-byte-aligned base and length).
    pub fn write_bytes(&mut self, addr: PAddr, buf: &[u8]) {
        assert_eq!(addr.raw() % 8, 0, "staged access must be 8-byte aligned");
        assert_eq!(
            buf.len() % 8,
            0,
            "staged byte access must be whole granules"
        );
        for (i, chunk) in buf.chunks(8).enumerate() {
            let mut g = [0u8; 8];
            g.copy_from_slice(chunk);
            self.write(addr.offset(8 * i as u64), u64::from_le_bytes(g));
        }
    }

    /// Charges `n` non-memory micro-ops (comparisons, branches, ...).
    pub fn compute(&mut self, n: u32) {
        self.env.compute(n);
    }

    /// Allocates one node block inside the transaction. Fresh blocks are
    /// exempt from undo logging (a crash simply leaks them; the paper
    /// assumes no immediate garbage collection).
    pub fn alloc_block(&mut self) -> PAddr {
        self.env.alloc_block()
    }

    /// Allocates `n` contiguous blocks inside the transaction.
    pub fn alloc_blocks(&mut self, n: u64) -> PAddr {
        self.env.alloc_blocks(n)
    }

    /// Records the block containing `addr` as part of the search path
    /// (it will be undo-logged pessimistically — the paper's *full
    /// logging*).
    pub fn note_path(&mut self, addr: PAddr) {
        self.path.push(addr.block());
    }

    /// Nominates an extra block for pessimistic logging (e.g. the
    /// sibling a delete *might* rotate through).
    pub fn log_extra(&mut self, addr: PAddr) {
        if !addr.is_null() {
            self.extra.push(addr.block());
        }
    }

    /// Number of distinct granules staged so far.
    pub fn staged_granules(&self) -> usize {
        self.write_order.len()
    }

    /// Completes the transaction: logs, publishes, applies, persists.
    /// Consumes the staged view; returns the number of blocks logged.
    pub fn finish(self) -> u64 {
        let Staged {
            env,
            overlay,
            write_order,
            path,
            extra,
            watermark,
        } = self;

        // Step 1: undo-log path + extras + write set (fresh blocks
        // skipped; tx_log deduplicates blocks already logged this
        // transaction).
        for b in path
            .into_iter()
            .chain(extra)
            .chain(write_order.iter().map(|a| a.block()))
        {
            if b.base().raw() >= watermark {
                continue; // fresh allocation
            }
            env.tx_log_block(b);
        }
        let logged = env.tx_logged_blocks();

        // Step 2.
        env.tx_set_logged();

        // Step 3: apply stores in first-write order, then persist each
        // dirtied block exactly once, in first-dirtied order. A set
        // backs the dedup: a single transaction can stage an arbitrarily
        // large write set (the HM workload rehashes its whole table in
        // one), so a linear `contains` scan would go quadratic.
        let mut dirty_blocks: Vec<BlockId> = Vec::new();
        let mut dirty_seen: HashSet<BlockId, FastHashBuilder> = HashSet::default();
        for addr in &write_order {
            env.store_u64(*addr, overlay[&addr.raw()]);
            let b = addr.block();
            if dirty_seen.insert(b) {
                dirty_blocks.push(b);
            }
        }
        for b in dirty_blocks {
            env.clwb(b.base());
        }

        // Step 4.
        env.tx_commit();
        logged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_pmem::{recover, CrashSim, Variant};

    #[test]
    fn read_your_writes() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let a = env.alloc_block();
        let mut tx = Staged::begin(&mut env, 0);
        assert_eq!(tx.read(a), 0);
        tx.write(a, 7);
        assert_eq!(tx.read(a), 7);
        assert_eq!(tx.read_ptr(a), PAddr::new(7));
        tx.finish();
        assert_eq!(env.space().read_u64(a), 7);
    }

    #[test]
    fn staged_writes_are_not_visible_until_finish() {
        let mut env = PmemEnv::new(Variant::Base);
        let a = env.alloc_block();
        let mut tx = Staged::begin(&mut env, 0);
        tx.write(a, 5);
        // finish applies...
        tx.finish();
        assert_eq!(env.space().read_u64(a), 5);
    }

    #[test]
    fn last_staged_value_wins_with_single_store() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let a = env.alloc_block();
        let mut tx = Staged::begin(&mut env, 0);
        tx.write(a, 1);
        tx.write(a, 2);
        tx.write(a, 3);
        assert_eq!(tx.staged_granules(), 1);
        tx.finish();
        assert_eq!(env.space().read_u64(a), 3);
        assert_eq!(
            env.trace().counts.stores.saturating_sub(
                // subtract the WAL machinery stores: entry header (2) + data (8)
                // + count + bit set + bit clear
                2 + 8 + 3
            ),
            1
        );
    }

    #[test]
    fn byte_ranges_round_trip() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let a = env.alloc_blocks(4);
        let data: Vec<u8> = (0..=255).collect();
        let mut tx = Staged::begin(&mut env, 0);
        tx.write_bytes(a, &data);
        let mut back = vec![0u8; 256];
        tx.read_bytes(a, &mut back);
        assert_eq!(back, data);
        tx.finish();
        let mut after = vec![0u8; 256];
        env.space().read_bytes(a, &mut after);
        assert_eq!(after, data);
    }

    #[test]
    fn fresh_blocks_are_not_logged() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let pre = env.alloc_block();
        let mut tx = Staged::begin(&mut env, 0);
        let fresh = tx.alloc_block();
        tx.write(fresh, 1);
        tx.write(pre, fresh.raw());
        let logged = tx.finish();
        assert_eq!(logged, 1, "only the pre-existing block needs logging");
    }

    #[test]
    fn path_blocks_are_logged_even_if_unwritten() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let a = env.alloc_block();
        let b = env.alloc_block();
        let mut tx = Staged::begin(&mut env, 0);
        tx.note_path(a);
        tx.note_path(b);
        tx.write(a, 1);
        let logged = tx.finish();
        assert_eq!(logged, 2);
    }

    #[test]
    fn crash_anywhere_recovers_atomically() {
        // A 3-cell staged update must be all-or-nothing under recovery.
        let mut env = PmemEnv::new(Variant::LogPSf);
        let cells: Vec<PAddr> = (0..3).map(|_| env.alloc_block()).collect();
        env.set_recording(false);
        for (i, &c) in cells.iter().enumerate() {
            env.store_u64(c, i as u64 + 1);
        }
        env.set_recording(true);
        let base = env.snapshot();
        let mut tx = Staged::begin(&mut env, 0);
        for &c in &cells {
            let v = tx.read(c);
            tx.write(c, v * 100);
        }
        tx.finish();
        let trace = env.take_trace();
        let layout = env.log_layout();
        for crash in 0..=trace.events.len() {
            let sim = CrashSim::new(&base, &trace.events, crash);
            let mut img = sim.image_guaranteed_only();
            recover(&mut img, &layout);
            let state: Vec<u64> = cells.iter().map(|&c| img.read_u64(c)).collect();
            assert!(
                state == [1, 2, 3] || state == [100, 200, 300],
                "crash at {crash} left non-atomic state {state:?}"
            );
        }
    }

    #[test]
    fn block_geometry_sanity() {
        assert_eq!(PAddr::new(0).block(), PAddr::new(63).block());
        assert_ne!(PAddr::new(0).block(), PAddr::new(64).block());
    }
}
