//! BT-inc: the B-tree with *incremental logging* — the design
//! alternative of §3.2 (Fig. 4) that the paper describes and rejects.
//!
//! Instead of pessimistically undo-logging the whole root-to-leaf path
//! up front (full logging, one set of four persist barriers per
//! operation), incremental logging "breaks rebalancing into multiple
//! steps, where in each step we log as few nodes as needed": every
//! preemptive split / borrow / merge — and the final leaf update — runs
//! as its own write-ahead-logging transaction with its own
//! `sfence-pcommit-sfence` barriers.
//!
//! Consequences, exactly as the paper argues:
//!
//! * only the nodes a step actually modifies are logged (cheap logging);
//! * but an operation that rebalances issues one *set of four pcommits
//!   per step* instead of one per operation (expensive ordering);
//! * a crash can land between steps — each step preserves the B-tree
//!   invariants, so recovery yields a *valid* tree in which the
//!   in-flight key simply is not yet inserted (or not yet removed).
//!
//! The `repro incremental` ablation quantifies the trade-off against
//! [`BTree`](crate::btree::BTree)'s full logging.

use rand::rngs::StdRng;
use rand::Rng;
use spp_pmem::{PAddr, PmemEnv, Space};

use crate::btree::{self, Node};
use crate::spec::BenchId;
use crate::staged::Staged;
use crate::{OpOutcome, VerifyError, VerifySummary, Workload};

const MAX_KEYS: u64 = btree::MAX_KEYS;
const MIN_KEYS: u64 = 1;

/// Reads a node through plain (untransactional) loads — the descent
/// between incremental steps.
fn read_node(env: &mut PmemEnv, addr: PAddr) -> Node {
    let hdr = env.load_ptr(addr.offset(btree::HDR)).raw(); // dependent: pointer chase
    let leaf = hdr & btree::LEAF_FLAG != 0;
    let n = (hdr & 0xFF) as usize;
    let mut keys = Vec::with_capacity(3);
    for i in 0..n {
        keys.push(env.load_u64(addr.offset(btree::KEYS + 8 * i as u64)));
    }
    let nslots = if leaf { n } else { n + 1 };
    let base = if leaf { btree::VALUES } else { btree::CHILDREN };
    let mut slots = Vec::with_capacity(4);
    for i in 0..nslots {
        slots.push(env.load_u64(addr.offset(base + 8 * i as u64)));
    }
    env.compute(n as u32 + 2);
    Node {
        addr,
        leaf,
        keys,
        slots,
    }
}

/// The BT benchmark with incremental logging.
#[derive(Debug, Default, Clone)]
pub struct IncBTree {
    header: PAddr,
    key_range: u64,
    /// Barrier-step counter (diagnostics: steps per operation).
    steps: u64,
}

impl IncBTree {
    /// Creates an uninitialized benchmark; call
    /// [`setup`](Workload::setup) first.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write-ahead-logging steps executed so far (each one is a full
    /// four-barrier transaction).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    fn root(&self, env: &mut PmemEnv) -> PAddr {
        env.load_ptr(self.header.offset(btree::ROOT))
    }

    /// One incremental step: `build` runs inside its own transaction.
    fn step(&mut self, env: &mut PmemEnv, op_id: u64, build: impl FnOnce(&mut Staged<'_>)) {
        let id = op_id | (self.steps << 32);
        self.steps += 1;
        let mut tx = Staged::begin(env, id);
        build(&mut tx);
        tx.finish();
    }

    /// Splits the full child at `child_idx` of `parent` in one step.
    fn split_step(&mut self, env: &mut PmemEnv, op_id: u64, parent: PAddr, child_idx: usize) {
        self.step(env, op_id, |tx| {
            let mut p = Node::load(tx, parent);
            tx.note_path(p.addr);
            let mut c = Node::load(tx, PAddr::new(p.slots[child_idx]));
            tx.note_path(c.addr);
            debug_assert_eq!(c.nkeys(), MAX_KEYS);
            let mut right = Node {
                addr: tx.alloc_block(),
                leaf: c.leaf,
                keys: Vec::new(),
                slots: Vec::new(),
            };
            let sep = if c.leaf {
                right.keys = c.keys.split_off(1);
                right.slots = c.slots.split_off(1);
                right.keys[0]
            } else {
                right.keys = c.keys.split_off(2);
                right.slots = c.slots.split_off(2);
                c.keys.pop().expect("middle key")
            };
            p.keys.insert(child_idx, sep);
            p.slots.insert(child_idx + 1, right.addr.raw());
            c.store(tx);
            right.store(tx);
            p.store(tx);
        });
    }

    /// Grows a full root in one step.
    fn grow_root_step(&mut self, env: &mut PmemEnv, op_id: u64) {
        let header = self.header;
        let old_root = self.root(env);
        self.step(env, op_id, |tx| {
            tx.note_path(header);
            let mut root = Node::load(tx, old_root);
            tx.note_path(root.addr);
            let mut new_root = Node {
                addr: tx.alloc_block(),
                leaf: false,
                keys: Vec::new(),
                slots: Vec::new(),
            };
            new_root.slots.push(root.addr.raw());
            // Inline split of child 0 of the fresh root.
            let mut right = Node {
                addr: tx.alloc_block(),
                leaf: root.leaf,
                keys: Vec::new(),
                slots: Vec::new(),
            };
            let sep = if root.leaf {
                right.keys = root.keys.split_off(1);
                right.slots = root.slots.split_off(1);
                right.keys[0]
            } else {
                right.keys = root.keys.split_off(2);
                right.slots = root.slots.split_off(2);
                root.keys.pop().expect("middle key")
            };
            new_root.keys.push(sep);
            new_root.slots.push(right.addr.raw());
            root.store(tx);
            right.store(tx);
            new_root.store(tx);
            tx.write_ptr(header.offset(btree::ROOT), new_root.addr);
        });
    }

    /// Inserts `key` (absent) via per-step transactions.
    fn insert(&mut self, env: &mut PmemEnv, key: u64, op_id: u64) {
        let root = self.root(env);
        let root_node = read_node(env, root);
        if root_node.nkeys() == MAX_KEYS {
            self.grow_root_step(env, op_id);
        }
        let mut n = self.root(env);
        loop {
            let node = read_node(env, n);
            if node.leaf {
                // Final step: the leaf insert publishes the key and the
                // size together.
                let header = self.header;
                self.step(env, op_id, |tx| {
                    let mut leaf = Node::load(tx, n);
                    tx.note_path(leaf.addr);
                    tx.note_path(header);
                    let pos = leaf
                        .keys
                        .iter()
                        .position(|&k| key < k)
                        .unwrap_or(leaf.keys.len());
                    leaf.keys.insert(pos, key);
                    leaf.slots.insert(pos, btree::value_for(key));
                    leaf.store(tx);
                    let size = tx.read(header.offset(btree::SIZE));
                    tx.write(header.offset(btree::SIZE), size + 1);
                });
                return;
            }
            let idx = node
                .keys
                .iter()
                .position(|&k| key < k)
                .unwrap_or(node.keys.len());
            let child = read_node(env, PAddr::new(node.slots[idx]));
            if child.nkeys() == MAX_KEYS {
                self.split_step(env, op_id, n, idx);
                // Re-read the parent: the separator set changed.
                continue;
            }
            n = child.addr;
        }
    }

    /// One borrow-or-merge fix of `parent.slots[idx]` in its own step.
    /// Returns the address of the child that now covers the key range.
    fn fix_step(&mut self, env: &mut PmemEnv, op_id: u64, parent: PAddr, idx: usize) -> PAddr {
        let header = self.header;
        let mut result = PAddr::NULL;
        self.step(env, op_id, |tx| {
            let mut p = Node::load(tx, parent);
            tx.note_path(p.addr);
            let mut child = Node::load(tx, PAddr::new(p.slots[idx]));
            tx.note_path(child.addr);
            // Borrow from the left sibling.
            if idx > 0 {
                let mut left = Node::load(tx, PAddr::new(p.slots[idx - 1]));
                if left.nkeys() > MIN_KEYS {
                    tx.note_path(left.addr);
                    if child.leaf {
                        let k = left.keys.pop().expect("donor");
                        let v = left.slots.pop().expect("donor");
                        child.keys.insert(0, k);
                        child.slots.insert(0, v);
                        p.keys[idx - 1] = child.keys[0];
                    } else {
                        let k = left.keys.pop().expect("donor");
                        let c = left.slots.pop().expect("donor");
                        child.keys.insert(0, p.keys[idx - 1]);
                        child.slots.insert(0, c);
                        p.keys[idx - 1] = k;
                    }
                    left.store(tx);
                    child.store(tx);
                    p.store(tx);
                    result = child.addr;
                    return;
                }
            }
            // Borrow from the right sibling.
            if idx < p.slots.len() - 1 {
                let mut right = Node::load(tx, PAddr::new(p.slots[idx + 1]));
                if right.nkeys() > MIN_KEYS {
                    tx.note_path(right.addr);
                    if child.leaf {
                        let k = right.keys.remove(0);
                        let v = right.slots.remove(0);
                        child.keys.push(k);
                        child.slots.push(v);
                        p.keys[idx] = right.keys[0];
                    } else {
                        let k = right.keys.remove(0);
                        let c = right.slots.remove(0);
                        child.keys.push(p.keys[idx]);
                        child.slots.push(c);
                        p.keys[idx] = k;
                    }
                    right.store(tx);
                    child.store(tx);
                    p.store(tx);
                    result = child.addr;
                    return;
                }
            }
            // Merge.
            if idx > 0 {
                let mut left = Node::load(tx, PAddr::new(p.slots[idx - 1]));
                tx.note_path(left.addr);
                let sep = p.keys.remove(idx - 1);
                p.slots.remove(idx);
                if !child.leaf {
                    left.keys.push(sep);
                }
                left.keys.append(&mut child.keys);
                left.slots.append(&mut child.slots);
                left.store(tx);
                p.store(tx);
                result = left.addr;
            } else {
                let mut right = Node::load(tx, PAddr::new(p.slots[idx + 1]));
                tx.note_path(right.addr);
                let sep = p.keys.remove(idx);
                p.slots.remove(idx + 1);
                if !child.leaf {
                    child.keys.push(sep);
                }
                child.keys.append(&mut right.keys);
                child.slots.append(&mut right.slots);
                child.store(tx);
                p.store(tx);
                result = child.addr;
            }
            // Root shrink is published in the same step (the merge that
            // empties the root must atomically hand off).
            if p.addr == PAddr::new(tx.read(header.offset(btree::ROOT))) && p.keys.is_empty() {
                tx.note_path(header);
                tx.write_ptr(header.offset(btree::ROOT), result);
            }
        });
        debug_assert!(!result.is_null());
        result
    }

    /// Deletes `key` (present) via per-step transactions.
    fn delete(&mut self, env: &mut PmemEnv, key: u64, op_id: u64) {
        let mut n = self.root(env);
        loop {
            let node = read_node(env, n);
            if node.leaf {
                let header = self.header;
                self.step(env, op_id, |tx| {
                    let mut leaf = Node::load(tx, n);
                    tx.note_path(leaf.addr);
                    tx.note_path(header);
                    let pos = leaf
                        .keys
                        .iter()
                        .position(|&k| k == key)
                        .expect("key present");
                    leaf.keys.remove(pos);
                    leaf.slots.remove(pos);
                    leaf.store(tx);
                    let size = tx.read(header.offset(btree::SIZE));
                    tx.write(header.offset(btree::SIZE), size - 1);
                });
                return;
            }
            let idx = node
                .keys
                .iter()
                .position(|&k| key < k)
                .unwrap_or(node.keys.len());
            let child = read_node(env, PAddr::new(node.slots[idx]));
            if child.nkeys() <= MIN_KEYS {
                n = self.fix_step(env, op_id, n, idx);
            } else {
                n = child.addr;
            }
        }
    }

    /// One insert-or-delete operation on `key`.
    fn op(&mut self, env: &mut PmemEnv, key: u64, op_id: u64) -> OpOutcome {
        // Plain search (no transaction — reads need no failure safety).
        let mut n = self.root(env);
        let found = loop {
            let node = read_node(env, n);
            if node.leaf {
                break node.keys.contains(&key);
            }
            let idx = node
                .keys
                .iter()
                .position(|&k| key < k)
                .unwrap_or(node.keys.len());
            n = PAddr::new(node.slots[idx]);
        };
        if found {
            self.delete(env, key, op_id);
            OpOutcome::Deleted(key)
        } else {
            self.insert(env, key, op_id);
            OpOutcome::Inserted(key)
        }
    }

    fn pick_key(&self, rng: &mut StdRng) -> u64 {
        rng.gen_range(0..self.key_range)
    }
}

impl Workload for IncBTree {
    fn id(&self) -> BenchId {
        BenchId::BTree
    }

    fn clone_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    fn setup(&mut self, env: &mut PmemEnv, rng: &mut StdRng, init_ops: u64) {
        self.key_range = (2 * init_ops).max(16);
        self.header = env.alloc_block();
        let root = env.alloc_block();
        env.store_u64(root.offset(btree::HDR), btree::LEAF_FLAG);
        env.store_ptr(self.header.offset(btree::ROOT), root);
        env.store_u64(self.header.offset(btree::SIZE), 0);
        env.set_root(btree::ROOT_SLOT, self.header);
        for op in 0..init_ops {
            let key = self.pick_key(rng);
            self.op(env, key, u64::MAX - op);
        }
        self.steps = 0;
    }

    fn run_op(&mut self, env: &mut PmemEnv, rng: &mut StdRng, op_id: u64) -> OpOutcome {
        let key = self.pick_key(rng);
        self.op(env, key, op_id)
    }

    fn verify(&self, space: &Space) -> Result<VerifySummary, VerifyError> {
        // Identical layout and invariants as the full-logging B-tree.
        let h = PAddr::new(space.read_u64(PmemEnv::root_addr(btree::ROOT_SLOT)));
        let root = PAddr::new(space.read_u64(h.offset(btree::ROOT)));
        let mut keys = Vec::new();
        btree::BTree::verify_rec(space, root, None, None, true, &mut keys)?;
        if keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err(VerifyError::new("BT-inc: leaf scan not strictly sorted"));
        }
        let size = space.read_u64(h.offset(btree::SIZE));
        if keys.len() as u64 != size {
            return Err(VerifyError::new(format!(
                "BT-inc: size field {size} != key count {}",
                keys.len()
            )));
        }
        Ok(VerifySummary { keys, size })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spp_pmem::{recover, CrashSim, Variant};
    use std::collections::BTreeSet;

    fn fresh(variant: Variant) -> (PmemEnv, IncBTree) {
        let mut env = PmemEnv::new(variant);
        let mut rng = StdRng::seed_from_u64(0);
        let mut bt = IncBTree::new();
        bt.setup(&mut env, &mut rng, 0);
        bt.key_range = u64::MAX;
        (env, bt)
    }

    #[test]
    fn oracle_agreement_random_ops() {
        for v in Variant::ALL {
            let mut env = PmemEnv::new(v);
            let mut rng = StdRng::seed_from_u64(5);
            let mut bt = IncBTree::new();
            env.set_recording(false);
            bt.setup(&mut env, &mut rng, 200);
            let mut oracle: BTreeSet<u64> =
                bt.verify(env.space()).unwrap().keys.into_iter().collect();
            for op in 0..400 {
                match bt.run_op(&mut env, &mut rng, op) {
                    OpOutcome::Inserted(k) => assert!(oracle.insert(k)),
                    OpOutcome::Deleted(k) => assert!(oracle.remove(&k)),
                    _ => unreachable!(),
                }
                if op % 16 == 0 {
                    let s = bt.verify(env.space()).unwrap();
                    let got: BTreeSet<u64> = s.keys.into_iter().collect();
                    assert_eq!(got, oracle, "{v} diverged at op {op}");
                }
            }
        }
    }

    #[test]
    fn rebalancing_ops_take_multiple_steps() {
        let (mut env, mut bt) = fresh(Variant::LogPSf);
        env.set_recording(false);
        for k in 0..64 {
            bt.op(&mut env, k, k);
        }
        bt.steps = 0;
        env.set_recording(true);
        // Ascending inserts into a full rightmost spine force splits:
        // some op must take more than one step.
        for k in 64..96 {
            bt.op(&mut env, k, k);
        }
        assert!(
            bt.steps > 32,
            "expected split steps beyond the leaf steps, got {}",
            bt.steps
        );
        // And each step carries its own 4 pcommits.
        assert_eq!(env.trace().counts.pcommits, bt.steps * 4);
    }

    #[test]
    fn incremental_logs_fewer_blocks_but_more_pcommits() {
        use crate::btree::BTree;
        // Same op stream on both variants; compare trace shapes.
        let run = |full: bool| {
            let mut env = PmemEnv::new(Variant::LogPSf);
            let mut rng = StdRng::seed_from_u64(77);
            env.set_recording(false);
            if full {
                let mut t = BTree::new();
                t.setup(&mut env, &mut rng, 300);
                env.set_recording(true);
                for op in 0..50 {
                    t.run_op(&mut env, &mut rng, op);
                }
            } else {
                let mut t = IncBTree::new();
                t.setup(&mut env, &mut rng, 300);
                env.set_recording(true);
                for op in 0..50 {
                    t.run_op(&mut env, &mut rng, op);
                }
            }
            env.take_trace().counts
        };
        let full = run(true);
        let inc = run(false);
        assert!(
            inc.pcommits >= full.pcommits,
            "incremental must issue at least as many pcommits ({} vs {})",
            inc.pcommits,
            full.pcommits
        );
        // Full logging copies far more old data into the log.
        assert!(
            full.stores > inc.stores,
            "full logging should write more log data ({} vs {})",
            full.stores,
            inc.stores
        );
    }

    #[test]
    fn crash_between_steps_leaves_a_valid_tree() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let mut rng = StdRng::seed_from_u64(9);
        let mut bt = IncBTree::new();
        env.set_recording(false);
        bt.setup(&mut env, &mut rng, 120);
        env.set_recording(true);
        let base = env.snapshot();
        let before: BTreeSet<u64> = bt.verify(env.space()).unwrap().keys.into_iter().collect();
        let mut states = vec![before];
        for op in 0..8 {
            let mut cur = states.last().unwrap().clone();
            match bt.run_op(&mut env, &mut rng, op) {
                OpOutcome::Inserted(k) => {
                    cur.insert(k);
                }
                OpOutcome::Deleted(k) => {
                    cur.remove(&k);
                }
                _ => {}
            }
            states.push(cur);
        }
        let trace = env.take_trace();
        let layout = env.log_layout();
        for i in 0..48 {
            let crash = trace.events.len() * i / 47;
            let sim = CrashSim::new(&base, &trace.events, crash.min(trace.events.len()));
            let mut img = sim.image_guaranteed_only();
            recover(&mut img, &layout);
            // The tree must be structurally valid at EVERY point
            // (incremental steps preserve invariants)...
            let s = bt
                .verify(&img)
                .unwrap_or_else(|e| panic!("crash at {crash}: {e}"));
            // ...and its key set must match some operation prefix
            // (splits don't change the key set; only the final leaf
            // step does).
            let got: BTreeSet<u64> = s.keys.into_iter().collect();
            assert!(
                states.contains(&got),
                "crash at {crash}: state matches no prefix"
            );
        }
    }

    #[test]
    fn drain_and_refill() {
        let (mut env, mut bt) = fresh(Variant::LogPSf);
        for k in 0..48 {
            bt.op(&mut env, k, k);
        }
        for k in 0..48 {
            assert_eq!(bt.op(&mut env, k, 100 + k), OpOutcome::Deleted(k));
            bt.verify(env.space()).unwrap();
        }
        assert_eq!(bt.verify(env.space()).unwrap().size, 0);
    }
}
