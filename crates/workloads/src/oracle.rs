//! Crash-recovery oracles: deciding whether a post-crash, post-recovery
//! memory image is *consistent* for each benchmark.
//!
//! The structural side of every oracle is the benchmark's own
//! [`Workload::verify`]: AVL balance factors and BST ordering, red-black
//! and B-tree invariants, hash-map membership and chain integrity,
//! linked-list ordering, and string-swap atomicity (torn 256-byte
//! entries are detected by their index-tagged content). This module adds
//! the *transactional* side: after [`recover`] the logical contents must
//! sit exactly at an operation boundary — the state after the last
//! transaction whose `TxEnd` marker precedes the crash, or (when the
//! crash lands between the durable `logged_bit` clear and the `TxEnd`
//! marker itself) the state one operation later. Any other recovered
//! state means a committed operation was lost or a torn one exposed —
//! the §2/Fig. 3 failure the paper's `Log+P+Sf` protocol exists to
//! prevent.
//!
//! A [`CrashBundle`] packages everything an oracle check needs: the
//! durable pre-trace image, the recorded event stream, the undo-log
//! layout, and the expected logical state at every operation boundary.
//! [`CrashBundle::check_crash`] then replays one `(crash_idx, seed)`
//! adversarial writeback schedule end to end: crash simulation →
//! recovery → structural verification → boundary matching.

use std::collections::BTreeSet;
use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;
use spp_pmem::{recover, CrashSim, Event, FlushMode, LogLayout, PmemEnv, Space, Variant};

use crate::{make_workload, BenchId, OpOutcome, Workload};

/// Sizing and identity of one crash-fuzzing bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BundleSpec {
    /// Which benchmark.
    pub id: BenchId,
    /// The build variant whose persistence machinery is traced.
    pub variant: Variant,
    /// Which flush instruction the build emits.
    pub flush_mode: FlushMode,
    /// Operations populating the structure (unrecorded).
    pub init_ops: u64,
    /// Recorded operations available as crash targets.
    pub sim_ops: u64,
    /// RNG seed for the operation stream.
    pub seed: u64,
}

/// A recorded run prepared for crash injection: base image, events,
/// per-operation expected states, and the live workload object whose
/// `verify` runs against candidate images.
#[derive(Debug)]
pub struct CrashBundle {
    spec: BundleSpec,
    base: Space,
    events: Vec<Event>,
    layout: LogLayout,
    /// Logical contents after 0, 1, ..., `sim_ops` completed operations.
    states: Vec<BTreeSet<u64>>,
    workload: Box<dyn Workload>,
}

/// How a crash image failed its oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// The recovered structure violated a structural invariant (broken
    /// ordering, torn string, dangling pointer, ...).
    StructureInvalid,
    /// The structure verified, but its contents match no adjacent
    /// operation boundary — a committed operation was lost or a torn
    /// one became visible.
    StateMismatch,
    /// A multi-key scan result is internally inconsistent or mixes two
    /// operation boundaries — a half-applied operation is visible to
    /// range reads.
    ScanInconsistent,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ViolationKind::StructureInvalid => "structure-invalid",
            ViolationKind::StateMismatch => "state-mismatch",
            ViolationKind::ScanInconsistent => "scan-inconsistent",
        })
    }
}

/// Checks one multi-key scan result against the two adjacent operation
/// boundaries: every key must lie in `[lo, hi]`, the result must be
/// strictly ascending (duplicates and disorder are torn-structure
/// symptoms that set-based comparison silently collapses), and the
/// window contents must equal `prev ∩ [lo, hi]` or `next ∩ [lo, hi]` —
/// a scan mixing both states observed a half-applied operation.
///
/// # Errors
///
/// Returns a [`ViolationKind::ScanInconsistent`] violation describing
/// the first failed property.
pub fn check_scan_window(
    scan: &[u64],
    lo: u64,
    hi: u64,
    prev: &BTreeSet<u64>,
    next: &BTreeSet<u64>,
) -> Result<(), OracleViolation> {
    let fail = |detail: String| {
        Err(OracleViolation {
            kind: ViolationKind::ScanInconsistent,
            detail,
        })
    };
    for &k in scan {
        if !(lo..=hi).contains(&k) {
            return fail(format!("scan key {k} outside the window [{lo}, {hi}]"));
        }
    }
    if let Some(w) = scan.windows(2).find(|w| w[0] >= w[1]) {
        return fail(format!(
            "scan result not strictly ascending at {} >= {} (duplicate or disordered key)",
            w[0], w[1]
        ));
    }
    let got: BTreeSet<u64> = scan.iter().copied().collect();
    let pw: BTreeSet<u64> = prev.range(lo..=hi).copied().collect();
    let nw: BTreeSet<u64> = next.range(lo..=hi).copied().collect();
    if got == pw || got == nw {
        Ok(())
    } else {
        fail(format!(
            "scan of [{lo}, {hi}] returned {} keys, matching neither the pre-boundary window \
             ({} keys) nor the post-boundary window ({} keys) — a half-applied operation is \
             visible",
            got.len(),
            pw.len(),
            nw.len()
        ))
    }
}

/// An oracle failure for one `(crash_idx, seed)` schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleViolation {
    /// What failed.
    pub kind: ViolationKind,
    /// Deterministic human-readable description.
    pub detail: String,
}

impl fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

/// Records a bundle: populate in fast-forward, snapshot the quiesced
/// image, then record `sim_ops` operations while tracking the expected
/// logical state at every boundary.
///
/// Unlike [`crate::run_benchmark`] this deliberately skips the
/// application-context driver: its megabyte-scale pointer ring would
/// dominate every per-image [`Space`] clone during fuzzing without
/// adding crash-relevant behaviour (driver traffic is never logged, so
/// it cannot change recovery).
///
/// # Panics
///
/// Panics if the freshly populated structure fails verification (a
/// workload bug, never an expected outcome).
pub fn record_bundle(spec: &BundleSpec) -> CrashBundle {
    let mut env = PmemEnv::new(spec.variant);
    env.set_flush_mode(spec.flush_mode);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut w = make_workload(spec.id);
    env.set_recording(false);
    w.setup(&mut env, &mut rng, spec.init_ops);
    env.set_recording(true);
    let base = env.snapshot();
    let mut states: Vec<BTreeSet<u64>> = Vec::with_capacity(spec.sim_ops as usize + 1);
    states.push(
        w.verify(env.space())
            .expect("post-init structure must verify")
            .keys
            .into_iter()
            .collect(),
    );
    for op in 0..spec.sim_ops {
        let mut cur = states.last().expect("non-empty").clone();
        match w.run_op(&mut env, &mut rng, op) {
            OpOutcome::Inserted(k) => {
                cur.insert(k);
            }
            OpOutcome::Deleted(k) => {
                cur.remove(&k);
            }
            OpOutcome::Swapped(..) | OpOutcome::Noop => {}
        }
        states.push(cur);
    }
    let layout = env.log_layout();
    CrashBundle {
        spec: *spec,
        base,
        events: env.take_trace().events,
        layout,
        states,
        workload: w,
    }
}

impl CrashBundle {
    /// The spec this bundle was recorded from.
    pub fn spec(&self) -> &BundleSpec {
        &self.spec
    }

    /// The recorded event stream (crash indices range over
    /// `0..=events().len()`).
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Expected logical contents after each completed operation
    /// (`states()[0]` is the post-init state).
    pub fn states(&self) -> &[BTreeSet<u64>] {
        &self.states
    }

    /// Number of `TxEnd` markers before `crash_idx`: the count of
    /// operations certainly completed at the crash.
    pub fn completed_ops(&self, crash_idx: usize) -> usize {
        self.events[..crash_idx]
            .iter()
            .filter(|e| matches!(e, Event::TxEnd(_)))
            .count()
    }

    /// Runs recovery and the full oracle against `image`, which must be
    /// a candidate NVMM image of a crash at `crash_idx`.
    ///
    /// # Errors
    ///
    /// Returns the violation if the recovered structure is invalid or
    /// its contents match neither adjacent operation boundary.
    pub fn check_image(&self, image: &mut Space, crash_idx: usize) -> Result<(), OracleViolation> {
        self.check_image_at(image, self.completed_ops(crash_idx))
    }

    /// The oracle body, parameterized on the completed-operation count
    /// so foreign event streams (see [`CrashBundle::check_crash_of`])
    /// can supply their own.
    fn check_image_at(&self, image: &mut Space, completed: usize) -> Result<(), OracleViolation> {
        recover(image, &self.layout);
        let raw_keys = match self.workload.verify(image) {
            Ok(s) => s.keys,
            Err(e) => {
                return Err(OracleViolation {
                    kind: ViolationKind::StructureInvalid,
                    detail: e.to_string(),
                })
            }
        };
        let got: BTreeSet<u64> = raw_keys.iter().copied().collect();
        // The crash may land between the durable logged_bit clear and
        // the (zero-cost) TxEnd marker: the next state is then already
        // durable despite not being counted.
        let next = (completed + 1).min(self.states.len() - 1);
        if got != self.states[completed] && got != self.states[next] {
            return Err(OracleViolation {
                kind: ViolationKind::StateMismatch,
                detail: format!(
                    "recovered contents ({} keys) match neither the state after {completed} \
                     completed operations ({} keys) nor the next boundary ({} keys)",
                    got.len(),
                    self.states[completed].len(),
                    self.states[next].len()
                ),
            });
        }
        // Multi-key scan semantics: the raw key list, read as one full-
        // range scan, must be a consistent view of a single boundary.
        // This catches duplicate keys that set conversion collapses
        // (workloads whose verify returns unsorted keys are sorted
        // first; duplicates survive sorting).
        let mut sorted = raw_keys;
        sorted.sort_unstable();
        check_scan_window(
            &sorted,
            0,
            u64::MAX,
            &self.states[completed],
            &self.states[next],
        )
    }

    /// Replays one adversarial schedule: crash at `crash_idx`, per-block
    /// writeback cuts drawn from `seed` (see
    /// [`CrashSim::image_seeded`]), then recovery and the oracle.
    ///
    /// # Errors
    ///
    /// Returns the violation for a failing schedule.
    ///
    /// # Panics
    ///
    /// Panics if `crash_idx > events().len()`.
    pub fn check_crash(&self, crash_idx: usize, seed: u64) -> Result<(), OracleViolation> {
        let sim = CrashSim::new(&self.base, &self.events, crash_idx);
        let mut img = sim.image_seeded(seed);
        self.check_image(&mut img, crash_idx)
    }

    /// Like [`CrashBundle::check_crash`], but crashes a *foreign* event
    /// stream — a transformed replay of this bundle's recording (e.g. a
    /// persist-elision plan applied by `spp_bench::optimize`) that must
    /// still satisfy the same recovery oracle. The stream must perform
    /// the same stores and transactions as the recording; only persist
    /// operations may differ. The completed-operation count is taken
    /// from `events`, not from the recording.
    ///
    /// # Errors
    ///
    /// Returns the violation for a failing schedule.
    ///
    /// # Panics
    ///
    /// Panics if `crash_idx > events.len()`.
    pub fn check_crash_of(
        &self,
        events: &[Event],
        crash_idx: usize,
        seed: u64,
    ) -> Result<(), OracleViolation> {
        let sim = CrashSim::new(&self.base, events, crash_idx);
        let mut img = sim.image_seeded(seed);
        let completed = events[..crash_idx]
            .iter()
            .filter(|e| matches!(e, Event::TxEnd(_)))
            .count();
        self.check_image_at(&mut img, completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_pmem::persist_boundaries;

    fn spec(id: BenchId, variant: Variant) -> BundleSpec {
        BundleSpec {
            id,
            variant,
            flush_mode: FlushMode::default(),
            init_ops: 40,
            sim_ops: 4,
            seed: 0xFACE,
        }
    }

    #[test]
    fn bundle_records_states_per_op() {
        let b = record_bundle(&spec(BenchId::LinkedList, Variant::LogPSf));
        assert_eq!(b.states().len(), 5);
        assert!(!b.events().is_empty());
        assert_eq!(b.completed_ops(b.events().len()), 4);
        assert_eq!(b.completed_ops(0), 0);
    }

    #[test]
    fn logpsf_passes_oracle_at_every_boundary() {
        for id in [BenchId::LinkedList, BenchId::AvlTree, BenchId::HashMap] {
            let b = record_bundle(&spec(id, Variant::LogPSf));
            for &p in &persist_boundaries(b.events()) {
                for seed in 0..2u64 {
                    if let Err(v) = b.check_crash(p, seed) {
                        panic!("{id} @ {p} seed {seed}: {v}");
                    }
                }
            }
        }
    }

    #[test]
    fn log_variant_fails_oracle_somewhere() {
        let mut found = false;
        'outer: for id in [BenchId::LinkedList, BenchId::AvlTree] {
            let b = record_bundle(&spec(id, Variant::Log));
            for &p in &persist_boundaries(b.events()) {
                for seed in 0..4u64 {
                    if b.check_crash(p, seed).is_err() {
                        found = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(found, "Log (no persist ops) never violated the oracle");
    }

    #[test]
    fn eager_final_image_is_the_last_state() {
        let b = record_bundle(&spec(BenchId::RbTree, Variant::LogPSf));
        let sim = CrashSim::new(&b.base, b.events(), b.events().len());
        let mut img = sim.image_everything();
        b.check_image(&mut img, b.events().len())
            .expect("eager final image must be the final state");
    }

    #[test]
    fn string_swap_oracle_detects_torn_swaps() {
        // In the Log build nothing is ever guaranteed: adversarial
        // schedules can tear a 4-block string copy mid-swap, which the
        // index-tagged content check must catch as a violation.
        let b = record_bundle(&spec(BenchId::StringSwap, Variant::Log));
        let mut found = false;
        for &p in &persist_boundaries(b.events()) {
            for seed in 0..8u64 {
                if b.check_crash(p, seed).is_err() {
                    found = true;
                    break;
                }
            }
        }
        assert!(found, "torn string swaps went undetected");
    }

    #[test]
    fn scan_window_flags_half_applied_insert() {
        let prev: BTreeSet<u64> = [1, 5, 9].into();
        // The op inserted key 3. A scan that sees the new key 3 but lost
        // committed key 5 matches neither boundary: half-applied, flagged.
        let next: BTreeSet<u64> = [1, 3, 5, 9].into();
        let err = check_scan_window(&[1, 3, 9], 0, 10, &prev, &next).unwrap_err();
        assert_eq!(err.kind, ViolationKind::ScanInconsistent);
        assert!(err.to_string().contains("half-applied"), "{err}");
        // Both adjacent boundary views are fine.
        check_scan_window(&[1, 5, 9], 0, 10, &prev, &next).unwrap();
        check_scan_window(&[1, 3, 5, 9], 0, 10, &prev, &next).unwrap();
    }

    #[test]
    fn scan_window_flags_duplicates_disorder_and_strays() {
        let s: BTreeSet<u64> = [1, 2].into();
        assert!(check_scan_window(&[1, 1, 2], 0, 10, &s, &s).is_err());
        assert!(check_scan_window(&[2, 1], 0, 10, &s, &s).is_err());
        assert!(check_scan_window(&[1, 2, 11], 0, 10, &s, &s).is_err());
        check_scan_window(&[1, 2], 0, 10, &s, &s).unwrap();
        check_scan_window(&[], 3, 10, &s, &s).unwrap();
    }

    #[test]
    fn scan_window_respects_bounds() {
        let prev: BTreeSet<u64> = [1, 5, 9].into();
        let next: BTreeSet<u64> = [1, 5, 7, 9].into();
        // Window [4, 8]: prev sees {5}, next sees {5, 7}.
        check_scan_window(&[5], 4, 8, &prev, &next).unwrap();
        check_scan_window(&[5, 7], 4, 8, &prev, &next).unwrap();
        // {7} alone dropped committed key 5: neither boundary.
        assert!(check_scan_window(&[7], 4, 8, &prev, &next).is_err());
    }

    #[test]
    fn violation_display_is_informative() {
        let v = OracleViolation {
            kind: ViolationKind::StateMismatch,
            detail: "x".into(),
        };
        assert_eq!(v.to_string(), "state-mismatch: x");
        let v2 = OracleViolation {
            kind: ViolationKind::StructureInvalid,
            detail: "y".into(),
        };
        assert!(v2.to_string().starts_with("structure-invalid"));
    }
}
