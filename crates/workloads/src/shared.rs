//! Shared-NVMM multi-threaded workloads for the true multi-core study.
//!
//! The paper's suite (Table 1) is single-threaded; these generators
//! produce *per-core* traces of concurrent persistent structures in the
//! style of lock-free designs adapted to NVMM — a Treiber-style
//! persistent stack and a Michael-Scott-style persistent queue — with a
//! per-op persist barrier (`sfence; pcommit; sfence`) after every
//! structural update, the pattern SP speculates past.
//!
//! Each core's trace is a **pure function** of `(kind, core, spec)`:
//! independent of how many cores end up in the run, so a 1→N scaling
//! study reuses the same per-core streams and stays `--jobs`- and
//! permutation-deterministic.
//!
//! Sharing is explicit and tunable. Every operation either targets the
//! *shared* structure (its control block — stack top, queue head/tail —
//! lives at a fixed address every core uses) or a structurally
//! identical *core-private* replica in a disjoint address region. The
//! [`SharedSpec::share_pm`] knob sets the per-mille of shared
//! operations: `0` yields fully address-disjoint traces (no coherence
//! conflicts possible), `1000` maximal contention. Node payloads are
//! always allocated from a per-core slice of the arena, so conflicts
//! come from the control pointers — exactly where a Treiber stack or MS
//! queue serializes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spp_pmem::{Event, PAddr, Trace};

/// Base of the shared control region (stack top / queue head+tail).
const SHARED_BASE: u64 = 1 << 24;
/// Base of the shared node arena (per-core disjoint slices).
const ARENA_BASE: u64 = SHARED_BASE + (1 << 20);
/// Arena slots per core (slice stride).
const ARENA_SLOTS: u64 = 1 << 16;
/// Base of the per-core private replicas.
const PRIVATE_BASE: u64 = 1 << 28;
/// Bytes reserved per core for its private replica.
const PRIVATE_STRIDE: u64 = 1 << 22;
/// Cache block size in bytes.
const BLOCK: u64 = 64;

/// Which concurrent persistent structure a trace exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SharedKind {
    /// Treiber-style persistent stack: push/pop serialize on one `top`
    /// pointer block.
    TreiberStack,
    /// Michael-Scott-style persistent queue: enqueue serializes on
    /// `tail`, dequeue on `head`.
    MsQueue,
}

impl SharedKind {
    /// All shared workloads, in report order.
    pub const ALL: [SharedKind; 2] = [SharedKind::TreiberStack, SharedKind::MsQueue];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SharedKind::TreiberStack => "Treiber stack",
            SharedKind::MsQueue => "MS queue",
        }
    }

    /// Stable slug for journal keys and JSON records.
    pub fn key(self) -> &'static str {
        match self {
            SharedKind::TreiberStack => "treiber-stack",
            SharedKind::MsQueue => "ms-queue",
        }
    }
}

/// Sizing and contention knobs for one shared-workload trace set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedSpec {
    /// Operations per core.
    pub ops_per_core: u64,
    /// Per-mille of operations that target the shared structure
    /// (`0` = fully disjoint, `1000` = every op contends).
    pub share_pm: u32,
    /// RNG seed; each `(kind, core)` derives its own stream from it.
    pub seed: u64,
}

/// Addresses for one structure instance (shared or core-private).
struct Layout {
    /// Stack `top` / queue `head` pointer block.
    head: PAddr,
    /// Queue `tail` pointer block (unused by the stack).
    tail: PAddr,
}

impl Layout {
    fn shared() -> Self {
        Layout {
            head: PAddr::new(SHARED_BASE),
            tail: PAddr::new(SHARED_BASE + BLOCK),
        }
    }

    fn private(core: usize) -> Self {
        let base = PRIVATE_BASE + core as u64 * PRIVATE_STRIDE;
        Layout {
            head: PAddr::new(base),
            tail: PAddr::new(base + BLOCK),
        }
    }
}

/// Generates core `core`'s trace for `kind` under `spec`.
///
/// Deterministic in `(kind, core, spec)` and independent of the number
/// of cores that will run alongside, so scaling studies can grow the
/// core set without perturbing existing streams.
pub fn shared_trace(kind: SharedKind, core: usize, spec: &SharedSpec) -> Trace {
    let mut rng = StdRng::seed_from_u64(
        spec.seed
            ^ (core as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ ((kind as u64 + 1) << 56),
    );
    let shared = Layout::shared();
    let private = Layout::private(core);
    // Per-core slice of the shared arena: node payloads never conflict,
    // only the control pointers do (as in the real structures, where
    // the CAS on top/tail is the serialization point).
    let arena =
        |op: u64| PAddr::new(ARENA_BASE + (core as u64 * ARENA_SLOTS + op % ARENA_SLOTS) * BLOCK);
    let mut t = Trace::new();
    for op in 0..spec.ops_per_core {
        let contended = rng.gen_range(0..1000u32) < spec.share_pm;
        let lay = if contended { &shared } else { &private };
        let node = arena(op);
        let push = rng.gen_range(0..2u32) == 0;
        match kind {
            SharedKind::TreiberStack => {
                if push {
                    push_op(&mut t, lay.head, node, op);
                } else {
                    pop_op(&mut t, lay.head);
                }
            }
            SharedKind::MsQueue => {
                if push {
                    // Enqueue: link behind `tail`, then swing `tail`.
                    push_op(&mut t, lay.tail, node, op);
                } else {
                    // Dequeue: advance `head`.
                    pop_op(&mut t, lay.head);
                }
            }
        }
        t.push(Event::Compute(rng.gen_range(50..120u32)));
    }
    t
}

/// Insert at a control pointer: initialize the node, persist it, then
/// publish by updating the pointer and persisting that too. Two persist
/// barriers per op (§3.1's pattern), the second publishing the shared
/// word other cores read — the coherence-visible step.
fn push_op(t: &mut Trace, ptr: PAddr, node: PAddr, op: u64) {
    // Read the current pointer (address-dependent: pointer chase).
    t.push(Event::Load {
        addr: ptr,
        size: 8,
        dep: true,
    });
    // node.value = op; node.next = old pointer.
    t.push(Event::Store {
        addr: node,
        size: 8,
        value: op,
    });
    t.push(Event::Store {
        addr: node.offset(8),
        size: 8,
        value: op,
    });
    t.push(Event::Clwb { addr: node });
    t.push(Event::Sfence);
    t.push(Event::Pcommit);
    t.push(Event::Sfence);
    // Publish: swing the pointer to the new node.
    t.push(Event::Store {
        addr: ptr,
        size: 8,
        value: op,
    });
    t.push(Event::Clwb { addr: ptr });
    t.push(Event::Sfence);
    t.push(Event::Pcommit);
    t.push(Event::Sfence);
}

/// Remove at a control pointer: chase it to the head node, then swing
/// the pointer past it and persist. One persist barrier per op.
fn pop_op(t: &mut Trace, ptr: PAddr) {
    t.push(Event::Load {
        addr: ptr,
        size: 8,
        dep: true,
    });
    // Read head.next (the node the pointer will move to).
    t.push(Event::Load {
        addr: ptr.offset(8),
        size: 8,
        dep: true,
    });
    t.push(Event::Store {
        addr: ptr,
        size: 8,
        value: 0,
    });
    t.push(Event::Clwb { addr: ptr });
    t.push(Event::Sfence);
    t.push(Event::Pcommit);
    t.push(Event::Sfence);
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn blocks(t: &Trace) -> HashSet<u64> {
        t.events
            .iter()
            .filter_map(|e| match *e {
                Event::Load { addr, .. } | Event::Store { addr, .. } => Some(addr.block().raw()),
                Event::Clwb { addr } => Some(addr.block().raw()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn traces_are_deterministic_and_core_count_independent() {
        let spec = SharedSpec {
            ops_per_core: 40,
            share_pm: 500,
            seed: 42,
        };
        for kind in SharedKind::ALL {
            let a = shared_trace(kind, 1, &spec);
            let b = shared_trace(kind, 1, &spec);
            assert_eq!(a.events, b.events, "{kind:?} not deterministic");
            assert!(a.counts.pcommits >= spec.ops_per_core);
        }
    }

    #[test]
    fn different_cores_and_seeds_get_different_streams() {
        let spec = SharedSpec {
            ops_per_core: 40,
            share_pm: 500,
            seed: 42,
        };
        let c0 = shared_trace(SharedKind::TreiberStack, 0, &spec);
        let c1 = shared_trace(SharedKind::TreiberStack, 1, &spec);
        assert_ne!(c0.events, c1.events, "cores must not mirror each other");
        let reseeded = shared_trace(
            SharedKind::TreiberStack,
            0,
            &SharedSpec { seed: 43, ..spec },
        );
        assert_ne!(c0.events, reseeded.events);
    }

    #[test]
    fn zero_contention_is_fully_address_disjoint() {
        let spec = SharedSpec {
            ops_per_core: 60,
            share_pm: 0,
            seed: 7,
        };
        for kind in SharedKind::ALL {
            let b0 = blocks(&shared_trace(kind, 0, &spec));
            let b1 = blocks(&shared_trace(kind, 1, &spec));
            assert!(
                b0.is_disjoint(&b1),
                "{kind:?}: disjoint leg must share no blocks"
            );
        }
    }

    #[test]
    fn full_contention_shares_the_control_blocks() {
        let spec = SharedSpec {
            ops_per_core: 60,
            share_pm: 1000,
            seed: 7,
        };
        for kind in SharedKind::ALL {
            let b0 = blocks(&shared_trace(kind, 0, &spec));
            let b1 = blocks(&shared_trace(kind, 1, &spec));
            let shared: Vec<_> = b0.intersection(&b1).collect();
            assert!(
                !shared.is_empty(),
                "{kind:?}: contended leg must share control blocks"
            );
        }
    }
}
