//! # spp-workloads — the paper's benchmark suite (Table 1)
//!
//! Seven single-threaded persistent data structures with write-ahead
//! logging failure safety, exactly the suite of §3 of *"Hiding the Long
//! Latency of Persist Barriers Using Speculative Execution"* (ISCA '17):
//!
//! | Abbrev | Benchmark | Operation |
//! |---|---|---|
//! | GH | [`graph`] | insert or delete edges |
//! | HM | [`hashmap`] | insert or delete entries (with resizing) |
//! | LL | [`linked_list`] | insert or delete nodes (max 1024) |
//! | SS | [`string_swap`] | swap 256-byte strings |
//! | AT | [`avl`] | insert or delete nodes (full logging) |
//! | BT | [`btree`] | insert or delete nodes (full logging) |
//! | RT | [`rbtree`] | insert or delete nodes (full logging) |
//!
//! Every operation searches a random key and deletes it if present,
//! inserts it otherwise (String Swap swaps two random entries). Each
//! structure keeps all state in the persistent address space of a
//! [`PmemEnv`], sizes nodes to one 64-byte cache block, and runs each
//! operation as one [`Staged`] transaction (four persist barriers, §3.1).
//!
//! ```
//! use spp_pmem::Variant;
//! use spp_workloads::{BenchId, BenchSpec, RunConfig};
//!
//! let cfg = RunConfig {
//!     variant: Variant::LogPSf,
//!     spec: BenchSpec { id: BenchId::LinkedList, init_ops: 100, sim_ops: 50 },
//!     seed: 42,
//!     capture_base: false,
//! };
//! let out = spp_workloads::run_benchmark(&cfg);
//! assert!(out.trace.counts.pcommits >= 4 * 50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod avl;
pub mod btree;
pub mod btree_inc;
pub mod driver;
pub mod graph;
pub mod hashmap;
pub mod kv;
pub mod linked_list;
pub mod litmus;
pub mod oracle;
pub mod rbtree;
pub mod shared;
pub mod spec;
mod staged;
pub mod string_swap;
pub mod zipf;

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;
use spp_pmem::{FlushMode, PmemEnv, SharedTrace, Space, Trace, Variant};

pub use shared::{shared_trace, SharedKind, SharedSpec};
pub use spec::{BenchId, BenchSpec};
pub use staged::Staged;

/// What a benchmark operation did (used by crash tests to track the
/// expected logical state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpOutcome {
    /// A key was inserted.
    Inserted(u64),
    /// A key was deleted.
    Deleted(u64),
    /// Two string-array entries were swapped.
    Swapped(u64, u64),
    /// The operation had no effect (e.g. the linked list hit its
    /// 1024-node cap on an insert).
    Noop,
}

/// Structural summary returned by a successful verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifySummary {
    /// The structure's logical keys, sorted. (String Swap reports each
    /// entry's embedded original index; the graph encodes edges as
    /// `from << 32 | to`.)
    pub keys: Vec<u64>,
    /// The structure's recorded element count.
    pub size: u64,
}

/// A structural-invariant violation found during verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError(String);

impl VerifyError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        VerifyError(msg.into())
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "structure verification failed: {}", self.0)
    }
}

impl std::error::Error for VerifyError {}

/// A persistent data-structure benchmark.
///
/// Implementations keep *all* structure state in the persistent address
/// space (reachable from the root directory), so [`verify`](Self::verify)
/// can run against any memory image — including post-crash, post-recovery
/// images that the live workload object never saw.
pub trait Workload: fmt::Debug + Send + Sync {
    /// Which Table 1 benchmark this is.
    fn id(&self) -> BenchId;

    /// Clones the workload object behind its trait object (used by the
    /// setup cache to replay the measured phase from a shared populated
    /// image).
    fn clone_box(&self) -> Box<dyn Workload>;

    /// Creates the structure and populates it with `init_ops` operations
    /// (the paper's fast-forward phase; callers typically disable trace
    /// recording around this).
    fn setup(&mut self, env: &mut PmemEnv, rng: &mut StdRng, init_ops: u64);

    /// Runs one measured operation.
    fn run_op(&mut self, env: &mut PmemEnv, rng: &mut StdRng, op_id: u64) -> OpOutcome;

    /// Checks every structural invariant against `space` and returns the
    /// logical contents.
    ///
    /// # Errors
    ///
    /// Returns a [`VerifyError`] describing the first violated invariant.
    fn verify(&self, space: &Space) -> Result<VerifySummary, VerifyError>;
}

/// Instantiates the named benchmark.
pub fn make_workload(id: BenchId) -> Box<dyn Workload> {
    match id {
        BenchId::Graph => Box::new(graph::Graph::new()),
        BenchId::HashMap => Box::new(hashmap::HashMap::new()),
        BenchId::LinkedList => Box::new(linked_list::LinkedList::new()),
        BenchId::StringSwap => Box::new(string_swap::StringSwap::new()),
        BenchId::AvlTree => Box::new(avl::AvlTree::new()),
        BenchId::BTree => Box::new(btree::BTree::new()),
        BenchId::RbTree => Box::new(rbtree::RbTree::new()),
    }
}

/// Configuration of one benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// The build variant (Fig. 8 bar).
    pub variant: Variant,
    /// Benchmark and sizing.
    pub spec: BenchSpec,
    /// RNG seed; identical seeds produce identical operation streams
    /// across variants, so variant comparisons are apples-to-apples.
    pub seed: u64,
    /// Capture a post-init memory snapshot (needed by crash tests;
    /// costs a full copy of the heap).
    pub capture_base: bool,
}

/// Everything a benchmark run produces.
#[derive(Debug)]
pub struct RunOutput {
    /// The recorded micro-op trace of the measured phase.
    pub trace: Trace,
    /// Post-init memory image (only if `capture_base` was set).
    pub base_image: Option<Space>,
    /// Per-operation outcomes, in order.
    pub outcomes: Vec<OpOutcome>,
    /// The environment after the run (final memory image, undo-log
    /// layout, heap bounds).
    pub env: PmemEnv,
    /// The workload object (for post-hoc verification of images).
    pub workload: Box<dyn Workload>,
}

/// Runs one benchmark end to end: populate in fast-forward, record the
/// measured operations, and verify the final structure.
///
/// # Panics
///
/// Panics if the final structure fails verification — that would be a
/// bug in this crate, never an expected outcome.
pub fn run_benchmark(cfg: &RunConfig) -> RunOutput {
    let mut env = PmemEnv::new(cfg.variant);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut w = make_workload(cfg.spec.id);

    env.set_recording(false);
    w.setup(&mut env, &mut rng, cfg.spec.init_ops);
    env.set_recording(true);

    // The application-context driver is created after population but
    // before measurement (it is pre-existing application state).
    let mut drv = driver::Driver::new(&mut env, &mut rng);

    let base_image = if cfg.capture_base {
        Some(env.snapshot())
    } else {
        None
    };

    let mut outcomes = Vec::with_capacity(cfg.spec.sim_ops as usize);
    for op in 0..cfg.spec.sim_ops {
        drv.before_op(&mut env);
        outcomes.push(w.run_op(&mut env, &mut rng, op));
    }
    let trace = env.take_trace();

    if let Err(e) = w.verify(env.space()) {
        panic!("{} final image invalid: {e}", cfg.spec.id);
    }

    RunOutput {
        trace,
        base_image,
        outcomes,
        env,
        workload: w,
    }
}

/// Identifies one recordable trace: everything that determines the
/// event stream bit-for-bit. Two equal `TraceSpec`s always produce
/// identical traces, which is what makes trace caching sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceSpec {
    /// The build variant.
    pub variant: Variant,
    /// Benchmark and sizing.
    pub spec: BenchSpec,
    /// RNG seed for the operation stream.
    pub seed: u64,
    /// Which flush instruction the build emits.
    pub flush_mode: FlushMode,
}

impl TraceSpec {
    /// A spec with the default (`clwb`) flush instruction.
    pub fn new(variant: Variant, spec: BenchSpec, seed: u64) -> Self {
        TraceSpec {
            variant,
            spec,
            seed,
            flush_mode: FlushMode::default(),
        }
    }
}

/// Records one benchmark trace and freezes it for concurrent replay.
///
/// This is the recording entry point for the evaluation harness: it
/// runs the same populate/measure protocol as [`run_benchmark`] but
/// returns only the immutable [`SharedTrace`], which many simulator
/// configurations can then replay in parallel without re-recording.
///
/// # Panics
///
/// Panics if the final structure fails verification — that would be a
/// bug in this crate, never an expected outcome.
pub fn record_trace(ts: &TraceSpec) -> SharedTrace {
    let (mut env, mut rng, mut w) = populated_setup(ts);
    env.set_variant(ts.variant);
    env.set_flush_mode(ts.flush_mode);
    env.set_recording(true);

    let mut drv = driver::Driver::new(&mut env, &mut rng);
    for op in 0..ts.spec.sim_ops {
        drv.before_op(&mut env);
        w.run_op(&mut env, &mut rng, op);
    }
    let trace = env.take_trace();

    if let Err(e) = w.verify(env.space()) {
        panic!("{} final image invalid: {e}", ts.spec.id);
    }
    trace.into_shared()
}

/// Key of one cached fast-forward population: everything that
/// determines the post-setup functional state. The build variant and
/// flush mode are deliberately absent — with recording off they gate
/// only event emission and undo-log writes, and the undo log is never
/// read outside an open transaction, so every variant records its
/// measured phase from the same populated image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SetupKey {
    id: BenchId,
    init_ops: u64,
    seed: u64,
}

#[derive(Debug)]
struct CachedSetup {
    env: PmemEnv,
    rng: StdRng,
    workload: Box<dyn Workload>,
}

type SetupSlot = std::sync::Arc<std::sync::OnceLock<CachedSetup>>;

fn setup_cache() -> &'static std::sync::Mutex<std::collections::HashMap<SetupKey, SetupSlot>> {
    static CACHE: std::sync::OnceLock<
        std::sync::Mutex<std::collections::HashMap<SetupKey, SetupSlot>>,
    > = std::sync::OnceLock::new();
    CACHE.get_or_init(|| std::sync::Mutex::new(std::collections::HashMap::new()))
}

/// Returns a freshly cloned post-population state for `ts`: environment,
/// RNG (mid-stream, exactly as `setup` left it), and workload object.
///
/// The population itself runs at most once per [`SetupKey`] and is
/// executed under [`Variant::Base`]: with recording off a variant's only
/// functional footprint is the undo-log bytes it writes, which nothing
/// reads until a transaction is open, so skipping them yields a
/// functionally equivalent image at a fraction of the cost. The caller
/// rebrands the clone to the requested variant before recording.
fn populated_setup(ts: &TraceSpec) -> (PmemEnv, StdRng, Box<dyn Workload>) {
    let key = SetupKey {
        id: ts.spec.id,
        init_ops: ts.spec.init_ops,
        seed: ts.seed,
    };
    let slot = {
        let mut map = match setup_cache().lock() {
            Ok(m) => m,
            Err(poisoned) => poisoned.into_inner(),
        };
        map.entry(key).or_default().clone()
    };
    let cached = slot.get_or_init(|| {
        let mut env = PmemEnv::new(Variant::Base);
        let mut rng = StdRng::seed_from_u64(key.seed);
        let mut w = make_workload(key.id);
        env.set_recording(false);
        w.setup(&mut env, &mut rng, key.init_ops);
        CachedSetup {
            env,
            rng,
            workload: w,
        }
    });
    (
        cached.env.clone(),
        cached.rng.clone(),
        cached.workload.clone_box(),
    )
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared helpers for per-structure unit tests.

    use super::*;
    use std::collections::BTreeSet;

    /// Drives `sim_ops` operations against both the workload and a
    /// `BTreeSet` oracle, checking outcome agreement and invariants
    /// periodically.
    pub fn oracle_check(id: BenchId, variant: Variant, init_ops: u64, sim_ops: u64, seed: u64) {
        let mut env = PmemEnv::new(variant);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = make_workload(id);
        env.set_recording(false);
        w.setup(&mut env, &mut rng, init_ops);

        // Bootstrap the oracle from the verified initial contents.
        let init = w.verify(env.space()).expect("post-init verify");
        let mut oracle: BTreeSet<u64> = init.keys.iter().copied().collect();
        assert_eq!(oracle.len() as u64, init.size, "{id}: init size mismatch");

        for op in 0..sim_ops {
            match w.run_op(&mut env, &mut rng, op) {
                OpOutcome::Inserted(k) => {
                    assert!(oracle.insert(k), "{id}: inserted key {k} already present");
                }
                OpOutcome::Deleted(k) => {
                    assert!(oracle.remove(&k), "{id}: deleted key {k} was absent");
                }
                OpOutcome::Swapped(_, _) | OpOutcome::Noop => {}
            }
            if op % 16 == 0 || op + 1 == sim_ops {
                let s = match w.verify(env.space()) {
                    Ok(s) => s,
                    Err(e) => panic!("{id} op {op}: {e}"),
                };
                let got: BTreeSet<u64> = s.keys.iter().copied().collect();
                assert_eq!(s.keys.len(), got.len(), "{id}: duplicate keys reported");
                assert_eq!(got, oracle, "{id}: keys diverged at op {op}");
            }
        }
    }
}
