//! BT: a persistent B-tree with full logging (§3.2).
//!
//! Like the paper's 2-3 B-tree example (Figs. 4-5), data lives in the
//! leaves and non-leaf nodes hold separator keys. Each 64-byte node
//! holds up to 3 keys with 4 children (internal) or 3 key/value pairs
//! (leaf) — a 2-3-4 tree. Inserts split full nodes preemptively on the
//! way down; deletes preemptively borrow from or merge with siblings, so
//! both directions finish in a single root-to-leaf pass.
//!
//! Full logging logs every node on the path *and all of its children*
//! (splits touch the path, borrows and merges touch siblings), which is
//! why BT pays the heaviest logging cost of the suite (Fig. 8's 95%).

use rand::rngs::StdRng;
use rand::Rng;
use spp_pmem::{PAddr, PmemEnv, Space};

use crate::spec::BenchId;
use crate::staged::Staged;
use crate::{OpOutcome, VerifyError, VerifySummary, Workload};

/// Maximum keys per node (order-4 / 2-3-4 tree).
pub const MAX_KEYS: u64 = 3;
const MIN_KEYS: u64 = 1;

// Node layout (one 64-byte block).
// header: low byte = nkeys, bit 8 = leaf flag.
pub(crate) const HDR: u64 = 0;
pub(crate) const KEYS: u64 = 8; // 3 x u64 at 8, 16, 24
pub(crate) const CHILDREN: u64 = 32; // internal: 4 x u64 at 32, 40, 48, 56
pub(crate) const VALUES: u64 = 32; // leaf: 3 x u64 at 32, 40, 48

pub(crate) const LEAF_FLAG: u64 = 1 << 8;

// Header block layout.
pub(crate) const ROOT: u64 = 0;
pub(crate) const SIZE: u64 = 8;

pub(crate) const ROOT_SLOT: usize = 0;

pub(crate) fn value_for(key: u64) -> u64 {
    key.wrapping_mul(0x0F0F_F0F0_1234_5679) ^ 0xB7
}

/// The BT benchmark: 2-3-4 B+tree with full-logging WAL transactions.
#[derive(Debug, Default, Clone)]
pub struct BTree {
    header: PAddr,
    key_range: u64,
}

/// A volatile view of one node, read once and written back field by
/// field (models keeping the node in registers while editing).
#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) addr: PAddr,
    pub(crate) leaf: bool,
    pub(crate) keys: Vec<u64>,
    /// Children (internal) or values (leaf).
    pub(crate) slots: Vec<u64>,
}

impl Node {
    pub(crate) fn load(tx: &mut Staged<'_>, addr: PAddr) -> Node {
        // First touch of the node: part of the pointer chain.
        let hdr = tx.read_dep(addr.offset(HDR));
        let leaf = hdr & LEAF_FLAG != 0;
        let n = (hdr & 0xFF) as usize;
        let mut keys = Vec::with_capacity(3);
        for i in 0..n {
            keys.push(tx.read(addr.offset(KEYS + 8 * i as u64)));
        }
        let mut slots = Vec::with_capacity(4);
        let nslots = if leaf { n } else { n + 1 };
        let base = if leaf { VALUES } else { CHILDREN };
        for i in 0..nslots {
            slots.push(tx.read(addr.offset(base + 8 * i as u64)));
        }
        Node {
            addr,
            leaf,
            keys,
            slots,
        }
    }

    pub(crate) fn store(&self, tx: &mut Staged<'_>) {
        let hdr = self.keys.len() as u64 | if self.leaf { LEAF_FLAG } else { 0 };
        tx.write(self.addr.offset(HDR), hdr);
        for (i, &k) in self.keys.iter().enumerate() {
            tx.write(self.addr.offset(KEYS + 8 * i as u64), k);
        }
        let base = if self.leaf { VALUES } else { CHILDREN };
        for (i, &s) in self.slots.iter().enumerate() {
            tx.write(self.addr.offset(base + 8 * i as u64), s);
        }
    }

    pub(crate) fn nkeys(&self) -> u64 {
        self.keys.len() as u64
    }
}

impl BTree {
    /// Creates an uninitialized benchmark; call
    /// [`setup`](Workload::setup) first.
    pub fn new() -> Self {
        Self::default()
    }

    fn new_node(tx: &mut Staged<'_>, leaf: bool) -> Node {
        Node {
            addr: tx.alloc_block(),
            leaf,
            keys: Vec::new(),
            slots: Vec::new(),
        }
    }

    /// Does the tree contain `key`? (The op's initial search walk; logs
    /// the full path pessimistically as it goes: every path node plus
    /// the descent child's adjacent siblings, which borrows and merges
    /// write.)
    fn contains(&self, tx: &mut Staged<'_>, key: u64) -> bool {
        let mut n = tx.read_ptr(self.header.offset(ROOT));
        loop {
            let node = Node::load(tx, n);
            tx.note_path(node.addr);
            tx.compute(node.nkeys() as u32 * 2 + 2);
            if node.leaf {
                return node.keys.contains(&key);
            }
            let idx = node
                .keys
                .iter()
                .position(|&k| key < k)
                .unwrap_or(node.keys.len());
            if idx > 0 {
                tx.log_extra(PAddr::new(node.slots[idx - 1]));
            }
            if idx + 1 < node.slots.len() {
                tx.log_extra(PAddr::new(node.slots[idx + 1]));
            }
            n = PAddr::new(node.slots[idx]);
        }
    }

    /// Splits the full child at `child_idx` of `parent`. Both nodes and
    /// the new sibling are written back.
    fn split_child(tx: &mut Staged<'_>, parent: &mut Node, child_idx: usize, child: &mut Node) {
        debug_assert_eq!(child.nkeys(), MAX_KEYS);
        let mut right = Self::new_node(tx, child.leaf);
        let (sep, keep) = if child.leaf {
            // Leaf split: right half moves, separator is copied up
            // (B+tree style: the key stays in the leaf).
            right.keys = child.keys.split_off(1);
            right.slots = child.slots.split_off(1);
            (right.keys[0], 1)
        } else {
            // Internal split: the middle key moves up.
            right.keys = child.keys.split_off(2);
            right.slots = child.slots.split_off(2);
            let sep = child.keys.pop().expect("middle key");
            (sep, 1)
        };
        let _ = keep;
        parent.keys.insert(child_idx, sep);
        parent.slots.insert(child_idx + 1, right.addr.raw());
        child.store(tx);
        right.store(tx);
        parent.store(tx);
    }

    /// Inserts `key` (must be absent). Single preemptive-split descent.
    fn insert(&self, tx: &mut Staged<'_>, key: u64) {
        let root_addr = tx.read_ptr(self.header.offset(ROOT));
        let mut root = Node::load(tx, root_addr);
        if root.nkeys() == MAX_KEYS {
            // Grow: new root with the old root as its only child.
            let mut new_root = Self::new_node(tx, false);
            new_root.slots.push(root.addr.raw());
            Self::split_child(tx, &mut new_root, 0, &mut root);
            tx.write_ptr(self.header.offset(ROOT), new_root.addr);
            root = new_root;
        }
        let mut node = root;
        loop {
            tx.compute(node.nkeys() as u32);
            if node.leaf {
                let pos = node
                    .keys
                    .iter()
                    .position(|&k| key < k)
                    .unwrap_or(node.keys.len());
                node.keys.insert(pos, key);
                node.slots.insert(pos, value_for(key));
                node.store(tx);
                return;
            }
            let idx = node
                .keys
                .iter()
                .position(|&k| key < k)
                .unwrap_or(node.keys.len());
            let mut child = Node::load(tx, PAddr::new(node.slots[idx]));
            if child.nkeys() == MAX_KEYS {
                Self::split_child(tx, &mut node, idx, &mut child);
                // Re-pick which side of the new separator to descend.
                let idx = node
                    .keys
                    .iter()
                    .position(|&k| key < k)
                    .unwrap_or(node.keys.len());
                node = Node::load(tx, PAddr::new(node.slots[idx]));
            } else {
                node = child;
            }
        }
    }

    /// Ensures `parent.slots[idx]` has more than `MIN_KEYS` keys before
    /// descent, borrowing from a sibling or merging. Returns the
    /// (possibly different) child to descend into.
    fn fix_child(tx: &mut Staged<'_>, parent: &mut Node, idx: usize) -> Node {
        let mut child = Node::load(tx, PAddr::new(parent.slots[idx]));
        if child.nkeys() > MIN_KEYS {
            return child;
        }
        // Try borrowing from the left sibling.
        if idx > 0 {
            let mut left = Node::load(tx, PAddr::new(parent.slots[idx - 1]));
            if left.nkeys() > MIN_KEYS {
                if child.leaf {
                    let k = left.keys.pop().expect("donor key");
                    let v = left.slots.pop().expect("donor value");
                    child.keys.insert(0, k);
                    child.slots.insert(0, v);
                    parent.keys[idx - 1] = child.keys[0];
                } else {
                    let k = left.keys.pop().expect("donor key");
                    let c = left.slots.pop().expect("donor child");
                    child.keys.insert(0, parent.keys[idx - 1]);
                    child.slots.insert(0, c);
                    parent.keys[idx - 1] = k;
                }
                left.store(tx);
                child.store(tx);
                parent.store(tx);
                return child;
            }
        }
        // Try borrowing from the right sibling.
        if idx < parent.slots.len() - 1 {
            let mut right = Node::load(tx, PAddr::new(parent.slots[idx + 1]));
            if right.nkeys() > MIN_KEYS {
                if child.leaf {
                    let k = right.keys.remove(0);
                    let v = right.slots.remove(0);
                    child.keys.push(k);
                    child.slots.push(v);
                    parent.keys[idx] = right.keys[0];
                } else {
                    let k = right.keys.remove(0);
                    let c = right.slots.remove(0);
                    child.keys.push(parent.keys[idx]);
                    child.slots.push(c);
                    parent.keys[idx] = k;
                }
                right.store(tx);
                child.store(tx);
                parent.store(tx);
                return child;
            }
        }
        // Merge with a sibling (both at MIN_KEYS).
        if idx > 0 {
            // Merge child into the left sibling.
            let mut left = Node::load(tx, PAddr::new(parent.slots[idx - 1]));
            let sep = parent.keys.remove(idx - 1);
            parent.slots.remove(idx);
            if !child.leaf {
                left.keys.push(sep);
            }
            left.keys.append(&mut child.keys);
            left.slots.append(&mut child.slots);
            left.store(tx);
            parent.store(tx);
            left
        } else {
            // Merge the right sibling into child.
            let mut right = Node::load(tx, PAddr::new(parent.slots[idx + 1]));
            let sep = parent.keys.remove(idx);
            parent.slots.remove(idx + 1);
            if !child.leaf {
                child.keys.push(sep);
            }
            child.keys.append(&mut right.keys);
            child.slots.append(&mut right.slots);
            child.store(tx);
            parent.store(tx);
            child
        }
    }

    /// Deletes `key` (must be present). Single preemptive-fix descent.
    fn delete(&self, tx: &mut Staged<'_>, key: u64) {
        let root_addr = tx.read_ptr(self.header.offset(ROOT));
        let mut node = Node::load(tx, root_addr);
        loop {
            tx.compute(node.nkeys() as u32);
            if node.leaf {
                let pos = node
                    .keys
                    .iter()
                    .position(|&k| k == key)
                    .expect("key present");
                node.keys.remove(pos);
                node.slots.remove(pos);
                node.store(tx);
                return;
            }
            let idx = node
                .keys
                .iter()
                .position(|&k| key < k)
                .unwrap_or(node.keys.len());
            let child = Self::fix_child(tx, &mut node, idx);
            // Root shrink: an empty internal root hands off to its child.
            if node.addr == tx.read_ptr(self.header.offset(ROOT)) && node.keys.is_empty() {
                tx.write_ptr(self.header.offset(ROOT), child.addr);
            }
            // The merge/borrow may have moved `key` into `child` from a
            // sibling; `fix_child` keeps descent correct because the
            // returned node always covers `key`'s range.
            node = child;
        }
    }

    /// One insert-or-delete operation on `key`.
    fn op(&self, env: &mut PmemEnv, key: u64, op_id: u64) -> OpOutcome {
        let mut tx = Staged::begin(env, op_id);
        tx.note_path(self.header);
        let found = self.contains(&mut tx, key);
        let size = tx.read(self.header.offset(SIZE));
        let outcome = if found {
            self.delete(&mut tx, key);
            tx.write(self.header.offset(SIZE), size - 1);
            OpOutcome::Deleted(key)
        } else {
            self.insert(&mut tx, key);
            tx.write(self.header.offset(SIZE), size + 1);
            OpOutcome::Inserted(key)
        };
        tx.finish();
        outcome
    }

    fn pick_key(&self, rng: &mut StdRng) -> u64 {
        rng.gen_range(0..self.key_range)
    }

    /// Recursive structural check; returns the subtree's leaf depth.
    pub(crate) fn verify_rec(
        space: &Space,
        n: PAddr,
        lo: Option<u64>,
        hi: Option<u64>,
        is_root: bool,
        keys: &mut Vec<u64>,
    ) -> Result<u64, VerifyError> {
        let hdr = space.read_u64(n.offset(HDR));
        let leaf = hdr & LEAF_FLAG != 0;
        let nkeys = hdr & 0xFF;
        if nkeys > MAX_KEYS {
            return Err(VerifyError::new(format!("BT: node with {nkeys} keys")));
        }
        if !is_root && nkeys < MIN_KEYS {
            return Err(VerifyError::new("BT: underfull non-root node"));
        }
        let mut ks = Vec::new();
        for i in 0..nkeys {
            ks.push(space.read_u64(n.offset(KEYS + 8 * i)));
        }
        if ks.windows(2).any(|w| w[0] >= w[1]) {
            return Err(VerifyError::new("BT: node keys not strictly sorted"));
        }
        for &k in &ks {
            if lo.is_some_and(|b| k < b) || hi.is_some_and(|b| k >= b) {
                return Err(VerifyError::new(format!(
                    "BT: key {k} outside separator range"
                )));
            }
        }
        if leaf {
            for i in 0..nkeys {
                let k = ks[i as usize];
                if space.read_u64(n.offset(VALUES + 8 * i)) != value_for(k) {
                    return Err(VerifyError::new(format!("BT: torn value for key {k}")));
                }
                keys.push(k);
            }
            return Ok(0);
        }
        let mut depth = None;
        for i in 0..=nkeys {
            let c = PAddr::new(space.read_u64(n.offset(CHILDREN + 8 * i)));
            if c.is_null() {
                return Err(VerifyError::new("BT: null child in internal node"));
            }
            let clo = if i == 0 { lo } else { Some(ks[i as usize - 1]) };
            let chi = if i == nkeys { hi } else { Some(ks[i as usize]) };
            let d = Self::verify_rec(space, c, clo, chi, false, keys)?;
            if *depth.get_or_insert(d) != d {
                return Err(VerifyError::new("BT: leaves at non-uniform depth"));
            }
        }
        Ok(depth.unwrap_or(0) + 1)
    }
}

impl Workload for BTree {
    fn id(&self) -> BenchId {
        BenchId::BTree
    }

    fn clone_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    fn setup(&mut self, env: &mut PmemEnv, rng: &mut StdRng, init_ops: u64) {
        self.key_range = (2 * init_ops).max(16);
        self.header = env.alloc_block();
        let root = env.alloc_block();
        env.store_u64(root.offset(HDR), LEAF_FLAG); // empty leaf
        env.store_ptr(self.header.offset(ROOT), root);
        env.store_u64(self.header.offset(SIZE), 0);
        env.set_root(ROOT_SLOT, self.header);
        for op in 0..init_ops {
            let key = self.pick_key(rng);
            self.op(env, key, u64::MAX - op);
        }
    }

    fn run_op(&mut self, env: &mut PmemEnv, rng: &mut StdRng, op_id: u64) -> OpOutcome {
        let key = self.pick_key(rng);
        self.op(env, key, op_id)
    }

    fn verify(&self, space: &Space) -> Result<VerifySummary, VerifyError> {
        let h = PAddr::new(space.read_u64(PmemEnv::root_addr(ROOT_SLOT)));
        let root = PAddr::new(space.read_u64(h.offset(ROOT)));
        let mut keys = Vec::new();
        Self::verify_rec(space, root, None, None, true, &mut keys)?;
        if keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err(VerifyError::new("BT: leaf scan not strictly sorted"));
        }
        let size = space.read_u64(h.offset(SIZE));
        if keys.len() as u64 != size {
            return Err(VerifyError::new(format!(
                "BT: size field {size} != key count {}",
                keys.len()
            )));
        }
        Ok(VerifySummary { keys, size })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::oracle_check;
    use rand::SeedableRng;
    use spp_pmem::Variant;

    fn fresh(variant: Variant) -> (PmemEnv, BTree) {
        let mut env = PmemEnv::new(variant);
        let mut rng = StdRng::seed_from_u64(0);
        let mut bt = BTree::new();
        bt.setup(&mut env, &mut rng, 0);
        bt.key_range = u64::MAX;
        (env, bt)
    }

    #[test]
    fn oracle_agreement_all_variants() {
        for v in Variant::ALL {
            oracle_check(BenchId::BTree, v, 200, 400, 6);
        }
    }

    #[test]
    fn ascending_inserts_split_correctly() {
        let (mut env, bt) = fresh(Variant::LogPSf);
        for k in 0..200 {
            assert_eq!(bt.op(&mut env, k, k), OpOutcome::Inserted(k));
        }
        let s = bt.verify(env.space()).unwrap();
        assert_eq!(s.keys, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_delete_exercises_borrow_and_merge() {
        let (mut env, bt) = fresh(Variant::LogPSf);
        for k in 0..128 {
            bt.op(&mut env, k, k);
        }
        // Delete evens, verifying after each (borrows, merges, root
        // shrinks all occur along the way).
        for k in (0..128).step_by(2) {
            assert_eq!(bt.op(&mut env, k, 1000 + k), OpOutcome::Deleted(k));
            bt.verify(env.space()).unwrap();
        }
        let s = bt.verify(env.space()).unwrap();
        assert_eq!(s.keys, (1..128).step_by(2).collect::<Vec<_>>());
    }

    #[test]
    fn tree_drains_to_empty_and_refills() {
        let (mut env, bt) = fresh(Variant::LogPSf);
        for k in 0..40 {
            bt.op(&mut env, k, k);
        }
        for k in 0..40 {
            assert_eq!(bt.op(&mut env, k, 100 + k), OpOutcome::Deleted(k));
            bt.verify(env.space()).unwrap();
        }
        let s = bt.verify(env.space()).unwrap();
        assert_eq!(s.size, 0);
        for k in [7u64, 3, 11] {
            bt.op(&mut env, k, 200 + k);
        }
        let s = bt.verify(env.space()).unwrap();
        assert_eq!(s.keys, vec![3, 7, 11]);
    }

    #[test]
    fn root_shrinks_on_merge() {
        let (mut env, bt) = fresh(Variant::Base);
        for k in 0..8 {
            bt.op(&mut env, k, k);
        }
        for k in 0..7 {
            bt.op(&mut env, k, 100 + k);
        }
        let s = bt.verify(env.space()).unwrap();
        assert_eq!(s.keys, vec![7]);
        // A single-key tree must be a leaf root again.
        let h = PAddr::new(env.space().read_u64(PmemEnv::root_addr(ROOT_SLOT)));
        let root = PAddr::new(env.space().read_u64(h.offset(ROOT)));
        assert_ne!(env.space().read_u64(root.offset(HDR)) & LEAF_FLAG, 0);
    }

    #[test]
    fn full_logging_logs_children_too() {
        let (mut env, bt) = fresh(Variant::LogPSf);
        env.set_recording(false);
        for k in 0..64 {
            bt.op(&mut env, k * 2, k);
        }
        env.set_recording(true);
        // One op: the logged block count must exceed the path length
        // (children of path nodes are logged pessimistically).
        let mut tx = Staged::begin(&mut env, 0);
        tx.note_path(bt.header);
        let found = bt.contains(&mut tx, 63);
        assert!(!found);
        bt.insert(&mut tx, 63);
        let sz = tx.read(bt.header.offset(SIZE));
        tx.write(bt.header.offset(SIZE), sz + 1);
        let logged = tx.finish();
        assert!(logged >= 6, "expected path+children logging, got {logged}");
    }
}
