//! SS: swapping 256-byte strings in a persistent string array.
//!
//! An operation picks two random indexes and exchanges the strings.
//! Both 256-byte entries (four cache blocks each) are undo-logged —
//! "eight clwbs are issued for logging entries and one clwb is for
//! indexes" (§3.2) — then swapped and persisted with another eight
//! `clwb`s and a `pcommit`. SS moves far more data per transaction than
//! the other benchmarks, which is why it stands out in the paper's SSB
//! occupancy (Fig. 12) and bloom-filter (Fig. 14) results.

use rand::rngs::StdRng;
use rand::Rng;
use spp_pmem::{PAddr, PmemEnv, Space};

use crate::spec::BenchId;
use crate::staged::Staged;
use crate::{OpOutcome, VerifyError, VerifySummary, Workload};

/// Bytes per string entry ("The length of each string in the entry is
/// 256").
pub const STRING_LEN: u64 = 256;

// Header block layout.
const BASE: u64 = 0;
const COUNT: u64 = 8;
const SERIAL: u64 = 16;

const ROOT_SLOT: usize = 0;

/// Deterministic string content: the entry's original index followed by
/// a keyed byte pattern, so verification can detect both lost swaps and
/// torn (mixed) entries.
fn string_for(index: u64) -> [u8; STRING_LEN as usize] {
    let mut s = [0u8; STRING_LEN as usize];
    s[..8].copy_from_slice(&index.to_le_bytes());
    let mut x = index.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for b in s[8..].iter_mut() {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *b = (x >> 56) as u8;
    }
    s
}

/// The SS benchmark: random pairwise swaps in a string array.
#[derive(Debug, Default, Clone)]
pub struct StringSwap {
    header: PAddr,
    base: PAddr,
    count: u64,
}

impl StringSwap {
    /// Creates an uninitialized benchmark; call
    /// [`setup`](Workload::setup) first.
    pub fn new() -> Self {
        Self::default()
    }

    fn string_addr(&self, i: u64) -> PAddr {
        self.base.offset(i * STRING_LEN)
    }

    /// Swaps entries `i` and `j` in one transaction.
    fn op(&self, env: &mut PmemEnv, i: u64, j: u64, op_id: u64) -> OpOutcome {
        let mut tx = Staged::begin(env, op_id);
        let (a, b) = (self.string_addr(i), self.string_addr(j));
        let mut sa = [0u8; STRING_LEN as usize];
        let mut sb = [0u8; STRING_LEN as usize];
        tx.read_bytes(a, &mut sa);
        tx.read_bytes(b, &mut sb);
        tx.write_bytes(a, &sb);
        tx.write_bytes(b, &sa);
        // The paper's "one clwb for indexes": a persistent swap serial.
        let s = tx.read(self.header.offset(SERIAL));
        tx.write(self.header.offset(SERIAL), s + 1);
        tx.finish();
        OpOutcome::Swapped(i, j)
    }

    fn pick_pair(&self, rng: &mut StdRng) -> (u64, u64) {
        let i = rng.gen_range(0..self.count);
        let mut j = rng.gen_range(0..self.count);
        if j == i {
            j = (j + 1) % self.count;
        }
        (i, j)
    }
}

impl Workload for StringSwap {
    fn id(&self) -> BenchId {
        BenchId::StringSwap
    }

    fn clone_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    /// For SS, `init_ops` is the number of strings populated (Table 1's
    /// 120 000 initial operations fill the array).
    fn setup(&mut self, env: &mut PmemEnv, rng: &mut StdRng, init_ops: u64) {
        let _ = rng;
        self.count = init_ops.max(2);
        self.header = env.alloc_block();
        self.base = env.alloc_blocks(self.count * STRING_LEN / 64);
        env.store_ptr(self.header.offset(BASE), self.base);
        env.store_u64(self.header.offset(COUNT), self.count);
        env.store_u64(self.header.offset(SERIAL), 0);
        env.set_root(ROOT_SLOT, self.header);
        for i in 0..self.count {
            env.store_bytes(self.string_addr(i), &string_for(i));
        }
    }

    fn run_op(&mut self, env: &mut PmemEnv, rng: &mut StdRng, op_id: u64) -> OpOutcome {
        let (i, j) = self.pick_pair(rng);
        self.op(env, i, j, op_id)
    }

    fn verify(&self, space: &Space) -> Result<VerifySummary, VerifyError> {
        let h = PAddr::new(space.read_u64(PmemEnv::root_addr(ROOT_SLOT)));
        let base = PAddr::new(space.read_u64(h.offset(BASE)));
        let count = space.read_u64(h.offset(COUNT));
        let mut keys = Vec::with_capacity(count as usize);
        for i in 0..count {
            let mut s = [0u8; STRING_LEN as usize];
            space.read_bytes(base.offset(i * STRING_LEN), &mut s);
            let mut idx = [0u8; 8];
            idx.copy_from_slice(&s[..8]);
            let original = u64::from_le_bytes(idx);
            if original >= count {
                return Err(VerifyError::new(format!(
                    "SS: slot {i} holds invalid original index {original}"
                )));
            }
            if s != string_for(original) {
                return Err(VerifyError::new(format!(
                    "SS: slot {i} holds a torn copy of string {original}"
                )));
            }
            keys.push(original);
        }
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        if sorted.iter().enumerate().any(|(i, &k)| k != i as u64) {
            return Err(VerifyError::new("SS: string multiset is not a permutation"));
        }
        keys.sort_unstable();
        Ok(VerifySummary { keys, size: count })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spp_pmem::Variant;

    #[test]
    fn swaps_preserve_permutation_all_variants() {
        for v in Variant::ALL {
            let mut env = PmemEnv::new(v);
            let mut rng = StdRng::seed_from_u64(4);
            let mut ss = StringSwap::new();
            ss.setup(&mut env, &mut rng, 32);
            for op in 0..100 {
                ss.run_op(&mut env, &mut rng, op);
                if op % 10 == 0 {
                    ss.verify(env.space()).unwrap();
                }
            }
            let s = ss.verify(env.space()).unwrap();
            assert_eq!(s.size, 32);
        }
    }

    #[test]
    fn explicit_swap_moves_contents() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let mut rng = StdRng::seed_from_u64(0);
        let mut ss = StringSwap::new();
        ss.setup(&mut env, &mut rng, 4);
        ss.op(&mut env, 0, 3, 0);
        let mut s0 = [0u8; 256];
        env.space().read_bytes(ss.string_addr(0), &mut s0);
        assert_eq!(s0, string_for(3));
        let mut s3 = [0u8; 256];
        env.space().read_bytes(ss.string_addr(3), &mut s3);
        assert_eq!(s3, string_for(0));
        ss.verify(env.space()).unwrap();
    }

    #[test]
    fn swap_logs_nine_blocks() {
        // Two 256-byte strings = 8 blocks, plus the header serial: the
        // paper's "eight clwbs ... and one clwb for indexes".
        let mut env = PmemEnv::new(Variant::LogPSf);
        let mut rng = StdRng::seed_from_u64(0);
        let mut ss = StringSwap::new();
        ss.setup(&mut env, &mut rng, 8);
        env.set_recording(true);
        let mut tx = Staged::begin(&mut env, 0);
        let (a, b) = (ss.string_addr(1), ss.string_addr(2));
        let mut sa = [0u8; 256];
        let mut sb = [0u8; 256];
        tx.read_bytes(a, &mut sa);
        tx.read_bytes(b, &mut sb);
        tx.write_bytes(a, &sb);
        tx.write_bytes(b, &sa);
        let s = tx.read(ss.header.offset(SERIAL));
        tx.write(ss.header.offset(SERIAL), s + 1);
        let logged = tx.finish();
        assert_eq!(logged, 9);
    }

    #[test]
    fn string_content_is_index_tagged() {
        let s = string_for(7);
        assert_eq!(u64::from_le_bytes(s[..8].try_into().unwrap()), 7);
        assert_ne!(string_for(7)[8..], string_for(8)[8..]);
    }
}
