//! The unified study façade behind every journaled `repro` command.
//!
//! `repro kv/litmus/multicore/faultsim/profile` (and now `optimize`)
//! all share the same invocation shape: open a result journal under
//! the resume discipline, run the study under a timed stage, surface
//! corrupt journal entries, report how many cells replayed, print the
//! text report and the one-line JSON document, and turn the report's
//! verdict into an exit status. That plumbing used to be copy-pasted
//! per command in the `repro` binary; it now lives here, once:
//!
//! * [`StudyCli`] carries the shared `--journal`/`--resume` flag state
//!   and opens the journal under the discipline the CLI documents;
//! * [`StudyRunner`] owns the opened journal and the stage label and
//!   drives one study end to end via [`StudyRunner::run`];
//! * [`StudyReport`] is the small contract a study's report must meet
//!   (`ok` / `replayed` / `render_text` / `render_json`) — the four
//!   existing journaled studies already satisfied it verbatim.
//!
//! The façade is output-preserving by construction: every byte written
//! to stdout and stderr is the same the per-command plumbing wrote
//! before the migration, so the goldens and the CI `cmp` gates did not
//! move. CI denies the old pattern outright — the replay-report and
//! journal-open plumbing may not reappear in `repro.rs`.

use std::fmt;
use std::path::Path;
use std::time::Instant;

use crate::journal::Journal;

/// A rejected or failed journal opening, typed so the CLI can map each
/// case onto its own diagnostic without string matching.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StudyError {
    /// `--resume` named a journal file that does not exist.
    ResumeMissingJournal(String),
    /// `--journal` named an existing non-empty journal without
    /// `--resume` (mixing two campaigns in one manifest is always a
    /// mistake; replaying one must be explicit).
    JournalNeedsResume(String),
    /// The journal could not be opened (the wrapped
    /// [`crate::JournalError`] rendering).
    Journal(String),
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::ResumeMissingJournal(p) => {
                write!(f, "--resume: journal {p:?} does not exist")
            }
            StudyError::JournalNeedsResume(p) => {
                write!(
                    f,
                    "journal {p:?} already has entries; pass --resume to replay it or pick a fresh path"
                )
            }
            StudyError::Journal(e) => f.write_str(e),
        }
    }
}

impl std::error::Error for StudyError {}

/// Opens the journal at `path` under the CLI's resume discipline:
/// resuming requires the file to exist, and starting fresh requires it
/// to be absent or empty — an existing manifest is never silently
/// appended to and never silently ignored.
pub fn open_journal(path: &Path, resume: bool) -> Result<Journal, StudyError> {
    let display = path.display().to_string();
    let has_entries = std::fs::metadata(path)
        .map(|m| m.len() > 0)
        .unwrap_or(false);
    if resume && !path.exists() {
        return Err(StudyError::ResumeMissingJournal(display));
    }
    if !resume && has_entries {
        return Err(StudyError::JournalNeedsResume(display));
    }
    Journal::open(path).map_err(|e| StudyError::Journal(e.to_string()))
}

/// The shared journal flag state of one `repro` invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StudyCli {
    /// `--journal PATH`, when given.
    pub journal: Option<String>,
    /// `--resume`.
    pub resume: bool,
}

impl StudyCli {
    /// Opens the journal named by `--journal` (if any) under the resume
    /// discipline. `None` means the command runs unjournaled.
    pub fn open(&self) -> Result<Option<Journal>, StudyError> {
        match &self.journal {
            Some(p) => Ok(Some(open_journal(Path::new(p), self.resume)?)),
            None => Ok(None),
        }
    }
}

/// What a journaled study's report must provide for the runner to
/// drive it: a verdict, a replay count, and the two renderings.
pub trait StudyReport {
    /// `true` when every cell met its oracle — the exit-status verdict.
    fn ok(&self) -> bool;
    /// How many cells were replayed from the journal instead of
    /// recomputed.
    fn replayed(&self) -> usize;
    /// The human-readable tables.
    fn render_text(&self) -> String;
    /// The one-line JSON document.
    fn render_json(&self) -> String;
}

macro_rules! impl_study_report {
    ($($ty:ty),+ $(,)?) => {$(
        impl StudyReport for $ty {
            fn ok(&self) -> bool {
                <$ty>::ok(self)
            }
            fn replayed(&self) -> usize {
                self.replayed
            }
            fn render_text(&self) -> String {
                <$ty>::render_text(self)
            }
            fn render_json(&self) -> String {
                <$ty>::render_json(self)
            }
        }
    )+};
}

impl_study_report!(
    crate::faultsim::FaultReport,
    crate::kv::KvReport,
    crate::litmus::LitmusReport,
    crate::multicore::MulticoreReport,
    crate::optimize::OptimizeReport,
);

/// Runs one evaluation stage, reporting wall time and throughput on
/// stderr (`sims` counts the simulator replays the stage issues; 0
/// suppresses the rate). Stdout stays byte-identical across `--jobs`.
pub fn staged<T>(label: &str, sims: usize, f: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let out = f();
    let dt = t0.elapsed().as_secs_f64();
    if sims > 0 {
        eprintln!(
            "# {label}: {sims} sims in {dt:.2}s ({:.1} sims/s)",
            sims as f64 / dt.max(1e-9)
        );
    } else {
        eprintln!("# {label}: {dt:.2}s");
    }
    out
}

/// One journaled study invocation: the stage label, the expected
/// simulation count (for the stderr rate line), and the opened journal.
#[derive(Debug)]
pub struct StudyRunner {
    label: &'static str,
    sims: usize,
    journal: Option<Journal>,
}

impl StudyRunner {
    /// Prepares a runner: opens the journal named by `cli` (if any)
    /// under the resume discipline.
    pub fn new(label: &'static str, sims: usize, cli: &StudyCli) -> Result<Self, StudyError> {
        Ok(StudyRunner {
            label,
            sims,
            journal: cli.open()?,
        })
    }

    /// The opened journal, for studies (profile) whose replay unit is
    /// the whole report rather than per-cell.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Runs `f` under this runner's timed stage without the report
    /// protocol — the whole-payload studies drive their own replay.
    pub fn stage<T>(&self, f: impl FnOnce() -> T) -> T {
        staged(self.label, self.sims, f)
    }

    /// Surfaces every corrupt or undecodable journal entry on stderr
    /// (each was recomputed rather than replayed).
    pub fn report_corrupt(&self) {
        if let Some(j) = &self.journal {
            for e in j.corrupt() {
                eprintln!("repro: journal: {e}");
            }
        }
    }

    /// Drives one study end to end: stage `f` (handing it the journal),
    /// surface corrupt entries and the replay count on stderr, print
    /// the text report and the JSON line on stdout, and return the
    /// report's verdict for the exit status.
    pub fn run<R: StudyReport>(&self, f: impl FnOnce(Option<&Journal>) -> R) -> bool {
        let rep = self.stage(|| f(self.journal.as_ref()));
        self.report_corrupt();
        if let Some(j) = &self.journal {
            eprintln!(
                "# journal {}: {} cells replayed",
                j.path().display(),
                rep.replayed()
            );
        }
        print!("{}", rep.render_text());
        println!("{}", rep.render_json());
        rep.ok()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    struct FakeReport {
        ok: bool,
    }

    impl StudyReport for FakeReport {
        fn ok(&self) -> bool {
            self.ok
        }
        fn replayed(&self) -> usize {
            0
        }
        fn render_text(&self) -> String {
            String::new()
        }
        fn render_json(&self) -> String {
            "{}".to_string()
        }
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("spp-study-{tag}-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn open_journal_enforces_the_resume_discipline() {
        let p = temp_path("discipline");
        // Resuming a journal that does not exist is a typed error.
        assert!(matches!(
            open_journal(&p, true).unwrap_err(),
            StudyError::ResumeMissingJournal(_)
        ));
        // A fresh run against a fresh path opens (and creates) it.
        open_journal(&p, false).unwrap();
        // A fresh run against an existing non-empty journal must not
        // silently mix campaigns.
        std::fs::write(&p, "x\n").unwrap();
        assert!(matches!(
            open_journal(&p, false).unwrap_err(),
            StudyError::JournalNeedsResume(_)
        ));
        // Resuming it is fine (the bogus line surfaces via corrupt()).
        let j = open_journal(&p, true).unwrap();
        assert_eq!(j.corrupt().len(), 1);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn study_cli_opens_nothing_without_a_journal_flag() {
        let cli = StudyCli::default();
        assert!(cli.open().unwrap().is_none());
        let runner = StudyRunner::new("study-test", 0, &cli).unwrap();
        assert!(runner.journal().is_none());
    }

    #[test]
    fn runner_returns_the_report_verdict() {
        let cli = StudyCli::default();
        let runner = StudyRunner::new("study-test", 0, &cli).unwrap();
        assert!(runner.run(|_| FakeReport { ok: true }));
        assert!(!runner.run(|_| FakeReport { ok: false }));
    }

    #[test]
    fn runner_hands_the_opened_journal_to_the_study() {
        let p = temp_path("handoff");
        let cli = StudyCli {
            journal: Some(p.display().to_string()),
            resume: false,
        };
        let runner = StudyRunner::new("study-test", 0, &cli).unwrap();
        let saw_journal = runner.run(|j| FakeReport { ok: j.is_some() });
        assert!(saw_journal, "the study closure must receive the journal");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn every_error_renders_as_one_line() {
        for e in [
            StudyError::ResumeMissingJournal("/tmp/x.jsonl".into()),
            StudyError::JournalNeedsResume("/tmp/x.jsonl".into()),
            StudyError::Journal("journal \"x\": denied".into()),
        ] {
            let s = e.to_string();
            assert!(!s.is_empty() && !s.contains('\n'), "{e:?} renders {s:?}");
        }
    }
}
