//! The harness performance trajectory (`specpersist/perfbench-v1`).
//!
//! The skip-ahead core exists to make the evaluation loop fast, so the
//! repo tracks its own speed the same way it tracks fidelity: every
//! `repro all` (and `repro profile`) run writes a `BENCH_*.json` record
//! of simulated-cycles-per-second throughput for each bench x variant
//! cell, plus the run's wall time and peak RSS. CI re-emits the record
//! at a small scale and schema-validates it, so a regression in either
//! the document shape or the harness's ability to produce it fails the
//! build; the committed `BENCH_6.json` at the repo root is one point of
//! the trajectory, refreshed whenever the core's performance changes.
//!
//! Wall-clock numbers are inherently machine- and load-dependent, so
//! nothing here ever reaches stdout — the report goes to a file (path
//! announced on stderr) and the `--jobs` byte-identity guarantee is
//! untouched. The *structure* of the document is deterministic: cells
//! appear in Table 1 order x [`Variant::ALL`] order, and every exact
//! integer field (`sims`, `sim_cycles`) is independent of timing.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use spp_pmem::Variant;
use spp_workloads::BenchId;

use crate::json::{array, JsonObject};
use crate::schema;

/// Accumulates per-cell simulation timing inside the harness.
///
/// [`crate::Harness::sim`] calls [`PerfRecorder::record`] once per
/// replay; the recorder sums simulated cycles and wall time per
/// `(bench, variant)` cell. Interior mutability (a mutex, uncontended
/// except at `--jobs` fan-in) keeps the recording call usable from the
/// worker threads without threading `&mut` through every experiment.
#[derive(Debug, Default)]
pub struct PerfRecorder {
    cells: Mutex<HashMap<(BenchId, Variant), CellAccum>>,
    /// Cells keyed by a free-form label instead of a [`BenchId`] — the
    /// KV storage-engine workload and other non-Table-1 traces land
    /// here, so the Table 1 cell set (and every invariant pinned on it)
    /// stays untouched.
    extras: Mutex<HashMap<(String, Variant), CellAccum>>,
}

#[derive(Debug, Default, Clone, Copy)]
struct CellAccum {
    sims: u64,
    sim_cycles: u64,
    wall_nanos: u128,
}

impl PerfRecorder {
    /// Adds one simulation's cycles and wall time to its cell.
    pub fn record(&self, bench: BenchId, variant: Variant, sim_cycles: u64, wall: Duration) {
        let mut cells = self
            .cells
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let c = cells.entry((bench, variant)).or_default();
        c.sims += 1;
        c.sim_cycles += sim_cycles;
        c.wall_nanos += wall.as_nanos();
    }

    /// Adds one simulation's cycles and wall time to a labeled
    /// (non-Table-1) cell.
    pub fn record_labeled(&self, label: &str, variant: Variant, sim_cycles: u64, wall: Duration) {
        let mut extras = self
            .extras
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let c = extras.entry((label.to_string(), variant)).or_default();
        c.sims += 1;
        c.sim_cycles += sim_cycles;
        c.wall_nanos += wall.as_nanos();
    }

    /// The populated labeled cells, sorted by label then
    /// [`Variant::ALL`] order.
    pub fn labeled_cells(&self) -> Vec<LabeledPerfCell> {
        let extras = self
            .extras
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut keys: Vec<&(String, Variant)> = extras.keys().collect();
        keys.sort_by_key(|(label, variant)| {
            let vi = Variant::ALL.iter().position(|v| v == variant);
            (label.clone(), vi)
        });
        keys.into_iter()
            .map(|k| {
                let c = extras[k];
                let wall_secs = c.wall_nanos as f64 / 1e9;
                LabeledPerfCell {
                    label: k.0.clone(),
                    variant: k.1,
                    sims: c.sims,
                    sim_cycles: c.sim_cycles,
                    wall_secs,
                    cycles_per_sec: if wall_secs > 0.0 {
                        c.sim_cycles as f64 / wall_secs
                    } else {
                        0.0
                    },
                }
            })
            .collect()
    }

    /// The populated cells, in Table 1 x [`Variant::ALL`] order (cells
    /// never simulated are omitted rather than emitted as zeros).
    pub fn cells(&self) -> Vec<PerfCell> {
        let cells = self
            .cells
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = Vec::new();
        for bench in BenchId::ALL {
            for variant in Variant::ALL {
                let Some(c) = cells.get(&(bench, variant)) else {
                    continue;
                };
                let wall_secs = c.wall_nanos as f64 / 1e9;
                out.push(PerfCell {
                    bench,
                    variant,
                    sims: c.sims,
                    sim_cycles: c.sim_cycles,
                    wall_secs,
                    cycles_per_sec: if wall_secs > 0.0 {
                        c.sim_cycles as f64 / wall_secs
                    } else {
                        0.0
                    },
                });
            }
        }
        out
    }
}

/// One bench x variant throughput cell.
#[derive(Debug, Clone, Copy)]
pub struct PerfCell {
    /// Which benchmark.
    pub bench: BenchId,
    /// Which software variant's trace was replayed.
    pub variant: Variant,
    /// Simulations summed into this cell.
    pub sims: u64,
    /// Total simulated cycles across those simulations (exact).
    pub sim_cycles: u64,
    /// Total wall time spent simulating them, in seconds.
    pub wall_secs: f64,
    /// Throughput: simulated cycles per wall second.
    pub cycles_per_sec: f64,
}

/// One labeled (non-Table-1) throughput cell; renders into the same
/// `cells` array with the label in the `bench` field.
#[derive(Debug, Clone)]
pub struct LabeledPerfCell {
    /// Free-form cell label (e.g. `"kv/mixed"`).
    pub label: String,
    /// Which software variant's trace was replayed.
    pub variant: Variant,
    /// Simulations summed into this cell.
    pub sims: u64,
    /// Total simulated cycles across those simulations (exact).
    pub sim_cycles: u64,
    /// Total wall time spent simulating them, in seconds.
    pub wall_secs: f64,
    /// Throughput: simulated cycles per wall second.
    pub cycles_per_sec: f64,
}

/// The full perf-trajectory record written to `BENCH_*.json`.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Table 1 scale divisor of the producing run.
    pub scale: u64,
    /// RNG seed of the producing run.
    pub seed: u64,
    /// Worker threads requested (pre-clamp; see [`crate::run_indexed`]).
    pub jobs: usize,
    /// End-to-end wall time of the producing command, in seconds.
    pub wall_secs: f64,
    /// Peak resident set size of the process, in KiB (0 if unknown).
    pub peak_rss_kb: u64,
    /// Per-cell throughput, in deterministic order.
    pub cells: Vec<PerfCell>,
    /// Labeled (non-Table-1) cells, appended after `cells` in the same
    /// JSON array; empty for runs that only replay Table 1 traces, so
    /// documents predating the field are byte-identical.
    pub extras: Vec<LabeledPerfCell>,
}

impl PerfReport {
    /// Renders the `specpersist/perfbench-v1` document.
    pub fn render_json(&self) -> String {
        schema::emit(schema::PERFBENCH, |o| {
            o.raw("scale", self.scale.to_string());
            o.raw("seed", self.seed.to_string());
            o.raw("jobs", self.jobs.to_string());
            o.num("wall_secs", round6(self.wall_secs));
            o.raw("peak_rss_kb", self.peak_rss_kb.to_string());
            let cells = self.cells.iter().map(|c| {
                let mut o = JsonObject::new();
                o.str("bench", c.bench.abbrev());
                o.str("variant", c.variant.label());
                o.raw("sims", c.sims.to_string());
                o.raw("sim_cycles", c.sim_cycles.to_string());
                o.num("wall_secs", round6(c.wall_secs));
                o.num("cycles_per_sec", round6(c.cycles_per_sec));
                o.render()
            });
            let extras = self.extras.iter().map(|c| {
                let mut o = JsonObject::new();
                o.str("bench", &c.label);
                o.str("variant", c.variant.label());
                o.raw("sims", c.sims.to_string());
                o.raw("sim_cycles", c.sim_cycles.to_string());
                o.num("wall_secs", round6(c.wall_secs));
                o.num("cycles_per_sec", round6(c.cycles_per_sec));
                o.render()
            });
            o.raw("cells", array(cells.chain(extras)));
        })
    }
}

/// Rounds to 6 decimal places so `JsonObject::num` renders a bounded
/// number of digits for timing-derived values.
fn round6(v: f64) -> f64 {
    (v * 1e6).round() / 1e6
}

/// The process's peak resident set size in KiB, read from
/// `/proc/self/status` (`VmHWM`); 0 where that interface is missing.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn sample_report() -> PerfReport {
        let rec = PerfRecorder::default();
        // Record out of canonical order to prove ordering is imposed.
        rec.record(
            BenchId::RbTree,
            Variant::LogPSf,
            1_000,
            Duration::from_millis(2),
        );
        rec.record(
            BenchId::Graph,
            Variant::Base,
            5_000,
            Duration::from_millis(1),
        );
        rec.record(
            BenchId::Graph,
            Variant::Base,
            5_000,
            Duration::from_millis(1),
        );
        PerfReport {
            scale: 50,
            seed: 7,
            jobs: 4,
            wall_secs: 1.25,
            peak_rss_kb: peak_rss_kb(),
            cells: rec.cells(),
            extras: rec.labeled_cells(),
        }
    }

    #[test]
    fn cells_accumulate_and_sort_canonically() {
        let r = sample_report();
        assert_eq!(r.cells.len(), 2);
        // Graph precedes RbTree regardless of record order.
        assert_eq!(r.cells[0].bench, BenchId::Graph);
        assert_eq!(r.cells[0].sims, 2);
        assert_eq!(r.cells[0].sim_cycles, 10_000);
        assert!(r.cells[0].cycles_per_sec > 0.0);
        assert_eq!(r.cells[1].bench, BenchId::RbTree);
        assert_eq!(r.cells[1].variant, Variant::LogPSf);
    }

    #[test]
    fn report_validates_against_its_schema() {
        let doc = sample_report().render_json();
        let v = schema::validate(&doc, schema::PERFBENCH).unwrap();
        assert_eq!(v.get("scale").and_then(|x| x.as_u64()), Some(50));
        assert_eq!(v.get("seed").and_then(|x| x.as_u64()), Some(7));
        let cells = v.get("cells").and_then(|x| x.as_arr()).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(
            cells[0].get("bench").and_then(|x| x.as_str()),
            Some("GH"),
            "{doc}"
        );
        assert_eq!(
            cells[0].get("sim_cycles").and_then(|x| x.as_u64()),
            Some(10_000)
        );
    }

    #[test]
    fn empty_recorder_renders_an_empty_but_valid_document() {
        let r = PerfReport {
            scale: 1,
            seed: 0,
            jobs: 1,
            wall_secs: 0.0,
            peak_rss_kb: 0,
            cells: PerfRecorder::default().cells(),
            extras: Vec::new(),
        };
        let doc = r.render_json();
        let v = schema::validate(&doc, schema::PERFBENCH).unwrap();
        assert_eq!(v.get("cells").and_then(|x| x.as_arr()).unwrap().len(), 0);
    }

    #[test]
    fn labeled_cells_append_after_table1_cells() {
        let rec = PerfRecorder::default();
        rec.record(BenchId::BTree, Variant::Base, 100, Duration::from_millis(1));
        rec.record_labeled("kv/mixed", Variant::LogPSf, 2_000, Duration::from_millis(3));
        rec.record_labeled("kv/mixed", Variant::LogPSf, 1_000, Duration::from_millis(1));
        rec.record_labeled("kv/mixed", Variant::Base, 500, Duration::from_millis(1));
        let extras = rec.labeled_cells();
        assert_eq!(extras.len(), 2);
        assert_eq!(extras[0].variant, Variant::Base, "Variant::ALL order");
        assert_eq!(extras[1].sims, 2);
        assert_eq!(extras[1].sim_cycles, 3_000);
        let r = PerfReport {
            scale: 1,
            seed: 0,
            jobs: 1,
            wall_secs: 0.5,
            peak_rss_kb: 0,
            cells: rec.cells(),
            extras,
        };
        let doc = r.render_json();
        let v = schema::validate(&doc, schema::PERFBENCH).unwrap();
        let cells = v.get("cells").and_then(|x| x.as_arr()).unwrap();
        assert_eq!(cells.len(), 3, "{doc}");
        assert_eq!(
            cells[2].get("bench").and_then(|x| x.as_str()),
            Some("kv/mixed")
        );
        assert_eq!(
            cells[2].get("sim_cycles").and_then(|x| x.as_u64()),
            Some(3_000)
        );
    }

    #[test]
    fn zero_wall_time_does_not_divide_by_zero() {
        let rec = PerfRecorder::default();
        rec.record(BenchId::BTree, Variant::Log, 123, Duration::ZERO);
        let cells = rec.cells();
        assert_eq!(cells[0].cycles_per_sec, 0.0);
        assert_eq!(cells[0].sim_cycles, 123);
    }

    #[test]
    fn peak_rss_is_nonzero_on_linux() {
        // On the CI/dev Linux kernels /proc/self/status always exists;
        // elsewhere the function degrades to 0 rather than failing.
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_kb() > 0);
        }
    }
}
