//! The trace cache: every workload trace is recorded exactly once per
//! harness and shared immutably across all simulator configurations
//! that replay it.
//!
//! Recording a trace means running the full functional workload
//! (populate + measured ops + verification) — for the paper's sweep
//! that used to happen up to three times per `(benchmark, variant)`
//! pair (the suite, the SSB sweep, and the ablation each re-recorded).
//! The cache keys traces by everything that determines the event
//! stream bit-for-bit ([`TraceKey`]); a per-key [`OnceLock`] guarantees
//! exactly-once recording even when many worker threads ask for the
//! same trace concurrently.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use spp_pmem::{Event, FlushMode, SharedTrace, Variant};
use spp_workloads::{record_trace, BenchId, BenchSpec, TraceSpec};

use crate::Experiment;

/// Bytes held by one cached trace (the frozen `Arc<[Event]>` payload;
/// bookkeeping overhead is negligible next to it).
pub fn trace_bytes(t: &SharedTrace) -> u64 {
    (t.events.len() * std::mem::size_of::<Event>()) as u64
}

/// The typed trace-memory-cap error: the cache's held bytes exceeded
/// the configured `--trace-mem-cap`. Raised at the next stage boundary
/// so the run fails cleanly instead of aborting under memory pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceMemCap {
    /// The configured cap in bytes.
    pub cap: u64,
    /// Bytes actually held when the cap tripped.
    pub held: u64,
}

impl fmt::Display for TraceMemCap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace cache holds {} bytes, exceeding --trace-mem-cap {}",
            self.held, self.cap
        )
    }
}

impl std::error::Error for TraceMemCap {}

/// Everything that determines a recorded trace bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// Which benchmark.
    pub id: BenchId,
    /// The build variant.
    pub variant: Variant,
    /// The Table 1 scale divisor (sizing follows via [`BenchSpec::scaled`]).
    pub scale: u64,
    /// RNG seed of the operation stream.
    pub seed: u64,
    /// Which flush instruction the build emits.
    pub flush_mode: FlushMode,
}

impl TraceKey {
    /// The key for `(id, variant)` under an experiment's scale and seed,
    /// with the default `clwb` flush instruction.
    pub fn new(id: BenchId, variant: Variant, exp: &Experiment) -> Self {
        TraceKey {
            id,
            variant,
            scale: exp.scale,
            seed: exp.seed,
            flush_mode: FlushMode::default(),
        }
    }

    /// Same, with an explicit seed (the multicore study gives each core
    /// its own stream).
    pub fn with_seed(id: BenchId, variant: Variant, exp: &Experiment, seed: u64) -> Self {
        TraceKey {
            seed,
            ..Self::new(id, variant, exp)
        }
    }

    /// Same, with an explicit flush instruction (the §2.2 ablation).
    pub fn with_flush_mode(
        id: BenchId,
        variant: Variant,
        exp: &Experiment,
        flush_mode: FlushMode,
    ) -> Self {
        TraceKey {
            flush_mode,
            ..Self::new(id, variant, exp)
        }
    }

    /// The recording spec this key denotes.
    pub fn trace_spec(&self) -> TraceSpec {
        TraceSpec {
            variant: self.variant,
            spec: BenchSpec::scaled(self.id, self.scale),
            seed: self.seed,
            flush_mode: self.flush_mode,
        }
    }
}

/// Cache observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Traces actually recorded (functional workload runs).
    pub recordings: u64,
    /// Requests served from an already-recorded trace.
    pub hits: u64,
    /// Distinct keys present.
    pub entries: u64,
    /// Total bytes held by the cached event streams.
    pub bytes: u64,
}

impl CacheStats {
    /// Total requests observed.
    pub fn requests(&self) -> u64 {
        self.recordings + self.hits
    }
}

/// A thread-safe, exactly-once trace store.
///
/// The outer map only guards slot creation; recording itself happens
/// under the slot's [`OnceLock`], so two threads asking for *different*
/// traces record in parallel while two threads asking for the *same*
/// trace serialize (one records, the other waits and shares).
#[derive(Debug)]
pub struct TraceCache {
    slots: Mutex<HashMap<TraceKey, Arc<OnceLock<SharedTrace>>>>,
    recordings: AtomicU64,
    hits: AtomicU64,
    bytes: AtomicU64,
    /// `u64::MAX` means uncapped.
    mem_cap: AtomicU64,
    tripped: AtomicBool,
}

impl Default for TraceCache {
    fn default() -> Self {
        TraceCache {
            slots: Mutex::default(),
            recordings: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            mem_cap: AtomicU64::new(u64::MAX),
            tripped: AtomicBool::new(false),
        }
    }
}

impl TraceCache {
    /// An empty, uncapped cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the bytes the cache may hold (`--trace-mem-cap`). `None`
    /// removes the cap. Recording never aborts mid-flight: the trace
    /// that crosses the cap completes, the cache latches the typed
    /// [`TraceMemCap`] error, and the run fails at the next
    /// [`TraceCache::mem_exceeded`] check.
    pub fn set_mem_cap(&self, cap: Option<u64>) {
        self.mem_cap
            .store(cap.unwrap_or(u64::MAX), Ordering::Relaxed);
    }

    /// The latched cap violation, if bytes ever exceeded the cap.
    pub fn mem_exceeded(&self) -> Option<TraceMemCap> {
        if self.tripped.load(Ordering::Relaxed) {
            Some(TraceMemCap {
                cap: self.mem_cap.load(Ordering::Relaxed),
                held: self.bytes.load(Ordering::Relaxed),
            })
        } else {
            None
        }
    }

    /// Returns the trace for `key`, recording it on first request.
    pub fn get(&self, key: TraceKey) -> SharedTrace {
        let slot = {
            let mut slots = self.slots.lock().expect("trace cache poisoned");
            Arc::clone(slots.entry(key).or_default())
        };
        let mut recorded_here = false;
        let trace = slot.get_or_init(|| {
            recorded_here = true;
            self.recordings.fetch_add(1, Ordering::Relaxed);
            record_trace(&key.trace_spec())
        });
        if recorded_here {
            let held =
                self.bytes.fetch_add(trace_bytes(trace), Ordering::Relaxed) + trace_bytes(trace);
            if held > self.mem_cap.load(Ordering::Relaxed) {
                self.tripped.store(true, Ordering::Relaxed);
            }
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        trace.clone()
    }

    /// Per-key byte footprint of every recorded trace, heaviest first
    /// (ties broken by the key's debug rendering, for determinism).
    pub fn bytes_by_key(&self) -> Vec<(TraceKey, u64)> {
        let slots = self.slots.lock().expect("trace cache poisoned");
        let mut rows: Vec<(TraceKey, u64)> = slots
            .iter()
            .filter_map(|(k, slot)| slot.get().map(|t| (*k, trace_bytes(t))))
            .collect();
        rows.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)))
        });
        rows
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            recordings: self.recordings.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            entries: self.slots.lock().expect("trace cache poisoned").len() as u64,
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_exp() -> Experiment {
        Experiment {
            scale: 5000,
            seed: 1,
        }
    }

    #[test]
    fn second_request_is_a_hit_sharing_the_allocation() {
        let cache = TraceCache::new();
        let key = TraceKey::new(BenchId::LinkedList, Variant::LogPSf, &tiny_exp());
        let a = cache.get(key);
        let b = cache.get(key);
        assert!(
            Arc::ptr_eq(&a.events, &b.events),
            "hit must share the recording"
        );
        let s = cache.stats();
        assert_eq!((s.recordings, s.hits, s.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_keys_record_separately() {
        let cache = TraceCache::new();
        let exp = tiny_exp();
        cache.get(TraceKey::new(BenchId::LinkedList, Variant::Base, &exp));
        cache.get(TraceKey::new(BenchId::LinkedList, Variant::LogPSf, &exp));
        cache.get(TraceKey::with_seed(
            BenchId::LinkedList,
            Variant::LogPSf,
            &exp,
            99,
        ));
        cache.get(TraceKey::with_flush_mode(
            BenchId::LinkedList,
            Variant::LogPSf,
            &exp,
            FlushMode::Clflush,
        ));
        let s = cache.stats();
        assert_eq!((s.recordings, s.hits, s.entries), (4, 0, 4));
    }

    #[test]
    fn cached_trace_equals_a_fresh_recording() {
        let cache = TraceCache::new();
        let key = TraceKey::new(BenchId::LinkedList, Variant::LogPSf, &tiny_exp());
        let cached = cache.get(key);
        let fresh = record_trace(&key.trace_spec());
        assert_eq!(&cached.events[..], &fresh.events[..]);
        assert_eq!(cached.counts, fresh.counts);
    }

    #[test]
    fn byte_accounting_sums_per_key_footprints() {
        let cache = TraceCache::new();
        let exp = tiny_exp();
        let a = cache.get(TraceKey::new(BenchId::LinkedList, Variant::Base, &exp));
        let b = cache.get(TraceKey::new(BenchId::LinkedList, Variant::LogPSf, &exp));
        let s = cache.stats();
        assert_eq!(s.bytes, trace_bytes(&a) + trace_bytes(&b));
        let rows = cache.bytes_by_key();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows.iter().map(|r| r.1).sum::<u64>(), s.bytes);
        assert!(rows[0].1 >= rows[1].1, "rows must be heaviest-first");
        // A hit does not double-count.
        cache.get(TraceKey::new(BenchId::LinkedList, Variant::Base, &exp));
        assert_eq!(cache.stats().bytes, s.bytes);
    }

    #[test]
    fn mem_cap_trips_a_typed_error_without_aborting() {
        let cache = TraceCache::new();
        cache.set_mem_cap(Some(64));
        assert_eq!(cache.mem_exceeded(), None);
        let t = cache.get(TraceKey::new(
            BenchId::LinkedList,
            Variant::Base,
            &tiny_exp(),
        ));
        let err = cache.mem_exceeded().expect("tiny cap must trip");
        assert_eq!(err.cap, 64);
        assert_eq!(err.held, trace_bytes(&t));
        assert!(err.to_string().contains("--trace-mem-cap"));
        // Lifting the cap clears nothing retroactively — the latch holds
        // (the run already exceeded its budget) but a fresh cache is clean.
        assert!(TraceCache::new().mem_exceeded().is_none());
    }

    #[test]
    fn concurrent_requests_record_exactly_once() {
        let cache = TraceCache::new();
        let key = TraceKey::new(BenchId::LinkedList, Variant::LogPSf, &tiny_exp());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| cache.get(key));
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.recordings, 1, "exactly one thread may record");
        assert_eq!(stats.hits, 7);
    }
}
