//! The journaled result manifest: an append-only on-disk record of
//! completed evaluation cells, so an interrupted sweep resumes instead
//! of recomputing.
//!
//! Each line of `journal-v1.jsonl` is one JSON object recording a
//! completed cell: its key (command, benchmark, variant, scale, seed,
//! flush mode, config hash — everything that determines the result),
//! the attempt count that produced it, an `ok`/`failed` status, the
//! serialized result payload, and a [`hash64`] checksum over all of the
//! above. On `--resume` the journal is replayed: lines whose checksum
//! verifies are served without recomputation, while truncated, torn,
//! or bit-flipped lines surface as typed [`JournalError`]s and their
//! cells recompute — corruption is *never* silently reused. Because
//! every cell is a pure function of its key, a replayed result is
//! byte-identical to a recomputed one, which is what makes
//! interrupted-then-resumed stdout equal to an uninterrupted run's.
//!
//! Appends happen from worker threads in completion order (the file
//! order is scheduling-dependent); determinism lives entirely in the
//! *report*, which is assembled from results in input order. Each line
//! is a single `write_all` on an append-mode handle, so a killed
//! process leaves at most one torn final line — exactly the case the
//! checksum catches.

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use spp_core::hash64;

use crate::json::{parse, Value};

/// The journal line schema identifier (see [`crate::schema::JOURNAL`]).
pub const JOURNAL_SCHEMA: &str = crate::schema::JOURNAL.id();

/// The conventional journal location (relative to the working
/// directory); `repro --journal` accepts any path.
pub const DEFAULT_JOURNAL_PATH: &str = ".specpersist/journal-v1.jsonl";

/// Why a journal (or one of its entries) could not be used. Every
/// variant renders as one line; none is ever silently ignored — the
/// affected cell recomputes and the error is reported.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum JournalError {
    /// The journal file could not be created, read, or appended to.
    Io {
        /// The journal path.
        path: String,
        /// The operating-system error.
        detail: String,
    },
    /// A line is not a parseable JSON object (torn write, truncation,
    /// or structural bit damage).
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What the parser rejected.
        detail: String,
    },
    /// A line parsed but does not carry the `specpersist/journal-v1`
    /// schema (wrong file, or a damaged schema field).
    BadSchema {
        /// 1-based line number.
        line: usize,
        /// The schema string found (empty if absent).
        found: String,
    },
    /// A line parsed but its checksum does not match its content: the
    /// entry is corrupt and must not be reused.
    HashMismatch {
        /// 1-based line number.
        line: usize,
        /// The entry's cell key.
        key: String,
    },
    /// An entry verified but its payload no longer decodes to the
    /// expected result shape (schema drift or payload damage that
    /// preserved the checksummed bytes' syntax but not their meaning).
    BadPayload {
        /// The entry's cell key.
        key: String,
        /// What the decoder rejected.
        detail: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, detail } => write!(f, "journal {path:?}: {detail}"),
            JournalError::Malformed { line, detail } => {
                write!(f, "journal line {line}: malformed entry ({detail})")
            }
            JournalError::BadSchema { line, found } => {
                write!(
                    f,
                    "journal line {line}: schema {found:?} is not {JOURNAL_SCHEMA:?}"
                )
            }
            JournalError::HashMismatch { line, key } => {
                write!(f, "journal line {line}: checksum mismatch for cell {key:?}")
            }
            JournalError::BadPayload { key, detail } => {
                write!(
                    f,
                    "journal cell {key:?}: payload does not decode ({detail})"
                )
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// Did the recorded attempt produce a result or exhaust its retries?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// The cell completed; the payload is its serialized result.
    Ok,
    /// The cell exhausted its retry budget; the payload is its failure
    /// record (reason + diagnostic snapshot).
    Failed,
}

impl CellStatus {
    fn as_str(self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::Failed => "failed",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "ok" => Some(CellStatus::Ok),
            "failed" => Some(CellStatus::Failed),
            _ => None,
        }
    }
}

/// One verified journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// The cell key (command + everything determining the result).
    pub key: String,
    /// The attempt number that produced this record (1-based).
    pub attempt: u32,
    /// Completed or retry-exhausted.
    pub status: CellStatus,
    /// The serialized result (or failure record).
    pub payload: String,
}

impl Entry {
    /// The checksum preimage: every field the entry's meaning depends
    /// on, joined unambiguously (lengths prefix the variable parts so
    /// no concatenation of different fields collides).
    fn checksum(&self) -> u64 {
        let pre = format!(
            "{}\n{}:{}\n{}\n{}:{}",
            self.key.len(),
            self.key,
            self.attempt,
            self.status.as_str(),
            self.payload.len(),
            self.payload
        );
        hash64(pre.as_bytes())
    }

    /// The entry as one journal line (newline-terminated).
    fn render(&self) -> String {
        let mut line = crate::schema::emit(crate::schema::JOURNAL, |o| {
            o.str("key", &self.key)
                .num("attempt", self.attempt)
                .str("status", self.status.as_str())
                .str("hash", &format!("{:016x}", self.checksum()))
                .str("payload", &self.payload);
        });
        line.push('\n');
        line
    }

    /// Parses and verifies one journal line.
    fn from_line(line_no: usize, line: &str) -> Result<Entry, JournalError> {
        let v = parse(line).map_err(|e| JournalError::Malformed {
            line: line_no,
            detail: e.to_string(),
        })?;
        let schema = v.get("schema").and_then(Value::as_str).unwrap_or("");
        if schema != JOURNAL_SCHEMA {
            return Err(JournalError::BadSchema {
                line: line_no,
                found: schema.to_string(),
            });
        }
        let field = |name: &'static str| {
            v.get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or(JournalError::Malformed {
                    line: line_no,
                    detail: "missing field".to_string(),
                })
        };
        let key = field("key")?;
        let status_s = field("status")?;
        let hash_s = field("hash")?;
        let payload = field("payload")?;
        let attempt = v
            .get("attempt")
            .and_then(Value::as_u64)
            .filter(|&a| a >= 1 && a <= u64::from(u32::MAX))
            .ok_or(JournalError::Malformed {
                line: line_no,
                detail: "bad attempt".to_string(),
            })? as u32;
        let status = CellStatus::parse(&status_s).ok_or(JournalError::Malformed {
            line: line_no,
            detail: "bad status".to_string(),
        })?;
        let entry = Entry {
            key,
            attempt,
            status,
            payload,
        };
        let want = u64::from_str_radix(&hash_s, 16).map_err(|_| JournalError::Malformed {
            line: line_no,
            detail: "bad hash".to_string(),
        })?;
        if want != entry.checksum() {
            return Err(JournalError::HashMismatch {
                line: line_no,
                key: entry.key,
            });
        }
        Ok(entry)
    }
}

/// Splits a physical line that failed to verify at every embedded
/// record-start marker. In a well-formed line the marker cannot occur
/// past position 0 — the payload is a JSON-escaped string, so its
/// quotes are `\"` and never spell the raw marker — which makes any
/// interior occurrence evidence of a swallowed separator newline. A
/// coincidental marker inside already-damaged bytes merely produces
/// fragments that fail verification and report, never a false replay:
/// each fragment must still parse and checksum on its own.
fn split_merged(line: &str) -> Vec<&str> {
    const MARKER: &[u8] = b"{\"schema\":";
    let bytes = line.as_bytes();
    let mut starts = vec![0usize];
    let mut i = 1;
    while i + MARKER.len() <= bytes.len() {
        if &bytes[i..i + MARKER.len()] == MARKER {
            starts.push(i);
            i += MARKER.len();
        } else {
            i += 1;
        }
    }
    starts.push(bytes.len());
    // Every boundary sits on an ASCII `{`, so the slices are UTF-8 safe.
    starts.windows(2).map(|w| &line[w[0]..w[1]]).collect()
}

/// What `Journal::open` found on disk.
#[derive(Debug, Default)]
struct Loaded {
    /// Verified entries by key; the *last* valid record for a key wins
    /// (a resumed run may legitimately re-record a recomputed cell).
    entries: HashMap<String, Entry>,
    /// Every rejected line, in file order.
    corrupt: Vec<JournalError>,
}

/// An open journal: the verified entries loaded at open plus an
/// append handle for newly completed cells. Thread-safe — workers
/// append concurrently; lookups only touch the immutable loaded set.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
    loaded: Loaded,
    /// Errors observed after open (payload decode failures reported by
    /// the supervisor).
    late_errors: Mutex<Vec<JournalError>>,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`, loading and
    /// verifying every existing line. Corrupt lines are collected —
    /// see [`Journal::corrupt`] — never silently dropped, and their
    /// cells will recompute.
    pub fn open(path: impl AsRef<Path>) -> Result<Journal, JournalError> {
        let path = path.as_ref().to_path_buf();
        let io_err = |e: std::io::Error| JournalError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        };
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(io_err)?;
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)
            .map_err(io_err)?;
        let mut text = String::new();
        // Invalid UTF-8 (bit rot in the middle of a multi-byte
        // sequence) reads as an I/O error; fall back to a lossy read so
        // the damage localizes to its line instead of poisoning the
        // whole journal.
        if file.read_to_string(&mut text).is_err() {
            let mut raw = Vec::new();
            let mut f2 = File::open(&path).map_err(io_err)?;
            f2.read_to_end(&mut raw).map_err(io_err)?;
            text = String::from_utf8_lossy(&raw).into_owned();
        }
        let mut loaded = Loaded::default();
        for (i, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            match Entry::from_line(i + 1, line) {
                Ok(e) => {
                    loaded.entries.insert(e.key.clone(), e);
                }
                Err(first) => {
                    // A destroyed separator newline merges neighbouring
                    // records into one physical line, and a single parse
                    // of the merged bytes would report only the first of
                    // them. Split at embedded record-start markers and
                    // verify each fragment independently, so every
                    // damaged record surfaces its own error and an
                    // intact record whose bytes still checksum replays
                    // instead of being collateral damage.
                    let frags = split_merged(line);
                    if frags.len() <= 1 {
                        loaded.corrupt.push(first);
                    } else {
                        for frag in frags {
                            match Entry::from_line(i + 1, frag) {
                                Ok(e) => {
                                    loaded.entries.insert(e.key.clone(), e);
                                }
                                Err(e) => loaded.corrupt.push(e),
                            }
                        }
                    }
                }
            }
        }
        // Seal a torn final line (a kill mid-append leaves no
        // terminator): the append handle writes after it, so without
        // this newline the next recomputed entry would merge into the
        // torn bytes and be lost as well. Sealing confines the damage
        // to its own, already-reported line.
        if !text.is_empty() && !text.ends_with('\n') {
            file.write_all(b"\n").map_err(io_err)?;
            file.flush().map_err(io_err)?;
        }
        Ok(Journal {
            path,
            file: Mutex::new(file),
            loaded,
            late_errors: Mutex::new(Vec::new()),
        })
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Verified entries available for replay.
    pub fn len(&self) -> usize {
        self.loaded.entries.len()
    }

    /// `true` when no verified entries were loaded.
    pub fn is_empty(&self) -> bool {
        self.loaded.entries.is_empty()
    }

    /// The verified entry for `key`, if one was loaded at open.
    pub fn lookup(&self, key: &str) -> Option<&Entry> {
        self.loaded.entries.get(key)
    }

    /// Every error observed so far: corrupt lines found at open plus
    /// decode failures reported during the run.
    pub fn corrupt(&self) -> Vec<JournalError> {
        let mut all = self.loaded.corrupt.clone();
        if let Ok(late) = self.late_errors.lock() {
            all.extend(late.iter().cloned());
        }
        all
    }

    /// Records a payload-decode failure discovered after open (the
    /// entry verified byte-wise but no longer means anything); its cell
    /// recomputes.
    pub fn report_bad_payload(&self, key: &str, detail: impl Into<String>) {
        if let Ok(mut late) = self.late_errors.lock() {
            late.push(JournalError::BadPayload {
                key: key.to_string(),
                detail: detail.into(),
            });
        }
    }

    /// Appends one completed cell. Called from worker threads; each
    /// entry is a single atomic-enough `write_all` of one line.
    pub fn append(&self, entry: &Entry) -> Result<(), JournalError> {
        let line = entry.render();
        let mut file = self.file.lock().map_err(|_| JournalError::Io {
            path: self.path.display().to_string(),
            detail: "append lock poisoned".to_string(),
        })?;
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| JournalError::Io {
                path: self.path.display().to_string(),
                detail: e.to_string(),
            })
    }

    /// Re-reads the file from disk and verifies every line, returning
    /// `(verified entries, corrupt lines)` — the integrity check
    /// `repro soak` runs between iterations.
    pub fn verify(path: impl AsRef<Path>) -> Result<(usize, Vec<JournalError>), JournalError> {
        let j = Journal::open(path)?;
        Ok((j.len(), j.loaded.corrupt))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "spp-journal-test-{}-{name}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn entry(key: &str, payload: &str) -> Entry {
        Entry {
            key: key.to_string(),
            attempt: 1,
            status: CellStatus::Ok,
            payload: payload.to_string(),
        }
    }

    #[test]
    fn round_trips_entries_through_disk() {
        let p = tmp("roundtrip");
        let j = Journal::open(&p).unwrap();
        assert!(j.is_empty());
        j.append(&entry("faultsim/LL/logpsf", r#"{"cycles":42}"#))
            .unwrap();
        j.append(&Entry {
            key: "faultsim/GH/log".into(),
            attempt: 3,
            status: CellStatus::Failed,
            payload: r#"{"reason":"injected"}"#.into(),
        })
        .unwrap();
        drop(j);
        let j = Journal::open(&p).unwrap();
        assert_eq!(j.len(), 2);
        assert!(j.corrupt().is_empty());
        let e = j.lookup("faultsim/LL/logpsf").unwrap();
        assert_eq!(e.payload, r#"{"cycles":42}"#);
        assert_eq!(e.status, CellStatus::Ok);
        let f = j.lookup("faultsim/GH/log").unwrap();
        assert_eq!((f.attempt, f.status), (3, CellStatus::Failed));
        assert!(j.lookup("missing").is_none());
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn last_record_for_a_key_wins() {
        let p = tmp("lastwins");
        let j = Journal::open(&p).unwrap();
        j.append(&entry("k", "1")).unwrap();
        j.append(&entry("k", "2")).unwrap();
        drop(j);
        let j = Journal::open(&p).unwrap();
        assert_eq!(j.len(), 1);
        assert_eq!(j.lookup("k").unwrap().payload, "2");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn truncated_final_line_is_a_typed_error_not_a_reuse() {
        let p = tmp("truncate");
        let j = Journal::open(&p).unwrap();
        j.append(&entry("a", r#"{"v":1}"#)).unwrap();
        j.append(&entry("b", r#"{"v":2}"#)).unwrap();
        drop(j);
        let full = std::fs::read_to_string(&p).unwrap();
        let cut = full.len() - 7; // tear the middle of the last line
        std::fs::write(&p, &full[..cut]).unwrap();
        let j = Journal::open(&p).unwrap();
        assert_eq!(j.len(), 1, "only the intact line may replay");
        assert!(j.lookup("a").is_some());
        assert!(j.lookup("b").is_none(), "torn entry must not be served");
        let errs = j.corrupt();
        assert_eq!(errs.len(), 1);
        assert!(
            matches!(
                errs[0],
                JournalError::Malformed { line: 2, .. }
                    | JournalError::HashMismatch { line: 2, .. }
            ),
            "{errs:?}"
        );
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn bit_flip_anywhere_in_a_line_is_detected() {
        let p = tmp("bitflip");
        let j = Journal::open(&p).unwrap();
        j.append(&entry("cell/один", r#"{"v":1,"s":"x\"y"}"#))
            .unwrap();
        drop(j);
        let clean = std::fs::read(&p).unwrap();
        // Flip one bit in every byte position of the line (except the
        // final newline, whose loss merely re-splits lines) and require
        // a typed error every time.
        for pos in 0..clean.len() - 1 {
            for bit in [0x01u8, 0x80] {
                let mut damaged = clean.clone();
                damaged[pos] ^= bit;
                std::fs::write(&p, &damaged).unwrap();
                let j = Journal::open(&p).unwrap();
                let errs = j.corrupt();
                assert!(
                    j.is_empty() && !errs.is_empty(),
                    "flip at byte {pos} (bit {bit:#x}) went undetected: \
                     {} entries, errors {errs:?}",
                    j.len()
                );
            }
        }
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn merged_lines_report_every_damaged_record() {
        let p = tmp("merged");
        let j = Journal::open(&p).unwrap();
        j.append(&entry("a", r#"{"v":1}"#)).unwrap();
        j.append(&entry("b", r#"{"v":2}"#)).unwrap();
        j.append(&entry("c", r#"{"v":3}"#)).unwrap();
        drop(j);
        let mut raw = std::fs::read(&p).unwrap();
        // First flip: destroy the newline separating records "a" and
        // "b", merging them into one physical line (the torn-tail shape
        // that used to collapse into a single reported error).
        let nl = raw.iter().position(|&x| x == b'\n').unwrap();
        raw[nl] ^= 0x01;
        // Second flip: damage record "b"'s key field, past the
        // record-start marker so the merged line still splits there.
        let b_key = nl + 1 + find(&raw[nl + 1..], b"\"key\":\"b\"") + 8;
        raw[b_key] ^= 0x01;
        std::fs::write(&p, &raw).unwrap();
        let j = Journal::open(&p).unwrap();
        let errs = j.corrupt();
        assert_eq!(
            errs.len(),
            2,
            "both damaged records must report, not just the first: {errs:?}"
        );
        assert!(errs
            .iter()
            .all(|e| matches!(e, JournalError::Malformed { line: 1, .. })
                || matches!(e, JournalError::HashMismatch { line: 1, .. })));
        assert!(j.lookup("a").is_none(), "junk-tailed record must not serve");
        assert!(j.lookup("b").is_none(), "flipped record must not serve");
        assert!(j.lookup("c").is_some(), "the intact record still replays");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn an_intact_record_merged_behind_a_torn_one_still_replays() {
        let p = tmp("merged-intact");
        let j = Journal::open(&p).unwrap();
        j.append(&entry("a", r#"{"v":1}"#)).unwrap();
        j.append(&entry("b", r#"{"v":2}"#)).unwrap();
        drop(j);
        let mut raw = std::fs::read(&p).unwrap();
        let nl = raw.iter().position(|&x| x == b'\n').unwrap();
        raw[nl] ^= 0x01;
        std::fs::write(&p, &raw).unwrap();
        let j = Journal::open(&p).unwrap();
        assert_eq!(j.corrupt().len(), 1, "only \"a\" is damaged");
        assert!(j.lookup("a").is_none());
        assert_eq!(
            j.lookup("b").unwrap().payload,
            r#"{"v":2}"#,
            "\"b\"'s bytes verify on their own and must not be lost"
        );
        std::fs::remove_file(&p).unwrap();
    }

    fn find(haystack: &[u8], needle: &[u8]) -> usize {
        haystack
            .windows(needle.len())
            .position(|w| w == needle)
            .unwrap()
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let p = tmp("schema");
        std::fs::write(
            &p,
            "{\"schema\":\"specpersist/journal-v0\",\"key\":\"k\",\"attempt\":1,\
             \"status\":\"ok\",\"hash\":\"0\",\"payload\":\"{}\"}\n",
        )
        .unwrap();
        let j = Journal::open(&p).unwrap();
        assert_eq!(j.len(), 0);
        assert!(matches!(
            j.corrupt()[0],
            JournalError::BadSchema { line: 1, .. }
        ));
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn every_error_renders_as_one_line() {
        let errors = [
            JournalError::Io {
                path: "j".into(),
                detail: "denied".into(),
            },
            JournalError::Malformed {
                line: 3,
                detail: "expected ','".into(),
            },
            JournalError::BadSchema {
                line: 1,
                found: "other".into(),
            },
            JournalError::HashMismatch {
                line: 2,
                key: "k".into(),
            },
            JournalError::BadPayload {
                key: "k".into(),
                detail: "missing field".into(),
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty() && !s.contains('\n'), "{e:?} renders {s:?}");
        }
    }
}
