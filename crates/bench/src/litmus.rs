//! `repro litmus` — Px86 persistency-model validation.
//!
//! Drives the [`spp_litmus`] harness through the supervised pool: every
//! litmus program (the curated catalog plus, at generous scales, seeded
//! generated programs) × every [`FlushMode`] is one cell, checked
//! against the executable Px86 reference model on all seven legs
//! (`CrashSim` per crash point, both pipeline cores × {baseline, SP}
//! against the allowed envelope, and the two SP differentials proving
//! speculation never widens a reachable set).
//!
//! A failing cell becomes a per-cell `failed` record whose payload
//! carries the full cell outcome — including the lexicographically
//! minimized `(interleaving, crash_idx, seed)` witness — so a journaled
//! run resumes byte-identically and the report can still print the
//! counterexample. Cells fan out over the [`Supervisor`]; `--jobs`
//! changes wall time only.
//!
//! The `knob` option weakens one model rule (test-only; see
//! [`ModelKnob`]): under the weakened model the checker *must* find
//! forbidden states, which is how the harness proves its own teeth.

pub use spp_litmus::ModelKnob;
use spp_litmus::{catalog, check_cell, generate, Witness};
use spp_pmem::FlushMode;
use spp_workloads::litmus::LitmusProgram;

use crate::journal::Journal;
use crate::json::{array, parse, JsonObject, Value};
use crate::schema;
use crate::supervisor::{CellError, CellFailure, Supervisor};
use crate::{Experiment, Harness};

/// One checked cell's outcome (re-exported so the CLI and tests can
/// inspect legs and witnesses without depending on `spp-litmus`).
pub type LitmusCell = spp_litmus::CellOutcome;

/// Generated programs appended to the catalog at `scale` (shrinks with
/// the smoke divisor exactly like every other experiment's sizing; 0 at
/// smoke scales, 12 at paper scale).
pub fn gen_count(scale: u64) -> usize {
    ((240 / scale.max(1)) as usize).min(12)
}

/// The program list one `repro litmus` invocation sweeps: the curated
/// catalog, then [`gen_count`] seeded generated programs.
pub fn litmus_programs(exp: &Experiment) -> Vec<LitmusProgram> {
    let mut ps = catalog();
    ps.extend(generate(exp.seed, gen_count(exp.scale)));
    ps
}

/// Options for [`run_litmus_opts`].
#[derive(Debug, Default)]
pub struct LitmusOpts<'j> {
    /// Journal completed cells here and replay them on re-runs.
    pub journal: Option<&'j Journal>,
    /// Model weakening in effect (`Honest` in production; the CLI's
    /// hidden `--model-knob` sets this for the self-test leg).
    pub knob: ModelKnob,
}

/// One row of the report: the cell's journal key plus its outcome —
/// and, for a cell that reached a forbidden state, the degraded
/// [`CellFailure`] record carrying the witness-bearing snapshot.
#[derive(Debug, Clone)]
pub struct CellRow {
    /// The cell's journal key.
    pub key: String,
    /// Served from the journal without recomputation?
    pub replayed: bool,
    /// The decoded cell outcome (`None` only if a failed cell's
    /// snapshot payload does not decode).
    pub cell: Option<LitmusCell>,
    /// The per-cell failure record, for a cell whose check failed.
    pub failure: Option<CellFailure>,
}

/// The full `repro litmus` result set.
#[derive(Debug, Clone)]
pub struct LitmusReport {
    /// Scale the program list was sized from.
    pub scale: u64,
    /// Seed the generated programs derive from.
    pub seed: u64,
    /// Model weakening in effect.
    pub knob: ModelKnob,
    /// Programs swept (catalog + generated).
    pub programs: usize,
    /// Every cell, in `(program, flush-mode)` matrix order.
    pub cells: Vec<CellRow>,
    /// Cells served from the journal without recomputation.
    pub replayed: usize,
}

fn cell_key(name: &str, mode: FlushMode, knob: ModelKnob) -> String {
    format!("litmus/{}/{}/{}", knob.key(), name, mode.mnemonic())
}

fn parse_mode(s: &str) -> Option<FlushMode> {
    FlushMode::ALL.into_iter().find(|m| m.mnemonic() == s)
}

/// Maps a decoded leg name back to the checker's static spelling, so a
/// journal round-trip preserves [`Witness::leg`] exactly.
fn parse_leg(s: &str) -> Option<&'static str> {
    [
        "crashsim",
        "pipeline-base",
        "pipeline-sp",
        "reference-base",
        "reference-sp",
        "sp-differential",
        "ref-sp-differential",
    ]
    .into_iter()
    .find(|l| *l == s)
}

/// A cell as one JSON object: the report's `cells` element and the
/// journal payload (one codec, so replays are byte-identical).
pub fn cell_json(c: &LitmusCell) -> String {
    let mut o = JsonObject::new();
    o.str("program", &c.program)
        .str("rendered", &c.rendered)
        .str("flush", c.mode.mnemonic())
        .str("knob", c.knob.key())
        .num("interleavings", c.interleavings as f64)
        .num("allowed", c.allowed_states as f64)
        .num("reached", c.reached_states as f64)
        .num("crashsim_ok", u8::from(c.crashsim_ok))
        .num("pipe_base_ok", u8::from(c.pipe_base_ok))
        .num("pipe_sp_ok", u8::from(c.pipe_sp_ok))
        .num("ref_base_ok", u8::from(c.ref_base_ok))
        .num("ref_sp_ok", u8::from(c.ref_sp_ok))
        .num("sp_differential_ok", u8::from(c.sp_differential_ok))
        .num("ref_sp_differential_ok", u8::from(c.ref_sp_differential_ok))
        .num("ok", u8::from(c.ok()));
    if let Some(e) = &c.sim_error {
        o.str("error", e);
    }
    if let Some(w) = &c.witness {
        let mut wo = JsonObject::new();
        wo.str("leg", w.leg)
            .num("interleaving", w.interleaving as f64)
            .num("crash_idx", w.crash_idx as f64);
        match w.seed {
            Some(s) => wo.num("seed", s as f64),
            None => wo.raw("seed", "null".to_string()),
        };
        wo.raw("state", array(w.state.iter().map(|v| format!("{v}"))));
        o.raw("witness", wo.render());
    }
    o.render()
}

/// Decodes a payload written by [`cell_json`]; `None` (recompute) if
/// any field is missing or malformed.
pub fn decode_cell(payload: &str) -> Option<LitmusCell> {
    let v = parse(payload).ok()?;
    let num = |k: &str| v.get(k).and_then(Value::as_u64);
    let flag = |k: &str| num(k).map(|n| n == 1);
    let s = |k: &str| v.get(k).and_then(Value::as_str);
    let rendered = s("rendered")?.to_string();
    let witness = match v.get("witness") {
        None => None,
        Some(w) => {
            let wnum = |k: &str| w.get(k).and_then(Value::as_u64);
            Some(Witness {
                leg: parse_leg(w.get("leg").and_then(Value::as_str)?)?,
                interleaving: wnum("interleaving")? as usize,
                crash_idx: wnum("crash_idx")? as usize,
                seed: match w.get("seed") {
                    None | Some(Value::Null) => None,
                    Some(x) => Some(x.as_u64()?),
                },
                state: match w.get("state")? {
                    Value::Arr(items) => items
                        .iter()
                        .map(Value::as_u64)
                        .collect::<Option<Vec<u64>>>()?,
                    _ => return None,
                },
                program: rendered.clone(),
            })
        }
    };
    Some(LitmusCell {
        program: s("program")?.to_string(),
        rendered,
        mode: parse_mode(s("flush")?)?,
        knob: ModelKnob::parse(s("knob")?)?,
        interleavings: num("interleavings")? as usize,
        allowed_states: num("allowed")? as usize,
        reached_states: num("reached")? as usize,
        crashsim_ok: flag("crashsim_ok")?,
        pipe_base_ok: flag("pipe_base_ok")?,
        pipe_sp_ok: flag("pipe_sp_ok")?,
        ref_base_ok: flag("ref_base_ok")?,
        ref_sp_ok: flag("ref_sp_ok")?,
        sp_differential_ok: flag("sp_differential_ok")?,
        ref_sp_differential_ok: flag("ref_sp_differential_ok")?,
        sim_error: s("error").map(String::from),
        witness,
    })
}

fn fail_reason(c: &LitmusCell) -> String {
    if let Some(e) = &c.sim_error {
        return format!("simulation failed: {e}");
    }
    match &c.witness {
        Some(w) => format!(
            "forbidden state reached: leg {}, interleaving {}, crash_idx {}, seed {}, state {:?}",
            w.leg,
            w.interleaving,
            w.crash_idx,
            w.seed.map_or_else(|| "-".to_string(), |s| s.to_string()),
            w.state
        ),
        None => "cell failed without a witness".to_string(),
    }
}

/// Runs the litmus matrix: every program × flush mode, fanned out
/// deterministically over the supervised pool, journaled when
/// `opts.journal` is attached.
pub fn run_litmus_opts(h: &Harness, opts: LitmusOpts<'_>) -> LitmusReport {
    let programs = litmus_programs(&h.exp);
    let knob = opts.knob;
    let items: Vec<(usize, FlushMode)> = (0..programs.len())
        .flat_map(|pi| FlushMode::ALL.iter().map(move |&m| (pi, m)))
        .collect();
    let sup = match opts.journal {
        Some(j) => Supervisor::with_journal(h.jobs, j),
        None => Supervisor::new(h.jobs),
    };
    let outs = sup.run_cells(
        &items,
        |_, &(pi, mode)| cell_key(&programs[pi].name, mode, knob),
        |_, &(pi, mode)| {
            let out = check_cell(&programs[pi], mode, knob);
            if out.ok() {
                Ok(out)
            } else {
                // A forbidden state is a per-cell failed record, not a
                // panic: the snapshot carries the whole outcome so the
                // minimized witness survives the journal.
                Err(CellError {
                    reason: fail_reason(&out),
                    snapshot: Some(cell_json(&out)),
                })
            }
        },
        cell_json,
        decode_cell,
    );
    let mut replayed = 0;
    let cells = outs
        .into_iter()
        .map(|o| {
            if o.replayed {
                replayed += 1;
            }
            match o.result {
                Ok(c) => CellRow {
                    key: o.key,
                    replayed: o.replayed,
                    cell: Some(c),
                    failure: None,
                },
                Err(f) => CellRow {
                    key: o.key,
                    replayed: o.replayed,
                    cell: f.snapshot.as_deref().and_then(decode_cell),
                    failure: Some(f),
                },
            }
        })
        .collect();
    LitmusReport {
        scale: h.exp.scale,
        seed: h.exp.seed,
        knob,
        programs: programs.len(),
        cells,
        replayed,
    }
}

/// Runs the litmus matrix without a journal, under the honest model.
pub fn run_litmus(h: &Harness) -> LitmusReport {
    run_litmus_opts(h, LitmusOpts::default())
}

impl LitmusReport {
    /// Did every cell pass all seven legs?
    pub fn ok(&self) -> bool {
        self.cells
            .iter()
            .all(|r| r.failure.is_none() && r.cell.as_ref().is_some_and(LitmusCell::ok))
    }

    /// Cells that reached a forbidden state (or degraded).
    pub fn failed(&self) -> usize {
        self.cells.iter().filter(|r| r.failure.is_some()).count()
    }

    /// The human-readable report (deterministic; stdout-destined).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "== litmus (Px86 model validation, {} programs x {} flush modes, model {}) ==",
            self.programs,
            FlushMode::ALL.len(),
            self.knob.key()
        );
        let _ = writeln!(
            s,
            "{:<24} {:<11} {:>6} {:>8} {:>8}  verdict",
            "program", "flush", "ileav", "allowed", "reached"
        );
        for r in &self.cells {
            let Some(c) = &r.cell else {
                let reason = r.failure.as_ref().map_or("unknown", |f| f.reason.as_str());
                let _ = writeln!(s, "{:<24} FAIL: {}", r.key, reason);
                continue;
            };
            let verdict = if c.ok() {
                "ok: reachable \u{2286} allowed, SP \u{2286} baseline".to_string()
            } else if let Some(w) = &c.witness {
                format!(
                    "FAIL[{}]: witness (interleaving {}, crash_idx {}, seed {}) state {:?}",
                    w.leg,
                    w.interleaving,
                    w.crash_idx,
                    w.seed.map_or_else(|| "-".to_string(), |x| x.to_string()),
                    w.state
                )
            } else if let Some(e) = &c.sim_error {
                format!("FAIL: {e}")
            } else {
                "FAIL: no witness".to_string()
            };
            let _ = writeln!(
                s,
                "{:<24} {:<11} {:>6} {:>8} {:>8}  {}",
                c.program,
                c.mode.mnemonic(),
                c.interleavings,
                c.allowed_states,
                c.reached_states,
                verdict
            );
        }
        let _ = writeln!(
            s,
            "litmus: {} ({} cells, {} failed)",
            if self.ok() { "PASS" } else { "FAIL" },
            self.cells.len(),
            self.failed()
        );
        s
    }

    /// The study as one `specpersist/litmus-v1` document.
    pub fn render_json(&self) -> String {
        let cells = self
            .cells
            .iter()
            .filter_map(|r| r.cell.as_ref().map(cell_json));
        let failed = self
            .cells
            .iter()
            .filter_map(|r| r.failure.as_ref().map(CellFailure::to_json));
        schema::emit(schema::LITMUS, |root| {
            root.num("scale", self.scale as f64)
                .num("seed", self.seed as f64)
                .str("knob", self.knob.key())
                .num("programs", self.programs as f64)
                .num("ok", u8::from(self.ok()))
                .raw("cells", array(cells))
                .raw("failed", array(failed));
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn smoke_harness(jobs: usize) -> Harness {
        Harness::new(
            Experiment {
                scale: 2400, // catalog-only sizing (gen_count == 0)
                seed: 7,
            },
            jobs,
        )
    }

    #[test]
    fn honest_matrix_passes_and_is_jobs_invariant() {
        let a = run_litmus(&smoke_harness(1));
        let b = run_litmus(&smoke_harness(8));
        assert!(a.ok(), "honest cells must all pass");
        assert_eq!(a.cells.len(), a.programs * FlushMode::ALL.len());
        assert!(a.programs >= 20, "catalog floor");
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.render_json(), b.render_json());
        let doc = a.render_json();
        schema::validate(&doc, schema::LITMUS).unwrap();
        assert!(doc.starts_with("{\"schema\":\"specpersist/litmus-v1\""));
        assert!(a.render_text().contains("litmus: PASS"));
    }

    #[test]
    fn weakened_model_fails_with_witness_bearing_failed_records() {
        let rep = run_litmus_opts(
            &smoke_harness(4),
            LitmusOpts {
                journal: None,
                knob: ModelKnob::ClflushOptProgramOrdered,
            },
        );
        assert!(!rep.ok(), "the weakened model must be caught");
        assert!(rep.failed() > 0);
        // The knob trap fails on the weak-flush modes and its failed
        // record still carries the minimized witness.
        let trap: Vec<&CellRow> = rep
            .cells
            .iter()
            .filter(|r| r.key.contains("/knob-trap/"))
            .collect();
        assert_eq!(trap.len(), 3);
        for r in trap {
            let c = r.cell.as_ref().unwrap();
            if c.mode == FlushMode::Clflush {
                // The serializing flush really is program-ordered, so
                // the knob is a no-op there.
                assert!(r.failure.is_none(), "{}", r.key);
            } else {
                let f = r.failure.as_ref().unwrap();
                assert!(f.reason.contains("forbidden state"), "{}", f.reason);
                let w = c.witness.as_ref().unwrap();
                assert_eq!(w.leg, "crashsim");
                assert!(w.seed.is_some());
                assert_eq!(w.state[0], 0, "x must be stale in the witness");
            }
        }
        let doc = rep.render_json();
        schema::validate(&doc, schema::LITMUS).unwrap();
        assert!(doc.contains("\"failed\":[{"));
        assert!(rep.render_text().contains("litmus: FAIL"));
    }

    #[test]
    fn cell_codec_round_trips_including_witnesses() {
        let rep = run_litmus_opts(
            &smoke_harness(4),
            LitmusOpts {
                journal: None,
                knob: ModelKnob::ClflushOptProgramOrdered,
            },
        );
        let mut saw_witness = false;
        for r in &rep.cells {
            let c = r.cell.as_ref().unwrap();
            let doc = cell_json(c);
            let back = decode_cell(&doc).unwrap();
            assert_eq!(cell_json(&back), doc, "{}", r.key);
            saw_witness |= c.witness.is_some();
        }
        assert!(saw_witness, "the weakened run must produce witnesses");
        assert!(decode_cell("{}").is_none());
        assert!(decode_cell("not json").is_none());
    }

    #[test]
    fn journaled_rerun_replays_byte_identically() {
        let mut p = std::env::temp_dir();
        p.push(format!("spp-litmus-journal-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let h = smoke_harness(2);
        // Weakened run, so the journal holds failed records too.
        let knob = ModelKnob::ClflushOptProgramOrdered;
        let (text, json) = {
            let j = Journal::open(&p).unwrap();
            let rep = run_litmus_opts(
                &h,
                LitmusOpts {
                    journal: Some(&j),
                    knob,
                },
            );
            assert_eq!(rep.replayed, 0, "first run computes everything");
            (rep.render_text(), rep.render_json())
        };
        let j = Journal::open(&p).unwrap();
        assert!(j.corrupt().is_empty());
        let rep = run_litmus_opts(
            &h,
            LitmusOpts {
                journal: Some(&j),
                knob,
            },
        );
        assert_eq!(rep.replayed, rep.cells.len(), "every cell replays");
        assert_eq!(rep.render_text(), text, "replayed stdout byte-identical");
        assert_eq!(rep.render_json(), json);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn gen_count_scales_down_with_the_smoke_divisor() {
        assert_eq!(gen_count(1), 12);
        assert_eq!(gen_count(50), 4);
        assert_eq!(gen_count(2400), 0);
        let exp = Experiment { scale: 40, seed: 3 };
        let ps = litmus_programs(&exp);
        assert_eq!(ps.len(), catalog().len() + 6);
    }
}
