//! The shared-data multi-core scaling study (`repro multicore`).
//!
//! 1→N cores run concurrent persistent structures
//! ([`spp_workloads::shared`]) over one shared memory controller with
//! coherence wired between the cores, × {baseline, SP} × {contended,
//! disjoint}. Each cell reports the worst core's cycles/op, the BLT
//! conflict/rollback counts the contention produced, and the BLT
//! high-water/clear accounting — the measurements §4.2.2 implies but
//! the paper leaves to future work.
//!
//! Cells are pure functions of `(kind, leg, cores, variant, scale,
//! seed)`: fanned out with [`run_indexed`] (so `--jobs N` output is
//! byte-identical to `--jobs 1`) and, when a [`Journal`] is attached,
//! keyed into the manifest so an interrupted study resumes without
//! recomputing finished cells — replayed output is byte-identical.
//!
//! A cell whose simulation degrades (e.g. a conflict storm tripping
//! [`spp_cpu::SimErrorKind::ConflictStorm`]) is recorded as a failed
//! cell carrying the typed error's JSON, and the study's exit verdict
//! reflects it; the harness never panics on the multi-core path.

use spp_cpu::{CpuConfig, MultiCore, DEFAULT_STORM_BOUND};
use spp_workloads::{shared_trace, SharedKind, SharedSpec};

use crate::journal::{CellStatus, Entry, Journal};
use crate::json::{self, parse, JsonObject, Value};
use crate::parallel::run_indexed;
use crate::schema;
use crate::Harness;

/// Core counts the study sweeps.
pub const CORE_COUNTS: [usize; 3] = [1, 2, 4];

/// Per-mille of shared operations on the contended leg.
pub const CONTENDED_SHARE_PM: u32 = 600;

/// One configuration point of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellSpec {
    /// Which shared structure.
    pub kind: SharedKind,
    /// Shared-structure operations enabled (contended leg) or fully
    /// core-private addressing (disjoint leg).
    pub contended: bool,
    /// Number of cores.
    pub cores: usize,
    /// Speculative persistence on?
    pub sp: bool,
}

impl CellSpec {
    /// Every cell of the study, in report order.
    pub fn all() -> Vec<CellSpec> {
        let mut v = Vec::new();
        for kind in SharedKind::ALL {
            for contended in [true, false] {
                for cores in CORE_COUNTS {
                    for sp in [false, true] {
                        v.push(CellSpec {
                            kind,
                            contended,
                            cores,
                            sp,
                        });
                    }
                }
            }
        }
        v
    }

    fn leg(&self) -> &'static str {
        if self.contended {
            "contended"
        } else {
            "disjoint"
        }
    }

    fn variant(&self) -> &'static str {
        if self.sp {
            "sp"
        } else {
            "base"
        }
    }
}

/// One measured cell.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticoreCell {
    /// The configuration measured.
    pub spec: CellSpec,
    /// Did every core finish without a typed simulation error?
    pub ok: bool,
    /// Operations per core the cell simulated.
    pub ops_per_core: u64,
    /// Worst core's cycles per operation (0 on a failed cell).
    pub worst_cycles_per_op: u64,
    /// Total BLT conflicts across cores (each one caused a rollback).
    pub conflicts: u64,
    /// Total rollbacks across cores.
    pub rollbacks: u64,
    /// Total coherence snoops delivered to BLTs.
    pub snoops: u64,
    /// Largest per-core BLT high-water mark.
    pub blt_high_water: u64,
    /// Total BLT flash-clears (rollbacks + clean speculation exits).
    pub blt_clears: u64,
    /// The typed [`spp_cpu::SimError`]'s JSON rendering, for a failed
    /// cell (carried as a string so journal replay is byte-exact).
    pub error: Option<String>,
}

/// The study's full result set.
#[derive(Debug, Clone)]
pub struct MulticoreReport {
    /// Scale the cells were sized from.
    pub scale: u64,
    /// Seed the per-core trace streams derive from.
    pub seed: u64,
    /// Operations per core.
    pub ops_per_core: u64,
    /// Conflict-storm budget in effect ([`DEFAULT_STORM_BOUND`] unless
    /// overridden with `--storm-bound`).
    pub storm_bound: u64,
    /// Every cell, in [`CellSpec::all`] order.
    pub cells: Vec<MulticoreCell>,
    /// Cells served from the journal without recomputation.
    pub replayed: usize,
}

/// Options for [`run_multicore_opts`].
#[derive(Debug, Default)]
pub struct MulticoreOpts<'j> {
    /// Journal completed cells here and replay them on re-runs.
    pub journal: Option<&'j Journal>,
    /// Conflict-storm budget override (`repro multicore
    /// --storm-bound N`); `None` uses [`DEFAULT_STORM_BOUND`].
    pub storm_bound: Option<u64>,
}

/// Operations per core at `scale` (floored so tiny smoke scales still
/// produce enough barrier crossings to see conflicts).
fn ops_at(scale: u64) -> u64 {
    (scale / 10).max(24)
}

fn cell_key(spec: &CellSpec, scale: u64, seed: u64, storm_bound: u64) -> String {
    // A non-default storm bound changes what a cell can report (a
    // tighter budget turns a slow-but-converging run into a typed
    // ConflictStorm), so it must be part of the key; the default is
    // left out to keep existing journals replayable.
    let storm = if storm_bound == DEFAULT_STORM_BOUND {
        String::new()
    } else {
        format!("/storm{storm_bound}")
    };
    format!(
        "multicore/{}/{}/c{}/{}/scale{}/seed{:#x}{}",
        spec.kind.key(),
        spec.leg(),
        spec.cores,
        spec.variant(),
        scale,
        seed,
        storm
    )
}

/// Simulates one cell. Never panics: a typed simulation failure
/// becomes a failed cell carrying the error JSON.
fn run_cell(spec: &CellSpec, ops_per_core: u64, seed: u64, storm_bound: u64) -> MulticoreCell {
    let shared = SharedSpec {
        ops_per_core,
        share_pm: if spec.contended {
            CONTENDED_SHARE_PM
        } else {
            0
        },
        seed,
    };
    let traces: Vec<_> = (0..spec.cores)
        .map(|c| shared_trace(spec.kind, c, &shared))
        .collect();
    let refs: Vec<&[spp_pmem::Event]> = traces.iter().map(|t| &t.events[..]).collect();
    let cfg = if spec.sp {
        CpuConfig::with_sp()
    } else {
        CpuConfig::baseline()
    };
    let mut cell = MulticoreCell {
        spec: *spec,
        ok: false,
        ops_per_core,
        worst_cycles_per_op: 0,
        conflicts: 0,
        rollbacks: 0,
        snoops: 0,
        blt_high_water: 0,
        blt_clears: 0,
        error: None,
    };
    let built = match MultiCore::try_new(&refs, cfg) {
        Ok(m) => m.with_storm_bound(storm_bound),
        Err(e) => {
            cell.error = Some(format!("construct: {e}"));
            return cell;
        }
    };
    match built.try_run() {
        Ok(results) => {
            cell.ok = true;
            for r in &results {
                cell.conflicts += r.blt.conflicts;
                cell.rollbacks += r.cpu.rollbacks;
                cell.snoops += r.blt.snoops;
                cell.blt_high_water = cell.blt_high_water.max(r.blt.high_water as u64);
                cell.blt_clears += r.blt.clears;
            }
            let worst = results.iter().map(|r| r.cpu.cycles).max().unwrap_or(0);
            cell.worst_cycles_per_op = worst / ops_per_core.max(1);
        }
        Err(e) => {
            cell.error = Some(e.to_json());
        }
    }
    cell
}

/// A cell as one JSON object: the report's `cells` element and the
/// journal payload (one codec, so replays are byte-identical).
fn cell_json(c: &MulticoreCell) -> String {
    let mut o = JsonObject::new();
    o.str("workload", c.spec.kind.key())
        .str("leg", c.spec.leg())
        .num("cores", c.spec.cores as f64)
        .str("variant", c.spec.variant())
        .num("ok", u8::from(c.ok))
        .num("ops_per_core", c.ops_per_core as f64)
        .num("worst_cycles_per_op", c.worst_cycles_per_op as f64)
        .num("conflicts", c.conflicts as f64)
        .num("rollbacks", c.rollbacks as f64)
        .num("snoops", c.snoops as f64)
        .num("blt_high_water", c.blt_high_water as f64)
        .num("blt_clears", c.blt_clears as f64);
    if let Some(err) = &c.error {
        o.str("error", err);
    }
    o.render()
}

/// Decodes a journal payload written by [`cell_json`] back into a cell;
/// `None` (recompute) if any field is missing or the spec disagrees.
fn decode_cell(spec: &CellSpec, payload: &str) -> Option<MulticoreCell> {
    let v = parse(payload).ok()?;
    let num = |k: &str| v.get(k).and_then(Value::as_u64);
    let s = |k: &str| v.get(k).and_then(Value::as_str);
    if s("workload")? != spec.kind.key()
        || s("leg")? != spec.leg()
        || num("cores")? != spec.cores as u64
        || s("variant")? != spec.variant()
    {
        return None;
    }
    Some(MulticoreCell {
        spec: *spec,
        ok: num("ok")? == 1,
        ops_per_core: num("ops_per_core")?,
        worst_cycles_per_op: num("worst_cycles_per_op")?,
        conflicts: num("conflicts")?,
        rollbacks: num("rollbacks")?,
        snoops: num("snoops")?,
        blt_high_water: num("blt_high_water")?,
        blt_clears: num("blt_clears")?,
        error: v.get("error").and_then(Value::as_str).map(String::from),
    })
}

/// Runs the scaling study: every [`CellSpec::all`] cell, fanned out
/// deterministically, journaled when `opts.journal` is attached.
pub fn run_multicore_opts(h: &Harness, opts: MulticoreOpts<'_>) -> MulticoreReport {
    let scale = h.exp.scale;
    let seed = h.exp.seed;
    let storm_bound = opts.storm_bound.unwrap_or(DEFAULT_STORM_BOUND);
    let ops_per_core = ops_at(scale);
    let specs = CellSpec::all();
    let cached: Vec<Option<MulticoreCell>> = specs
        .iter()
        .map(|spec| {
            let j = opts.journal?;
            let entry = j.lookup(&cell_key(spec, scale, seed, storm_bound))?;
            let decoded = decode_cell(spec, &entry.payload);
            if decoded.is_none() {
                j.report_bad_payload(
                    &cell_key(spec, scale, seed, storm_bound),
                    "multicore payload does not decode",
                );
            }
            decoded
        })
        .collect();
    let computed = run_indexed(h.jobs, &specs, |i, spec| {
        if cached[i].is_some() {
            None
        } else {
            Some(run_cell(spec, ops_per_core, seed, storm_bound))
        }
    });
    let mut cells = Vec::with_capacity(specs.len());
    let mut replayed = 0;
    for (i, spec) in specs.iter().enumerate() {
        let (cell, fresh) = match (&cached[i], &computed[i]) {
            (Some(c), _) => (c.clone(), false),
            (None, Some(c)) => (c.clone(), true),
            (None, None) => unreachable!("cell {i} neither cached nor computed"),
        };
        if fresh {
            if let Some(j) = opts.journal {
                let entry = Entry {
                    key: cell_key(spec, scale, seed, storm_bound),
                    attempt: 1,
                    status: if cell.ok {
                        CellStatus::Ok
                    } else {
                        CellStatus::Failed
                    },
                    payload: cell_json(&cell),
                };
                if let Err(e) = j.append(&entry) {
                    eprintln!("repro: journal: {e}");
                }
            }
        } else {
            replayed += 1;
        }
        cells.push(cell);
    }
    MulticoreReport {
        scale,
        seed,
        ops_per_core,
        storm_bound,
        cells,
        replayed,
    }
}

/// Runs the study without a journal.
pub fn run_multicore_study(h: &Harness) -> MulticoreReport {
    run_multicore_opts(h, MulticoreOpts::default())
}

impl MulticoreReport {
    fn find(&self, kind: SharedKind, contended: bool, cores: usize, sp: bool) -> &MulticoreCell {
        self.cells
            .iter()
            .find(|c| {
                c.spec.kind == kind
                    && c.spec.contended == contended
                    && c.spec.cores == cores
                    && c.spec.sp == sp
            })
            .expect("CellSpec::all covers the full grid")
    }

    /// Total conflicts on contended SP cells with ≥ 2 cores (the cells
    /// where sharing can and should produce BLT hits).
    pub fn contended_sp_conflicts(&self) -> u64 {
        self.cells
            .iter()
            .filter(|c| c.spec.contended && c.spec.sp && c.spec.cores >= 2)
            .map(|c| c.conflicts)
            .sum()
    }

    /// Total conflicts anywhere on the disjoint legs (must be zero).
    pub fn disjoint_conflicts(&self) -> u64 {
        self.cells
            .iter()
            .filter(|c| !c.spec.contended)
            .map(|c| c.conflicts + c.rollbacks)
            .sum()
    }

    /// The study's verdict: every cell simulated cleanly, the contended
    /// SP legs produced coherence conflicts, and the disjoint legs
    /// produced none.
    pub fn ok(&self) -> bool {
        self.cells.iter().all(|c| c.ok)
            && self.contended_sp_conflicts() > 0
            && self.disjoint_conflicts() == 0
    }

    /// The human-readable scaling tables.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "== Shared-data multi-core scaling: worst-core cycles/op (\u{a7}4.1/\u{a7}4.2.2) =="
        );
        let _ = writeln!(
            s,
            "{} ops/core, contended leg shares {}\u{2030} of ops, seed {:#x}",
            self.ops_per_core, CONTENDED_SHARE_PM, self.seed
        );
        // The default budget is left unprinted so journaled replays of
        // pre-override runs stay byte-identical.
        if self.storm_bound != DEFAULT_STORM_BOUND {
            let _ = writeln!(
                s,
                "conflict-storm budget {} (default {})",
                self.storm_bound, DEFAULT_STORM_BOUND
            );
        }
        let _ = writeln!(s);
        for kind in SharedKind::ALL {
            for contended in [true, false] {
                let leg = if contended { "contended" } else { "disjoint" };
                let _ = writeln!(s, "-- {} \u{b7} {leg} --", kind.name());
                let _ = writeln!(
                    s,
                    "{:<7} {:>10} {:>10} {:>9} {:>10} {:>10} {:>8} {:>8}",
                    "cores",
                    "baseline",
                    "SP256",
                    "SP saves",
                    "conflicts",
                    "rollbacks",
                    "BLT hw",
                    "clears"
                );
                for cores in CORE_COUNTS {
                    let base = self.find(kind, contended, cores, false);
                    let sp = self.find(kind, contended, cores, true);
                    if !base.ok || !sp.ok {
                        let _ = writeln!(
                            s,
                            "{cores:<7} degraded: {}",
                            base.error
                                .as_deref()
                                .or(sp.error.as_deref())
                                .unwrap_or("unknown")
                        );
                        continue;
                    }
                    let saves = if base.worst_cycles_per_op > 0 {
                        (1.0 - sp.worst_cycles_per_op as f64 / base.worst_cycles_per_op as f64)
                            * 100.0
                    } else {
                        0.0
                    };
                    let _ = writeln!(
                        s,
                        "{:<7} {:>10} {:>10} {:>8.0}% {:>10} {:>10} {:>8} {:>8}",
                        cores,
                        base.worst_cycles_per_op,
                        sp.worst_cycles_per_op,
                        saves,
                        sp.conflicts,
                        sp.rollbacks,
                        sp.blt_high_water,
                        sp.blt_clears
                    );
                }
                let _ = writeln!(s);
            }
        }
        let _ = writeln!(
            s,
            "Cores share the memory controller and, on the contended leg, the\n\
             structures' control blocks: a store by one core that hits another\n\
             core's BLT rolls the speculating core back to its oldest checkpoint\n\
             (\u{a7}4.2.2). The disjoint leg keeps coherence wired but address sets\n\
             private, so it must stay conflict-free."
        );
        let _ = writeln!(
            s,
            "# multicore check: contended-sp-conflicts={} disjoint-conflicts={}",
            self.contended_sp_conflicts(),
            self.disjoint_conflicts()
        );
        let _ = writeln!(s, "multicore: {}", if self.ok() { "PASS" } else { "FAIL" });
        s
    }

    /// The study as one `specpersist/multicore-v1` document.
    pub fn render_json(&self) -> String {
        schema::emit(schema::MULTICORE, |root| {
            root.num("scale", self.scale as f64)
                .num("seed", self.seed as f64)
                .num("ops_per_core", self.ops_per_core as f64)
                .num("contended_share_pm", f64::from(CONTENDED_SHARE_PM));
            if self.storm_bound != DEFAULT_STORM_BOUND {
                root.num("storm_bound", self.storm_bound as f64);
            }
            root.num(
                "contended_sp_conflicts",
                self.contended_sp_conflicts() as f64,
            )
            .num("disjoint_conflicts", self.disjoint_conflicts() as f64)
            .num("ok", u8::from(self.ok()))
            .raw("cells", json::array(self.cells.iter().map(cell_json)));
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::Experiment;

    fn harness() -> Harness {
        Harness::new(
            Experiment {
                scale: 240,
                seed: 0x5EED,
            },
            2,
        )
    }

    #[test]
    fn study_finds_conflicts_only_where_sharing_exists() {
        let rep = run_multicore_study(&harness());
        assert_eq!(rep.cells.len(), CellSpec::all().len());
        assert!(rep.cells.iter().all(|c| c.ok), "no cell may degrade");
        assert!(
            rep.contended_sp_conflicts() > 0,
            "contended SP legs must conflict"
        );
        assert_eq!(rep.disjoint_conflicts(), 0, "disjoint legs must not");
        // Baseline never speculates, so it can never roll back.
        for c in rep.cells.iter().filter(|c| !c.spec.sp) {
            assert_eq!(c.rollbacks, 0, "{:?}", c.spec);
        }
        assert!(rep.ok());
        assert!(rep
            .render_json()
            .starts_with("{\"schema\":\"specpersist/multicore-v1\""));
        assert!(rep.render_text().contains("multicore: PASS"));
    }

    #[test]
    fn storm_bound_override_is_reported_and_keyed() {
        let h = harness();
        let rep = run_multicore_opts(
            &h,
            MulticoreOpts {
                storm_bound: Some(1),
                ..Default::default()
            },
        );
        assert_eq!(rep.storm_bound, 1);
        assert!(rep.render_text().contains("conflict-storm budget 1"));
        assert!(rep.render_json().contains("\"storm_bound\":1"));
        // A non-default budget gets its own journal namespace so it can
        // never replay a default-budget campaign's cells.
        assert!(cell_key(&CellSpec::all()[0], h.exp.scale, h.exp.seed, 1).ends_with("/storm1"));
        // The default budget keeps the pre-flag wire format (and so the
        // pre-flag goldens and journals) byte-for-byte.
        let rep = run_multicore_study(&h);
        assert_eq!(rep.storm_bound, DEFAULT_STORM_BOUND);
        assert!(!rep.render_json().contains("storm_bound"));
        assert!(!rep.render_text().contains("conflict-storm budget"));
        assert!(!cell_key(
            &CellSpec::all()[0],
            h.exp.scale,
            h.exp.seed,
            DEFAULT_STORM_BOUND
        )
        .contains("/storm"));
    }

    #[test]
    fn jobs_do_not_change_the_bytes() {
        let h1 = Harness::new(harness().exp, 1);
        let h8 = Harness::new(harness().exp, 8);
        let a = run_multicore_study(&h1);
        let b = run_multicore_study(&h8);
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.render_json(), b.render_json());
    }

    #[test]
    fn journaled_rerun_replays_byte_identically() {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "spp-multicore-journal-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        let h = harness();
        let (text, json) = {
            let j = Journal::open(&p).unwrap();
            let rep = run_multicore_opts(
                &h,
                MulticoreOpts {
                    journal: Some(&j),
                    ..Default::default()
                },
            );
            assert_eq!(rep.replayed, 0, "first run computes everything");
            (rep.render_text(), rep.render_json())
        };
        let j = Journal::open(&p).unwrap();
        let rep = run_multicore_opts(
            &h,
            MulticoreOpts {
                journal: Some(&j),
                ..Default::default()
            },
        );
        assert_eq!(rep.replayed, rep.cells.len(), "every cell replays");
        assert_eq!(rep.render_text(), text, "replayed stdout byte-identical");
        assert_eq!(rep.render_json(), json);
        let _ = std::fs::remove_file(&p);
    }
}
