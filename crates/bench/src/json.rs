//! Minimal JSON emission for machine-readable results (no external
//! dependency needed for these flat records).

use std::fmt::Write as _;

use crate::BenchRun;

/// A JSON object under construction.
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// Creates an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a numeric field.
    pub fn num(&mut self, key: &str, v: impl Into<f64>) -> &mut Self {
        let v: f64 = v.into();
        // Integers render without a fraction; everything else with
        // enough digits to round-trip sensibly.
        let s = if v.fract() == 0.0 && v.abs() < 9.0e15 {
            format!("{}", v as i64)
        } else {
            format!("{v:.6}")
        };
        self.fields.push((key.to_string(), s));
        self
    }

    /// Adds a string field (escaping quotes and backslashes).
    pub fn str(&mut self, key: &str, v: &str) -> &mut Self {
        let escaped: String = v
            .chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                '\n' => vec!['\\', 'n'],
                c => vec![c],
            })
            .collect();
        self.fields
            .push((key.to_string(), format!("\"{escaped}\"")));
        self
    }

    /// Adds a pre-rendered JSON value (e.g. a nested object/array).
    pub fn raw(&mut self, key: &str, v: String) -> &mut Self {
        self.fields.push((key.to_string(), v));
        self
    }

    /// Renders the object.
    pub fn render(&self) -> String {
        let mut s = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{k}\":{v}");
        }
        s.push('}');
        s
    }
}

/// Renders an array of pre-rendered values.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut s = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&item);
    }
    s.push(']');
    s
}

/// Serializes the full suite results (everything figs. 8-12/14 need) as
/// one JSON document.
pub fn suite_json(runs: &[BenchRun]) -> String {
    let items = runs.iter().map(|r| {
        let mut o = JsonObject::new();
        o.str("bench", r.id.abbrev());
        o.num("init_ops", r.spec.init_ops as f64);
        o.num("sim_ops", r.spec.sim_ops as f64);
        for (name, v) in [
            ("base", &r.base),
            ("log", &r.log),
            ("logp", &r.logp),
            ("logpsf", &r.logpsf),
        ] {
            let mut vo = JsonObject::new();
            vo.num("cycles", v.sim.cpu.cycles as f64)
                .num("uops", v.counts.total() as f64)
                .num("fetch_stalls", v.sim.cpu.fetch_stall_cycles as f64)
                .num("fence_stalls", v.sim.cpu.fence_stall_cycles as f64)
                .num("pcommits", v.counts.pcommits as f64)
                .num(
                    "max_inflight_pcommits",
                    v.sim.cpu.max_inflight_pcommits as f64,
                )
                .num("stores_per_pcommit", v.sim.stores_per_pcommit());
            o.raw(name, vo.render());
        }
        let mut sp = JsonObject::new();
        sp.num("cycles", r.sp256.cpu.cycles as f64)
            .num("fetch_stalls", r.sp256.cpu.fetch_stall_cycles as f64)
            .num("epochs", r.sp256.cpu.epochs as f64)
            .num("ssb_high_water", r.sp256.ssb.high_water as f64)
            .num("bloom_fp_rate", r.sp256.bloom_false_positive_rate())
            .num(
                "checkpoint_high_water",
                r.sp256.checkpoints.high_water as f64,
            );
        o.raw("sp256", sp.render());
        o.render()
    });
    let mut root = JsonObject::new();
    root.str("schema", "specpersist/suite-v1");
    root.raw("benchmarks", array(items));
    root.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_rendering() {
        let mut o = JsonObject::new();
        o.num("a", 1.0).num("b", 2.5).str("c", "x\"y\\z");
        assert_eq!(o.render(), r#"{"a":1,"b":2.500000,"c":"x\"y\\z"}"#);
    }

    #[test]
    fn array_rendering() {
        assert_eq!(array(["1".to_string(), "2".to_string()]), "[1,2]");
        assert_eq!(array(std::iter::empty::<String>()), "[]");
    }

    #[test]
    fn suite_json_is_parseable_shape() {
        // A smoke check: run one tiny benchmark and assert basic
        // structure (balanced braces, expected keys).
        let exp = crate::Experiment {
            scale: 5000,
            seed: 3,
        };
        let runs = vec![crate::run_bench(spp_workloads::BenchId::LinkedList, &exp)];
        let j = suite_json(&runs);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        for key in ["\"bench\"", "\"logpsf\"", "\"sp256\"", "\"bloom_fp_rate\""] {
            assert!(j.contains(key), "missing {key}");
        }
    }
}
