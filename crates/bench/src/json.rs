//! Minimal JSON emission *and parsing* for machine-readable results
//! (no external dependency needed for these flat records).
//!
//! Emission ([`JsonObject`], [`array`]) has been here since the first
//! harness; parsing ([`parse`], [`Value`]) arrived with the journalled
//! result manifest, which must read its own `journal-v1.jsonl` lines
//! back and reject anything malformed with a typed error instead of
//! panicking on torn writes.

use std::fmt::Write as _;

use crate::BenchRun;

/// A JSON object under construction.
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// Creates an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a numeric field.
    pub fn num(&mut self, key: &str, v: impl Into<f64>) -> &mut Self {
        let v: f64 = v.into();
        // Integers render without a fraction; everything else with
        // enough digits to round-trip sensibly.
        let s = if v.fract() == 0.0 && v.abs() < 9.0e15 {
            format!("{}", v as i64)
        } else {
            format!("{v:.6}")
        };
        self.fields.push((key.to_string(), s));
        self
    }

    /// Adds a string field (escaping quotes and backslashes).
    pub fn str(&mut self, key: &str, v: &str) -> &mut Self {
        self.fields.push((key.to_string(), quote(v)));
        self
    }

    /// Adds a pre-rendered JSON value (e.g. a nested object/array).
    pub fn raw(&mut self, key: &str, v: String) -> &mut Self {
        self.fields.push((key.to_string(), v));
        self
    }

    /// Renders the object.
    pub fn render(&self) -> String {
        let mut s = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{k}\":{v}");
        }
        s.push('}');
        s
    }
}

/// Renders a string as a quoted JSON string literal (escaping quotes,
/// backslashes, and newlines).
pub fn quote(v: &str) -> String {
    let escaped: String = v
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect();
    format!("\"{escaped}\"")
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The value of `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if this is a
    /// number exactly representing one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < 9.0e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Why a document failed to parse: byte offset plus a short reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What was expected or found.
    pub reason: &'static str,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.reason, self.at)
    }
}

impl std::error::Error for JsonParseError {}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected). Never panics on malformed input.
pub fn parse(src: &str) -> Result<Value, JsonParseError> {
    let bytes = src.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonParseError {
            at: pos,
            reason: "trailing garbage after document",
        });
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(
    b: &[u8],
    pos: &mut usize,
    want: u8,
    reason: &'static str,
) -> Result<(), JsonParseError> {
    if b.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonParseError { at: *pos, reason })
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, JsonParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        _ => Err(JsonParseError {
            at: *pos,
            reason: "expected a JSON value",
        }),
    }
}

fn parse_lit(
    b: &[u8],
    pos: &mut usize,
    lit: &'static str,
    v: Value,
) -> Result<Value, JsonParseError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(JsonParseError {
            at: *pos,
            reason: "malformed literal",
        })
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, JsonParseError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Value::Num)
        .ok_or(JsonParseError {
            at: start,
            reason: "malformed number",
        })
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonParseError> {
    expect_byte(b, pos, b'"', "expected opening quote")?;
    let mut out = Vec::new();
    loop {
        match b.get(*pos) {
            None => {
                return Err(JsonParseError {
                    at: *pos,
                    reason: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| JsonParseError {
                    at: *pos,
                    reason: "invalid UTF-8 in string",
                });
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .and_then(char::from_u32)
                            .ok_or(JsonParseError {
                                at: *pos,
                                reason: "malformed \\u escape",
                            })?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(hex.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => {
                        return Err(JsonParseError {
                            at: *pos,
                            reason: "unknown escape",
                        })
                    }
                }
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, JsonParseError> {
    expect_byte(b, pos, b'[', "expected '['")?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => {
                return Err(JsonParseError {
                    at: *pos,
                    reason: "expected ',' or ']'",
                })
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, JsonParseError> {
    expect_byte(b, pos, b'{', "expected '{'")?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect_byte(b, pos, b':', "expected ':'")?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => {
                return Err(JsonParseError {
                    at: *pos,
                    reason: "expected ',' or '}'",
                })
            }
        }
    }
}

/// Renders an array of pre-rendered values.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut s = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&item);
    }
    s.push(']');
    s
}

/// Serializes the full suite results (everything figs. 8-12/14 need) as
/// one JSON document.
pub fn suite_json(runs: &[BenchRun]) -> String {
    let items = runs.iter().map(|r| {
        let mut o = JsonObject::new();
        o.str("bench", r.id.abbrev());
        o.num("init_ops", r.spec.init_ops as f64);
        o.num("sim_ops", r.spec.sim_ops as f64);
        for (name, v) in [
            ("base", &r.base),
            ("log", &r.log),
            ("logp", &r.logp),
            ("logpsf", &r.logpsf),
        ] {
            let mut vo = JsonObject::new();
            vo.num("cycles", v.sim.cpu.cycles as f64)
                .num("uops", v.counts.total() as f64)
                .num("fetch_stalls", v.sim.cpu.fetch_stall_cycles as f64)
                .num("fence_stalls", v.sim.cpu.fence_stall_cycles as f64)
                .num("pcommits", v.counts.pcommits as f64)
                .num(
                    "max_inflight_pcommits",
                    v.sim.cpu.max_inflight_pcommits as f64,
                )
                .num("stores_per_pcommit", v.sim.stores_per_pcommit());
            o.raw(name, vo.render());
        }
        let mut sp = JsonObject::new();
        sp.num("cycles", r.sp256.cpu.cycles as f64)
            .num("fetch_stalls", r.sp256.cpu.fetch_stall_cycles as f64)
            .num("epochs", r.sp256.cpu.epochs as f64)
            .num("ssb_high_water", r.sp256.ssb.high_water as f64)
            .num("bloom_fp_rate", r.sp256.bloom_false_positive_rate())
            .num(
                "checkpoint_high_water",
                r.sp256.checkpoints.high_water as f64,
            );
        o.raw("sp256", sp.render());
        o.render()
    });
    crate::schema::emit(crate::schema::SUITE, |root| {
        root.raw("benchmarks", array(items));
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_rendering() {
        let mut o = JsonObject::new();
        o.num("a", 1.0).num("b", 2.5).str("c", "x\"y\\z");
        assert_eq!(o.render(), r#"{"a":1,"b":2.500000,"c":"x\"y\\z"}"#);
    }

    #[test]
    fn array_rendering() {
        assert_eq!(array(["1".to_string(), "2".to_string()]), "[1,2]");
        assert_eq!(array(std::iter::empty::<String>()), "[]");
    }

    #[test]
    fn parse_round_trips_emitter_output() {
        let mut o = JsonObject::new();
        o.num("a", 1.0)
            .num("b", 2.5)
            .str("c", "x\"y\\z\nw")
            .raw("d", array(["1".into(), "\"two\"".into()]))
            .raw("e", "null".into())
            .raw("f", "true".into());
        let v = parse(&o.render()).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Value::as_f64), Some(2.5));
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x\"y\\z\nw"));
        let d = v.get("d").and_then(Value::as_arr).unwrap();
        assert_eq!(d[0].as_u64(), Some(1));
        assert_eq!(d[1].as_str(), Some("two"));
        assert_eq!(v.get("e"), Some(&Value::Null));
        assert_eq!(v.get("f").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_rejects_malformed_documents_with_typed_errors() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\" 1}",
            "[1,2",
            "\"unterminated",
            "{\"a\":1}trailing",
            "nul",
            "--5",
            "{\"a\":\"\\q\"}",
        ] {
            let e = parse(bad).unwrap_err();
            assert!(!e.to_string().is_empty(), "{bad:?} gave {e:?}");
        }
    }

    #[test]
    fn parse_handles_negative_and_fractional_numbers() {
        let v = parse(r#"{"n":-3,"x":0.125,"big":123456789012}"#).unwrap();
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(-3.0));
        assert_eq!(v.get("n").and_then(Value::as_u64), None);
        assert_eq!(v.get("x").and_then(Value::as_f64), Some(0.125));
        assert_eq!(v.get("big").and_then(Value::as_u64), Some(123_456_789_012));
    }

    #[test]
    fn suite_json_parses_as_a_document() {
        let exp = crate::Experiment {
            scale: 5000,
            seed: 3,
        };
        let runs = vec![crate::run_bench(spp_workloads::BenchId::LinkedList, &exp)];
        let v = parse(&suite_json(&runs)).unwrap();
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some("specpersist/suite-v1")
        );
        let benches = v.get("benchmarks").and_then(Value::as_arr).unwrap();
        assert_eq!(benches.len(), 1);
        assert_eq!(benches[0].get("bench").and_then(Value::as_str), Some("LL"));
    }

    #[test]
    fn suite_json_is_parseable_shape() {
        // A smoke check: run one tiny benchmark and assert basic
        // structure (balanced braces, expected keys).
        let exp = crate::Experiment {
            scale: 5000,
            seed: 3,
        };
        let runs = vec![crate::run_bench(spp_workloads::BenchId::LinkedList, &exp)];
        let j = suite_json(&runs);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        for key in ["\"bench\"", "\"logpsf\"", "\"sp256\"", "\"bloom_fp_rate\""] {
            assert!(j.contains(key), "missing {key}");
        }
    }
}
