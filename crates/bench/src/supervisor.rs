//! The supervised worker pool: journal-aware, panic-isolating,
//! retrying execution of evaluation cells over [`run_indexed`].
//!
//! [`run_indexed`] gives deterministic input-order results but lets a
//! single panicking cell take the whole matrix down with it — exactly
//! the failure mode that dominates long validation campaigns. The
//! supervisor wraps each cell:
//!
//! 1. **Replay**: if an open [`Journal`] holds a verified entry for the
//!    cell's key, the entry is decoded and served without recomputation
//!    (a decode failure surfaces as a typed
//!    [`JournalError::BadPayload`](crate::journal::JournalError) and the
//!    cell recomputes — never silent reuse).
//! 2. **Isolation**: the cell runs under `catch_unwind`; a panic is
//!    converted into a failure value, and every other cell keeps
//!    running.
//! 3. **Retry**: a panicking or `Err`-returning cell is retried up to
//!    [`MAX_ATTEMPTS`] times on a *deterministic* schedule — the
//!    attempt counter alone, no wall-clock backoff or randomness — so
//!    retried runs stay reproducible.
//! 4. **Degradation**: a cell that exhausts its budget becomes a
//!    per-cell [`CellFailure`] (reason + diagnostic snapshot) in the
//!    report instead of aborting the matrix; completed cells and
//!    failures are both journalled, so a resumed run replays them
//!    byte-identically.
//!
//! Cells must remain pure functions of their inputs: the supervisor
//! preserves [`run_indexed`]'s input-order result contract, so final
//! stdout is byte-identical across `--jobs` and across
//! interrupted-then-resumed vs. uninterrupted runs.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::journal::{CellStatus, Entry, Journal};
use crate::json::{parse, JsonObject, Value};
use crate::run_indexed;

/// The bounded, deterministic retry budget: total attempts per cell
/// (first run included).
pub const MAX_ATTEMPTS: u32 = 3;

/// A cell-level error returned by a supervised run function: what went
/// wrong, plus the machine-state snapshot when the failure carried one
/// (a [`spp_cpu::SimError`] does; a plain panic does not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellError {
    /// One-line description of the failure.
    pub reason: String,
    /// The diagnostic snapshot as JSON ([`spp_cpu::DiagnosticSnapshot::to_json`]).
    pub snapshot: Option<String>,
}

impl CellError {
    /// An error without a snapshot (panics, decode failures).
    pub fn new(reason: impl Into<String>) -> Self {
        CellError {
            reason: reason.into(),
            snapshot: None,
        }
    }

    /// An error from a typed simulation failure, carrying its snapshot.
    pub fn from_sim(e: &spp_cpu::SimError) -> Self {
        CellError {
            reason: e.to_string(),
            snapshot: Some(e.snapshot.to_json()),
        }
    }
}

/// A cell that exhausted its retry budget: the degraded per-cell record
/// that replaces its result in the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// The cell's journal key.
    pub key: String,
    /// Attempts consumed (== the budget).
    pub attempts: u32,
    /// The final attempt's failure reason.
    pub reason: String,
    /// The final attempt's diagnostic snapshot, if one was captured.
    pub snapshot: Option<String>,
}

impl CellFailure {
    /// The failure as a JSON object (the journalled payload of a
    /// `failed` entry, and the shape reports embed).
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.str("key", &self.key)
            .num("attempts", self.attempts)
            .str("reason", &self.reason);
        match &self.snapshot {
            Some(s) => o.raw("snapshot", s.clone()),
            None => o.raw("snapshot", "null".to_string()),
        };
        o.render()
    }

    fn from_json(key: &str, payload: &str) -> Option<CellFailure> {
        let v = parse(payload).ok()?;
        Some(CellFailure {
            key: key.to_string(),
            attempts: v.get("attempts")?.as_u64()? as u32,
            reason: v.get("reason")?.as_str()?.to_string(),
            snapshot: match v.get("snapshot") {
                None | Some(Value::Null) => None,
                Some(s) => Some(render_back(s)),
            },
        })
    }
}

/// Re-renders a parsed snapshot value compactly (exact bytes of the
/// original are not needed — only the diagnostic content).
fn render_back(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n:.6}")
            }
        }
        Value::Str(s) => crate::json::quote(s),
        Value::Arr(items) => crate::json::array(items.iter().map(render_back)),
        Value::Obj(fields) => {
            let mut o = JsonObject::new();
            for (k, val) in fields {
                o.raw(k, render_back(val));
            }
            o.render()
        }
    }
}

/// One supervised cell's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellOutcome<R> {
    /// The cell's journal key.
    pub key: String,
    /// Attempts consumed (1 for a first-try success; 0 when replayed).
    pub attempts: u32,
    /// Served from the journal without recomputation?
    pub replayed: bool,
    /// The result, or the degraded failure record.
    pub result: Result<R, CellFailure>,
}

/// The supervised pool configuration: worker budget, retry budget, and
/// an optional journal for replay + recording.
#[derive(Debug, Clone, Copy, Default)]
pub struct Supervisor<'j> {
    /// Worker threads (0 and 1 both mean serial).
    pub jobs: usize,
    /// Total attempts per cell; 0 is treated as 1.
    pub max_attempts: u32,
    /// Replay completed cells from (and record new ones into) this
    /// journal.
    pub journal: Option<&'j Journal>,
}

impl<'j> Supervisor<'j> {
    /// A supervisor with the default retry budget and no journal.
    pub fn new(jobs: usize) -> Self {
        Supervisor {
            jobs,
            max_attempts: MAX_ATTEMPTS,
            journal: None,
        }
    }

    /// Same, recording into (and replaying from) `journal`.
    pub fn with_journal(jobs: usize, journal: &'j Journal) -> Self {
        Supervisor {
            journal: Some(journal),
            ..Supervisor::new(jobs)
        }
    }

    /// Runs every item as a supervised cell, returning outcomes in
    /// input order.
    ///
    /// * `key` names the cell for the journal — it must capture
    ///   everything that determines the result.
    /// * `run` computes the cell (pure; may panic or return a typed
    ///   [`CellError`]).
    /// * `encode`/`decode` serialize the result for the journal; a
    ///   `decode` rejection is reported to the journal as a typed
    ///   error and the cell recomputes.
    pub fn run_cells<T, R, K, F, E, D>(
        &self,
        items: &[T],
        key: K,
        run: F,
        encode: E,
        decode: D,
    ) -> Vec<CellOutcome<R>>
    where
        T: Sync,
        R: Send,
        K: Fn(usize, &T) -> String + Sync,
        F: Fn(usize, &T) -> Result<R, CellError> + Sync,
        E: Fn(&R) -> String + Sync,
        D: Fn(&str) -> Option<R> + Sync,
    {
        let max_attempts = self.max_attempts.max(1);
        run_indexed(self.jobs, items, |i, item| {
            let key = key(i, item);
            // Replay path: a verified journal entry short-circuits the
            // computation entirely.
            if let Some(j) = self.journal {
                if let Some(entry) = j.lookup(&key) {
                    match entry.status {
                        CellStatus::Ok => match decode(&entry.payload) {
                            Some(r) => {
                                return CellOutcome {
                                    key,
                                    attempts: 0,
                                    replayed: true,
                                    result: Ok(r),
                                }
                            }
                            None => j.report_bad_payload(&key, "result payload rejected"),
                        },
                        CellStatus::Failed => match CellFailure::from_json(&key, &entry.payload) {
                            Some(f) => {
                                return CellOutcome {
                                    key,
                                    attempts: f.attempts,
                                    replayed: true,
                                    result: Err(f),
                                }
                            }
                            None => j.report_bad_payload(&key, "failure payload rejected"),
                        },
                    }
                }
            }
            // Compute path: bounded deterministic retry under panic
            // isolation.
            let mut last = CellError::new("cell never ran");
            for attempt in 1..=max_attempts {
                match catch_unwind(AssertUnwindSafe(|| run(i, item))) {
                    Ok(Ok(r)) => {
                        if let Some(j) = self.journal {
                            let _ = j.append(&Entry {
                                key: key.clone(),
                                attempt,
                                status: CellStatus::Ok,
                                payload: encode(&r),
                            });
                        }
                        return CellOutcome {
                            key,
                            attempts: attempt,
                            replayed: false,
                            result: Ok(r),
                        };
                    }
                    Ok(Err(e)) => last = e,
                    Err(panic) => last = CellError::new(panic_message(panic.as_ref())),
                }
            }
            let failure = CellFailure {
                key: key.clone(),
                attempts: max_attempts,
                reason: last.reason,
                snapshot: last.snapshot,
            };
            if let Some(j) = self.journal {
                let _ = j.append(&Entry {
                    key: key.clone(),
                    attempt: max_attempts,
                    status: CellStatus::Failed,
                    payload: failure.to_json(),
                });
            }
            CellOutcome {
                key,
                attempts: max_attempts,
                replayed: false,
                result: Err(failure),
            }
        })
    }
}

/// Extracts a printable message from a caught panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "spp-supervisor-test-{}-{name}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn ident_codec() -> (
        impl Fn(&u64) -> String + Sync,
        impl Fn(&str) -> Option<u64> + Sync,
    ) {
        (|r: &u64| r.to_string(), |s: &str| s.parse().ok())
    }

    #[test]
    fn panicking_cell_degrades_while_others_report() {
        let items: Vec<u64> = (0..16).collect();
        let (enc, dec) = ident_codec();
        let outs = Supervisor::new(4).run_cells(
            &items,
            |_, &x| format!("cell/{x}"),
            |_, &x| {
                if x == 7 {
                    panic!("injected fault on cell 7");
                }
                Ok(x * 2)
            },
            enc,
            dec,
        );
        assert_eq!(outs.len(), 16);
        for (i, o) in outs.iter().enumerate() {
            if i == 7 {
                let f = o.result.as_ref().unwrap_err();
                assert_eq!(f.attempts, MAX_ATTEMPTS);
                assert!(f.reason.contains("injected fault on cell 7"), "{f:?}");
                assert!(f.snapshot.is_none());
            } else {
                assert_eq!(*o.result.as_ref().unwrap(), i as u64 * 2, "cell {i}");
                assert_eq!(o.attempts, 1);
            }
        }
    }

    #[test]
    fn transient_failure_is_retried_deterministically() {
        let items = [0u64];
        let tries = AtomicU32::new(0);
        let (enc, dec) = ident_codec();
        let outs = Supervisor::new(1).run_cells(
            &items,
            |_, _| "cell/flaky".to_string(),
            |_, _| {
                // Fails twice, then succeeds: the bounded schedule must
                // absorb it without any wall-clock element.
                if tries.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err(CellError::new("transient"))
                } else {
                    Ok(99)
                }
            },
            enc,
            dec,
        );
        assert_eq!(outs[0].attempts, 3);
        assert_eq!(*outs[0].result.as_ref().unwrap(), 99);
        assert_eq!(tries.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn journal_replays_completed_cells_and_failures() {
        let p = tmp("replay");
        let items: Vec<u64> = (0..8).collect();
        let computed = AtomicU32::new(0);
        {
            let j = Journal::open(&p).unwrap();
            let (enc, dec) = ident_codec();
            let outs = Supervisor::with_journal(2, &j).run_cells(
                &items,
                |_, &x| format!("cell/{x}"),
                |_, &x| {
                    computed.fetch_add(1, Ordering::SeqCst);
                    if x == 3 {
                        Err(CellError {
                            reason: "always down".into(),
                            snapshot: Some("{\"cycle\":5}".into()),
                        })
                    } else {
                        Ok(x + 100)
                    }
                },
                enc,
                dec,
            );
            assert!(outs[3].result.is_err());
            assert_eq!(
                computed.load(Ordering::SeqCst),
                7 + MAX_ATTEMPTS,
                "failed cell retried to exhaustion"
            );
        }
        // Second run: everything — including the failure — replays.
        let j = Journal::open(&p).unwrap();
        assert!(j.corrupt().is_empty());
        let before = computed.load(Ordering::SeqCst);
        let (enc, dec) = ident_codec();
        let outs = Supervisor::with_journal(2, &j).run_cells(
            &items,
            |_, &x| format!("cell/{x}"),
            |_, &x| {
                computed.fetch_add(1, Ordering::SeqCst);
                Ok(x + 100)
            },
            enc,
            dec,
        );
        assert_eq!(
            computed.load(Ordering::SeqCst),
            before,
            "nothing recomputes"
        );
        for (i, o) in outs.iter().enumerate() {
            assert!(o.replayed, "cell {i} must replay");
            if i == 3 {
                let f = o.result.as_ref().unwrap_err();
                assert_eq!(f.reason, "always down");
                assert_eq!(f.snapshot.as_deref(), Some("{\"cycle\":5}"));
                assert_eq!(f.attempts, MAX_ATTEMPTS);
            } else {
                assert_eq!(*o.result.as_ref().unwrap(), i as u64 + 100);
            }
        }
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn undecodable_payload_recomputes_and_reports() {
        let p = tmp("badpayload");
        {
            let j = Journal::open(&p).unwrap();
            j.append(&Entry {
                key: "cell/0".into(),
                attempt: 1,
                status: CellStatus::Ok,
                payload: "not a number".into(),
            })
            .unwrap();
        }
        let j = Journal::open(&p).unwrap();
        let (enc, dec) = ident_codec();
        let outs = Supervisor::with_journal(1, &j).run_cells(
            &[0u64],
            |_, &x| format!("cell/{x}"),
            |_, &x| Ok(x + 1),
            enc,
            dec,
        );
        assert!(!outs[0].replayed, "bad payload must not be reused");
        assert_eq!(*outs[0].result.as_ref().unwrap(), 1);
        let errs = j.corrupt();
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].to_string().contains("cell/0"), "{errs:?}");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn outcomes_are_input_ordered_at_any_job_count() {
        let items: Vec<u64> = (0..64).collect();
        let run = |_: usize, &x: &u64| {
            if x % 13 == 5 {
                Err(CellError::new(format!("down {x}")))
            } else {
                Ok(x * 3)
            }
        };
        let collect = |jobs| {
            let (enc, dec) = ident_codec();
            Supervisor::new(jobs)
                .run_cells(&items, |_, &x| format!("c/{x}"), run, enc, dec)
                .into_iter()
                .map(|o| (o.key, o.result.map_err(|f| f.reason)))
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(1), collect(8));
    }
}
