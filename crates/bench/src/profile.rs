//! `repro profile` — the cycle-resolved stall/latency profile of one
//! benchmark cell, on the baseline and SP256 cores, through the
//! `spp-obs` probe layer.
//!
//! One recorded trace is replayed twice, each replay with a
//! [`Collector`] attached via the [`Simulator`](spp_cpu::Simulator)
//! façade. The report has three renderings:
//!
//! * a text stall table ([`ProfileReport::render_text`]): retirement
//!   stalls attributed to fence / SSB-full / checkpoint-full / backend
//!   causes, plus pcommit-latency, epoch-duration and fence-episode
//!   distributions and buffer occupancy;
//! * one `specpersist/profile-v2` JSON line
//!   ([`ProfileReport::render_json`]);
//! * a Chrome `trace_event` document ([`ProfileReport::chrome_trace`])
//!   with the two configurations as separate processes, loadable in
//!   Perfetto or `chrome://tracing`.
//!
//! The report self-validates: each configuration's four attribution
//! buckets must equal the machine's own stall counters exactly (they
//! are derived by counter-diffing in the pipeline, so any divergence is
//! a probe bug), and [`ProfileReport::ok`] gates the exit code.
//! Everything is deterministic — the collectors use stride reservoirs,
//! not RNG — so the bytes are identical at any `--jobs` count.

use std::fmt::Write as _;

use spp_cpu::{CpuConfig, SimResult, Simulator};
use spp_obs::{
    merge_chrome_traces, Collector, LatencySummary, OccupancySummary, ProbeHandle, ProfileSummary,
    TraceSpan,
};
use spp_pmem::Variant;
use spp_workloads::BenchId;

use crate::json::{array, JsonObject};
use crate::parallel::run_indexed;
use crate::{variant_key, Experiment, Harness, TraceKey};

/// One profiled core configuration.
#[derive(Debug, Clone)]
pub struct ProfiledCell {
    /// Display label (`baseline` / `sp256`); also the Chrome process
    /// name.
    pub config: &'static str,
    /// The run's architectural result — byte-identical to an unprobed
    /// run (the probe-neutrality tests pin this).
    pub sim: SimResult,
    /// Everything the collector measured.
    pub summary: ProfileSummary,
    /// The collected Chrome spans (epochs, pcommits, fence stalls).
    pub spans: Vec<TraceSpan>,
}

impl ProfiledCell {
    /// Probe-vs-machine coherence: each attribution bucket must equal
    /// the machine's own stall counter (fence, SSB-full,
    /// checkpoint-full, backend), so the attributed total sums exactly
    /// to the machine's total stall cycles.
    pub fn attribution_coherent(&self) -> bool {
        let s = &self.summary.stalls;
        let c = &self.sim.cpu;
        s.fence == c.fence_stall_cycles
            && s.ssb_full == c.ssb_full_stall_cycles
            && s.checkpoint_full == c.checkpoint_stall_cycles
            && s.backend == c.fetch_stall_cycles
    }

    /// The machine's total stall cycles (the attribution target).
    pub fn machine_stall_cycles(&self) -> u64 {
        let c = &self.sim.cpu;
        c.fence_stall_cycles
            + c.ssb_full_stall_cycles
            + c.checkpoint_stall_cycles
            + c.fetch_stall_cycles
    }
}

/// The `repro profile` report for one `(benchmark, variant)` cell.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Which benchmark.
    pub id: BenchId,
    /// Which build variant of its trace.
    pub variant: Variant,
    /// Scale and seed of the recording.
    pub exp: Experiment,
    /// Micro-ops in the profiled trace.
    pub trace_uops: u64,
    /// The profiled configurations, in [`PROFILE_CONFIGS`] order.
    pub cells: Vec<ProfiledCell>,
}

/// The profiled configurations, in report order: the stalling baseline
/// core, then SP256.
pub const PROFILE_CONFIGS: [(&str, bool); 2] = [("baseline", false), ("sp256", true)];

/// Replays the keyed trace once per [`PROFILE_CONFIGS`] entry with a
/// fresh [`Collector`] attached. Probe handles are `Rc`-based (not
/// `Send`), so each worker constructs its own collector inside the
/// closure; only plain data crosses the executor boundary.
pub fn run_profile(h: &Harness, id: BenchId, variant: Variant) -> ProfileReport {
    let trace = h.trace(TraceKey::new(id, variant, &h.exp));
    let cells = run_indexed(h.jobs, &PROFILE_CONFIGS, |_, &(config, sp)| {
        let cfg = if sp {
            CpuConfig::with_sp()
        } else {
            CpuConfig::baseline()
        };
        let collector = Collector::shared();
        let started = std::time::Instant::now();
        let sim = match Simulator::new(&trace.events)
            .config(cfg)
            .probe(ProbeHandle::new(collector.clone()))
            .run()
        {
            Ok(r) => r,
            Err(e) => panic!("profile simulation failed: {e}"),
        };
        h.perf()
            .record(id, variant, sim.cpu.cycles, started.elapsed());
        let c = collector.borrow();
        ProfiledCell {
            config,
            sim,
            summary: c.summary(),
            spans: c.spans().to_vec(),
        }
    });
    ProfileReport {
        id,
        variant,
        exp: h.exp,
        trace_uops: trace.counts.total(),
        cells,
    }
}

impl ProfileReport {
    /// `true` when every configuration's stall attribution matches the
    /// machine's counters exactly.
    pub fn ok(&self) -> bool {
        self.cells.iter().all(ProfiledCell::attribution_coherent)
    }

    /// The human-readable stall table and distribution summary.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "profile: {} / {} at scale 1/{} (seed {:#x}, {} uops)",
            self.id.name(),
            self.variant,
            self.exp.scale,
            self.exp.seed,
            self.trace_uops
        );
        let _ = writeln!(
            s,
            "{:<9} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10}  attribution",
            "config", "cycles", "stalls", "fence", "ssb_full", "ckpt_full", "backend"
        );
        for c in &self.cells {
            let st = &c.summary.stalls;
            let _ = writeln!(
                s,
                "{:<9} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10}  {}",
                c.config,
                c.sim.cpu.cycles,
                c.machine_stall_cycles(),
                st.fence,
                st.ssb_full,
                st.checkpoint_full,
                st.backend,
                if c.attribution_coherent() {
                    "exact"
                } else {
                    "DIVERGED"
                }
            );
        }
        for c in &self.cells {
            let _ = writeln!(s, "{}:", c.config);
            for (name, l) in [
                ("pcommit latency", &c.summary.pcommit_latency),
                ("epoch duration", &c.summary.epoch_duration),
                ("fence episode", &c.summary.fence_episode),
            ] {
                let _ = writeln!(s, "  {:<16} {}", name, latency_text(l));
            }
            for (name, o) in [
                ("ssb occupancy", &c.summary.ssb),
                ("wpq occupancy", &c.summary.wpq),
                ("checkpoints", &c.summary.checkpoints),
            ] {
                let _ = writeln!(
                    s,
                    "  {:<16} mean {:.2}  high {}/{}  ({} transitions)",
                    name, o.mean, o.high_water, o.capacity, o.transitions
                );
            }
            let _ = writeln!(
                s,
                "  epochs {}/{} (begun/committed), rollbacks {}, pcommits {}, spans {} (+{} dropped), misordered {}",
                c.summary.epochs_begun,
                c.summary.epochs_committed,
                c.summary.rollbacks,
                c.summary.pcommits,
                c.spans.len(),
                c.summary.spans_dropped,
                c.summary.dropped_out_of_order
            );
        }
        let _ = writeln!(
            s,
            "profile: {} (stall attribution {} machine counters in {}/{} configs)",
            if self.ok() { "PASS" } else { "FAIL" },
            if self.ok() {
                "matches"
            } else {
                "DIVERGES from"
            },
            self.cells
                .iter()
                .filter(|c| c.attribution_coherent())
                .count(),
            self.cells.len()
        );
        s
    }

    /// One `specpersist/profile-v2` JSON line.
    pub fn render_json(&self) -> String {
        crate::schema::emit(crate::schema::PROFILE, |root| {
            root.str("bench", self.id.abbrev())
                .str("variant", variant_key(self.variant))
                .num("scale", self.exp.scale as f64)
                .num("seed", self.exp.seed as f64)
                .num("uops", self.trace_uops as f64)
                .num("ok", u8::from(self.ok()))
                .raw("cells", array(self.cells.iter().map(cell_json)));
        })
    }

    /// The merged Chrome `trace_event` document: one process per
    /// configuration, aligned on the shared cycle axis.
    pub fn chrome_trace(&self) -> String {
        let groups: Vec<(&str, &[TraceSpan])> = self
            .cells
            .iter()
            .map(|c| (c.config, c.spans.as_slice()))
            .collect();
        merge_chrome_traces(&groups)
    }
}

/// Renders an order statistic, or `-` when nothing was observed — an
/// empty distribution is not a distribution of zeros.
fn stat_text(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), |x| x.to_string())
}

fn latency_text(l: &LatencySummary) -> String {
    if l.count == 0 {
        return "(none)".to_string();
    }
    format!(
        "count {}  mean {:.1}  p50 {}  p95 {}  p99 {}  max {}",
        l.count,
        l.mean,
        stat_text(l.p50),
        stat_text(l.p95),
        stat_text(l.p99),
        stat_text(l.max)
    )
}

fn stat_json(o: &mut JsonObject, key: &str, v: Option<u64>) {
    match v {
        Some(x) => o.num(key, x as f64),
        None => o.raw(key, "null".to_string()),
    };
}

fn latency_json(l: &LatencySummary) -> String {
    let mut o = JsonObject::new();
    o.num("count", l.count as f64).num("mean", l.mean);
    stat_json(&mut o, "p50", l.p50);
    stat_json(&mut o, "p95", l.p95);
    stat_json(&mut o, "p99", l.p99);
    stat_json(&mut o, "max", l.max);
    o.render()
}

fn occupancy_json(o: &OccupancySummary) -> String {
    let mut j = JsonObject::new();
    j.num("transitions", o.transitions as f64)
        .num("mean", o.mean)
        .num("high_water", o.high_water as f64)
        .num("capacity", o.capacity as f64);
    j.render()
}

fn cell_json(c: &ProfiledCell) -> String {
    let st = &c.summary.stalls;
    let mut stalls = JsonObject::new();
    stalls
        .num("fence", st.fence as f64)
        .num("ssb_full", st.ssb_full as f64)
        .num("checkpoint_full", st.checkpoint_full as f64)
        .num("backend", st.backend as f64)
        .num("total", st.total() as f64)
        .num("machine_total", c.machine_stall_cycles() as f64)
        .num("coherent", u8::from(c.attribution_coherent()));
    let mut o = JsonObject::new();
    o.str("config", c.config)
        .num("cycles", c.sim.cpu.cycles as f64)
        .num("committed_uops", c.sim.cpu.committed_uops as f64)
        .raw("stalls", stalls.render())
        .raw("pcommit_latency", latency_json(&c.summary.pcommit_latency))
        .raw("epoch_duration", latency_json(&c.summary.epoch_duration))
        .raw("fence_episode", latency_json(&c.summary.fence_episode))
        .raw("ssb", occupancy_json(&c.summary.ssb))
        .raw("wpq", occupancy_json(&c.summary.wpq))
        .raw("checkpoints", occupancy_json(&c.summary.checkpoints))
        .num("epochs_begun", c.summary.epochs_begun as f64)
        .num("epochs_committed", c.summary.epochs_committed as f64)
        .num("rollbacks", c.summary.rollbacks as f64)
        .num("pcommits", c.summary.pcommits as f64)
        .num("spans", c.spans.len() as f64)
        .num("spans_dropped", c.summary.spans_dropped as f64)
        .num(
            "dropped_out_of_order",
            c.summary.dropped_out_of_order as f64,
        );
    o.render()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn smoke_harness(jobs: usize) -> Harness {
        Harness::new(
            Experiment {
                scale: 2400,
                seed: 7,
            },
            jobs,
        )
    }

    #[test]
    fn attribution_sums_to_machine_stall_cycles() {
        let rep = run_profile(&smoke_harness(2), BenchId::LinkedList, Variant::LogPSf);
        assert_eq!(rep.cells.len(), 2);
        for c in &rep.cells {
            assert!(c.attribution_coherent(), "{}: {:?}", c.config, c.summary);
            assert_eq!(c.summary.stalls.total(), c.machine_stall_cycles());
        }
        assert!(rep.ok());
        // Non-vacuity: a fence-bearing trace stalls the baseline, and
        // SP256 opens epochs the probe must see.
        assert!(
            rep.cells[0].summary.stalls.fence > 0,
            "baseline never stalled"
        );
        assert!(
            rep.cells[1].summary.epochs_begun > 0,
            "sp256 never speculated"
        );
        assert_eq!(
            rep.cells[1].summary.epochs_begun,
            rep.cells[1].sim.cpu.epochs
        );
        assert_eq!(rep.cells[1].summary.pcommits, rep.cells[1].sim.cpu.pcommits);
    }

    #[test]
    fn report_is_identical_at_any_job_count() {
        let a = run_profile(&smoke_harness(1), BenchId::BTree, Variant::LogPSf);
        let b = run_profile(&smoke_harness(8), BenchId::BTree, Variant::LogPSf);
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.render_json(), b.render_json());
        assert_eq!(a.chrome_trace(), b.chrome_trace());
    }

    #[test]
    fn json_line_carries_the_profile_schema() {
        let rep = run_profile(&smoke_harness(2), BenchId::HashMap, Variant::LogPSf);
        let j = rep.render_json();
        let v = crate::schema::validate(&j, crate::schema::PROFILE).expect("must validate");
        assert_eq!(
            v.get("bench").and_then(crate::json::Value::as_str),
            Some("HM")
        );
        assert_eq!(v.get("ok").and_then(crate::json::Value::as_u64), Some(1));
        let cells = v
            .get("cells")
            .and_then(crate::json::Value::as_arr)
            .expect("cells");
        assert_eq!(cells.len(), 2);
        for c in cells {
            let st = c.get("stalls").expect("stalls");
            assert_eq!(
                st.get("total").and_then(crate::json::Value::as_u64),
                st.get("machine_total").and_then(crate::json::Value::as_u64)
            );
        }
    }

    #[test]
    fn chrome_trace_is_loadable_and_two_process() {
        let rep = run_profile(&smoke_harness(2), BenchId::LinkedList, Variant::LogPSf);
        let t = rep.chrome_trace();
        assert!(t.starts_with("{\"traceEvents\":["));
        assert!(t.ends_with("]}"));
        assert!(t.contains("\"args\":{\"name\":\"baseline\"}"));
        assert!(t.contains("\"args\":{\"name\":\"sp256\"}"));
        assert!(t.contains("\"pid\":1") && t.contains("\"pid\":2"));
        // Loadable = parseable JSON with the trace_event envelope.
        let v = crate::json::parse(&t).expect("trace must parse");
        assert!(v
            .get("traceEvents")
            .and_then(crate::json::Value::as_arr)
            .is_some_and(|a| !a.is_empty()));
    }

    #[test]
    fn text_report_names_every_section() {
        let rep = run_profile(&smoke_harness(2), BenchId::LinkedList, Variant::LogPSf);
        let t = rep.render_text();
        for key in [
            "profile: Linked-List",
            "baseline",
            "sp256",
            "pcommit latency",
            "fence episode",
            "ssb occupancy",
            "profile: PASS",
        ] {
            assert!(t.contains(key), "missing {key:?} in:\n{t}");
        }
    }
}
