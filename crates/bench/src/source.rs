//! One trait over every place a recorded trace can live.
//!
//! The harness grew two trace homes: the in-memory [`TraceCache`]
//! (record once, share an `Arc` of the whole event vector) and the
//! PR 9 streamed/spilled chunk pipeline (bounded memory, events arrive
//! in recording-order chunks and may detour through a checksummed spill
//! file). Consumers used to be written against one or the other; the
//! optimizer and any future pass would have needed both code paths.
//!
//! [`TraceSource`] unifies them behind one iterator-style contract:
//! pull chunks until `Ok(None)`. The conformance test at the bottom
//! pins the load-bearing property — both implementations yield
//! **byte-identical** event streams for the same workload, verified on
//! the spill wire encoding — so a consumer written against the trait
//! cannot observe where the trace lived.
//!
//! [`TraceCache`]: crate::cache::TraceCache

use std::borrow::Cow;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

use spp_obs::MemGauge;
use spp_pmem::{Event, SharedTrace};

use crate::stream::{chunk_bytes, ChunkMsg, KvStreamSpec, PeakBound, SpillReader, StreamError};

/// Iterator-style access to a recorded event stream, chunk by chunk,
/// agnostic to where the trace lives.
///
/// Contract: chunks arrive in recording order; concatenating every
/// chunk reproduces the full event stream exactly; after the first
/// `Ok(None)` the source is exhausted and stays exhausted. A streamed
/// source accounts the yielded chunk against its memory gauge until the
/// next call, so callers should drop each chunk before pulling the
/// next one.
pub trait TraceSource {
    /// Where the trace lives, for reports and diagnostics.
    fn origin(&self) -> &'static str;

    /// Pulls the next chunk of events. `Ok(None)` means the stream is
    /// complete (not an error — torn tails and dead recorders are
    /// typed [`StreamError`]s).
    ///
    /// # Errors
    ///
    /// Returns the typed [`StreamError`] of the underlying transport:
    /// spill-file damage, a tripped memory cap, or a dead recorder.
    fn next_chunk(&mut self) -> Result<Option<Cow<'_, [Event]>>, StreamError>;

    /// Drains the rest of the stream into one contiguous vector.
    ///
    /// # Errors
    ///
    /// Propagates the first [`StreamError`] the transport reports.
    fn collect_events(&mut self) -> Result<Vec<Event>, StreamError> {
        let mut out = Vec::new();
        while let Some(chunk) = self.next_chunk()? {
            out.extend_from_slice(&chunk);
        }
        Ok(out)
    }
}

// --- in-memory impl ---------------------------------------------------

/// A [`TraceSource`] over an in-memory [`SharedTrace`] — the
/// [`TraceCache`](crate::cache::TraceCache) representation. Yields the
/// whole event vector as one borrowed chunk; no copy is made.
#[derive(Debug, Clone)]
pub struct MemorySource {
    trace: SharedTrace,
    drained: bool,
}

impl MemorySource {
    /// Wraps a cached trace.
    pub fn new(trace: SharedTrace) -> Self {
        MemorySource {
            trace,
            drained: false,
        }
    }
}

impl From<SharedTrace> for MemorySource {
    fn from(trace: SharedTrace) -> Self {
        MemorySource::new(trace)
    }
}

impl TraceSource for MemorySource {
    fn origin(&self) -> &'static str {
        "memory"
    }

    fn next_chunk(&mut self) -> Result<Option<Cow<'_, [Event]>>, StreamError> {
        if self.drained {
            return Ok(None);
        }
        self.drained = true;
        Ok(Some(Cow::Borrowed(self.trace.events.as_slice())))
    }
}

// --- streamed impl ----------------------------------------------------

/// The recorder's final driver facts, available once the stream has
/// drained cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Driver ops executed.
    pub ops: u64,
    /// Live keys in the engine when recording finished.
    pub final_count: u64,
    /// WAL records appended over the whole run.
    pub mutations: u64,
}

/// A [`TraceSource`] over the chunked recorder pipeline: the KV
/// workload records on its own thread and chunks arrive through a
/// bounded queue, detouring through the checksummed spill file when the
/// memory cap demands it. This is the PR 9 streamed/spilled path,
/// repackaged so consumers pull chunks instead of owning the
/// receive loop.
#[derive(Debug)]
pub struct StreamingKvSource {
    spill: Option<PathBuf>,
    rx: Option<mpsc::Receiver<ChunkMsg>>,
    recorder: Option<JoinHandle<()>>,
    gauge: Arc<MemGauge>,
    reader: Option<SpillReader>,
    bound: PeakBound,
    outstanding: u64,
    spilled_chunks: u64,
    stats: Option<StreamStats>,
}

impl StreamingKvSource {
    /// Starts recording `sspec` on a dedicated thread; chunks become
    /// available through [`TraceSource::next_chunk`] as they are
    /// produced.
    pub fn record(sspec: KvStreamSpec) -> Self {
        let gauge = Arc::new(MemGauge::new());
        let (tx, rx) = mpsc::sync_channel::<ChunkMsg>(sspec.depth.max(1));
        let spill = sspec.spill.clone();
        let bound = PeakBound::new(sspec.depth);
        let recorder_gauge = Arc::clone(&gauge);
        let recorder = std::thread::spawn(move || {
            crate::stream::record_chunks(&sspec, &recorder_gauge, &tx);
        });
        StreamingKvSource {
            spill,
            rx: Some(rx),
            recorder: Some(recorder),
            gauge,
            reader: None,
            bound,
            outstanding: 0,
            spilled_chunks: 0,
            stats: None,
        }
    }

    /// The gauge the pipeline accounts chunk memory against. Its peak
    /// is timing-dependent; read it after the source is dropped (which
    /// joins the recorder) for the final figure.
    pub fn gauge(&self) -> Arc<MemGauge> {
        Arc::clone(&self.gauge)
    }

    /// The recorder's final facts, `Some` once the stream drained
    /// cleanly to `Ok(None)`.
    pub fn stats(&self) -> Option<StreamStats> {
        self.stats
    }

    /// Chunks that detoured through the spill file so far.
    pub fn spilled_chunks(&self) -> u64 {
        self.spilled_chunks
    }

    /// Deterministic upper bound on peak held chunk bytes (the largest
    /// sum of any `depth + 2` consecutive chunks seen so far).
    pub fn peak_bound(&self) -> u64 {
        self.bound.max()
    }

    /// Releases the gauge accounting of the previously yielded chunk.
    fn settle(&mut self) {
        if self.outstanding > 0 {
            self.gauge.release(self.outstanding);
            self.outstanding = 0;
        }
    }
}

impl TraceSource for StreamingKvSource {
    fn origin(&self) -> &'static str {
        "streamed"
    }

    fn next_chunk(&mut self) -> Result<Option<Cow<'_, [Event]>>, StreamError> {
        self.settle();
        if self.stats.is_some() {
            return Ok(None);
        }
        let msg = match self.rx.as_ref() {
            Some(rx) => rx.recv().map_err(|_| StreamError::RecorderDied)?,
            None => return Err(StreamError::RecorderDied),
        };
        match msg {
            ChunkMsg::Inline(events) => {
                let bytes = chunk_bytes(&events);
                self.bound.push(bytes);
                self.outstanding = bytes;
                Ok(Some(Cow::Owned(events)))
            }
            ChunkMsg::Spilled => {
                if self.reader.is_none() {
                    let path = self.spill.as_deref().unwrap_or_else(|| Path::new(""));
                    self.reader = Some(SpillReader::open(path)?);
                }
                let events = self
                    .reader
                    .as_mut()
                    .map(SpillReader::next)
                    .unwrap_or(Err(StreamError::RecorderDied))?;
                let bytes = chunk_bytes(&events);
                self.bound.push(bytes);
                self.gauge.acquire(bytes);
                self.outstanding = bytes;
                self.spilled_chunks += 1;
                Ok(Some(Cow::Owned(events)))
            }
            ChunkMsg::Done {
                ops,
                final_count,
                mutations,
            } => {
                self.stats = Some(StreamStats {
                    ops,
                    final_count,
                    mutations,
                });
                Ok(None)
            }
            ChunkMsg::Fail(e) => Err(e),
        }
    }
}

impl Drop for StreamingKvSource {
    fn drop(&mut self) {
        self.settle();
        // Closing the queue unblocks a recorder mid-send; join it so no
        // recording outlives its source.
        drop(self.rx.take());
        if let Some(h) = self.recorder.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::stream::encode_events;
    use spp_cpu::CpuConfig;
    use spp_pmem::{PmemEnv, Variant};
    use spp_workloads::kv::{KvMix, KvSpec, KvWorkload};

    fn tiny_stream(ops: u64) -> KvStreamSpec {
        let spec = KvSpec {
            init_keys: 32,
            ops,
            ckpt_every: 8,
            wal_cap: 16,
            seed: 0xBEEF,
            mix: KvMix::MIXED,
        };
        KvStreamSpec {
            chunk_ops: 50,
            ..KvStreamSpec::new(spec, Variant::LogPSf)
        }
    }

    /// Records the same workload the streamed recorder runs, but
    /// monolithically in memory — the `TraceCache` representation.
    fn record_monolithic(sspec: &KvStreamSpec) -> SharedTrace {
        let mut env = PmemEnv::new(sspec.variant);
        env.set_flush_mode(sspec.flush_mode);
        let mut w = KvWorkload::new(sspec.spec);
        env.set_recording(false);
        w.setup(&mut env);
        env.set_recording(true);
        for op in 0..sspec.spec.ops {
            w.run_op(&mut env, op);
        }
        env.take_trace().into_shared()
    }

    #[test]
    fn memory_source_borrows_the_whole_trace_once() {
        let shared = record_monolithic(&tiny_stream(60));
        let mut src = MemorySource::new(shared.clone());
        assert_eq!(src.origin(), "memory");
        let chunk = src.next_chunk().unwrap().expect("one chunk");
        assert!(matches!(chunk, Cow::Borrowed(_)), "no copy");
        assert_eq!(chunk.len(), shared.events.len());
        drop(chunk);
        assert!(src.next_chunk().unwrap().is_none(), "then exhausted");
        assert!(src.next_chunk().unwrap().is_none(), "and stays exhausted");
    }

    #[test]
    fn cached_and_streamed_sources_yield_byte_identical_streams() {
        let sspec = tiny_stream(220);
        let shared = record_monolithic(&sspec);
        let mem_events = MemorySource::new(shared).collect_events().unwrap();

        let mut streamed = StreamingKvSource::record(sspec);
        assert_eq!(streamed.origin(), "streamed");
        let streamed_events = streamed.collect_events().unwrap();

        assert_eq!(mem_events, streamed_events, "same events in same order");
        assert_eq!(
            encode_events(&mem_events),
            encode_events(&streamed_events),
            "byte-identical on the wire encoding"
        );
        let stats = streamed.stats().expect("clean drain carries stats");
        assert_eq!(stats.ops, 220);
        assert!(stats.mutations > 0);
        assert!(streamed.next_chunk().unwrap().is_none(), "fused after Done");
    }

    #[test]
    fn spilled_chunks_reenter_the_stream_byte_identically() {
        let mut spill = std::env::temp_dir();
        spill.push(format!("spp-source-spill-{}.bin", std::process::id()));
        let _ = std::fs::remove_file(&spill);
        let base = tiny_stream(300);
        let capped = KvStreamSpec {
            mem_cap: Some(64),
            spill: Some(spill.clone()),
            ..base.clone()
        };
        let want = MemorySource::new(record_monolithic(&base))
            .collect_events()
            .unwrap();
        let mut src = StreamingKvSource::record(capped);
        let got = src.collect_events().unwrap();
        assert!(src.spilled_chunks() > 0, "cap must force spilling");
        assert_eq!(encode_events(&want), encode_events(&got));
        drop(src);
        let _ = std::fs::remove_file(&spill);
    }

    #[test]
    fn the_streamed_pipeline_consumes_the_source_it_exports() {
        // `run_kv_streamed` is now a TraceSource consumer; its numbers
        // must not have moved relative to a hand-rolled drain.
        let sspec = tiny_stream(220);
        let rep = crate::stream::run_kv_streamed(&sspec, &CpuConfig::baseline()).unwrap();
        assert_eq!(rep.ops, 220);
        assert_eq!(rep.chunks, 5, "220 ops at 50/chunk is 5 chunks");
        let total: usize = MemorySource::new(record_monolithic(&sspec))
            .collect_events()
            .unwrap()
            .len();
        assert_eq!(rep.events, total as u64, "no events lost at the seam");
    }

    #[test]
    fn dropping_a_streaming_source_midway_joins_the_recorder() {
        let mut src = StreamingKvSource::record(tiny_stream(500));
        let first = src.next_chunk().unwrap();
        assert!(first.is_some(), "recorder produced at least one chunk");
        drop(first);
        drop(src); // must not hang or leak the recorder thread
    }
}
