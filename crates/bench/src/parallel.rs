//! A minimal deterministic work-sharing executor.
//!
//! The evaluation sweep is embarrassingly parallel once traces are
//! shared immutably (see [`crate::cache`]): every job is a pure
//! function of its inputs, so the only thing parallelism could disturb
//! is result *order*. [`run_indexed`] prevents that by construction —
//! workers pull job indices from an atomic counter but write each
//! result into its input slot, so the output `Vec` is always in input
//! order regardless of scheduling. `--jobs 1` and `--jobs N` therefore
//! produce identical results, which the integration tests assert
//! bit-for-bit.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(index, &item)` for every item on up to `jobs` worker
/// threads, returning results in input order.
///
/// `jobs == 0` is treated as 1. With one job (or one item) everything
/// runs inline on the caller's thread — no spawn overhead, and a
/// convenient serial reference for determinism tests.
///
/// The worker count is additionally clamped to the machine's available
/// parallelism: the jobs are CPU-bound, so oversubscribing cores buys
/// no throughput and costs real time in allocator contention and
/// context switches (measured ~35% slower at `--jobs 4` on one core).
/// Results are written into per-index slots either way, so the output
/// is bit-identical at any requested job count.
pub fn run_indexed<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let jobs = jobs.max(1).min(cores).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(i, item);
                // Poison-tolerant: another worker's panic (propagated
                // by the scope after the join) must not turn this
                // store into a second, confusing panic.
                *slots[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every slot filled once the scope joins")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for jobs in [1, 2, 4, 7] {
            let out = run_indexed(jobs, &items, |i, &x| {
                // Stagger to shuffle completion order.
                std::thread::sleep(std::time::Duration::from_micros((x % 3) * 50));
                (i, x * 2)
            });
            assert_eq!(out.len(), 100, "jobs={jobs}");
            for (i, (idx, doubled)) in out.iter().enumerate() {
                assert_eq!((*idx, *doubled), (i, i as u64 * 2), "jobs={jobs}");
            }
        }
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let items: Vec<usize> = (0..257).collect();
        let calls = AtomicU64::new(0);
        let out = run_indexed(8, &items, |_, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(calls.load(Ordering::Relaxed), 257);
        assert_eq!(out.iter().copied().collect::<HashSet<_>>().len(), 257);
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_indexed(4, &empty, |_, &x| x).is_empty());
        assert_eq!(run_indexed(0, &[5u32], |_, &x| x), vec![5]);
        assert_eq!(run_indexed(16, &[1u32, 2], |_, &x| x + 1), vec![2, 3]);
    }

    #[test]
    fn parallel_equals_serial() {
        let items: Vec<u64> = (0..64).collect();
        let f = |i: usize, x: &u64| i as u64 ^ (x * 31);
        assert_eq!(run_indexed(1, &items, f), run_indexed(6, &items, f));
    }

    #[test]
    fn empty_input_returns_empty_at_any_job_count() {
        let empty: Vec<u32> = Vec::new();
        for jobs in [0, 1, 3, 128] {
            assert!(
                run_indexed(jobs, &empty, |_, &x| x).is_empty(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn jobs_beyond_item_count_are_clamped_and_ordered() {
        // More workers than items: the clamp means no worker ever
        // spawns idle, and ordering still holds.
        let items: Vec<u64> = (0..3).collect();
        let out = run_indexed(64, &items, |i, &x| (i as u64, x * 7));
        assert_eq!(out, vec![(0, 0), (1, 7), (2, 14)]);
    }

    #[test]
    fn single_item_runs_inline_on_the_caller_thread() {
        let caller = std::thread::current().id();
        let out = run_indexed(8, &[42u64], |_, &x| (std::thread::current().id(), x));
        assert_eq!(out[0].0, caller, "one item must not pay a spawn");
        assert_eq!(out[0].1, 42);
    }
}
