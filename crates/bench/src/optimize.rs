//! `repro optimize` — the persist-path trace optimizer.
//!
//! The paper hides persist-barrier latency speculatively; this module
//! works the complementary lever and *removes* redundant persist
//! operations outright. [`analyze`] runs the same writeback-pipeline
//! frontier machine as [`spp_pmem::CrashSim`] (`issued -> (sfence) ->
//! ordered -> (pcommit) -> in-flight -> (sfence) -> guaranteed`) over a
//! recorded trace and classifies every flush and fence:
//!
//! * **duplicate flush** — a flush whose pipeline entry is overwritten
//!   or max-merged away by a later flush of the same line before its
//!   stage drains; only the `guaranteed` stage ever affects a crash
//!   image, so the loser contributes nothing at any crash point;
//! * **uncovered flush** — a flush that never completes the
//!   `flush; sfence; pcommit; sfence` dance, so its line never reaches
//!   the `guaranteed` frontier (the whole `Log+P` build is this case);
//! * **empty fence** — an `sfence`/`mfence` whose `issued` and
//!   `in-flight` sets are both empty: it drains nothing.
//!
//! The elisions form an [`ElisionPlan`]; [`apply`] rewrites the trace
//! without the elided events, and [`plan_preserves_guarantees`] proves
//! the event-level safety lemma: at every persist boundary of the
//! original trace, every block's guaranteed-store frontier is identical
//! in the optimized trace. On top of that, the study replays the
//! before/after traces on both cores through the event-driven simulator
//! *and* the frozen [`ReferencePipeline`] (cycle parity, stall profile
//! reconciled against the spp-obs collector), proves safety end to end
//! by running the crashfuzz recovery oracle at every persist boundary
//! of an optimized `Log+P+Sf` bundle, and runs the inverted leg —
//! eliding the *required* flushes instead — which must be caught by the
//! same oracle.

use std::collections::hash_map::Entry as MapEntry;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::Instant;

use spp_cpu::{CpuConfig, ReferencePipeline, Simulator};
use spp_obs::{Collector, ProbeHandle};
use spp_pmem::{persist_boundaries, BlockId, Event, FlushMode, Variant};
use spp_workloads::oracle::record_bundle;
use spp_workloads::BenchId;

use crate::crashfuzz::{crash_points, fuzz_bundle_spec, SEEDS_PER_POINT};
use crate::journal::{CellStatus, Entry, Journal};
use crate::json::{self, parse, JsonObject, Value};
use crate::parallel::run_indexed;
use crate::schema;
use crate::source::{MemorySource, TraceSource};
use crate::{variant_key, Harness, TraceKey};

// --- the detector -----------------------------------------------------

/// Why an event is elidable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElisionKind {
    /// A flush of a line that a later flush of the same line subsumes
    /// before the stage drains.
    DuplicateFlush,
    /// A flush whose line never reaches the guaranteed frontier — no
    /// persist barrier ever covers it.
    UncoveredFlush,
    /// A fence whose `issued` and `in-flight` sets are both empty.
    EmptyFence,
}

impl ElisionKind {
    /// Kebab key for reports and JSON.
    pub fn key(self) -> &'static str {
        match self {
            ElisionKind::DuplicateFlush => "duplicate-flush",
            ElisionKind::UncoveredFlush => "uncovered-flush",
            ElisionKind::EmptyFence => "empty-fence",
        }
    }
}

/// One elidable event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Elision {
    /// Index into the analyzed event stream.
    pub idx: usize,
    /// Why it is removable.
    pub kind: ElisionKind,
}

/// The detector's verdict over one trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ElisionPlan {
    /// Every elidable event, sorted by trace index.
    pub elisions: Vec<Elision>,
    /// Flush indices the model marks *required*: they won a merge into
    /// the guaranteed frontier, so removing any of them weakens a
    /// durability guarantee (the inverted safety leg elides exactly
    /// these and must be caught).
    pub required: Vec<usize>,
    /// Flush events in the trace.
    pub flushes: u64,
    /// Fence events in the trace.
    pub fences: u64,
}

impl ElisionPlan {
    /// Elisions of one kind.
    pub fn count(&self, kind: ElisionKind) -> u64 {
        self.elisions.iter().filter(|e| e.kind == kind).count() as u64
    }

    /// No elision found.
    pub fn is_empty(&self) -> bool {
        self.elisions.is_empty()
    }
}

/// How far a flush got through the writeback pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mark {
    /// Still riding a pipeline stage (uncovered if it ends there).
    Pending,
    /// Entered the guaranteed frontier as a winner: load-bearing.
    Required,
    /// Overwritten or max-merged away before its stage drained.
    Subsumed,
}

/// Max-merges flush `i` of block `b` into a pipeline stage; the loser
/// of the merge is subsumed (stage maps never touch crash images, so
/// only the surviving maximum can ever matter).
fn stage_merge(
    dst: &mut HashMap<BlockId, usize>,
    b: BlockId,
    i: usize,
    marks: &mut HashMap<usize, Mark>,
) {
    match dst.entry(b) {
        MapEntry::Occupied(mut e) => {
            let old = *e.get();
            if i > old {
                marks.insert(old, Mark::Subsumed);
                e.insert(i);
            } else {
                marks.insert(i, Mark::Subsumed);
            }
        }
        MapEntry::Vacant(v) => {
            v.insert(i);
        }
    }
}

/// Runs the guarantee-frontier machine over `events` and proposes the
/// minimal elision plan. The machine is the same one
/// [`spp_pmem::CrashSim`] uses to reconstruct crash images, so the
/// classification is exact with respect to the crash model: an elided
/// event provably never moves any block's guaranteed *store* frontier
/// at any crash point ([`plan_preserves_guarantees`] re-proves this per
/// trace, and the study's oracle leg re-proves it against full
/// recovery). A flush is only `required` when it strictly extends the
/// number of its block's stores that are certainly durable — a flush
/// that wins the guaranteed merge without covering any new store (the
/// line was clean, or an earlier guaranteed flush already covered the
/// same stores) persists nothing and is elidable too.
pub fn analyze(events: &[Event]) -> ElisionPlan {
    let mut store_idxs: HashMap<BlockId, Vec<usize>> = HashMap::new();
    for (i, ev) in events.iter().enumerate() {
        if let Event::Store { addr, .. } = ev {
            store_idxs.entry(addr.block()).or_default().push(i);
        }
    }
    // Stores to `b` strictly before the exclusive frontier `g`.
    let covered = |b: BlockId, g: usize| -> usize {
        store_idxs
            .get(&b)
            .map_or(0, |v| v.partition_point(|&s| s < g))
    };
    let mut marks: HashMap<usize, Mark> = HashMap::new();
    let mut empty_fences: Vec<usize> = Vec::new();
    let mut issued: HashMap<BlockId, usize> = HashMap::new();
    let mut ordered: HashMap<BlockId, usize> = HashMap::new();
    let mut inflight: HashMap<BlockId, usize> = HashMap::new();
    let mut guaranteed: HashMap<BlockId, usize> = HashMap::new();
    let mut flushes = 0u64;
    let mut fences = 0u64;

    for (idx, ev) in events.iter().enumerate() {
        match *ev {
            Event::Clwb { addr } | Event::ClflushOpt { addr } => {
                flushes += 1;
                marks.insert(idx, Mark::Pending);
                if let Some(prev) = issued.insert(addr.block(), idx) {
                    marks.insert(prev, Mark::Subsumed);
                }
            }
            Event::Clflush { addr } => {
                // Legacy clflush skips the issued stage (ordered with
                // respect to a later pcommit on its own).
                flushes += 1;
                marks.insert(idx, Mark::Pending);
                if let Some(prev) = ordered.insert(addr.block(), idx) {
                    marks.insert(prev, Mark::Subsumed);
                }
            }
            Event::Pcommit => {
                let moving: Vec<(BlockId, usize)> = ordered.drain().collect();
                for (b, i) in moving {
                    stage_merge(&mut inflight, b, i, &mut marks);
                }
            }
            Event::Sfence | Event::Mfence => {
                fences += 1;
                if inflight.is_empty() && issued.is_empty() {
                    empty_fences.push(idx);
                }
                for (b, i) in inflight.drain() {
                    match guaranteed.entry(b) {
                        MapEntry::Occupied(mut e) => {
                            let old = *e.get();
                            if i > old {
                                // Required only when the new frontier
                                // covers a store the old one did not;
                                // otherwise it persists nothing. The old
                                // winner keeps the mark it earned.
                                marks.insert(
                                    i,
                                    if covered(b, i) > covered(b, old) {
                                        Mark::Required
                                    } else {
                                        Mark::Subsumed
                                    },
                                );
                                e.insert(i);
                            } else {
                                marks.insert(i, Mark::Subsumed);
                            }
                        }
                        MapEntry::Vacant(v) => {
                            // First guaranteed flush of this line: a
                            // clean line (no store yet) persists
                            // nothing and is elidable.
                            marks.insert(
                                i,
                                if covered(b, i) > 0 {
                                    Mark::Required
                                } else {
                                    Mark::Subsumed
                                },
                            );
                            v.insert(i);
                        }
                    }
                }
                let pending: Vec<(BlockId, usize)> = issued.drain().collect();
                for (b, i) in pending {
                    stage_merge(&mut ordered, b, i, &mut marks);
                }
            }
            _ => {}
        }
    }

    let mut elisions = Vec::new();
    let mut required = Vec::new();
    for (idx, ev) in events.iter().enumerate() {
        if matches!(
            ev,
            Event::Clwb { .. } | Event::ClflushOpt { .. } | Event::Clflush { .. }
        ) {
            match marks.get(&idx) {
                Some(Mark::Required) => required.push(idx),
                Some(Mark::Subsumed) => elisions.push(Elision {
                    idx,
                    kind: ElisionKind::DuplicateFlush,
                }),
                Some(Mark::Pending) | None => elisions.push(Elision {
                    idx,
                    kind: ElisionKind::UncoveredFlush,
                }),
            }
        }
    }
    elisions.extend(empty_fences.iter().map(|&idx| Elision {
        idx,
        kind: ElisionKind::EmptyFence,
    }));
    elisions.sort_unstable_by_key(|e| e.idx);
    ElisionPlan {
        elisions,
        required,
        flushes,
        fences,
    }
}

/// Rewrites `events` without the plan's elided indices. Stores, loads,
/// compute and transaction markers are never elided, so the optimized
/// trace performs the same architectural work.
pub fn apply(events: &[Event], plan: &ElisionPlan) -> Vec<Event> {
    let elide: HashSet<usize> = plan.elisions.iter().map(|e| e.idx).collect();
    events
        .iter()
        .enumerate()
        .filter(|(i, _)| !elide.contains(i))
        .map(|(_, ev)| *ev)
        .collect()
}

/// The guaranteed-store profile of a trace at each of `boundaries`:
/// for every block, how many of its stores (in per-block order) are
/// certainly durable at that crash point. Computed with the same
/// frontier machine as [`analyze`], incrementally, so the whole sweep
/// is `O(n log n)` rather than one crash simulation per boundary.
fn guarantee_profile(events: &[Event], boundaries: &[usize]) -> Vec<BTreeMap<u64, usize>> {
    let mut store_idxs: HashMap<BlockId, Vec<usize>> = HashMap::new();
    for (i, ev) in events.iter().enumerate() {
        if let Event::Store { addr, .. } = ev {
            store_idxs.entry(addr.block()).or_default().push(i);
        }
    }
    let covered = |b: BlockId, g: usize| -> usize {
        store_idxs
            .get(&b)
            .map_or(0, |v| v.partition_point(|&s| s < g))
    };
    let mut issued: HashMap<BlockId, usize> = HashMap::new();
    let mut ordered: HashMap<BlockId, usize> = HashMap::new();
    let mut inflight: HashMap<BlockId, usize> = HashMap::new();
    let mut guaranteed: HashMap<BlockId, usize> = HashMap::new();
    // Live snapshot of covered-store counts per guaranteed block,
    // cloned out at each boundary.
    let mut snapshot: BTreeMap<u64, usize> = BTreeMap::new();
    let mut out = Vec::with_capacity(boundaries.len());
    let mut bi = 0;
    for idx in 0..=events.len() {
        while bi < boundaries.len() && boundaries[bi] == idx {
            out.push(snapshot.clone());
            bi += 1;
        }
        if idx == events.len() {
            break;
        }
        match events[idx] {
            Event::Clwb { addr } | Event::ClflushOpt { addr } => {
                issued.insert(addr.block(), idx);
            }
            Event::Clflush { addr } => {
                ordered.insert(addr.block(), idx);
            }
            Event::Pcommit => {
                for (b, i) in ordered.drain() {
                    let e = inflight.entry(b).or_insert(i);
                    *e = (*e).max(i);
                }
            }
            Event::Sfence | Event::Mfence => {
                for (b, i) in inflight.drain() {
                    let e = guaranteed.entry(b).or_insert(i);
                    *e = (*e).max(i);
                    let n = covered(b, *e);
                    if n > 0 {
                        snapshot.insert(b.raw(), n);
                    }
                }
                for (b, i) in issued.drain() {
                    let e = ordered.entry(b).or_insert(i);
                    *e = (*e).max(i);
                }
            }
            _ => {}
        }
    }
    out
}

/// The event-level safety lemma: at every persist boundary of `events`,
/// every block's guaranteed-store count is identical in the trace the
/// plan produces (boundaries are mapped through the elision — stores
/// are never elided, so per-block store order aligns one-to-one). The
/// inverted plan (required flushes removed) must fail this check; any
/// plan [`analyze`] returns must pass it.
pub fn plan_preserves_guarantees(events: &[Event], plan: &ElisionPlan) -> bool {
    let optimized = apply(events, plan);
    let elide: HashSet<usize> = plan.elisions.iter().map(|e| e.idx).collect();
    let mut prefix = vec![0usize; events.len() + 1];
    for i in 0..events.len() {
        prefix[i + 1] = prefix[i] + usize::from(!elide.contains(&i));
    }
    let bounds = persist_boundaries(events);
    let mapped: Vec<usize> = bounds.iter().map(|&c| prefix[c]).collect();
    guarantee_profile(events, &bounds) == guarantee_profile(&optimized, &mapped)
}

// --- the study --------------------------------------------------------

/// Which core a replay cell measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayCore {
    /// The stalling baseline core.
    Base,
    /// The SP256 speculative core.
    Sp,
}

impl ReplayCore {
    /// Both cores, in report order.
    pub const ALL: [ReplayCore; 2] = [ReplayCore::Base, ReplayCore::Sp];

    /// Short key for tables, journal keys and JSON.
    pub fn key(self) -> &'static str {
        match self {
            ReplayCore::Base => "base",
            ReplayCore::Sp => "sp256",
        }
    }

    fn cpu(self) -> CpuConfig {
        match self {
            ReplayCore::Base => CpuConfig::baseline(),
            ReplayCore::Sp => CpuConfig::with_sp(),
        }
    }
}

/// Whether a replay cell runs the recorded or the optimized trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayPass {
    /// The trace as recorded.
    Before,
    /// The trace with the elision plan applied.
    After,
}

impl ReplayPass {
    /// Short key for tables, journal keys and JSON.
    pub fn key(self) -> &'static str {
        match self {
            ReplayPass::Before => "before",
            ReplayPass::After => "after",
        }
    }
}

/// One configuration point of the optimizer study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizeCellSpec {
    /// Detect and classify the bench trace's elidable persist events,
    /// and prove the event-level guarantee-preservation lemma.
    Plan,
    /// Replay one (core, before/after) combination: event-driven
    /// simulator with the spp-obs collector attached, plus the frozen
    /// reference pipeline for cycle parity.
    Replay {
        /// Which core.
        core: ReplayCore,
        /// Recorded or optimized trace.
        pass: ReplayPass,
    },
    /// Crashfuzz the *optimized* `Log+P+Sf` bundle at every persist
    /// boundary: recovery must succeed everywhere.
    Oracle,
    /// Elide the *required* flushes instead (a deliberately unsafe
    /// plan): the oracle must catch it with a violation witness.
    Inverted,
}

impl OptimizeCellSpec {
    /// Every cell of the study, in report order.
    pub fn all() -> Vec<OptimizeCellSpec> {
        let mut v = vec![OptimizeCellSpec::Plan];
        for core in ReplayCore::ALL {
            for pass in [ReplayPass::Before, ReplayPass::After] {
                v.push(OptimizeCellSpec::Replay { core, pass });
            }
        }
        v.push(OptimizeCellSpec::Oracle);
        v.push(OptimizeCellSpec::Inverted);
        v
    }
}

/// A minimal violation witness from the inverted leg.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptWitness {
    /// Crash point (index into the unsafe event stream).
    pub crash_idx: u64,
    /// Reordering seed.
    pub seed: u64,
    /// What the oracle rejected (kebab label).
    pub kind: String,
}

/// One measured cell. Fields a leg does not produce stay 0/`None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptCell {
    /// The configuration measured.
    pub spec: OptimizeCellSpec,
    /// The cell's verdict (the inverted cell is `ok` when the unsafe
    /// plan *was* caught).
    pub ok: bool,
    /// Events in the trace the cell analyzed or replayed.
    pub events: u64,
    /// Events after elision (plan/oracle legs and `After` replays).
    pub kept: u64,
    /// Duplicate-flush elisions (plan/oracle legs).
    pub duplicates: u64,
    /// Uncovered-flush elisions.
    pub uncovered: u64,
    /// Empty-fence elisions.
    pub empty_fences: u64,
    /// Flushes the model marks required.
    pub required: u64,
    /// Event-driven simulated cycles (replay legs).
    pub cycles: u64,
    /// Reference-pipeline cycles (must equal `cycles`).
    pub ref_cycles: u64,
    /// Collector-attributed fence stall cycles.
    pub fence_stall: u64,
    /// Collector-attributed SSB-full stall cycles.
    pub ssb_stall: u64,
    /// Collector-attributed checkpoint-full stall cycles.
    pub ckpt_stall: u64,
    /// Collector-attributed backend stall cycles.
    pub backend_stall: u64,
    /// Crash points swept (oracle/inverted legs).
    pub points: u64,
    /// `(crash_idx, seed)` schedules checked.
    pub checks: u64,
    /// The violation witness (inverted leg).
    pub witness: Option<OptWitness>,
    /// What went wrong, for a failed cell.
    pub error: Option<String>,
}

impl OptCell {
    fn empty(spec: OptimizeCellSpec) -> Self {
        OptCell {
            spec,
            ok: false,
            events: 0,
            kept: 0,
            duplicates: 0,
            uncovered: 0,
            empty_fences: 0,
            required: 0,
            cycles: 0,
            ref_cycles: 0,
            fence_stall: 0,
            ssb_stall: 0,
            ckpt_stall: 0,
            backend_stall: 0,
            points: 0,
            checks: 0,
            witness: None,
            error: None,
        }
    }

    fn fill_plan(&mut self, events: u64, plan: &ElisionPlan) {
        self.events = events;
        self.kept = events - plan.elisions.len() as u64;
        self.duplicates = plan.count(ElisionKind::DuplicateFlush);
        self.uncovered = plan.count(ElisionKind::UncoveredFlush);
        self.empty_fences = plan.count(ElisionKind::EmptyFence);
        self.required = plan.required.len() as u64;
    }
}

/// The optimizer study's full result set for one `(bench, variant)`.
#[derive(Debug, Clone)]
pub struct OptimizeReport {
    /// Which benchmark's trace was optimized.
    pub id: BenchId,
    /// Which build variant of its trace.
    pub variant: Variant,
    /// Scale divisor the trace and bundles were sized from.
    pub scale: u64,
    /// Base seed.
    pub seed: u64,
    /// Every cell, in [`OptimizeCellSpec::all`] order.
    pub cells: Vec<OptCell>,
    /// Cells served from the journal without recomputation.
    pub replayed: usize,
}

fn cell_key(
    id: BenchId,
    variant: Variant,
    spec: &OptimizeCellSpec,
    scale: u64,
    seed: u64,
) -> String {
    let leg = match spec {
        OptimizeCellSpec::Plan => "plan".to_string(),
        OptimizeCellSpec::Replay { core, pass } => {
            format!("replay/{}/{}", core.key(), pass.key())
        }
        OptimizeCellSpec::Oracle => "oracle".to_string(),
        OptimizeCellSpec::Inverted => "inverted".to_string(),
    };
    format!(
        "optimize/{}/{}/{leg}/scale{scale}/seed{seed:#x}",
        id.abbrev(),
        variant_key(variant)
    )
}

// --- cell execution ---------------------------------------------------

/// The bench trace's events, pulled through the [`TraceSource`] trait
/// (the optimizer is agnostic to where the trace lives; here it lives
/// in the harness's in-memory cache).
fn bench_events(h: &Harness, id: BenchId, variant: Variant) -> Vec<Event> {
    MemorySource::new(h.trace(TraceKey::new(id, variant, &h.exp)))
        .collect_events()
        .unwrap_or_else(|e| unreachable!("in-memory trace source cannot fail: {e}"))
}

fn run_plan_cell(h: &Harness, id: BenchId, variant: Variant) -> OptCell {
    let mut cell = OptCell::empty(OptimizeCellSpec::Plan);
    let events = bench_events(h, id, variant);
    let plan = analyze(&events);
    cell.fill_plan(events.len() as u64, &plan);
    if plan_preserves_guarantees(&events, &plan) {
        cell.ok = true;
    } else {
        cell.error = Some("elision plan moved a guarantee frontier".to_string());
    }
    cell
}

fn run_replay_cell(
    h: &Harness,
    id: BenchId,
    variant: Variant,
    core: ReplayCore,
    pass: ReplayPass,
) -> OptCell {
    let mut cell = OptCell::empty(OptimizeCellSpec::Replay { core, pass });
    let recorded = bench_events(h, id, variant);
    let events = match pass {
        ReplayPass::Before => recorded,
        ReplayPass::After => {
            let plan = analyze(&recorded);
            apply(&recorded, &plan)
        }
    };
    cell.events = events.len() as u64;
    let cfg = core.cpu();
    let collector = Collector::shared();
    let started = Instant::now();
    let sim = match Simulator::new(&events)
        .config(cfg)
        .probe(ProbeHandle::new(collector.clone()))
        .run()
    {
        Ok(r) => r,
        Err(e) => {
            cell.error = Some(format!("event-driven replay: {e}"));
            return cell;
        }
    };
    h.perf().record_labeled(
        &format!("optimize/{}/{}-{}", id.abbrev(), core.key(), pass.key()),
        variant,
        sim.cpu.cycles,
        started.elapsed(),
    );
    let reference = match ReferencePipeline::new(&events, cfg).try_run() {
        Ok(r) => r,
        Err(e) => {
            cell.error = Some(format!("reference replay: {e}"));
            return cell;
        }
    };
    cell.cycles = sim.cpu.cycles;
    cell.ref_cycles = reference.cpu.cycles;
    let stalls = collector.borrow().summary().stalls;
    cell.fence_stall = stalls.fence;
    cell.ssb_stall = stalls.ssb_full;
    cell.ckpt_stall = stalls.checkpoint_full;
    cell.backend_stall = stalls.backend;
    // Reconciliation: the collector's attribution must equal the
    // machine's own stall counters, and both steppers must agree on
    // every architectural number — elision may move cycles, not work.
    let coherent = stalls.fence == sim.cpu.fence_stall_cycles
        && stalls.ssb_full == sim.cpu.ssb_full_stall_cycles
        && stalls.checkpoint_full == sim.cpu.checkpoint_stall_cycles
        && stalls.backend == sim.cpu.fetch_stall_cycles;
    let parity = reference.cpu.cycles == sim.cpu.cycles
        && reference.cpu.committed_uops == sim.cpu.committed_uops;
    cell.ok = coherent && parity;
    if !coherent {
        cell.error = Some("stall attribution does not reconcile with machine counters".into());
    } else if !parity {
        cell.error = Some(format!(
            "reference pipeline diverged: {} vs {} cycles",
            reference.cpu.cycles, sim.cpu.cycles
        ));
    }
    cell
}

/// The safety bundle both oracle legs share: the `Log+P+Sf` build of
/// the same benchmark (safety must be proven against the full persist
/// protocol regardless of which variant is being tuned).
fn oracle_material(h: &Harness, id: BenchId) -> (spp_workloads::oracle::CrashBundle, ElisionPlan) {
    let spec = fuzz_bundle_spec(id, Variant::LogPSf, FlushMode::default(), &h.exp);
    let b = record_bundle(&spec);
    let plan = analyze(b.events());
    (b, plan)
}

fn run_oracle_cell(h: &Harness, id: BenchId) -> OptCell {
    let mut cell = OptCell::empty(OptimizeCellSpec::Oracle);
    let (b, plan) = oracle_material(h, id);
    cell.fill_plan(b.events().len() as u64, &plan);
    if !plan_preserves_guarantees(b.events(), &plan) {
        cell.error = Some("elision plan moved a guarantee frontier".to_string());
        return cell;
    }
    let optimized = apply(b.events(), &plan);
    let pts = persist_boundaries(&optimized);
    cell.points = pts.len() as u64;
    cell.ok = true;
    'sweep: for &p in &pts {
        for seed in 0..SEEDS_PER_POINT {
            cell.checks += 1;
            if let Err(v) = b.check_crash_of(&optimized, p, seed) {
                cell.ok = false;
                cell.error = Some(format!("crash_idx {p}, seed {seed}: {v}"));
                break 'sweep;
            }
        }
    }
    cell
}

fn run_inverted_cell(h: &Harness, id: BenchId) -> OptCell {
    let mut cell = OptCell::empty(OptimizeCellSpec::Inverted);
    let (b, plan) = oracle_material(h, id);
    cell.fill_plan(b.events().len() as u64, &plan);
    if plan.required.is_empty() {
        cell.error = Some("no required flushes to invert: the bundle never persists".into());
        return cell;
    }
    // The deliberately unsafe plan: remove exactly the flushes the
    // model says are load-bearing.
    let unsafe_plan = ElisionPlan {
        elisions: plan
            .required
            .iter()
            .map(|&idx| Elision {
                idx,
                kind: ElisionKind::DuplicateFlush,
            })
            .collect(),
        required: Vec::new(),
        flushes: plan.flushes,
        fences: plan.fences,
    };
    if plan_preserves_guarantees(b.events(), &unsafe_plan) {
        cell.error = Some("event-level check failed to notice the unsafe elision".into());
        return cell;
    }
    let unsafe_events = apply(b.events(), &unsafe_plan);
    cell.kept = unsafe_events.len() as u64;
    let pts = crash_points(&unsafe_events);
    cell.points = pts.len() as u64;
    'scan: for &p in &pts {
        for seed in 0..SEEDS_PER_POINT {
            cell.checks += 1;
            if let Err(v) = b.check_crash_of(&unsafe_events, p, seed) {
                cell.witness = Some(OptWitness {
                    crash_idx: p as u64,
                    seed,
                    kind: v.kind.to_string(),
                });
                break 'scan;
            }
        }
    }
    cell.ok = cell.witness.is_some();
    if !cell.ok {
        cell.error = Some("eliding every required flush went unnoticed by the oracle".into());
    }
    cell
}

fn run_cell(h: &Harness, id: BenchId, variant: Variant, spec: &OptimizeCellSpec) -> OptCell {
    match *spec {
        OptimizeCellSpec::Plan => run_plan_cell(h, id, variant),
        OptimizeCellSpec::Replay { core, pass } => run_replay_cell(h, id, variant, core, pass),
        OptimizeCellSpec::Oracle => run_oracle_cell(h, id),
        OptimizeCellSpec::Inverted => run_inverted_cell(h, id),
    }
}

// --- codec ------------------------------------------------------------

fn spec_fields(spec: &OptimizeCellSpec, o: &mut JsonObject) {
    match spec {
        OptimizeCellSpec::Plan => {
            o.str("leg", "plan");
        }
        OptimizeCellSpec::Replay { core, pass } => {
            o.str("leg", "replay")
                .str("core", core.key())
                .str("pass", pass.key());
        }
        OptimizeCellSpec::Oracle => {
            o.str("leg", "oracle");
        }
        OptimizeCellSpec::Inverted => {
            o.str("leg", "inverted");
        }
    }
}

/// A cell as one JSON object: the report's `cells` element and the
/// journal payload (one codec, so replays are byte-identical).
fn cell_json(c: &OptCell) -> String {
    let mut o = JsonObject::new();
    spec_fields(&c.spec, &mut o);
    o.num("ok", u8::from(c.ok))
        .num("events", c.events as f64)
        .num("kept", c.kept as f64)
        .num("duplicates", c.duplicates as f64)
        .num("uncovered", c.uncovered as f64)
        .num("empty_fences", c.empty_fences as f64)
        .num("required", c.required as f64)
        .raw("cycles", c.cycles.to_string())
        .raw("ref_cycles", c.ref_cycles.to_string())
        .raw("fence_stall", c.fence_stall.to_string())
        .raw("ssb_stall", c.ssb_stall.to_string())
        .raw("ckpt_stall", c.ckpt_stall.to_string())
        .raw("backend_stall", c.backend_stall.to_string())
        .num("points", c.points as f64)
        .num("checks", c.checks as f64);
    if let Some(w) = &c.witness {
        let mut wo = JsonObject::new();
        wo.num("crash_idx", w.crash_idx as f64)
            .num("seed", w.seed as f64)
            .str("kind", &w.kind);
        o.raw("witness", wo.render());
    }
    if let Some(err) = &c.error {
        o.str("error", err);
    }
    o.render()
}

/// Decodes a journal payload written by [`cell_json`] back into a cell;
/// `None` (recompute) if any field is missing or the spec disagrees.
fn decode_cell(spec: &OptimizeCellSpec, payload: &str) -> Option<OptCell> {
    let v = parse(payload).ok()?;
    let num = |k: &str| v.get(k).and_then(Value::as_u64);
    let s = |k: &str| v.get(k).and_then(Value::as_str);
    let matches = match spec {
        OptimizeCellSpec::Plan => s("leg")? == "plan",
        OptimizeCellSpec::Replay { core, pass } => {
            s("leg")? == "replay" && s("core")? == core.key() && s("pass")? == pass.key()
        }
        OptimizeCellSpec::Oracle => s("leg")? == "oracle",
        OptimizeCellSpec::Inverted => s("leg")? == "inverted",
    };
    if !matches {
        return None;
    }
    let witness = match v.get("witness") {
        None => None,
        Some(w) => Some(OptWitness {
            crash_idx: w.get("crash_idx").and_then(Value::as_u64)?,
            seed: w.get("seed").and_then(Value::as_u64)?,
            kind: w.get("kind").and_then(Value::as_str)?.to_string(),
        }),
    };
    Some(OptCell {
        spec: *spec,
        ok: num("ok")? == 1,
        events: num("events")?,
        kept: num("kept")?,
        duplicates: num("duplicates")?,
        uncovered: num("uncovered")?,
        empty_fences: num("empty_fences")?,
        required: num("required")?,
        cycles: num("cycles")?,
        ref_cycles: num("ref_cycles")?,
        fence_stall: num("fence_stall")?,
        ssb_stall: num("ssb_stall")?,
        ckpt_stall: num("ckpt_stall")?,
        backend_stall: num("backend_stall")?,
        points: num("points")?,
        checks: num("checks")?,
        witness,
        error: v.get("error").and_then(Value::as_str).map(String::from),
    })
}

// --- the study driver -------------------------------------------------

/// Runs the optimizer study for one `(bench, variant)`: every
/// [`OptimizeCellSpec::all`] cell, fanned out deterministically,
/// journaled when `journal` is attached.
pub fn run_optimize_opts(
    h: &Harness,
    id: BenchId,
    variant: Variant,
    journal: Option<&Journal>,
) -> OptimizeReport {
    let scale = h.exp.scale;
    let seed = h.exp.seed;
    let specs = OptimizeCellSpec::all();
    let cached: Vec<Option<OptCell>> = specs
        .iter()
        .map(|spec| {
            let j = journal?;
            let key = cell_key(id, variant, spec, scale, seed);
            let entry = j.lookup(&key)?;
            let decoded = decode_cell(spec, &entry.payload);
            if decoded.is_none() {
                j.report_bad_payload(&key, "optimize payload does not decode");
            }
            decoded
        })
        .collect();
    let computed = run_indexed(h.jobs, &specs, |i, spec| {
        if cached[i].is_some() {
            None
        } else {
            Some(run_cell(h, id, variant, spec))
        }
    });
    let mut cells = Vec::with_capacity(specs.len());
    let mut replayed = 0;
    for (i, spec) in specs.iter().enumerate() {
        let (cell, fresh) = match (&cached[i], &computed[i]) {
            (Some(c), _) => (c.clone(), false),
            (None, Some(c)) => (c.clone(), true),
            (None, None) => unreachable!("cell {i} neither cached nor computed"),
        };
        if fresh {
            if let Some(j) = journal {
                let entry = Entry {
                    key: cell_key(id, variant, spec, scale, seed),
                    attempt: 1,
                    status: if cell.ok {
                        CellStatus::Ok
                    } else {
                        CellStatus::Failed
                    },
                    payload: cell_json(&cell),
                };
                if let Err(e) = j.append(&entry) {
                    eprintln!("repro: journal: {e}");
                }
            }
        } else {
            replayed += 1;
        }
        cells.push(cell);
    }
    OptimizeReport {
        id,
        variant,
        scale,
        seed,
        cells,
        replayed,
    }
}

/// Runs the study without a journal.
pub fn run_optimize_study(h: &Harness, id: BenchId, variant: Variant) -> OptimizeReport {
    run_optimize_opts(h, id, variant, None)
}

impl OptimizeReport {
    fn cell(&self, spec: OptimizeCellSpec) -> &OptCell {
        self.cells
            .iter()
            .find(|c| c.spec == spec)
            .expect("OptimizeCellSpec::all covers the grid")
    }

    fn replay(&self, core: ReplayCore, pass: ReplayPass) -> &OptCell {
        self.cell(OptimizeCellSpec::Replay { core, pass })
    }

    /// Total elisions the plan cell found on the bench trace.
    pub fn elisions(&self) -> u64 {
        let p = self.cell(OptimizeCellSpec::Plan);
        p.duplicates + p.uncovered + p.empty_fences
    }

    /// The study's verdict: every cell ok, and on both cores the
    /// optimized trace is no slower than the recording.
    pub fn ok(&self) -> bool {
        self.cells.iter().all(|c| c.ok)
            && ReplayCore::ALL.iter().all(|&core| {
                self.replay(core, ReplayPass::After).cycles
                    <= self.replay(core, ReplayPass::Before).cycles
            })
    }

    /// The human-readable report.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "== persist-path optimizer: {} / {} at scale 1/{} (seed {:#x}) ==",
            self.id.name(),
            self.variant,
            self.scale,
            self.seed
        );
        let p = self.cell(OptimizeCellSpec::Plan);
        let _ = writeln!(
            s,
            "-- elision plan ({} events, {} kept) --",
            p.events, p.kept
        );
        let _ = writeln!(s, "duplicate flushes : {}", p.duplicates);
        let _ = writeln!(s, "uncovered flushes : {}", p.uncovered);
        let _ = writeln!(s, "empty fences      : {}", p.empty_fences);
        let _ = writeln!(s, "required flushes  : {}", p.required);
        let _ = writeln!(
            s,
            "guarantee frontiers preserved at every persist boundary: {}",
            if p.ok { "yes" } else { "NO" }
        );
        if let Some(e) = &p.error {
            let _ = writeln!(s, "  {e}");
        }
        let _ = writeln!(s);
        let _ = writeln!(s, "-- before/after replay (event-driven + reference) --");
        let _ = writeln!(
            s,
            "{:<6} {:<7} {:>9} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10}  verdict",
            "core", "trace", "events", "cycles", "ref", "fence", "ssb_full", "ckpt_full", "backend"
        );
        for core in ReplayCore::ALL {
            for pass in [ReplayPass::Before, ReplayPass::After] {
                let c = self.replay(core, pass);
                let verdict = if c.ok {
                    "ok".to_string()
                } else {
                    format!("FAIL: {}", c.error.as_deref().unwrap_or("unknown"))
                };
                let _ = writeln!(
                    s,
                    "{:<6} {:<7} {:>9} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10}  {}",
                    core.key(),
                    pass.key(),
                    c.events,
                    c.cycles,
                    c.ref_cycles,
                    c.fence_stall,
                    c.ssb_stall,
                    c.ckpt_stall,
                    c.backend_stall,
                    verdict
                );
            }
            let before = self.replay(core, ReplayPass::Before);
            let after = self.replay(core, ReplayPass::After);
            if before.cycles > 0 {
                let saved = (1.0 - after.cycles as f64 / before.cycles as f64) * 100.0;
                let _ = writeln!(
                    s,
                    "{}: {} -> {} cycles ({:+.1}%)",
                    core.key(),
                    before.cycles,
                    after.cycles,
                    -saved
                );
            }
        }
        let _ = writeln!(s);
        let _ = writeln!(
            s,
            "-- safety: crashfuzz oracle on the optimized Log+P+Sf bundle --"
        );
        let o = self.cell(OptimizeCellSpec::Oracle);
        if o.ok {
            let _ = writeln!(
                s,
                "oracle: recovered everywhere ({} boundaries x {} seeds, {} checks, {} -> {} events)",
                o.points, SEEDS_PER_POINT, o.checks, o.events, o.kept
            );
        } else {
            let _ = writeln!(
                s,
                "oracle: FAILED — {}",
                o.error.as_deref().unwrap_or("unknown")
            );
        }
        let i = self.cell(OptimizeCellSpec::Inverted);
        match &i.witness {
            Some(w) => {
                let _ = writeln!(
                    s,
                    "inverted: unsafe elision caught — witness (crash_idx {}, seed {}) {} \
                     after {} checks ({} required flushes elided)",
                    w.crash_idx, w.seed, w.kind, i.checks, i.required
                );
            }
            None => {
                let _ = writeln!(
                    s,
                    "inverted: FAILED — {}",
                    i.error.as_deref().unwrap_or("unknown")
                );
            }
        }
        let _ = writeln!(s, "optimize: {}", if self.ok() { "PASS" } else { "FAIL" });
        s
    }

    /// The study as one `specpersist/optimize-v1` document.
    pub fn render_json(&self) -> String {
        schema::emit(schema::OPTIMIZE, |root| {
            root.str("bench", self.id.abbrev())
                .str("variant", variant_key(self.variant))
                .num("scale", self.scale as f64)
                .raw("seed", self.seed.to_string())
                .num("seeds_per_point", SEEDS_PER_POINT as f64)
                .num("elisions", self.elisions() as f64)
                .num("ok", u8::from(self.ok()));
            let mut diff = JsonObject::new();
            for core in ReplayCore::ALL {
                diff.raw(
                    &format!("{}_before", core.key()),
                    self.replay(core, ReplayPass::Before).cycles.to_string(),
                )
                .raw(
                    &format!("{}_after", core.key()),
                    self.replay(core, ReplayPass::After).cycles.to_string(),
                );
            }
            root.raw("diff", diff.render())
                .raw("cells", json::array(self.cells.iter().map(cell_json)));
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::Experiment;
    use spp_pmem::PAddr;

    fn a() -> PAddr {
        PAddr::new(4096)
    }

    fn b() -> PAddr {
        PAddr::new(4096 + 64)
    }

    fn store(addr: PAddr, value: u64) -> Event {
        Event::Store {
            addr,
            size: 8,
            value,
        }
    }

    fn harness() -> Harness {
        Harness::new(
            Experiment {
                scale: 2400,
                seed: 0x5EED,
            },
            2,
        )
    }

    #[test]
    fn duplicate_flush_within_an_epoch_is_elided() {
        let events = vec![
            store(a(), 1),
            Event::Clwb { addr: a() },
            Event::Clwb { addr: a() }, // subsumes the first
            Event::Sfence,
            Event::Pcommit,
            Event::Sfence,
        ];
        let plan = analyze(&events);
        assert_eq!(plan.count(ElisionKind::DuplicateFlush), 1);
        assert_eq!(
            plan.elisions[0],
            Elision {
                idx: 1,
                kind: ElisionKind::DuplicateFlush
            }
        );
        assert_eq!(plan.required, vec![2], "the later flush is the keeper");
        assert!(plan_preserves_guarantees(&events, &plan));
    }

    #[test]
    fn uncovered_flush_is_elided() {
        // No fence ever drains the issued stage: the Log+P shape.
        let events = vec![store(a(), 1), Event::Clwb { addr: a() }, Event::Pcommit];
        let plan = analyze(&events);
        assert_eq!(plan.count(ElisionKind::UncoveredFlush), 1);
        assert!(plan.required.is_empty());
        assert!(plan_preserves_guarantees(&events, &plan));
    }

    #[test]
    fn empty_fence_is_elided_and_full_dance_is_kept() {
        let events = vec![
            Event::Sfence, // nothing issued, nothing in flight: empty
            store(a(), 1),
            Event::Clwb { addr: a() },
            Event::Sfence,
            Event::Pcommit,
            Event::Sfence,
        ];
        let plan = analyze(&events);
        assert_eq!(plan.count(ElisionKind::EmptyFence), 1);
        assert_eq!(plan.elisions[0].idx, 0);
        assert_eq!(plan.required, vec![2]);
        assert!(plan_preserves_guarantees(&events, &plan));
        // The second fence of the dance drains in-flight: not empty.
        // The optimized trace re-analyzes clean (a fixpoint).
        let optimized = apply(&events, &plan);
        assert_eq!(optimized.len(), events.len() - 1);
        assert!(analyze(&optimized).is_empty());
    }

    #[test]
    fn clflush_duplicates_collapse_in_the_ordered_stage() {
        let events = vec![
            store(a(), 1),
            Event::Clflush { addr: a() },
            Event::Clflush { addr: a() },
            Event::Pcommit,
            Event::Sfence,
        ];
        let plan = analyze(&events);
        assert_eq!(plan.count(ElisionKind::DuplicateFlush), 1);
        assert_eq!(plan.elisions[0].idx, 1);
        assert_eq!(plan.required, vec![2]);
        assert!(plan_preserves_guarantees(&events, &plan));
    }

    #[test]
    fn removing_a_required_flush_fails_the_event_level_lemma() {
        let events = vec![
            store(a(), 1),
            store(b(), 2),
            Event::Clwb { addr: a() },
            Event::Clwb { addr: b() },
            Event::Sfence,
            Event::Pcommit,
            Event::Sfence,
        ];
        let plan = analyze(&events);
        assert!(plan.is_empty(), "both flushes are load-bearing");
        assert_eq!(plan.required, vec![2, 3]);
        let unsafe_plan = ElisionPlan {
            elisions: vec![Elision {
                idx: 2,
                kind: ElisionKind::DuplicateFlush,
            }],
            ..plan
        };
        assert!(!plan_preserves_guarantees(&events, &unsafe_plan));
    }

    #[test]
    fn bench_traces_analyze_safely_and_logp_is_all_uncovered() {
        let h = harness();
        for variant in [Variant::LogP, Variant::LogPSf] {
            let events = bench_events(&h, BenchId::LinkedList, variant);
            let plan = analyze(&events);
            assert!(
                plan_preserves_guarantees(&events, &plan),
                "{variant}: unsafe plan"
            );
            if variant == Variant::LogP {
                // No fences at all: every flush is uncovered, nothing
                // is required.
                assert!(plan.count(ElisionKind::UncoveredFlush) > 0);
                assert!(plan.required.is_empty());
                assert_eq!(plan.fences, 0);
            } else {
                assert!(!plan.required.is_empty(), "Log+P+Sf must persist");
            }
        }
    }

    #[test]
    fn study_passes_and_finds_elisions_on_logp() {
        let h = harness();
        let rep = run_optimize_study(&h, BenchId::LinkedList, Variant::LogP);
        assert_eq!(rep.cells.len(), OptimizeCellSpec::all().len());
        assert!(rep.ok(), "{}", rep.render_text());
        assert!(rep.elisions() > 0, "LogP must yield redundant flushes");
        // Measured cycle reduction on the baseline core.
        let before = rep.replay(ReplayCore::Base, ReplayPass::Before);
        let after = rep.replay(ReplayCore::Base, ReplayPass::After);
        assert!(
            after.cycles < before.cycles,
            "eliding {} events must save cycles ({} vs {})",
            rep.elisions(),
            after.cycles,
            before.cycles
        );
        // Reference parity on every replay cell.
        for core in ReplayCore::ALL {
            for pass in [ReplayPass::Before, ReplayPass::After] {
                let c = rep.replay(core, pass);
                assert_eq!(c.cycles, c.ref_cycles, "{:?}/{:?}", core, pass);
            }
        }
        // Safety legs.
        let o = rep.cell(OptimizeCellSpec::Oracle);
        assert!(o.ok && o.points > 2 && o.checks >= o.points);
        let i = rep.cell(OptimizeCellSpec::Inverted);
        assert!(i.ok, "{:?}", i.error);
        assert!(i.witness.is_some());
        // Perf trajectory rows were fed.
        assert!(!h.perf_labeled_cells().is_empty());
        assert!(rep.render_text().contains("optimize: PASS"));
        assert!(rep
            .render_json()
            .starts_with("{\"schema\":\"specpersist/optimize-v1\""));
    }

    #[test]
    fn jobs_do_not_change_the_bytes() {
        let exp = harness().exp;
        let a = run_optimize_study(&Harness::new(exp, 1), BenchId::LinkedList, Variant::LogP);
        let b = run_optimize_study(&Harness::new(exp, 8), BenchId::LinkedList, Variant::LogP);
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.render_json(), b.render_json());
    }

    #[test]
    fn journaled_rerun_replays_byte_identically() {
        let mut p = std::env::temp_dir();
        p.push(format!("spp-optimize-journal-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let h = harness();
        let (text, json) = {
            let j = Journal::open(&p).unwrap();
            let rep = run_optimize_opts(&h, BenchId::LinkedList, Variant::LogPSf, Some(&j));
            assert_eq!(rep.replayed, 0, "first run computes everything");
            (rep.render_text(), rep.render_json())
        };
        let j = Journal::open(&p).unwrap();
        let rep = run_optimize_opts(&h, BenchId::LinkedList, Variant::LogPSf, Some(&j));
        assert_eq!(rep.replayed, rep.cells.len(), "every cell replays");
        assert_eq!(rep.render_text(), text, "replayed stdout byte-identical");
        assert_eq!(rep.render_json(), json);
        let _ = std::fs::remove_file(&p);
    }
}
