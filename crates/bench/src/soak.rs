//! `repro soak` — bounded endurance runs over the fault-injection and
//! crash-consistency matrices with the journaled manifest enabled.
//!
//! Each iteration derives a fresh seed from the base experiment seed
//! (a splitmix64 step, so the schedule is a pure function of the CLI
//! arguments), then:
//!
//! 1. runs the full [`crate::faultsim`] matrix under quiet + storm
//!    plans on the supervised pool, journalling every cell;
//! 2. runs the must-pass `Log+P+Sf` [`crate::crashfuzz`] leg (crash
//!    recovery at every persist boundary plus the SP differential);
//! 3. re-reads and re-verifies the journal from disk, requiring zero
//!    corrupt lines ([`Journal::verify`]);
//! 4. appends an iteration-summary entry to the journal, so the
//!    manifest itself records the endurance history.
//!
//! The soak passes only if every iteration kept architectural state
//! invariant (all faultsim cells `state_ok`, no degraded cells, the
//! crashfuzz leg green) *and* the journal never produced a corrupt
//! line — the two failure modes a long campaign exists to surface.

use spp_pmem::splitmix64;

use crate::crashfuzz::{run_crashfuzz, Leg};
use crate::faultsim::{run_faultsim_opts, FaultsimOpts};
use crate::journal::{CellStatus, Entry};
use crate::json::{array, JsonObject};
use crate::{Experiment, Harness, Journal};

/// The default iteration count of `repro soak`.
pub const DEFAULT_SOAK_ITERS: u64 = 4;

/// One soak iteration's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoakIter {
    /// Iteration index (0-based).
    pub iter: u64,
    /// The derived per-iteration seed.
    pub seed: u64,
    /// Did the faultsim matrix pass (state + verdict invariance,
    /// non-vacuity, watchdog)?
    pub faultsim_ok: bool,
    /// Faultsim cells that reported.
    pub cells: usize,
    /// Faultsim cells that exhausted their retry budget.
    pub failures: usize,
    /// Faultsim cells served from the journal.
    pub replayed: usize,
    /// Did the must-pass `Log+P+Sf` crashfuzz leg pass?
    pub fuzz_ok: bool,
    /// Verified journal entries after this iteration.
    pub journal_entries: usize,
    /// Corrupt journal lines detected by re-verification (must be 0).
    pub journal_corrupt: usize,
}

impl SoakIter {
    /// Did this iteration keep every invariant?
    pub fn ok(&self) -> bool {
        self.faultsim_ok && self.fuzz_ok && self.failures == 0 && self.journal_corrupt == 0
    }
}

/// The full soak outcome.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Scale and *base* seed (per-iteration seeds derive from it).
    pub exp: Experiment,
    /// Iterations requested.
    pub iters: u64,
    /// Per-iteration rows, in order.
    pub rows: Vec<SoakIter>,
}

/// The seed of soak iteration `i` under base experiment `exp`: one
/// splitmix64 step over the base seed and the index, so the whole
/// schedule is reproducible from the CLI arguments alone.
pub fn iter_seed(exp: &Experiment, i: u64) -> u64 {
    splitmix64(exp.seed.wrapping_add(i))
}

/// Runs `iters` soak iterations against `journal`, returning the
/// endurance report. Each iteration uses its own derived seed, so its
/// journal keys are disjoint from every other iteration's.
pub fn run_soak(exp: &Experiment, jobs: usize, iters: u64, journal: &Journal) -> SoakReport {
    let mut rows = Vec::with_capacity(iters as usize);
    for i in 0..iters {
        let seed = iter_seed(exp, i);
        let h = Harness::new(
            Experiment {
                scale: exp.scale,
                seed,
            },
            jobs,
        );
        let fault = run_faultsim_opts(
            &h,
            FaultsimOpts {
                journal: Some(journal),
                ..FaultsimOpts::default()
            },
        );
        let fuzz = run_crashfuzz(&h, Leg::LogPSf);
        // Integrity: re-read the journal from disk and verify every
        // line byte-for-byte against its checksum.
        let (journal_entries, corrupt) = match Journal::verify(journal.path()) {
            Ok((n, errs)) => (n, errs.len()),
            Err(_) => (0, 1),
        };
        let row = SoakIter {
            iter: i,
            seed,
            faultsim_ok: fault.ok(),
            cells: fault.cells.len(),
            failures: fault.failures.len(),
            replayed: fault.replayed,
            fuzz_ok: fuzz.ok(),
            journal_entries,
            journal_corrupt: corrupt,
        };
        // The manifest records its own endurance history.
        let _ = journal.append(&Entry {
            key: format!("soak/i{}/s{}/x{:016x}", i, exp.scale, seed),
            attempt: 1,
            status: if row.ok() {
                CellStatus::Ok
            } else {
                CellStatus::Failed
            },
            payload: row_json(&row),
        });
        rows.push(row);
    }
    SoakReport {
        exp: *exp,
        iters,
        rows,
    }
}

fn row_json(r: &SoakIter) -> String {
    let mut o = JsonObject::new();
    o.num("iter", r.iter as f64)
        .num("seed", r.seed as f64)
        .num("faultsim_ok", u8::from(r.faultsim_ok))
        .num("cells", r.cells as f64)
        .num("failures", r.failures as f64)
        .num("fuzz_ok", u8::from(r.fuzz_ok))
        .num("journal_entries", r.journal_entries as f64)
        .num("journal_corrupt", r.journal_corrupt as f64)
        .num("ok", u8::from(r.ok()));
    o.render()
}

impl SoakReport {
    /// Did every requested iteration run and keep every invariant?
    pub fn ok(&self) -> bool {
        self.rows.len() as u64 == self.iters && self.rows.iter().all(SoakIter::ok)
    }

    /// Total faultsim cells that degraded across the soak.
    pub fn total_failures(&self) -> usize {
        self.rows.iter().map(|r| r.failures).sum()
    }

    /// Total corrupt journal lines observed across the soak.
    pub fn total_corrupt(&self) -> usize {
        self.rows.iter().map(|r| r.journal_corrupt).sum()
    }

    /// The human-readable report (deterministic; stdout-destined).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "== soak (scale 1/{}, base seed {:#x}, {} iterations) ==",
            self.exp.scale, self.exp.seed, self.iters
        );
        let _ = writeln!(
            s,
            "{:<5} {:<18} {:<9} {:>6} {:>7} {:<9} {:>8} {:>8} verdict",
            "iter", "seed", "faultsim", "cells", "failed", "crashfuzz", "entries", "corrupt"
        );
        for r in &self.rows {
            let _ = writeln!(
                s,
                "{:<5} {:#018x} {:<9} {:>6} {:>7} {:<9} {:>8} {:>8} {}",
                r.iter,
                r.seed,
                if r.faultsim_ok { "ok" } else { "FAIL" },
                r.cells,
                r.failures,
                if r.fuzz_ok { "ok" } else { "FAIL" },
                r.journal_entries,
                r.journal_corrupt,
                if r.ok() { "ok" } else { "FAIL" }
            );
        }
        let _ = writeln!(
            s,
            "soak: {} ({} iterations, {} degraded cells, {} corrupt journal lines)",
            if self.ok() { "PASS" } else { "FAIL" },
            self.rows.len(),
            self.total_failures(),
            self.total_corrupt()
        );
        s
    }

    /// The machine-readable report.
    pub fn render_json(&self) -> String {
        crate::schema::emit(crate::schema::SOAK, |root| {
            root.num("scale", self.exp.scale as f64)
                .num("seed", self.exp.seed as f64)
                .num("iters", self.iters as f64)
                .num("ok", u8::from(self.ok()))
                .raw("rows", array(self.rows.iter().map(row_json)));
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("spp-soak-test-{}-{name}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn two_iterations_stay_green_and_journal_stays_clean() {
        let p = tmp("green");
        let exp = Experiment {
            scale: 2400,
            seed: 7,
        };
        let j = Journal::open(&p).unwrap();
        let rep = run_soak(&exp, 2, 2, &j);
        assert_eq!(rep.rows.len(), 2);
        assert!(rep.ok(), "{}", rep.render_text());
        assert_eq!(rep.total_corrupt(), 0);
        assert_eq!(rep.total_failures(), 0);
        // Distinct derived seeds mean disjoint journal keys: nothing
        // replays within a single soak.
        assert_ne!(rep.rows[0].seed, rep.rows[1].seed);
        assert_eq!(rep.rows[1].replayed, 0);
        // The manifest grew monotonically and re-verifies from disk.
        assert!(rep.rows[1].journal_entries > rep.rows[0].journal_entries);
        let (n, errs) = Journal::verify(&p).unwrap();
        assert!(errs.is_empty(), "{errs:?}");
        // 29 supervised cells per iteration plus one summary entry
        // (written after the iteration's verify pass).
        assert_eq!(n, 2 * (7 * 4 + 1) + 2);
        let text = rep.render_text();
        assert!(text.contains("soak: PASS"), "{text}");
        let json = rep.render_json();
        assert!(json.contains("\"schema\":\"specpersist/soak-v1\""));
        crate::json::parse(&json).expect("report must parse");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn rerun_with_same_journal_replays_faultsim_cells() {
        let p = tmp("replay");
        let exp = Experiment {
            scale: 2400,
            seed: 11,
        };
        {
            let j = Journal::open(&p).unwrap();
            assert!(run_soak(&exp, 2, 1, &j).ok());
        }
        let j = Journal::open(&p).unwrap();
        let rep = run_soak(&exp, 2, 1, &j);
        assert!(rep.ok());
        assert_eq!(
            rep.rows[0].replayed,
            7 * 4 + 1,
            "every supervised cell replays on the second soak"
        );
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn iteration_seeds_are_pinned() {
        let exp = Experiment { scale: 50, seed: 0 };
        // splitmix64(0), splitmix64(1): the published reference vector.
        assert_eq!(iter_seed(&exp, 0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(iter_seed(&exp, 1), 0x910A_2DEC_8902_5CC1);
    }
}
