//! Pretty-printers: one report per paper table/figure.

use std::fmt::Write as _;

use spp_cpu::CpuConfig;
use spp_workloads::{BenchId, BenchSpec};

use crate::{geomean_overhead, BenchRun, Experiment, Harness};

fn header(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

/// Table 1: the benchmark suite (paper sizing and the scaled sizing in
/// use).
pub fn table1(exp: &Experiment) -> String {
    let mut s = header("Table 1: benchmarks (paper sizing -> scaled sizing)");
    let _ = writeln!(
        s,
        "{:<12} {:>12} {:>10} {:>12} {:>10}",
        "Benchmark", "#InitOps", "#SimOps", "scaled-init", "scaled-sim"
    );
    for id in BenchId::ALL {
        let p = BenchSpec::paper(id);
        let c = BenchSpec::scaled(id, exp.scale);
        let _ = writeln!(
            s,
            "{:<12} {:>12} {:>10} {:>12} {:>10}",
            format!("{} ({})", id.name(), id.abbrev()),
            p.init_ops,
            p.sim_ops,
            c.init_ops,
            c.sim_ops
        );
    }
    s
}

/// Table 2: the baseline system configuration in force.
pub fn table2() -> String {
    let c = CpuConfig::baseline();
    let mut s = header("Table 2: baseline system configuration");
    let _ = writeln!(s, "Processor   OOO, 4-wide issue/retire");
    let _ = writeln!(
        s,
        "            ROB: {}, fetchQ/issueQ/LSQ: {}/{}/{}",
        c.rob_entries, c.fetch_queue, c.issue_queue, c.lsq_entries
    );
    let m = c.mem;
    let _ = writeln!(
        s,
        "L1D         {} KB, {}-way, 64B block, {} cycles",
        m.l1d.size_bytes / 1024,
        m.l1d.ways,
        m.l1d.latency
    );
    let _ = writeln!(
        s,
        "L2          {} KB, {}-way, 64B block, {} cycles",
        m.l2.size_bytes / 1024,
        m.l2.ways,
        m.l2.latency
    );
    let _ = writeln!(
        s,
        "L3          {} MB, {}-way, 64B block, {} cycles",
        m.l3.size_bytes / (1024 * 1024),
        m.l3.ways,
        m.l3.latency
    );
    let _ = writeln!(s, "Checkpoints 4 entries");
    let _ = writeln!(
        s,
        "NVMM        {} cycles read (50ns), {} cycles write (150ns)",
        m.nvmm_read, m.nvmm_write
    );
    let _ = writeln!(
        s,
        "MC          WPQ {} entries, {} banks",
        m.wpq_entries, m.nvmm_banks
    );
    s
}

/// Table 3: the SSB design points.
pub fn table3() -> String {
    let mut s = header("Table 3: SSB configurations and parameters");
    let _ = write!(s, "Num entries     ");
    for (e, _) in spp_core::SSB_DESIGN_POINTS {
        let _ = write!(s, "{e:>6}");
    }
    let _ = write!(s, "\nLatency (cycles)");
    for (_, l) in spp_core::SSB_DESIGN_POINTS {
        let _ = write!(s, "{l:>6}");
    }
    s.push('\n');
    s
}

/// Fig. 8: execution-time overheads of Log / Log+P / Log+P+Sf / SP256
/// over Base, plus the paper's headline aggregates.
pub fn fig8(runs: &[BenchRun]) -> String {
    let mut s = header("Fig. 8: execution time overhead vs Base (%)");
    let _ = writeln!(
        s,
        "{:<6} {:>8} {:>8} {:>10} {:>8}",
        "Bench", "Log", "Log+P", "Log+P+Sf", "SP256"
    );
    let pct = |o: f64| format!("{:.1}", o * 100.0);
    let mut o_log = Vec::new();
    let mut o_logp = Vec::new();
    let mut o_logpsf = Vec::new();
    let mut o_sp = Vec::new();
    for r in runs {
        let (l, lp, lpsf, sp) = (
            r.overhead(r.log.sim.cpu.cycles),
            r.overhead(r.logp.sim.cpu.cycles),
            r.overhead(r.logpsf.sim.cpu.cycles),
            r.overhead(r.sp256.cpu.cycles),
        );
        let _ = writeln!(
            s,
            "{:<6} {:>8} {:>8} {:>10} {:>8}",
            r.id.abbrev(),
            pct(l),
            pct(lp),
            pct(lpsf),
            pct(sp)
        );
        o_log.push(l);
        o_logp.push(lp);
        o_logpsf.push(lpsf);
        o_sp.push(sp);
    }
    let _ = writeln!(
        s,
        "{:<6} {:>8} {:>8} {:>10} {:>8}",
        "GEOM",
        pct(geomean_overhead(o_log.iter().copied())),
        pct(geomean_overhead(o_logp.iter().copied())),
        pct(geomean_overhead(o_logpsf.iter().copied())),
        pct(geomean_overhead(o_sp.iter().copied()))
    );
    // Headline numbers: fence cost over Log+P, and SP's residual cost
    // over Log+P (the paper reports 20.3% -> 3.6%).
    let fence_cost = geomean_overhead(
        runs.iter()
            .map(|r| r.logpsf.sim.cpu.cycles as f64 / r.logp.sim.cpu.cycles as f64 - 1.0),
    );
    let sp_cost = geomean_overhead(
        runs.iter()
            .map(|r| r.sp256.cpu.cycles as f64 / r.logp.sim.cpu.cycles as f64 - 1.0),
    );
    let _ = writeln!(
        s,
        "\nHeadline (vs Log+P, geomean): fences add {:.1}% (paper: 20.3%),",
        fence_cost * 100.0
    );
    let _ = writeln!(
        s,
        "                              SP brings it to {:.1}% (paper: 3.6%)",
        sp_cost * 100.0
    );
    s
}

/// Fig. 9: committed-instruction-count ratio to Base.
pub fn fig9(runs: &[BenchRun]) -> String {
    let mut s = header("Fig. 9: committed instruction count ratio vs Base");
    let _ = writeln!(
        s,
        "{:<6} {:>8} {:>8} {:>10}",
        "Bench", "Log", "Log+P", "Log+P+Sf"
    );
    for r in runs {
        let b = r.base.counts.total() as f64;
        let _ = writeln!(
            s,
            "{:<6} {:>8.2} {:>8.2} {:>10.2}",
            r.id.abbrev(),
            r.log.counts.total() as f64 / b,
            r.logp.counts.total() as f64 / b,
            r.logpsf.counts.total() as f64 / b
        );
    }
    s
}

/// Fig. 10: fetch-queue stall cycles as a fraction of Base cycles.
pub fn fig10(runs: &[BenchRun]) -> String {
    let mut s = header("Fig. 10: fetch queue stall cycles / Base execution cycles");
    let _ = writeln!(
        s,
        "{:<6} {:>8} {:>8} {:>10} {:>8}",
        "Bench", "Log", "Log+P", "Log+P+Sf", "SP256"
    );
    for r in runs {
        let b = r.base.sim.cpu.cycles as f64;
        let _ = writeln!(
            s,
            "{:<6} {:>8.3} {:>8.3} {:>10.3} {:>8.3}",
            r.id.abbrev(),
            r.log.sim.cpu.fetch_stall_cycles as f64 / b,
            r.logp.sim.cpu.fetch_stall_cycles as f64 / b,
            r.logpsf.sim.cpu.fetch_stall_cycles as f64 / b,
            r.sp256.cpu.fetch_stall_cycles as f64 / b
        );
    }
    s
}

/// Fig. 11: maximum in-flight pcommits (measured on Log+P, as in the
/// paper).
pub fn fig11(runs: &[BenchRun]) -> String {
    let mut s = header("Fig. 11: maximum number of in-flight pcommits (Log+P)");
    for r in runs {
        let _ = writeln!(
            s,
            "{:<6} {:>4}",
            r.id.abbrev(),
            r.logp.sim.cpu.max_inflight_pcommits
        );
    }
    s
}

/// Fig. 12: average stores in the pipeline per outstanding pcommit
/// (Log+P).
pub fn fig12(runs: &[BenchRun]) -> String {
    let mut s = header("Fig. 12: avg speculative stores while a pcommit is outstanding (Log+P)");
    for r in runs {
        let _ = writeln!(
            s,
            "{:<6} {:>8.1}",
            r.id.abbrev(),
            r.logp.sim.stores_per_pcommit()
        );
    }
    s
}

/// Fig. 13: SP overhead vs SSB size.
pub fn fig13(h: &Harness) -> String {
    let mut s = header("Fig. 13: SP overhead vs Base (%) across SSB sizes");
    let _ = write!(s, "{:<6}", "Bench");
    for (e, _) in spp_core::SSB_DESIGN_POINTS {
        let _ = write!(s, "{e:>8}");
    }
    s.push('\n');
    let mut per_size: Vec<Vec<f64>> = vec![Vec::new(); spp_core::SSB_DESIGN_POINTS.len()];
    for (id, pts) in h.ssb_table(&BenchId::ALL) {
        let _ = write!(s, "{:<6}", id.abbrev());
        for (i, (_, o)) in pts.iter().enumerate() {
            let _ = write!(s, "{:>8.1}", o * 100.0);
            per_size[i].push(*o);
        }
        s.push('\n');
    }
    let _ = write!(s, "{:<6}", "GEOM");
    for sizes in &per_size {
        let _ = write!(
            s,
            "{:>8.1}",
            geomean_overhead(sizes.iter().copied()) * 100.0
        );
    }
    s.push('\n');
    s
}

/// Fig. 14: bloom-filter false-positive rates on SP256.
pub fn fig14(runs: &[BenchRun]) -> String {
    let mut s = header("Fig. 14: bloom filter false positive rate (SP256, 512B)");
    for r in runs {
        let _ = writeln!(
            s,
            "{:<6} {:>8.4}  ({} queries, {} false positives)",
            r.id.abbrev(),
            r.sp256.bloom_false_positive_rate(),
            r.sp256.bloom.queries,
            r.sp256.bloom.false_positives
        );
    }
    s
}

/// Ablation (beyond the paper): the combined-opcode optimization and
/// checkpoint-count sensitivity.
pub fn ablation(h: &Harness) -> String {
    let mut s = header("Ablation: SP overhead vs Base (%), design-choice sensitivity");
    let _ = writeln!(
        s,
        "{:<6} {:>10} {:>12} {:>8} {:>8} {:>8}",
        "Bench", "SP256", "no-combine", "1 ckpt", "2 ckpt", "8 ckpt"
    );
    for (id, [full, nocomb, c1, c2, c8]) in h.ablation_table(&BenchId::ALL) {
        let _ = writeln!(
            s,
            "{:<6} {:>10.1} {:>12.1} {:>8.1} {:>8.1} {:>8.1}",
            id.abbrev(),
            full * 100.0,
            nocomb * 100.0,
            c1 * 100.0,
            c2 * 100.0,
            c8 * 100.0
        );
    }
    s
}

/// Flush-instruction ablation: `clwb` vs `clflushopt` vs legacy
/// `clflush` (the paper's §2.2 footnote).
pub fn flushmode(h: &Harness) -> String {
    let mut s = header("Flush-instruction ablation: cycles/op, Log+P+Sf build");
    let _ = writeln!(
        s,
        "{:<6} {:>10} {:>12} {:>10} | {:>10} {:>12} {:>10}",
        "Bench", "clwb", "clflushopt", "clflush", "clwb+SP", "opt+SP", "flush+SP"
    );
    let ids = [
        spp_workloads::BenchId::LinkedList,
        spp_workloads::BenchId::HashMap,
        spp_workloads::BenchId::BTree,
    ];
    for (id, cols) in h.flushmode_table(&ids) {
        let _ = writeln!(
            s,
            "{:<6} {:>10} {:>12} {:>10} | {:>10} {:>12} {:>10}",
            id.abbrev(),
            cols[0].0,
            cols[1].0,
            cols[2].0,
            cols[0].1,
            cols[1].1,
            cols[2].1
        );
    }
    let _ = writeln!(
        s,
        "\nclflushopt evicts the line (the next logging pass re-fetches it);\n\
         legacy clflush additionally serializes retirement on every writeback —\n\
         the paper's reason for excluding it (§2.2, footnote 2)."
    );
    s
}

/// The shared-data multi-core scaling study: concurrent persistent
/// structures over one coherent memory system, baseline vs SP, with
/// BLT conflict/rollback accounting (§4.1/§4.2.2).
pub fn multicore(h: &Harness) -> String {
    crate::multicore::run_multicore_study(h).render_text()
}

/// Full vs incremental logging on the B-tree (§3.2, Figs. 4-5).
pub fn incremental(h: &Harness) -> String {
    let c = h.run_logging_comparison();
    let mut s = header("Full vs incremental logging (B-tree, §3.2)");
    let _ = writeln!(
        s,
        "{:<26} {:>12} {:>14}",
        "per operation", "full", "incremental"
    );
    let _ = writeln!(
        s,
        "{:<26} {:>12} {:>14}",
        "cycles (baseline core)", c.full_cycles, c.inc_cycles
    );
    let _ = writeln!(
        s,
        "{:<26} {:>12} {:>14}",
        "cycles (SP256 core)", c.full_sp_cycles, c.inc_sp_cycles
    );
    let _ = writeln!(
        s,
        "{:<26} {:>12.1} {:>14.1}",
        "pcommits", c.full_pcommits, c.inc_pcommits
    );
    let _ = writeln!(
        s,
        "{:<26} {:>12.0} {:>14.0}",
        "store micro-ops", c.full_stores, c.inc_stores
    );
    let _ = writeln!(
        s,
        "\nThe paper's trade-off: incremental logging writes less log data but\n\
         issues a set of persist barriers per rebalancing step; full logging\n\
         pays one set of four pcommits per operation regardless."
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_suite;

    #[test]
    fn static_tables_render() {
        let exp = Experiment {
            scale: 1000,
            seed: 1,
        };
        let t1 = table1(&exp);
        assert!(t1.contains("Linked-List"));
        assert!(t1.contains("2600000"));
        let t2 = table2();
        assert!(t2.contains("ROB: 128"));
        assert!(t2.contains("315 cycles write"));
        let t3 = table3();
        assert!(t3.contains("1024"));
    }

    #[test]
    fn figure_reports_render_from_a_tiny_suite() {
        let exp = Experiment {
            scale: 5000,
            seed: 1,
        };
        let runs = run_suite(&exp);
        assert_eq!(runs.len(), 7);
        for (name, text) in [
            ("fig8", fig8(&runs)),
            ("fig9", fig9(&runs)),
            ("fig10", fig10(&runs)),
            ("fig11", fig11(&runs)),
            ("fig12", fig12(&runs)),
            ("fig14", fig14(&runs)),
        ] {
            for id in BenchId::ALL {
                assert!(text.contains(id.abbrev()), "{name} missing {id}");
            }
        }
        assert!(fig8(&runs).contains("GEOM"));
    }
}
