//! # spp-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation
//! (§5-§6): for each Table 1 benchmark it records traces in all four
//! build variants, replays them through the pipeline with and without
//! speculative persistence, and prints the same rows/series the paper
//! reports. See `EXPERIMENTS.md` at the repository root for the
//! paper-vs-measured comparison.
//!
//! The `repro` binary drives it:
//!
//! ```text
//! repro all --scale 50      # every figure at 1/50 of Table 1 sizing
//! repro fig8 --scale 200    # just the headline overhead figure
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod report;

use spp_cpu::{simulate, CpuConfig, SimResult, SpConfig};
use spp_pmem::{TraceCounts, Variant};
use spp_workloads::{run_benchmark, BenchId, BenchSpec, RunConfig};

/// Harness-wide parameters.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// Divisor applied to Table 1's `#InitOps`/`#SimOps` (1 = paper
    /// scale; the default harness uses 50).
    pub scale: u64,
    /// RNG seed shared by every run so operation streams match across
    /// variants.
    pub seed: u64,
}

impl Default for Experiment {
    fn default() -> Self {
        Experiment { scale: 50, seed: 0x5EED }
    }
}

/// One variant's trace-and-timing outcome.
#[derive(Debug, Clone, Copy)]
pub struct VariantRun {
    /// Micro-op counts of the recorded trace.
    pub counts: TraceCounts,
    /// Pipeline results without speculation.
    pub sim: SimResult,
}

/// Everything measured for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct BenchRun {
    /// Which benchmark.
    pub id: BenchId,
    /// The actual (scaled) sizing used.
    pub spec: BenchSpec,
    /// `Base` build.
    pub base: VariantRun,
    /// `Log` build.
    pub log: VariantRun,
    /// `Log+P` build.
    pub logp: VariantRun,
    /// `Log+P+Sf` build.
    pub logpsf: VariantRun,
    /// `Log+P+Sf` trace on the SP256 core.
    pub sp256: SimResult,
}

impl BenchRun {
    /// Execution-time overhead of `cycles` relative to the `Base` build.
    pub fn overhead(&self, cycles: u64) -> f64 {
        cycles as f64 / self.base.sim.cpu.cycles as f64 - 1.0
    }
}

/// Records one benchmark's trace in `variant` and simulates it on `cpu`.
pub fn run_variant(
    id: BenchId,
    variant: Variant,
    exp: &Experiment,
    cpu: &CpuConfig,
) -> (TraceCounts, SimResult) {
    let out = run_benchmark(&RunConfig {
        variant,
        spec: BenchSpec::scaled(id, exp.scale),
        seed: exp.seed,
        capture_base: false,
    });
    let sim = simulate(&out.trace.events, cpu);
    (out.trace.counts, sim)
}

/// Runs the full Fig. 8-12/14 sweep for one benchmark: all four
/// variants on the baseline core, plus SP256 on the `Log+P+Sf` trace.
pub fn run_bench(id: BenchId, exp: &Experiment) -> BenchRun {
    let baseline = CpuConfig::baseline();
    let with_sp = CpuConfig::with_sp();
    let (c0, s0) = run_variant(id, Variant::Base, exp, &baseline);
    let (c1, s1) = run_variant(id, Variant::Log, exp, &baseline);
    let (c2, s2) = run_variant(id, Variant::LogP, exp, &baseline);
    let (c3, s3) = run_variant(id, Variant::LogPSf, exp, &baseline);
    let (_, sp) = run_variant(id, Variant::LogPSf, exp, &with_sp);
    BenchRun {
        id,
        spec: BenchSpec::scaled(id, exp.scale),
        base: VariantRun { counts: c0, sim: s0 },
        log: VariantRun { counts: c1, sim: s1 },
        logp: VariantRun { counts: c2, sim: s2 },
        logpsf: VariantRun { counts: c3, sim: s3 },
        sp256: sp,
    }
}

/// Runs the whole suite.
pub fn run_suite(exp: &Experiment) -> Vec<BenchRun> {
    BenchId::ALL.iter().map(|&id| run_bench(id, exp)).collect()
}

/// Fig. 13: the `Log+P+Sf` trace of one benchmark on SP cores with each
/// Table 3 SSB size. Returns `(entries, overhead_vs_base)` pairs.
pub fn run_ssb_sweep(id: BenchId, exp: &Experiment) -> Vec<(usize, f64)> {
    let out = run_benchmark(&RunConfig {
        variant: Variant::LogPSf,
        spec: BenchSpec::scaled(id, exp.scale),
        seed: exp.seed,
        capture_base: false,
    });
    let base = run_variant(id, Variant::Base, exp, &CpuConfig::baseline()).1;
    spp_core::SSB_DESIGN_POINTS
        .iter()
        .map(|&(entries, _)| {
            let cfg = CpuConfig {
                sp: Some(SpConfig::with_ssb_entries(entries)),
                ..CpuConfig::baseline()
            };
            let sim = simulate(&out.trace.events, &cfg);
            (entries, sim.cpu.cycles as f64 / base.cpu.cycles as f64 - 1.0)
        })
        .collect()
}

/// Ablation: SP256 without the combined `sfence-pcommit-sfence` opcode
/// and with a varying checkpoint count. Returns overhead vs `Base`.
pub fn run_sp_ablation(
    id: BenchId,
    exp: &Experiment,
    combine_barrier: bool,
    checkpoints: usize,
) -> f64 {
    let out = run_benchmark(&RunConfig {
        variant: Variant::LogPSf,
        spec: BenchSpec::scaled(id, exp.scale),
        seed: exp.seed,
        capture_base: false,
    });
    let base = run_variant(id, Variant::Base, exp, &CpuConfig::baseline()).1;
    let cfg = CpuConfig {
        sp: Some(SpConfig { combine_barrier, checkpoints, ..SpConfig::paper_default() }),
        ..CpuConfig::baseline()
    };
    let sim = simulate(&out.trace.events, &cfg);
    sim.cpu.cycles as f64 / base.cpu.cycles as f64 - 1.0
}

/// Comparison of full vs incremental logging on the B-tree (§3.2,
/// Figs. 4-5): cycles, pcommits and logged volume per operation, on the
/// baseline and SP cores.
#[derive(Debug, Clone, Copy)]
pub struct LoggingComparison {
    /// Baseline-core cycles per op with full logging.
    pub full_cycles: u64,
    /// Baseline-core cycles per op with incremental logging.
    pub inc_cycles: u64,
    /// SP-core cycles per op with full logging.
    pub full_sp_cycles: u64,
    /// SP-core cycles per op with incremental logging.
    pub inc_sp_cycles: u64,
    /// pcommits per op, full logging.
    pub full_pcommits: f64,
    /// pcommits per op, incremental logging.
    pub inc_pcommits: f64,
    /// Store micro-ops per op (log volume proxy), full logging.
    pub full_stores: f64,
    /// Store micro-ops per op, incremental.
    pub inc_stores: f64,
}

/// Runs the full-vs-incremental logging ablation on the B-tree.
pub fn run_logging_comparison(exp: &Experiment) -> LoggingComparison {
    use rand::SeedableRng;
    let spec = BenchSpec::scaled(BenchId::BTree, exp.scale);
    let run = |incremental: bool| -> (spp_pmem::Trace, u64) {
        let mut env = spp_pmem::PmemEnv::new(Variant::LogPSf);
        let mut rng = rand::rngs::StdRng::seed_from_u64(exp.seed);
        env.set_recording(false);
        let mut w: Box<dyn spp_workloads::Workload> = if incremental {
            Box::new(spp_workloads::btree_inc::IncBTree::new())
        } else {
            Box::new(spp_workloads::btree::BTree::new())
        };
        w.setup(&mut env, &mut rng, spec.init_ops);
        let mut drv = spp_workloads::driver::Driver::new(&mut env, &mut rng);
        env.set_recording(true);
        for op in 0..spec.sim_ops {
            drv.before_op(&mut env);
            w.run_op(&mut env, &mut rng, op);
        }
        (env.take_trace(), spec.sim_ops)
    };
    let (full_trace, ops) = run(false);
    let (inc_trace, _) = run(true);
    let base = CpuConfig::baseline();
    let sp = CpuConfig::with_sp();
    let fb = simulate(&full_trace.events, &base);
    let fs = simulate(&full_trace.events, &sp);
    let ib = simulate(&inc_trace.events, &base);
    let is_ = simulate(&inc_trace.events, &sp);
    LoggingComparison {
        full_cycles: fb.cpu.cycles / ops,
        inc_cycles: ib.cpu.cycles / ops,
        full_sp_cycles: fs.cpu.cycles / ops,
        inc_sp_cycles: is_.cpu.cycles / ops,
        full_pcommits: full_trace.counts.pcommits as f64 / ops as f64,
        inc_pcommits: inc_trace.counts.pcommits as f64 / ops as f64,
        full_stores: full_trace.counts.stores as f64 / ops as f64,
        inc_stores: inc_trace.counts.stores as f64 / ops as f64,
    }
}

/// Runs one benchmark's `Log+P+Sf` build with the given flush
/// instruction (the §2.2 footnote ablation: `clwb` vs `clflushopt` vs
/// legacy `clflush`). Returns cycles per operation on the baseline and
/// SP cores.
pub fn run_flushmode(
    id: BenchId,
    mode: spp_pmem::FlushMode,
    exp: &Experiment,
) -> (u64, u64) {
    use rand::SeedableRng;
    let spec = BenchSpec::scaled(id, exp.scale);
    let mut env = spp_pmem::PmemEnv::new(Variant::LogPSf);
    env.set_flush_mode(mode);
    let mut rng = rand::rngs::StdRng::seed_from_u64(exp.seed);
    let mut w = spp_workloads::make_workload(id);
    env.set_recording(false);
    w.setup(&mut env, &mut rng, spec.init_ops);
    let mut drv = spp_workloads::driver::Driver::new(&mut env, &mut rng);
    env.set_recording(true);
    for op in 0..spec.sim_ops {
        drv.before_op(&mut env);
        w.run_op(&mut env, &mut rng, op);
    }
    let trace = env.take_trace();
    let base = simulate(&trace.events, &CpuConfig::baseline());
    let sp = simulate(&trace.events, &CpuConfig::with_sp());
    (base.cpu.cycles / spec.sim_ops, sp.cpu.cycles / spec.sim_ops)
}

/// One row of the multi-programmed interference study: worst-core
/// cycles/op at a core count, baseline vs SP.
#[derive(Debug, Clone, Copy)]
pub struct MulticoreRow {
    /// Number of cores sharing the memory controller.
    pub cores: usize,
    /// Worst core's cycles per operation without speculation.
    pub base_cycles_per_op: u64,
    /// Worst core's cycles per operation with SP256.
    pub sp_cycles_per_op: u64,
}

/// The multi-programmed extension study (the paper's future-work
/// direction): N copies of a benchmark, each on its own core with
/// private caches, sharing one bank-limited memory controller. Every
/// core's `pcommit` must drain every core's pending writes, so persist
/// barriers interfere across cores.
pub fn run_multicore(id: BenchId, exp: &Experiment, banks: usize) -> Vec<MulticoreRow> {
    use spp_cpu::MultiCore;
    let spec = BenchSpec::scaled(id, exp.scale);
    // Distinct seeds per core: independent programs.
    let traces: Vec<_> = (0..4u64)
        .map(|core| {
            run_benchmark(&RunConfig {
                variant: Variant::LogPSf,
                spec,
                seed: exp.seed ^ (core * 0x9E37),
                capture_base: false,
            })
            .trace
        })
        .collect();
    let mem = spp_mem::MemConfig { nvmm_banks: banks, ..spp_mem::MemConfig::paper() };
    let mut rows = Vec::new();
    for n in [1usize, 2, 4] {
        let refs: Vec<&[spp_pmem::Event]> =
            traces[..n].iter().map(|t| t.events.as_slice()).collect();
        let worst = |cfg: CpuConfig| -> u64 {
            MultiCore::new(&refs, cfg)
                .run()
                .iter()
                .map(|r| r.cpu.cycles)
                .max()
                .expect("at least one core")
                / spec.sim_ops
        };
        rows.push(MulticoreRow {
            cores: n,
            base_cycles_per_op: worst(CpuConfig { mem, ..CpuConfig::baseline() }),
            sp_cycles_per_op: worst(CpuConfig { mem, ..CpuConfig::with_sp() }),
        });
    }
    rows
}

/// Geometric mean of `(1 + overhead)` ratios, returned as an overhead
/// (the paper's aggregation for Fig. 8).
pub fn geomean_overhead(overheads: impl IntoIterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0f64, 0u32);
    for o in overheads {
        log_sum += (1.0 + o).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / f64::from(n)).exp() - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Experiment {
        Experiment { scale: 2000, seed: 1 }
    }

    #[test]
    fn geomean_matches_hand_example() {
        assert!(geomean_overhead([0.0, 0.0]).abs() < 1e-12);
        assert!((geomean_overhead([0.5, 0.5]) - 0.5).abs() < 1e-12);
        assert_eq!(geomean_overhead(std::iter::empty()), 0.0);
    }

    #[test]
    fn variant_ordering_holds_for_linked_list() {
        let r = run_bench(BenchId::LinkedList, &tiny());
        // More machinery, more cycles (2% slack: at this tiny scale the
        // handful of operations leaves room for cache-warming noise).
        assert!(r.log.sim.cpu.cycles * 102 >= r.base.sim.cpu.cycles * 100);
        assert!(r.logpsf.sim.cpu.cycles > r.logp.sim.cpu.cycles);
        // SP recovers most of the fence cost.
        assert!(r.sp256.cpu.cycles < r.logpsf.sim.cpu.cycles);
        // Committed micro-ops match the traces exactly.
        assert_eq!(r.sp256.cpu.committed_uops, r.logpsf.counts.total());
    }

    #[test]
    fn ssb_sweep_produces_all_design_points() {
        let pts = run_ssb_sweep(BenchId::LinkedList, &Experiment { scale: 5000, seed: 1 });
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0].0, 32);
        assert_eq!(pts[5].0, 1024);
    }
}
