//! # spp-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation
//! (§5-§6): for each Table 1 benchmark it records traces in all four
//! build variants, replays them through the pipeline with and without
//! speculative persistence, and prints the same rows/series the paper
//! reports. See `EXPERIMENTS.md` at the repository root for the
//! paper-vs-measured comparison.
//!
//! Two properties make the sweep fast without changing a single
//! number:
//!
//! * **Trace caching** ([`cache`]): a trace is a pure function of
//!   `(benchmark, variant, scale, seed, flush mode)`, so the harness
//!   records each one exactly once and shares the frozen event stream
//!   (`Arc<[Event]>`) across every simulator configuration that
//!   replays it.
//! * **Deterministic parallelism** ([`parallel`]): simulations are
//!   independent pure functions of `(trace, config)`, fanned out
//!   across worker threads with results collected in input order —
//!   `--jobs N` output is bit-identical to `--jobs 1`.
//!
//! The `repro` binary drives it:
//!
//! ```text
//! repro all --scale 50          # every figure at 1/50 of Table 1 sizing
//! repro fig8 --scale 200        # just the headline overhead figure
//! repro all --jobs 8            # same bytes on stdout, less wall time
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod crashfuzz;
pub mod faultsim;
pub mod journal;
pub mod json;
pub mod kv;
pub mod litmus;
pub mod multicore;
pub mod optimize;
pub mod parallel;
pub mod perfbench;
pub mod profile;
pub mod report;
pub mod schema;
pub mod soak;
pub mod source;
pub mod stream;
pub mod study;
pub mod supervisor;

pub use cache::{trace_bytes, CacheStats, TraceCache, TraceKey, TraceMemCap};
pub use journal::{Journal, JournalError};
pub use multicore::{run_multicore_study, MulticoreCell, MulticoreReport};
pub use parallel::run_indexed;
pub use perfbench::{LabeledPerfCell, PerfCell, PerfRecorder, PerfReport};
pub use supervisor::{CellFailure, CellOutcome, Supervisor};

use spp_cpu::{CpuConfig, SimResult, Simulator, SpConfig};
use spp_pmem::{Event, FlushMode, SharedTrace, TraceCounts, Variant};
use spp_workloads::{run_benchmark, BenchId, BenchSpec, RunConfig};

/// Replays `events` on `cpu` through the [`Simulator`] façade, panicking
/// on failure (the harness's recorded traces are known-good; a failure
/// here is a harness bug, not an input problem).
pub(crate) fn must_simulate(events: &[Event], cpu: &CpuConfig) -> SimResult {
    match Simulator::new(events).config(*cpu).run() {
        Ok(r) => r,
        Err(e) => panic!("simulation failed: {e}"),
    }
}

/// The lowercase variant key used in every machine-readable document
/// (`base`/`log`/`logp`/`logpsf`) — also what `repro` accepts on the
/// command line.
pub fn variant_key(v: Variant) -> &'static str {
    match v {
        Variant::Base => "base",
        Variant::Log => "log",
        Variant::LogP => "logp",
        Variant::LogPSf => "logpsf",
    }
}

/// Parses a [`variant_key`] (case-insensitive; `log+p`/`log+p+sf`
/// spellings accepted) back to its [`Variant`].
pub fn parse_variant(s: &str) -> Option<Variant> {
    match s.to_ascii_lowercase().as_str() {
        "base" => Some(Variant::Base),
        "log" => Some(Variant::Log),
        "logp" | "log+p" => Some(Variant::LogP),
        "logpsf" | "log+p+sf" => Some(Variant::LogPSf),
        _ => None,
    }
}

/// Harness-wide parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Experiment {
    /// Divisor applied to Table 1's `#InitOps`/`#SimOps` (1 = paper
    /// scale; the default harness uses 50).
    pub scale: u64,
    /// RNG seed shared by every run so operation streams match across
    /// variants.
    pub seed: u64,
}

impl Default for Experiment {
    fn default() -> Self {
        Experiment {
            scale: 50,
            seed: 0x5EED,
        }
    }
}

/// One variant's trace-and-timing outcome.
#[derive(Debug, Clone, Copy)]
pub struct VariantRun {
    /// Micro-op counts of the recorded trace.
    pub counts: TraceCounts,
    /// Pipeline results without speculation.
    pub sim: SimResult,
}

/// Everything measured for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct BenchRun {
    /// Which benchmark.
    pub id: BenchId,
    /// The actual (scaled) sizing used.
    pub spec: BenchSpec,
    /// `Base` build.
    pub base: VariantRun,
    /// `Log` build.
    pub log: VariantRun,
    /// `Log+P` build.
    pub logp: VariantRun,
    /// `Log+P+Sf` build.
    pub logpsf: VariantRun,
    /// `Log+P+Sf` trace on the SP256 core.
    pub sp256: SimResult,
}

impl BenchRun {
    /// Execution-time overhead of `cycles` relative to the `Base` build.
    pub fn overhead(&self, cycles: u64) -> f64 {
        cycles as f64 / self.base.sim.cpu.cycles as f64 - 1.0
    }
}

/// The per-benchmark simulations of the main sweep, in [`BenchRun`]
/// field order: the four build variants on the baseline core, then the
/// `Log+P+Sf` trace on the SP256 core.
const SUITE_SIMS: [(Variant, bool); 5] = [
    (Variant::Base, false),
    (Variant::Log, false),
    (Variant::LogP, false),
    (Variant::LogPSf, false),
    (Variant::LogPSf, true),
];

/// The SP design-choice ablation settings `(combine_barrier,
/// checkpoints)`, in report column order: full SP256, no combined
/// barrier opcode, then 1/2/8 checkpoints.
pub const ABLATION_SETTINGS: [(bool, usize); 5] =
    [(true, 4), (false, 4), (true, 1), (true, 2), (true, 8)];

/// The evaluation harness: one [`Experiment`], one [`TraceCache`], and
/// a worker-thread budget.
///
/// Every experiment entry point on this type pulls traces through the
/// shared cache (each trace is recorded exactly once per harness, no
/// matter how many figures replay it) and fans independent simulations
/// out over up to `jobs` threads via [`run_indexed`], which returns
/// results in input order — so the report bytes are identical at any
/// job count.
#[derive(Debug, Default)]
pub struct Harness {
    /// Scale and seed shared by every run.
    pub exp: Experiment,
    /// Maximum worker threads for independent jobs (0 and 1 both mean
    /// serial, on the caller's thread).
    pub jobs: usize,
    cache: TraceCache,
    perf: PerfRecorder,
}

impl Harness {
    /// A harness with an empty trace cache.
    pub fn new(exp: Experiment, jobs: usize) -> Self {
        Harness {
            exp,
            jobs,
            cache: TraceCache::new(),
            perf: PerfRecorder::default(),
        }
    }

    /// Trace-cache counter snapshot (recordings / cache hits / keys /
    /// bytes held).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Caps the bytes the trace cache may hold (`--trace-mem-cap`).
    pub fn set_trace_mem_cap(&self, cap: Option<u64>) {
        self.cache.set_mem_cap(cap);
    }

    /// The latched [`TraceMemCap`] violation, if the cache ever grew
    /// past its cap. `repro` checks this after every stage and fails
    /// the run with the typed error instead of letting resident trace
    /// memory grow unbounded.
    pub fn trace_mem_exceeded(&self) -> Option<TraceMemCap> {
        self.cache.mem_exceeded()
    }

    /// Per-key byte footprint of every recorded trace, heaviest first.
    pub fn trace_bytes_by_key(&self) -> Vec<(TraceKey, u64)> {
        self.cache.bytes_by_key()
    }

    /// Per-cell simulation throughput accumulated so far, in canonical
    /// order (feeds the `specpersist/perfbench-v1` record).
    pub fn perf_cells(&self) -> Vec<PerfCell> {
        self.perf.cells()
    }

    /// Labeled (non-Table-1) throughput cells accumulated so far — the
    /// KV storage-engine workload lands here.
    pub fn perf_labeled_cells(&self) -> Vec<perfbench::LabeledPerfCell> {
        self.perf.labeled_cells()
    }

    /// The perf recorder, for experiment code that drives
    /// [`Simulator`] directly (the probe-attached profile replays)
    /// and still wants its timings in the trajectory record.
    pub(crate) fn perf(&self) -> &PerfRecorder {
        &self.perf
    }

    /// The trace for `key`, recorded on first request and shared after.
    pub fn trace(&self, key: TraceKey) -> SharedTrace {
        self.cache.get(key)
    }

    /// Replays the keyed trace on `cpu`, timing the replay into the
    /// perf recorder (trace recording/cache time is deliberately
    /// excluded: the trajectory tracks the simulator core).
    fn sim(&self, key: TraceKey, cpu: &CpuConfig) -> (TraceCounts, SimResult) {
        let t = self.cache.get(key);
        let started = std::time::Instant::now();
        let sim = must_simulate(&t.events, cpu);
        self.perf
            .record(key.id, key.variant, sim.cpu.cycles, started.elapsed());
        (t.counts, sim)
    }

    /// `Base`-build cycles on the baseline core (the denominator of
    /// every overhead figure).
    fn base_cycles(&self, id: BenchId) -> u64 {
        self.sim(
            TraceKey::new(id, Variant::Base, &self.exp),
            &CpuConfig::baseline(),
        )
        .1
        .cpu
        .cycles
    }

    /// Runs the Fig. 8-12/14 sweep for the given benchmarks: all four
    /// variants on the baseline core, plus SP256 on the `Log+P+Sf`
    /// trace — 5 simulations per benchmark, all run as one flat job
    /// list.
    pub fn run_benches(&self, ids: &[BenchId]) -> Vec<BenchRun> {
        let sims: Vec<(BenchId, Variant, bool)> = ids
            .iter()
            .flat_map(|&id| SUITE_SIMS.iter().map(move |&(v, sp)| (id, v, sp)))
            .collect();
        let results = run_indexed(self.jobs, &sims, |_, &(id, variant, sp)| {
            let cpu = if sp {
                CpuConfig::with_sp()
            } else {
                CpuConfig::baseline()
            };
            self.sim(TraceKey::new(id, variant, &self.exp), &cpu)
        });
        ids.iter()
            .zip(results.chunks_exact(SUITE_SIMS.len()))
            .map(|(&id, r)| BenchRun {
                id,
                spec: BenchSpec::scaled(id, self.exp.scale),
                base: VariantRun {
                    counts: r[0].0,
                    sim: r[0].1,
                },
                log: VariantRun {
                    counts: r[1].0,
                    sim: r[1].1,
                },
                logp: VariantRun {
                    counts: r[2].0,
                    sim: r[2].1,
                },
                logpsf: VariantRun {
                    counts: r[3].0,
                    sim: r[3].1,
                },
                sp256: r[4].1,
            })
            .collect()
    }

    /// The main sweep for one benchmark.
    pub fn run_bench(&self, id: BenchId) -> BenchRun {
        self.run_benches(&[id])
            .pop()
            .expect("one bench in, one run out")
    }

    /// The main sweep for the whole Table 1 suite.
    pub fn run_suite(&self) -> Vec<BenchRun> {
        self.run_benches(&BenchId::ALL)
    }

    /// Fig. 13 rows for the given benchmarks: the `Log+P+Sf` trace on
    /// SP cores with each Table 3 SSB size, as `(entries,
    /// overhead_vs_base)` pairs.
    pub fn ssb_table(&self, ids: &[BenchId]) -> Vec<(BenchId, Vec<(usize, f64)>)> {
        let bases = run_indexed(self.jobs, ids, |_, &id| self.base_cycles(id));
        let points: Vec<(usize, usize)> = (0..ids.len())
            .flat_map(|bi| {
                spp_core::SSB_DESIGN_POINTS
                    .iter()
                    .map(move |&(e, _)| (bi, e))
            })
            .collect();
        let overheads = run_indexed(self.jobs, &points, |_, &(bi, entries)| {
            let cpu = CpuConfig {
                sp: Some(SpConfig::with_ssb_entries(entries)),
                ..CpuConfig::baseline()
            };
            let sim = self
                .sim(TraceKey::new(ids[bi], Variant::LogPSf, &self.exp), &cpu)
                .1;
            sim.cpu.cycles as f64 / bases[bi] as f64 - 1.0
        });
        ids.iter()
            .zip(overheads.chunks_exact(spp_core::SSB_DESIGN_POINTS.len()))
            .map(|(&id, os)| {
                let pts = spp_core::SSB_DESIGN_POINTS
                    .iter()
                    .zip(os)
                    .map(|(&(e, _), &o)| (e, o))
                    .collect();
                (id, pts)
            })
            .collect()
    }

    /// Fig. 13 for a single benchmark.
    pub fn run_ssb_sweep(&self, id: BenchId) -> Vec<(usize, f64)> {
        self.ssb_table(&[id])
            .pop()
            .expect("one bench in, one row out")
            .1
    }

    /// [`ABLATION_SETTINGS`] overheads vs `Base` for the given
    /// benchmarks, one row per benchmark.
    pub fn ablation_table(&self, ids: &[BenchId]) -> Vec<(BenchId, [f64; 5])> {
        let bases = run_indexed(self.jobs, ids, |_, &id| self.base_cycles(id));
        let cells: Vec<(usize, usize)> = (0..ids.len())
            .flat_map(|bi| (0..ABLATION_SETTINGS.len()).map(move |si| (bi, si)))
            .collect();
        let overheads = run_indexed(self.jobs, &cells, |_, &(bi, si)| {
            let (combine_barrier, checkpoints) = ABLATION_SETTINGS[si];
            let cpu = CpuConfig {
                sp: Some(SpConfig {
                    combine_barrier,
                    checkpoints,
                    ..SpConfig::paper_default()
                }),
                ..CpuConfig::baseline()
            };
            let sim = self
                .sim(TraceKey::new(ids[bi], Variant::LogPSf, &self.exp), &cpu)
                .1;
            sim.cpu.cycles as f64 / bases[bi] as f64 - 1.0
        });
        ids.iter()
            .zip(overheads.chunks_exact(ABLATION_SETTINGS.len()))
            .map(|(&id, os)| (id, [os[0], os[1], os[2], os[3], os[4]]))
            .collect()
    }

    /// Ablation: SP without the combined `sfence-pcommit-sfence` opcode
    /// and with a varying checkpoint count. Returns overhead vs `Base`.
    pub fn run_sp_ablation(&self, id: BenchId, combine_barrier: bool, checkpoints: usize) -> f64 {
        let base = self.base_cycles(id);
        let cpu = CpuConfig {
            sp: Some(SpConfig {
                combine_barrier,
                checkpoints,
                ..SpConfig::paper_default()
            }),
            ..CpuConfig::baseline()
        };
        let sim = self
            .sim(TraceKey::new(id, Variant::LogPSf, &self.exp), &cpu)
            .1;
        sim.cpu.cycles as f64 / base as f64 - 1.0
    }

    /// Flush-instruction ablation rows (§2.2 footnote) for the given
    /// benchmarks: per [`FlushMode`], cycles per operation on the
    /// baseline and SP cores.
    pub fn flushmode_table(&self, ids: &[BenchId]) -> Vec<(BenchId, Vec<(u64, u64)>)> {
        let cells: Vec<(BenchId, FlushMode, bool)> = ids
            .iter()
            .flat_map(|&id| {
                FlushMode::ALL
                    .iter()
                    .flat_map(move |&mode| [(id, mode, false), (id, mode, true)])
            })
            .collect();
        let cycles = run_indexed(self.jobs, &cells, |_, &(id, mode, sp)| {
            let cpu = if sp {
                CpuConfig::with_sp()
            } else {
                CpuConfig::baseline()
            };
            let key = TraceKey::with_flush_mode(id, Variant::LogPSf, &self.exp, mode);
            let sim = self.sim(key, &cpu).1;
            sim.cpu.cycles / BenchSpec::scaled(id, self.exp.scale).sim_ops
        });
        ids.iter()
            .zip(cycles.chunks_exact(2 * FlushMode::ALL.len()))
            .map(|(&id, per_mode)| (id, per_mode.chunks_exact(2).map(|c| (c[0], c[1])).collect()))
            .collect()
    }

    /// Flush-instruction ablation for one `(benchmark, mode)` pair:
    /// cycles per operation on the baseline and SP cores.
    pub fn run_flushmode(&self, id: BenchId, mode: FlushMode) -> (u64, u64) {
        let key = TraceKey::with_flush_mode(id, Variant::LogPSf, &self.exp, mode);
        let sims = run_indexed(self.jobs, &[false, true], |_, &sp| {
            let cpu = if sp {
                CpuConfig::with_sp()
            } else {
                CpuConfig::baseline()
            };
            self.sim(key, &cpu).1
        });
        let ops = BenchSpec::scaled(id, self.exp.scale).sim_ops;
        (sims[0].cpu.cycles / ops, sims[1].cpu.cycles / ops)
    }

    /// Runs the full-vs-incremental logging ablation on the B-tree.
    ///
    /// The incremental B-tree is a §3.2 what-if outside the Table 1
    /// suite, so its trace is recorded here rather than through the
    /// cache; the two recordings and four simulations still share the
    /// harness's worker budget.
    pub fn run_logging_comparison(&self) -> LoggingComparison {
        use rand::SeedableRng;
        let spec = BenchSpec::scaled(BenchId::BTree, self.exp.scale);
        let incs = [false, true];
        let traces = run_indexed(self.jobs, &incs, |_, &incremental| {
            let mut env = spp_pmem::PmemEnv::new(Variant::LogPSf);
            let mut rng = rand::rngs::StdRng::seed_from_u64(self.exp.seed);
            env.set_recording(false);
            let mut w: Box<dyn spp_workloads::Workload> = if incremental {
                Box::new(spp_workloads::btree_inc::IncBTree::new())
            } else {
                Box::new(spp_workloads::btree::BTree::new())
            };
            w.setup(&mut env, &mut rng, spec.init_ops);
            let mut drv = spp_workloads::driver::Driver::new(&mut env, &mut rng);
            env.set_recording(true);
            for op in 0..spec.sim_ops {
                drv.before_op(&mut env);
                w.run_op(&mut env, &mut rng, op);
            }
            env.take_trace()
        });
        let ops = spec.sim_ops;
        let cells = [(0usize, false), (0, true), (1, false), (1, true)];
        let sims = run_indexed(self.jobs, &cells, |_, &(ti, sp)| {
            let cpu = if sp {
                CpuConfig::with_sp()
            } else {
                CpuConfig::baseline()
            };
            must_simulate(&traces[ti].events, &cpu)
        });
        LoggingComparison {
            full_cycles: sims[0].cpu.cycles / ops,
            inc_cycles: sims[2].cpu.cycles / ops,
            full_sp_cycles: sims[1].cpu.cycles / ops,
            inc_sp_cycles: sims[3].cpu.cycles / ops,
            full_pcommits: traces[0].counts.pcommits as f64 / ops as f64,
            inc_pcommits: traces[1].counts.pcommits as f64 / ops as f64,
            full_stores: traces[0].counts.stores as f64 / ops as f64,
            inc_stores: traces[1].counts.stores as f64 / ops as f64,
        }
    }
}

/// Records one benchmark's trace in `variant` and simulates it on `cpu`
/// (fresh recording, no cache — the criterion benches use this to
/// measure end-to-end cost).
pub fn run_variant(
    id: BenchId,
    variant: Variant,
    exp: &Experiment,
    cpu: &CpuConfig,
) -> (TraceCounts, SimResult) {
    let out = run_benchmark(&RunConfig {
        variant,
        spec: BenchSpec::scaled(id, exp.scale),
        seed: exp.seed,
        capture_base: false,
    });
    let sim = must_simulate(&out.trace.events, cpu);
    (out.trace.counts, sim)
}

/// Serial convenience wrapper over [`Harness::run_bench`].
pub fn run_bench(id: BenchId, exp: &Experiment) -> BenchRun {
    Harness::new(*exp, 1).run_bench(id)
}

/// Serial convenience wrapper over [`Harness::run_suite`].
pub fn run_suite(exp: &Experiment) -> Vec<BenchRun> {
    Harness::new(*exp, 1).run_suite()
}

/// Serial convenience wrapper over [`Harness::run_ssb_sweep`].
pub fn run_ssb_sweep(id: BenchId, exp: &Experiment) -> Vec<(usize, f64)> {
    Harness::new(*exp, 1).run_ssb_sweep(id)
}

/// Serial convenience wrapper over [`Harness::run_sp_ablation`].
pub fn run_sp_ablation(
    id: BenchId,
    exp: &Experiment,
    combine_barrier: bool,
    checkpoints: usize,
) -> f64 {
    Harness::new(*exp, 1).run_sp_ablation(id, combine_barrier, checkpoints)
}

/// Comparison of full vs incremental logging on the B-tree (§3.2,
/// Figs. 4-5): cycles, pcommits and logged volume per operation, on the
/// baseline and SP cores.
#[derive(Debug, Clone, Copy)]
pub struct LoggingComparison {
    /// Baseline-core cycles per op with full logging.
    pub full_cycles: u64,
    /// Baseline-core cycles per op with incremental logging.
    pub inc_cycles: u64,
    /// SP-core cycles per op with full logging.
    pub full_sp_cycles: u64,
    /// SP-core cycles per op with incremental logging.
    pub inc_sp_cycles: u64,
    /// pcommits per op, full logging.
    pub full_pcommits: f64,
    /// pcommits per op, incremental logging.
    pub inc_pcommits: f64,
    /// Store micro-ops per op (log volume proxy), full logging.
    pub full_stores: f64,
    /// Store micro-ops per op, incremental.
    pub inc_stores: f64,
}

/// Serial convenience wrapper over [`Harness::run_logging_comparison`].
pub fn run_logging_comparison(exp: &Experiment) -> LoggingComparison {
    Harness::new(*exp, 1).run_logging_comparison()
}

/// Serial convenience wrapper over [`Harness::run_flushmode`].
pub fn run_flushmode(id: BenchId, mode: FlushMode, exp: &Experiment) -> (u64, u64) {
    Harness::new(*exp, 1).run_flushmode(id, mode)
}

/// Geometric mean of `(1 + overhead)` ratios, returned as an overhead
/// (the paper's aggregation for Fig. 8).
///
/// An overhead of −100% or beyond (ratio ≤ 0) has no finite logarithm;
/// such ratios are clamped to a tiny positive value so one pathological
/// input degrades the mean gracefully instead of poisoning it with NaN.
pub fn geomean_overhead(overheads: impl IntoIterator<Item = f64>) -> f64 {
    const MIN_RATIO: f64 = 1e-9;
    let (mut log_sum, mut n) = (0.0f64, 0u32);
    for o in overheads {
        log_sum += (1.0 + o).max(MIN_RATIO).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / f64::from(n)).exp() - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Experiment {
        Experiment {
            scale: 2000,
            seed: 1,
        }
    }

    #[test]
    fn geomean_matches_hand_example() {
        assert!(geomean_overhead([0.0, 0.0]).abs() < 1e-12);
        assert!((geomean_overhead([0.5, 0.5]) - 0.5).abs() < 1e-12);
        assert_eq!(geomean_overhead(std::iter::empty()), 0.0);
    }

    #[test]
    fn geomean_is_finite_for_pathological_overheads() {
        // A −100% overhead means "took zero cycles" — impossible in a
        // real run, but the aggregation must not turn it into NaN.
        for os in [vec![-1.0], vec![-1.5, 0.2], vec![0.1, -1.0, 0.3]] {
            let g = geomean_overhead(os.iter().copied());
            assert!(g.is_finite(), "geomean of {os:?} must be finite, got {g}");
            assert!(g >= -1.0, "geomean of {os:?} is an overhead, got {g}");
        }
        // And clamping must not disturb healthy inputs.
        assert!((geomean_overhead([0.5, 0.5]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn variant_ordering_holds_for_linked_list() {
        let r = run_bench(BenchId::LinkedList, &tiny());
        // The instrumentation ladder is structural, so it holds exactly
        // at any scale: each variant adds micro-ops (logging stores,
        // then flushes, then pcommit/fence pairs) on the same operation
        // stream.
        assert!(r.log.counts.total() > r.base.counts.total());
        assert!(r.logp.counts.total() > r.log.counts.total());
        assert!(r.logpsf.counts.total() > r.logp.counts.total());
        // Fences serialize retirement, so on identical cores the fenced
        // build can never be faster than the unfenced one — this pair
        // replays the *same structure* with strictly more ordering, so
        // it is deterministic even at tiny scales (unlike cross-variant
        // cycle ratios, whose traces differ block-for-block).
        assert!(r.logpsf.sim.cpu.cycles > r.logp.sim.cpu.cycles);
        // SP recovers most of the fence cost.
        assert!(r.sp256.cpu.cycles < r.logpsf.sim.cpu.cycles);
        // Committed micro-ops match the traces exactly.
        assert_eq!(r.sp256.cpu.committed_uops, r.logpsf.counts.total());
    }

    #[test]
    fn ssb_sweep_produces_all_design_points() {
        let pts = run_ssb_sweep(
            BenchId::LinkedList,
            &Experiment {
                scale: 5000,
                seed: 1,
            },
        );
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0].0, 32);
        assert_eq!(pts[5].0, 1024);
    }

    #[test]
    fn harness_records_each_suite_trace_exactly_once() {
        let h = Harness::new(
            Experiment {
                scale: 5000,
                seed: 1,
            },
            4,
        );
        let runs = h.run_suite();
        assert_eq!(runs.len(), 7);
        let s = h.cache_stats();
        // 7 benchmarks × 4 variants, despite 5 simulations each.
        assert_eq!(
            s.recordings, 28,
            "one recording per (bench, variant): {s:?}"
        );
        assert_eq!(s.entries, 28);
        assert_eq!(
            s.hits, 7,
            "the SP256 replay of each Log+P+Sf trace is a hit"
        );
        // A second full sweep records nothing new.
        h.run_suite();
        let s2 = h.cache_stats();
        assert_eq!(s2.recordings, 28, "re-running must not re-record: {s2:?}");
    }
}
