//! Streaming (chunked) trace recording and simulation.
//!
//! The whole-trace path (`record -> Vec<Event> -> simulate`) holds the
//! entire event stream in memory, so a 10M-op KV run would cost tens of
//! gigabytes. This module pipelines instead: a recorder thread runs the
//! KV workload and hands the trace over in fixed-size *chunks* through
//! a bounded queue; the simulator drains chunks as they arrive and
//! frees each one after replay. Peak memory is then a function of
//! `chunk_ops x queue depth`, **independent of trace length** — proven
//! by the [`spp_obs::MemGauge`] the pipeline threads through and by the
//! flat-memory test below.
//!
//! Backpressure and degradation:
//!
//! * The queue is a `sync_channel(depth)`: a recorder that outruns the
//!   simulator blocks instead of buffering unboundedly.
//! * A memory cap (`--trace-mem-cap`) turns "the next chunk would not
//!   fit" into either the typed [`StreamError::TraceMemCap`] — never an
//!   OOM abort — or, when a spill path is configured, graceful
//!   degradation: the chunk goes to a checksummed on-disk chunk file
//!   and only re-enters memory one chunk at a time on the consumer
//!   side. Spill records are length-prefixed and checksummed, so a torn
//!   tail (the recorder killed mid-write) is detected and reported, not
//!   replayed.
//!
//! Fidelity note: each chunk replays on a fresh pipeline, so a chunk
//! boundary acts as a full pipeline drain. That is a deliberate,
//! documented approximation — with `chunk_ops` pinned per study the
//! numbers are deterministic and comparable across configurations, and
//! the boundary cost is amortized over thousands of events per chunk.

use std::fmt;
use std::fs::File;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::mpsc;

use spp_cpu::{CpuConfig, Simulator};
use spp_obs::MemGauge;
use spp_pmem::{Event, FlushMode, PAddr, PmemEnv, Variant};
use spp_workloads::kv::{KvSpec, KvWorkload};

/// Magic opening every spill-file record (`b"SPPCHNK1"` as a little-
/// endian integer).
const SPILL_MAGIC: u64 = u64::from_le_bytes(*b"SPPCHNK1");

/// Bytes one encoded event occupies (tag + addr + aux + size + dep).
pub const EVENT_WIRE_BYTES: usize = 19;

/// In-memory footprint the pipeline accounts for one chunk of events.
pub fn chunk_bytes(events: &[Event]) -> u64 {
    std::mem::size_of_val(events) as u64
}

/// Why a streamed run could not complete. Every variant renders as one
/// line and maps to a non-zero `repro` exit — never a panic or abort.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StreamError {
    /// The next chunk would push held trace memory past the cap and no
    /// spill file is configured.
    TraceMemCap {
        /// The configured cap in bytes.
        cap: u64,
        /// Bytes held when the chunk was produced.
        held: u64,
        /// The chunk that did not fit.
        chunk: u64,
    },
    /// The spill file could not be written or read.
    SpillIo(String),
    /// A spill record failed its checksum or framing check (torn tail
    /// or bit damage); the record index is 0-based.
    SpillCorrupt {
        /// Which record failed.
        record: u64,
        /// What failed about it.
        detail: String,
    },
    /// A chunk's simulation degraded to a typed simulator error.
    Sim(String),
    /// The recorder thread died without sending its final summary.
    RecorderDied,
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::TraceMemCap { cap, held, chunk } => write!(
                f,
                "trace-mem-cap exceeded: {held} bytes held + {chunk} byte chunk > cap {cap} \
                 (no spill file configured)"
            ),
            StreamError::SpillIo(e) => write!(f, "spill file: {e}"),
            StreamError::SpillCorrupt { record, detail } => {
                write!(f, "spill record {record}: {detail}")
            }
            StreamError::Sim(e) => write!(f, "chunk simulation: {e}"),
            StreamError::RecorderDied => f.write_str("recorder thread died mid-stream"),
        }
    }
}

impl std::error::Error for StreamError {}

/// One streamed run's configuration.
#[derive(Debug, Clone)]
pub struct KvStreamSpec {
    /// Driver sizing (`ops` may be millions; that is the point).
    pub spec: KvSpec,
    /// Build variant to trace.
    pub variant: Variant,
    /// Flush instruction the build emits.
    pub flush_mode: FlushMode,
    /// Driver operations per chunk.
    pub chunk_ops: u64,
    /// Bounded-queue depth (chunks in flight between the threads).
    pub depth: usize,
    /// Cap on bytes of trace chunks held in memory; `None` = uncapped.
    pub mem_cap: Option<u64>,
    /// Where over-cap chunks spill; `None` makes an over-cap chunk the
    /// typed [`StreamError::TraceMemCap`] instead.
    pub spill: Option<PathBuf>,
}

impl KvStreamSpec {
    /// A streamed run of `spec` with the default chunking (4096 ops per
    /// chunk, 2 chunks in flight, no cap).
    pub fn new(spec: KvSpec, variant: Variant) -> Self {
        KvStreamSpec {
            spec,
            variant,
            flush_mode: FlushMode::default(),
            chunk_ops: 4096,
            depth: 2,
            mem_cap: None,
            spill: None,
        }
    }
}

/// What a completed streamed run measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamReport {
    /// Driver ops executed.
    pub ops: u64,
    /// Chunks simulated.
    pub chunks: u64,
    /// Chunks that went through the spill file.
    pub spilled_chunks: u64,
    /// Events across all chunks.
    pub events: u64,
    /// Summed simulated cycles (per-chunk fresh pipeline; see the
    /// module docs for the boundary approximation).
    pub cycles: u64,
    /// Summed committed micro-ops.
    pub committed_uops: u64,
    /// Peak bytes of trace chunks held in memory at once, as measured
    /// by the gauge. Timing-dependent (how many chunks coexist depends
    /// on thread scheduling) — never let it reach stdout; use
    /// [`StreamReport::peak_bound`] for deterministic output.
    pub peak_bytes: u64,
    /// Deterministic upper bound on `peak_bytes`: the largest sum of
    /// any `depth + 2` consecutive chunks (the queue, the chunk being
    /// simulated, and the chunk the recorder holds pre-send). A pure
    /// function of the spec, so it is the value journals and goldens
    /// carry.
    pub peak_bound: u64,
    /// Live keys in the engine when the run finished.
    pub final_count: u64,
    /// WAL records appended over the whole run.
    pub mutations: u64,
}

/// Sliding-window tracker for [`StreamReport::peak_bound`]: chunks are
/// produced and consumed in recording order, so every set of
/// simultaneously-held chunks is a window of at most `cap` consecutive
/// ones.
#[derive(Debug)]
pub(crate) struct PeakBound {
    win: std::collections::VecDeque<u64>,
    sum: u64,
    cap: usize,
    max: u64,
}

impl PeakBound {
    pub(crate) fn new(depth: usize) -> Self {
        PeakBound {
            win: std::collections::VecDeque::new(),
            sum: 0,
            cap: depth.max(1) + 2,
            max: 0,
        }
    }

    pub(crate) fn push(&mut self, bytes: u64) {
        self.win.push_back(bytes);
        self.sum += bytes;
        if self.win.len() > self.cap {
            self.sum -= self.win.pop_front().unwrap_or(0);
        }
        self.max = self.max.max(self.sum);
    }

    /// The largest window sum seen so far.
    pub(crate) fn max(&self) -> u64 {
        self.max
    }
}

/// What the recorder sends per chunk.
pub(crate) enum ChunkMsg {
    /// The chunk, in memory (already gauged in).
    Inline(Vec<Event>),
    /// The chunk went to the spill file; read the next record.
    Spilled,
    /// Recording finished; final driver facts.
    Done {
        ops: u64,
        final_count: u64,
        mutations: u64,
    },
    /// Recording stopped on a typed error.
    Fail(StreamError),
}

// --- event wire codec -------------------------------------------------

/// Encodes events into the fixed-width spill wire format.
pub fn encode_events(events: &[Event]) -> Vec<u8> {
    let mut out = Vec::with_capacity(events.len() * EVENT_WIRE_BYTES);
    for ev in events {
        let (tag, addr, aux, size, dep): (u8, u64, u64, u8, u8) = match *ev {
            Event::Compute(n) => (0, 0, u64::from(n), 0, 0),
            Event::Load { addr, size, dep } => (1, addr.raw(), 0, size, u8::from(dep)),
            Event::Store { addr, size, value } => (2, addr.raw(), value, size, 0),
            Event::Clwb { addr } => (3, addr.raw(), 0, 0, 0),
            Event::ClflushOpt { addr } => (4, addr.raw(), 0, 0, 0),
            Event::Clflush { addr } => (5, addr.raw(), 0, 0, 0),
            Event::Pcommit => (6, 0, 0, 0, 0),
            Event::Sfence => (7, 0, 0, 0, 0),
            Event::Mfence => (8, 0, 0, 0, 0),
            Event::TxBegin(id) => (9, 0, id, 0, 0),
            Event::TxEnd(id) => (10, 0, id, 0, 0),
        };
        out.push(tag);
        out.extend_from_slice(&addr.to_le_bytes());
        out.extend_from_slice(&aux.to_le_bytes());
        out.push(size);
        out.push(dep);
    }
    out
}

/// Decodes the spill wire format back into events.
///
/// # Errors
///
/// Returns a one-line description of the first malformed record.
pub fn decode_events(bytes: &[u8]) -> Result<Vec<Event>, String> {
    if !bytes.len().is_multiple_of(EVENT_WIRE_BYTES) {
        return Err(format!(
            "payload length {} is not a multiple of {EVENT_WIRE_BYTES}",
            bytes.len()
        ));
    }
    let mut out = Vec::with_capacity(bytes.len() / EVENT_WIRE_BYTES);
    for (i, rec) in bytes.chunks_exact(EVENT_WIRE_BYTES).enumerate() {
        let tag = rec[0];
        let addr = u64::from_le_bytes(rec[1..9].try_into().map_err(|_| "short record")?);
        let aux = u64::from_le_bytes(rec[9..17].try_into().map_err(|_| "short record")?);
        let size = rec[17];
        let dep = rec[18] != 0;
        let addr = PAddr::new(addr);
        out.push(match tag {
            0 => Event::Compute(
                u32::try_from(aux)
                    .map_err(|_| format!("event {i}: compute count {aux} overflows"))?,
            ),
            1 => Event::Load { addr, size, dep },
            2 => Event::Store {
                addr,
                size,
                value: aux,
            },
            3 => Event::Clwb { addr },
            4 => Event::ClflushOpt { addr },
            5 => Event::Clflush { addr },
            6 => Event::Pcommit,
            7 => Event::Sfence,
            8 => Event::Mfence,
            9 => Event::TxBegin(aux),
            10 => Event::TxEnd(aux),
            t => return Err(format!("event {i}: unknown tag {t}")),
        });
    }
    Ok(out)
}

// --- spill file -------------------------------------------------------

/// Appends one checksummed spill record:
/// `[magic][payload_len][hash64(payload)][payload]`.
fn spill_write(file: &mut File, events: &[Event]) -> Result<(), StreamError> {
    let payload = encode_events(events);
    let mut rec = Vec::with_capacity(24 + payload.len());
    rec.extend_from_slice(&SPILL_MAGIC.to_le_bytes());
    rec.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    rec.extend_from_slice(&spp_pmem::hash64(&payload).to_le_bytes());
    rec.extend_from_slice(&payload);
    file.write_all(&rec)
        .and_then(|()| file.flush())
        .map_err(|e| StreamError::SpillIo(e.to_string()))
}

/// Sequential reader over a spill file's records.
#[derive(Debug)]
pub(crate) struct SpillReader {
    file: File,
    record: u64,
}

impl SpillReader {
    pub(crate) fn open(path: &Path) -> Result<Self, StreamError> {
        let mut file = File::open(path).map_err(|e| StreamError::SpillIo(e.to_string()))?;
        file.seek(SeekFrom::Start(0))
            .map_err(|e| StreamError::SpillIo(e.to_string()))?;
        Ok(SpillReader { file, record: 0 })
    }

    /// Reads and verifies the next record. A short read or checksum
    /// mismatch is the torn-tail case: typed, never silently replayed.
    pub(crate) fn next(&mut self) -> Result<Vec<Event>, StreamError> {
        let corrupt = |detail: String| StreamError::SpillCorrupt {
            record: self.record,
            detail,
        };
        let mut header = [0u8; 24];
        self.file
            .read_exact(&mut header)
            .map_err(|e| corrupt(format!("truncated header ({e})")))?;
        let magic = u64::from_le_bytes(header[0..8].try_into().unwrap_or_default());
        if magic != SPILL_MAGIC {
            return Err(corrupt(format!("bad magic {magic:#018x}")));
        }
        let len = u64::from_le_bytes(header[8..16].try_into().unwrap_or_default());
        let want_hash = u64::from_le_bytes(header[16..24].try_into().unwrap_or_default());
        let mut payload = vec![0u8; len as usize];
        self.file
            .read_exact(&mut payload)
            .map_err(|e| corrupt(format!("truncated payload ({e})")))?;
        if spp_pmem::hash64(&payload) != want_hash {
            return Err(corrupt("checksum mismatch".to_string()));
        }
        self.record += 1;
        decode_events(&payload).map_err(|d| StreamError::SpillCorrupt {
            record: self.record - 1,
            detail: d,
        })
    }
}

// --- the pipeline -----------------------------------------------------

/// The recorder half of the chunked pipeline: runs the KV workload,
/// hands each chunk over through `tx` (inline when it fits under the
/// gauge cap, via the spill file when it does not), and finishes with
/// [`ChunkMsg::Done`] or a typed [`ChunkMsg::Fail`]. Owned by
/// [`crate::source::StreamingKvSource`], which spawns it on its own
/// thread; `run_kv_streamed` consumes it through the
/// [`crate::source::TraceSource`] trait.
pub(crate) fn record_chunks(
    sspec: &KvStreamSpec,
    gauge: &MemGauge,
    tx: &mpsc::SyncSender<ChunkMsg>,
) {
    let mut env = PmemEnv::new(sspec.variant);
    env.set_flush_mode(sspec.flush_mode);
    let mut w = KvWorkload::new(sspec.spec);
    env.set_recording(false);
    w.setup(&mut env);
    env.set_recording(true);
    let mut spill_file: Option<File> = None;
    let mut op = 0u64;
    while op < sspec.spec.ops {
        let end = (op + sspec.chunk_ops).min(sspec.spec.ops);
        while op < end {
            w.run_op(&mut env, op);
            op += 1;
        }
        let events = env.take_trace().events;
        if events.is_empty() {
            continue;
        }
        let bytes = chunk_bytes(&events);
        let over_cap = sspec
            .mem_cap
            .is_some_and(|cap| gauge.current() + bytes > cap);
        if over_cap {
            match &sspec.spill {
                Some(path) => {
                    if spill_file.is_none() {
                        match File::create(path) {
                            Ok(f) => spill_file = Some(f),
                            Err(e) => {
                                let _ =
                                    tx.send(ChunkMsg::Fail(StreamError::SpillIo(e.to_string())));
                                return;
                            }
                        }
                    }
                    let f = spill_file.as_mut().unwrap_or_else(|| unreachable!());
                    if let Err(e) = spill_write(f, &events) {
                        let _ = tx.send(ChunkMsg::Fail(e));
                        return;
                    }
                    drop(events);
                    if tx.send(ChunkMsg::Spilled).is_err() {
                        return;
                    }
                }
                None => {
                    let _ = tx.send(ChunkMsg::Fail(StreamError::TraceMemCap {
                        cap: sspec.mem_cap.unwrap_or(0),
                        held: gauge.current(),
                        chunk: bytes,
                    }));
                    return;
                }
            }
        } else {
            gauge.acquire(bytes);
            if tx.send(ChunkMsg::Inline(events)).is_err() {
                return;
            }
        }
    }
    let _ = tx.send(ChunkMsg::Done {
        ops: op,
        final_count: w.engine().count(),
        mutations: w.stats().mutations,
    });
}

/// Runs a KV workload through the chunked recorder/simulator pipeline.
///
/// Deterministic: every report field except the gauge-measured
/// [`StreamReport::peak_bytes`] is a pure function of `(sspec, cpu)` —
/// chunks are simulated strictly in recording order, and thread
/// interleaving only affects wall time and how many chunks happen to
/// coexist (always `<= peak_bound`).
///
/// # Errors
///
/// Returns the typed [`StreamError`] when the cap trips with no spill
/// file, the spill file tears, or a chunk's simulation degrades.
pub fn run_kv_streamed(sspec: &KvStreamSpec, cpu: &CpuConfig) -> Result<StreamReport, StreamError> {
    use crate::source::{StreamingKvSource, TraceSource as _};

    let mut src = StreamingKvSource::record(sspec.clone());
    let gauge = src.gauge();
    let mut report = StreamReport {
        ops: 0,
        chunks: 0,
        spilled_chunks: 0,
        events: 0,
        cycles: 0,
        committed_uops: 0,
        peak_bytes: 0,
        peak_bound: 0,
        final_count: 0,
        mutations: 0,
    };
    let outcome = loop {
        match src.next_chunk() {
            Ok(Some(events)) => {
                if let Err(e) = simulate_chunk(&events, cpu, &mut report) {
                    break Err(e);
                }
            }
            Ok(None) => break Ok(()),
            Err(e) => break Err(e),
        }
    };
    outcome?;
    let stats = src.stats().ok_or(StreamError::RecorderDied)?;
    report.ops = stats.ops;
    report.final_count = stats.final_count;
    report.mutations = stats.mutations;
    report.spilled_chunks = src.spilled_chunks();
    report.peak_bound = src.peak_bound();
    // Join the recorder before reading the gauge peak so late
    // acquisitions are counted, exactly as the scoped join did.
    drop(src);
    report.peak_bytes = gauge.peak();
    Ok(report)
}

/// Replays one chunk on a fresh pipeline, folding its numbers into the
/// report.
fn simulate_chunk(
    events: &[Event],
    cpu: &CpuConfig,
    report: &mut StreamReport,
) -> Result<(), StreamError> {
    match Simulator::new(events).config(*cpu).run() {
        Ok(r) => {
            report.chunks += 1;
            report.events += events.len() as u64;
            report.cycles += r.cpu.cycles;
            report.committed_uops += r.cpu.committed_uops;
            Ok(())
        }
        Err(e) => Err(StreamError::Sim(e.to_string())),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn tiny_spec(ops: u64) -> KvSpec {
        KvSpec {
            init_keys: 32,
            ops,
            ckpt_every: 8,
            wal_cap: 16,
            seed: 0xBEEF,
            mix: spp_workloads::kv::KvMix::MIXED,
        }
    }

    fn all_event_kinds() -> Vec<Event> {
        vec![
            Event::Compute(7),
            Event::Load {
                addr: PAddr::new(0x1234),
                size: 8,
                dep: true,
            },
            Event::Load {
                addr: PAddr::new(0x40),
                size: 1,
                dep: false,
            },
            Event::Store {
                addr: PAddr::new(0xFFFF_FFFF_0000),
                size: 8,
                value: u64::MAX,
            },
            Event::Clwb {
                addr: PAddr::new(64),
            },
            Event::ClflushOpt {
                addr: PAddr::new(128),
            },
            Event::Clflush {
                addr: PAddr::new(192),
            },
            Event::Pcommit,
            Event::Sfence,
            Event::Mfence,
            Event::TxBegin(3),
            Event::TxEnd(3),
        ]
    }

    #[test]
    fn codec_round_trips_every_event_kind() {
        let events = all_event_kinds();
        let wire = encode_events(&events);
        assert_eq!(wire.len(), events.len() * EVENT_WIRE_BYTES);
        assert_eq!(decode_events(&wire).unwrap(), events);
    }

    #[test]
    fn codec_rejects_damage() {
        let wire = encode_events(&all_event_kinds());
        assert!(decode_events(&wire[..wire.len() - 1]).is_err(), "short");
        let mut bad_tag = wire.clone();
        bad_tag[0] = 99;
        assert!(decode_events(&bad_tag).unwrap_err().contains("tag"));
    }

    #[test]
    fn streamed_run_is_deterministic_and_chunked() {
        let s = KvStreamSpec {
            chunk_ops: 50,
            ..KvStreamSpec::new(tiny_spec(220), Variant::LogPSf)
        };
        let a = run_kv_streamed(&s, &CpuConfig::baseline()).unwrap();
        let b = run_kv_streamed(&s, &CpuConfig::baseline()).unwrap();
        // Everything but the gauge-measured peak is deterministic.
        assert_eq!(
            StreamReport { peak_bytes: 0, ..a },
            StreamReport { peak_bytes: 0, ..b },
            "same spec, same report"
        );
        assert_eq!(a.ops, 220);
        assert_eq!(a.chunks, 5, "220 ops at 50/chunk is 5 chunks");
        assert_eq!(a.spilled_chunks, 0);
        assert!(a.cycles > 0 && a.events > 0 && a.committed_uops > 0);
        assert!(a.peak_bytes > 0 && a.peak_bytes <= a.peak_bound);
    }

    #[test]
    fn peak_memory_is_flat_in_trace_length() {
        // 4x the ops, same chunking: the whole point of streaming.
        let short = KvStreamSpec {
            chunk_ops: 64,
            depth: 2,
            ..KvStreamSpec::new(tiny_spec(256), Variant::LogPSf)
        };
        let long = KvStreamSpec {
            chunk_ops: 64,
            depth: 2,
            ..KvStreamSpec::new(tiny_spec(1024), Variant::LogPSf)
        };
        let a = run_kv_streamed(&short, &CpuConfig::baseline()).unwrap();
        let b = run_kv_streamed(&long, &CpuConfig::baseline()).unwrap();
        assert_eq!(b.ops, 4 * a.ops);
        assert!(b.events > 3 * a.events, "more ops, more events");
        // Peak held chunk bytes must not grow with trace length: the
        // deterministic bound covers at most depth + 2 chunks no matter
        // how many the run produces.
        let chunk_ceiling = 2 * a.peak_bound;
        assert!(
            b.peak_bound <= chunk_ceiling,
            "peak bound {} grew past {} on a 4x-longer trace",
            b.peak_bound,
            chunk_ceiling
        );
        assert!(a.peak_bytes <= a.peak_bound && b.peak_bytes <= b.peak_bound);
    }

    #[test]
    fn mem_cap_without_spill_is_a_typed_error() {
        let s = KvStreamSpec {
            chunk_ops: 64,
            mem_cap: Some(64),
            ..KvStreamSpec::new(tiny_spec(128), Variant::LogPSf)
        };
        let e = run_kv_streamed(&s, &CpuConfig::baseline()).unwrap_err();
        assert!(
            matches!(e, StreamError::TraceMemCap { cap: 64, .. }),
            "{e:?}"
        );
        assert!(e.to_string().contains("trace-mem-cap"));
    }

    #[test]
    fn mem_cap_with_spill_degrades_gracefully_to_the_same_numbers() {
        let mut spill = std::env::temp_dir();
        spill.push(format!("spp-stream-spill-{}.bin", std::process::id()));
        let _ = std::fs::remove_file(&spill);
        let base = KvStreamSpec {
            chunk_ops: 50,
            ..KvStreamSpec::new(tiny_spec(300), Variant::LogPSf)
        };
        let capped = KvStreamSpec {
            mem_cap: Some(64),
            spill: Some(spill.clone()),
            ..base.clone()
        };
        let want = run_kv_streamed(&base, &CpuConfig::baseline()).unwrap();
        let got = run_kv_streamed(&capped, &CpuConfig::baseline()).unwrap();
        assert!(got.spilled_chunks > 0, "cap must force spilling");
        assert_eq!(got.chunks, want.chunks);
        assert_eq!(
            (got.cycles, got.events, got.committed_uops, got.final_count),
            (
                want.cycles,
                want.events,
                want.committed_uops,
                want.final_count
            ),
            "spilling must not change the simulation"
        );
        let _ = std::fs::remove_file(&spill);
    }

    #[test]
    fn torn_spill_tail_is_detected() {
        let mut p = std::env::temp_dir();
        p.push(format!("spp-stream-torn-{}.bin", std::process::id()));
        let events = all_event_kinds();
        {
            let mut f = File::create(&p).unwrap();
            spill_write(&mut f, &events).unwrap();
            spill_write(&mut f, &events).unwrap();
        }
        // Sanity: both records read back.
        let mut r = SpillReader::open(&p).unwrap();
        assert_eq!(r.next().unwrap(), events);
        assert_eq!(r.next().unwrap(), events);
        // Tear the tail mid-payload of record 1.
        let full = std::fs::read(&p).unwrap();
        std::fs::write(&p, &full[..full.len() - 5]).unwrap();
        let mut r = SpillReader::open(&p).unwrap();
        assert_eq!(r.next().unwrap(), events, "intact record still reads");
        let e = r.next().unwrap_err();
        assert!(
            matches!(e, StreamError::SpillCorrupt { record: 1, .. }),
            "{e:?}"
        );
        // Bit damage inside a payload is a checksum mismatch.
        let mut damaged = full.clone();
        let n = damaged.len();
        damaged[n - 10] ^= 0x40;
        std::fs::write(&p, &damaged).unwrap();
        let mut r = SpillReader::open(&p).unwrap();
        assert_eq!(r.next().unwrap(), events);
        let e = r.next().unwrap_err();
        assert!(e.to_string().contains("checksum"), "{e}");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn every_error_renders_as_one_line() {
        let errors = [
            StreamError::TraceMemCap {
                cap: 1,
                held: 2,
                chunk: 3,
            },
            StreamError::SpillIo("denied".into()),
            StreamError::SpillCorrupt {
                record: 4,
                detail: "bad magic".into(),
            },
            StreamError::Sim("wedged".into()),
            StreamError::RecorderDied,
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty() && !s.contains('\n'), "{e:?} renders {s:?}");
        }
    }
}
