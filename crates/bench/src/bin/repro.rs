//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <command> [--scale N] [--seed S]
//!
//! Commands:
//!   all        every table and figure (plus the ablation study)
//!   table1 | table2 | table3
//!   fig8 | fig9 | fig10 | fig11 | fig12 | fig13 | fig14
//!   ablation   SP design-choice sensitivity (beyond the paper)
//!   incremental  full vs incremental logging on the B-tree (§3.2)
//!   flushmode  clwb vs clflushopt vs clflush (§2.2 footnote)
//!   trace <BENCH> <VARIANT>  inspect one recorded trace (uop mix)
//!   json       run the suite and print machine-readable JSON
//!   multicore  multi-programmed persist interference (future work)
//!
//! Options:
//!   --scale N  divide Table 1's op counts by N (default 50; 1 = paper)
//!   --seed S   RNG seed (default 0x5EED)
//! ```

use std::process::ExitCode;

use spp_bench::report;
use spp_bench::{run_suite, Experiment};

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <all|table1|table2|table3|fig8..fig14|ablation|incremental|flushmode|trace|json|multicore> [--scale N] [--seed S]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else { return usage() };
    let mut exp = Experiment::default();
    let mut positional: Vec<String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                exp.scale = v;
                i += 2;
            }
            "--seed" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                exp.seed = v;
                i += 2;
            }
            other => {
                positional.push(other.to_string());
                i += 1;
            }
        }
    }
    if exp.scale == 0 {
        eprintln!("--scale must be at least 1");
        return ExitCode::FAILURE;
    }

    let needs_suite = matches!(
        cmd.as_str(),
        "all" | "fig8" | "fig9" | "fig10" | "fig11" | "fig12" | "fig14" | "json"
    );
    let runs = if needs_suite {
        eprintln!("# running suite at scale 1/{} (seed {:#x})...", exp.scale, exp.seed);
        run_suite(&exp)
    } else {
        Vec::new()
    };

    match cmd.as_str() {
        "all" => {
            print!("{}", report::table1(&exp));
            print!("{}", report::table2());
            print!("{}", report::table3());
            print!("{}", report::fig8(&runs));
            print!("{}", report::fig9(&runs));
            print!("{}", report::fig10(&runs));
            print!("{}", report::fig11(&runs));
            print!("{}", report::fig12(&runs));
            eprintln!("# running Fig. 13 SSB sweep...");
            print!("{}", report::fig13(&exp));
            print!("{}", report::fig14(&runs));
            eprintln!("# running ablation...");
            print!("{}", report::ablation(&exp));
            eprintln!("# running logging comparison...");
            print!("{}", report::incremental(&exp));
            eprintln!("# running flush-mode ablation...");
            print!("{}", report::flushmode(&exp));
            eprintln!("# running multicore study...");
            print!("{}", report::multicore(&exp));
        }
        "table1" => print!("{}", report::table1(&exp)),
        "table2" => print!("{}", report::table2()),
        "table3" => print!("{}", report::table3()),
        "fig8" => print!("{}", report::fig8(&runs)),
        "fig9" => print!("{}", report::fig9(&runs)),
        "fig10" => print!("{}", report::fig10(&runs)),
        "fig11" => print!("{}", report::fig11(&runs)),
        "fig12" => print!("{}", report::fig12(&runs)),
        "fig13" => print!("{}", report::fig13(&exp)),
        "fig14" => print!("{}", report::fig14(&runs)),
        "ablation" => print!("{}", report::ablation(&exp)),
        "incremental" => print!("{}", report::incremental(&exp)),
        "flushmode" => print!("{}", report::flushmode(&exp)),
        "json" => println!("{}", spp_bench::json::suite_json(&runs)),
        "multicore" => print!("{}", report::multicore(&exp)),
        "trace" => return trace_cmd(&positional, &exp),
        _ => return usage(),
    }
    ExitCode::SUCCESS
}

/// `repro trace <BENCH> <VARIANT>`: record one trace and print its
/// micro-op mix and per-operation averages.
fn trace_cmd(positional: &[String], exp: &Experiment) -> ExitCode {
    use spp_pmem::Variant;
    use spp_workloads::{run_benchmark, BenchId, BenchSpec, RunConfig};
    let (Some(bench), Some(variant)) = (positional.first(), positional.get(1)) else {
        eprintln!("usage: repro trace <GH|HM|LL|SS|AT|BT|RT> <base|log|logp|logpsf> [--scale N]");
        return ExitCode::FAILURE;
    };
    let Some(id) = BenchId::ALL.iter().copied().find(|b| {
        b.abbrev().eq_ignore_ascii_case(bench)
    }) else {
        eprintln!("unknown benchmark {bench:?}");
        return ExitCode::FAILURE;
    };
    let variant = match variant.to_ascii_lowercase().as_str() {
        "base" => Variant::Base,
        "log" => Variant::Log,
        "logp" | "log+p" => Variant::LogP,
        "logpsf" | "log+p+sf" => Variant::LogPSf,
        other => {
            eprintln!("unknown variant {other:?}");
            return ExitCode::FAILURE;
        }
    };
    let spec = BenchSpec::scaled(id, exp.scale);
    let out = run_benchmark(&RunConfig { variant, spec, seed: exp.seed, capture_base: false });
    let c = out.trace.counts;
    let ops = spec.sim_ops;
    println!("{} / {} at scale 1/{} ({} ops recorded)", id.name(), variant, exp.scale, ops);
    println!("{:<22} {:>12} {:>10}", "class", "micro-ops", "per op");
    for (name, v) in [
        ("compute", c.compute),
        ("loads", c.loads),
        ("stores", c.stores),
        ("flushes (clwb/...)", c.flushes),
        ("pcommits", c.pcommits),
        ("fences", c.fences),
    ] {
        println!("{:<22} {:>12} {:>10.1}", name, v, v as f64 / ops as f64);
    }
    println!("{:<22} {:>12} {:>10.1}", "TOTAL", c.total(), c.total() as f64 / ops as f64);
    println!("transactions: {}", c.transactions);
    ExitCode::SUCCESS
}
