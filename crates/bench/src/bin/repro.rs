//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <command> [--scale N] [--seed S] [--jobs J]
//!
//! Commands:
//!   all        every table and figure (plus the ablation study)
//!   table1 | table2 | table3
//!   fig8 | fig9 | fig10 | fig11 | fig12 | fig13 | fig14
//!   ablation   SP design-choice sensitivity (beyond the paper)
//!   incremental  full vs incremental logging on the B-tree (§3.2)
//!   flushmode  clwb vs clflushopt vs clflush (§2.2 footnote)
//!   trace <BENCH> <VARIANT>  inspect one recorded trace (uop mix)
//!   json       run the suite and print machine-readable JSON
//!   multicore  multi-programmed persist interference (future work)
//!   crashfuzz [all|log|logp|logpsf]  crash-consistency fuzzing:
//!              Log+P+Sf must recover at every crash point/reordering,
//!              Log and Log+P must each yield a minimized inconsistency
//!              witness; exits non-zero if either direction fails
//!
//! Options:
//!   --scale N  divide Table 1's op counts by N (default 50; 1 = paper)
//!   --seed S   RNG seed (default 0x5EED)
//!   --jobs J   worker threads (default: all cores; 1 = serial)
//!
//! Every trace is recorded exactly once per invocation and shared
//! across all simulator configurations (the `repro all` sweep replays
//! most traces several times). `--jobs` only changes wall time: the
//! report on stdout is byte-identical at every job count; stage
//! timings go to stderr.
//! ```

use std::process::ExitCode;
use std::time::Instant;

use spp_bench::report;
use spp_bench::{Experiment, Harness};

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <all|table1|table2|table3|fig8..fig14|ablation|incremental|flushmode|trace|json|multicore|crashfuzz> [--scale N] [--seed S] [--jobs J]"
    );
    ExitCode::FAILURE
}

/// Runs one evaluation stage, reporting wall time and throughput on
/// stderr (`sims` counts the simulator replays the stage issues; 0
/// suppresses the rate). Stdout stays byte-identical across `--jobs`.
fn staged<T>(label: &str, sims: usize, f: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let out = f();
    let dt = t0.elapsed().as_secs_f64();
    if sims > 0 {
        eprintln!(
            "# {label}: {sims} sims in {dt:.2}s ({:.1} sims/s)",
            sims as f64 / dt.max(1e-9)
        );
    } else {
        eprintln!("# {label}: {dt:.2}s");
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        return usage();
    };
    let mut exp = Experiment::default();
    let mut jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut positional: Vec<String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                exp.scale = v;
                i += 2;
            }
            "--seed" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                exp.seed = v;
                i += 2;
            }
            "--jobs" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                jobs = v;
                i += 2;
            }
            other => {
                positional.push(other.to_string());
                i += 1;
            }
        }
    }
    if exp.scale == 0 {
        eprintln!("--scale must be at least 1");
        return ExitCode::FAILURE;
    }
    if jobs == 0 {
        eprintln!("--jobs must be at least 1");
        return ExitCode::FAILURE;
    }

    let harness = Harness::new(exp, jobs);
    let t0 = Instant::now();

    let needs_suite = matches!(
        cmd.as_str(),
        "all" | "fig8" | "fig9" | "fig10" | "fig11" | "fig12" | "fig14" | "json"
    );
    let runs = if needs_suite {
        eprintln!(
            "# running suite at scale 1/{} (seed {:#x}, {} jobs)...",
            exp.scale, exp.seed, jobs
        );
        staged("suite", 35, || harness.run_suite())
    } else {
        Vec::new()
    };

    match cmd.as_str() {
        "all" => {
            print!("{}", report::table1(&exp));
            print!("{}", report::table2());
            print!("{}", report::table3());
            print!("{}", report::fig8(&runs));
            print!("{}", report::fig9(&runs));
            print!("{}", report::fig10(&runs));
            print!("{}", report::fig11(&runs));
            print!("{}", report::fig12(&runs));
            print!(
                "{}",
                staged("fig13 SSB sweep", 49, || report::fig13(&harness))
            );
            print!("{}", report::fig14(&runs));
            print!("{}", staged("ablation", 42, || report::ablation(&harness)));
            print!(
                "{}",
                staged("logging comparison", 4, || report::incremental(&harness))
            );
            print!(
                "{}",
                staged("flush-mode ablation", 18, || report::flushmode(&harness))
            );
            print!(
                "{}",
                staged("multicore study", 6, || report::multicore(&harness))
            );
            let s = harness.cache_stats();
            eprintln!(
                "# trace cache: {} recordings, {} cached replays, {} keys",
                s.recordings, s.hits, s.entries
            );
            // The harness contract: a trace is recorded at most once per
            // key, no matter how many figures replay it.
            assert_eq!(
                s.recordings, s.entries,
                "each (bench, variant, scale, seed, flushmode) trace must be recorded exactly once"
            );
            eprintln!(
                "# total: {:.2}s ({} jobs)",
                t0.elapsed().as_secs_f64(),
                jobs
            );
        }
        "table1" => print!("{}", report::table1(&exp)),
        "table2" => print!("{}", report::table2()),
        "table3" => print!("{}", report::table3()),
        "fig8" => print!("{}", report::fig8(&runs)),
        "fig9" => print!("{}", report::fig9(&runs)),
        "fig10" => print!("{}", report::fig10(&runs)),
        "fig11" => print!("{}", report::fig11(&runs)),
        "fig12" => print!("{}", report::fig12(&runs)),
        "fig13" => print!(
            "{}",
            staged("fig13 SSB sweep", 49, || report::fig13(&harness))
        ),
        "fig14" => print!("{}", report::fig14(&runs)),
        "ablation" => print!("{}", staged("ablation", 42, || report::ablation(&harness))),
        "incremental" => {
            print!(
                "{}",
                staged("logging comparison", 4, || report::incremental(&harness))
            );
        }
        "flushmode" => {
            print!(
                "{}",
                staged("flush-mode ablation", 18, || report::flushmode(&harness))
            );
        }
        "json" => println!("{}", spp_bench::json::suite_json(&runs)),
        "multicore" => print!(
            "{}",
            staged("multicore study", 6, || report::multicore(&harness))
        ),
        "trace" => return trace_cmd(&positional, &exp),
        "crashfuzz" => return crashfuzz_cmd(&harness, &positional),
        _ => return usage(),
    }
    ExitCode::SUCCESS
}

/// `repro crashfuzz [all|log|logp|logpsf]`: run the crash-consistency
/// fuzz matrix and print the text report plus one JSON line. Exits
/// non-zero when a must-pass cell violated its oracle, a must-fail
/// cell found no inconsistency, or the SP differential diverged.
fn crashfuzz_cmd(harness: &Harness, positional: &[String]) -> ExitCode {
    use spp_bench::crashfuzz::{run_crashfuzz, Leg};
    let leg = match positional.first() {
        None => Leg::All,
        Some(s) => match Leg::parse(s) {
            Some(l) => l,
            None => {
                eprintln!("unknown crashfuzz leg {s:?} (want all|log|logp|logpsf)");
                return ExitCode::FAILURE;
            }
        },
    };
    let rep = staged("crashfuzz", 0, || run_crashfuzz(harness, leg));
    print!("{}", rep.render_text());
    println!("{}", rep.render_json());
    if rep.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `repro trace <BENCH> <VARIANT>`: record one trace and print its
/// micro-op mix and per-operation averages.
fn trace_cmd(positional: &[String], exp: &Experiment) -> ExitCode {
    use spp_pmem::Variant;
    use spp_workloads::{run_benchmark, BenchId, BenchSpec, RunConfig};
    let (Some(bench), Some(variant)) = (positional.first(), positional.get(1)) else {
        eprintln!("usage: repro trace <GH|HM|LL|SS|AT|BT|RT> <base|log|logp|logpsf> [--scale N]");
        return ExitCode::FAILURE;
    };
    let Some(id) = BenchId::ALL
        .iter()
        .copied()
        .find(|b| b.abbrev().eq_ignore_ascii_case(bench))
    else {
        eprintln!("unknown benchmark {bench:?}");
        return ExitCode::FAILURE;
    };
    let variant = match variant.to_ascii_lowercase().as_str() {
        "base" => Variant::Base,
        "log" => Variant::Log,
        "logp" | "log+p" => Variant::LogP,
        "logpsf" | "log+p+sf" => Variant::LogPSf,
        other => {
            eprintln!("unknown variant {other:?}");
            return ExitCode::FAILURE;
        }
    };
    let spec = BenchSpec::scaled(id, exp.scale);
    let out = run_benchmark(&RunConfig {
        variant,
        spec,
        seed: exp.seed,
        capture_base: false,
    });
    let c = out.trace.counts;
    let ops = spec.sim_ops;
    println!(
        "{} / {} at scale 1/{} ({} ops recorded)",
        id.name(),
        variant,
        exp.scale,
        ops
    );
    println!("{:<22} {:>12} {:>10}", "class", "micro-ops", "per op");
    for (name, v) in [
        ("compute", c.compute),
        ("loads", c.loads),
        ("stores", c.stores),
        ("flushes (clwb/...)", c.flushes),
        ("pcommits", c.pcommits),
        ("fences", c.fences),
    ] {
        println!("{:<22} {:>12} {:>10.1}", name, v, v as f64 / ops as f64);
    }
    println!(
        "{:<22} {:>12} {:>10.1}",
        "TOTAL",
        c.total(),
        c.total() as f64 / ops as f64
    );
    println!("transactions: {}", c.transactions);
    ExitCode::SUCCESS
}
