//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <command> [--scale N] [--seed S] [--jobs J]
//!
//! Commands:
//!   all        every table and figure (plus the ablation study)
//!   table1 | table2 | table3
//!   fig8 | fig9 | fig10 | fig11 | fig12 | fig13 | fig14
//!   ablation   SP design-choice sensitivity (beyond the paper)
//!   incremental  full vs incremental logging on the B-tree (§3.2)
//!   flushmode  clwb vs clflushopt vs clflush (§2.2 footnote)
//!   trace <BENCH> <VARIANT>  inspect one recorded trace (uop mix)
//!   json       run the suite and print machine-readable JSON
//!   multicore  multi-programmed persist interference (future work)
//!   crashfuzz [all|log|logp|logpsf]  crash-consistency fuzzing:
//!              Log+P+Sf must recover at every crash point/reordering,
//!              Log and Log+P must each yield a minimized inconsistency
//!              witness; exits non-zero if either direction fails
//!   faultsim   deterministic hardware fault injection: every
//!              benchmark x variant x fault plan must commit exactly
//!              the fault-free architectural state (only cycle counts
//!              may move), crash verdicts must hold, and the
//!              forward-progress watchdog must convert a wedged run
//!              into a typed error; exits non-zero on any divergence
//!
//! Options:
//!   --scale N  divide Table 1's op counts by N (default 50; 1 = paper)
//!   --seed S   RNG seed (default 0x5EED)
//!   --jobs J   worker threads (default: all cores; 1 = serial)
//!
//! Invalid input (a malformed or zero --scale/--jobs, an unknown
//! command, benchmark, variant, or leg) exits non-zero with a one-line
//! `repro: ...` diagnostic on stderr.
//!
//! Every trace is recorded exactly once per invocation and shared
//! across all simulator configurations (the `repro all` sweep replays
//! most traces several times). `--jobs` only changes wall time: the
//! report on stdout is byte-identical at every job count; stage
//! timings go to stderr.
//! ```

use std::fmt;
use std::process::ExitCode;
use std::time::Instant;

use spp_bench::report;
use spp_bench::{Experiment, Harness};

const USAGE: &str = "usage: repro <all|table1|table2|table3|fig8..fig14|ablation|incremental|flushmode|trace|json|multicore|crashfuzz|faultsim> [--scale N] [--seed S] [--jobs J]";

/// A rejected invocation: every variant renders as one line, and every
/// variant exits non-zero. Parsing never panics on user input.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CliError {
    /// No command was given.
    NoCommand,
    /// The command word is not one `repro` knows.
    UnknownCommand(String),
    /// A flag's value is missing or unusable (non-numeric, negative,
    /// or below the flag's minimum).
    BadValue {
        flag: &'static str,
        given: String,
        want: &'static str,
    },
    /// `repro trace` needs a benchmark and a variant.
    MissingTraceArgs,
    /// The benchmark abbreviation is not in Table 1.
    UnknownBench(String),
    /// The build-variant name is not one of the four builds.
    UnknownVariant(String),
    /// The crashfuzz leg name is not a known slice of the matrix.
    UnknownLeg(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::NoCommand => f.write_str("no command given"),
            CliError::UnknownCommand(c) => write!(f, "unknown command {c:?}"),
            CliError::BadValue { flag, given, want } => {
                write!(f, "{flag} {given:?} is invalid (want {want})")
            }
            CliError::MissingTraceArgs => {
                f.write_str("trace needs <GH|HM|LL|SS|AT|BT|RT> <base|log|logp|logpsf>")
            }
            CliError::UnknownBench(b) => {
                write!(f, "unknown benchmark {b:?} (want GH|HM|LL|SS|AT|BT|RT)")
            }
            CliError::UnknownVariant(v) => {
                write!(f, "unknown variant {v:?} (want base|log|logp|logpsf)")
            }
            CliError::UnknownLeg(l) => {
                write!(f, "unknown crashfuzz leg {l:?} (want all|log|logp|logpsf)")
            }
        }
    }
}

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Cli {
    cmd: String,
    exp: Experiment,
    jobs: usize,
    positional: Vec<String>,
}

/// Parses everything after the binary name. Flags may appear anywhere;
/// all remaining words are positional arguments for the command.
fn parse_args(args: &[String]) -> Result<Cli, CliError> {
    let Some(cmd) = args.first().cloned() else {
        return Err(CliError::NoCommand);
    };
    let mut exp = Experiment::default();
    let mut jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut positional: Vec<String> = Vec::new();
    let mut i = 1;
    fn flag_value(
        flag: &'static str,
        args: &[String],
        i: usize,
        min: u64,
        want: &'static str,
    ) -> Result<u64, CliError> {
        let given = args.get(i + 1).cloned().unwrap_or_default();
        match given.parse::<u64>() {
            Ok(v) if v >= min => Ok(v),
            _ => Err(CliError::BadValue { flag, given, want }),
        }
    }
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                exp.scale = flag_value("--scale", args, i, 1, "an integer of at least 1")?;
                i += 2;
            }
            "--seed" => {
                exp.seed = flag_value("--seed", args, i, 0, "a non-negative integer")?;
                i += 2;
            }
            "--jobs" => {
                jobs = flag_value("--jobs", args, i, 1, "an integer of at least 1")? as usize;
                i += 2;
            }
            other => {
                positional.push(other.to_string());
                i += 1;
            }
        }
    }
    Ok(Cli {
        cmd,
        exp,
        jobs,
        positional,
    })
}

/// Runs one evaluation stage, reporting wall time and throughput on
/// stderr (`sims` counts the simulator replays the stage issues; 0
/// suppresses the rate). Stdout stays byte-identical across `--jobs`.
fn staged<T>(label: &str, sims: usize, f: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let out = f();
    let dt = t0.elapsed().as_secs_f64();
    if sims > 0 {
        eprintln!(
            "# {label}: {sims} sims in {dt:.2}s ({:.1} sims/s)",
            sims as f64 / dt.max(1e-9)
        );
    } else {
        eprintln!("# {label}: {dt:.2}s");
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(run) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("repro: {e}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(cli: Cli) -> Result<ExitCode, CliError> {
    let Cli {
        cmd,
        exp,
        jobs,
        positional,
    } = cli;
    let harness = Harness::new(exp, jobs);
    let t0 = Instant::now();

    let needs_suite = matches!(
        cmd.as_str(),
        "all" | "fig8" | "fig9" | "fig10" | "fig11" | "fig12" | "fig14" | "json"
    );
    let runs = if needs_suite {
        eprintln!(
            "# running suite at scale 1/{} (seed {:#x}, {} jobs)...",
            exp.scale, exp.seed, jobs
        );
        staged("suite", 35, || harness.run_suite())
    } else {
        Vec::new()
    };

    match cmd.as_str() {
        "all" => {
            print!("{}", report::table1(&exp));
            print!("{}", report::table2());
            print!("{}", report::table3());
            print!("{}", report::fig8(&runs));
            print!("{}", report::fig9(&runs));
            print!("{}", report::fig10(&runs));
            print!("{}", report::fig11(&runs));
            print!("{}", report::fig12(&runs));
            print!(
                "{}",
                staged("fig13 SSB sweep", 49, || report::fig13(&harness))
            );
            print!("{}", report::fig14(&runs));
            print!("{}", staged("ablation", 42, || report::ablation(&harness)));
            print!(
                "{}",
                staged("logging comparison", 4, || report::incremental(&harness))
            );
            print!(
                "{}",
                staged("flush-mode ablation", 18, || report::flushmode(&harness))
            );
            print!(
                "{}",
                staged("multicore study", 6, || report::multicore(&harness))
            );
            let s = harness.cache_stats();
            eprintln!(
                "# trace cache: {} recordings, {} cached replays, {} keys",
                s.recordings, s.hits, s.entries
            );
            // The harness contract: a trace is recorded at most once per
            // key, no matter how many figures replay it.
            assert_eq!(
                s.recordings, s.entries,
                "each (bench, variant, scale, seed, flushmode) trace must be recorded exactly once"
            );
            eprintln!(
                "# total: {:.2}s ({} jobs)",
                t0.elapsed().as_secs_f64(),
                jobs
            );
        }
        "table1" => print!("{}", report::table1(&exp)),
        "table2" => print!("{}", report::table2()),
        "table3" => print!("{}", report::table3()),
        "fig8" => print!("{}", report::fig8(&runs)),
        "fig9" => print!("{}", report::fig9(&runs)),
        "fig10" => print!("{}", report::fig10(&runs)),
        "fig11" => print!("{}", report::fig11(&runs)),
        "fig12" => print!("{}", report::fig12(&runs)),
        "fig13" => print!(
            "{}",
            staged("fig13 SSB sweep", 49, || report::fig13(&harness))
        ),
        "fig14" => print!("{}", report::fig14(&runs)),
        "ablation" => print!("{}", staged("ablation", 42, || report::ablation(&harness))),
        "incremental" => {
            print!(
                "{}",
                staged("logging comparison", 4, || report::incremental(&harness))
            );
        }
        "flushmode" => {
            print!(
                "{}",
                staged("flush-mode ablation", 18, || report::flushmode(&harness))
            );
        }
        "json" => println!("{}", spp_bench::json::suite_json(&runs)),
        "multicore" => print!(
            "{}",
            staged("multicore study", 6, || report::multicore(&harness))
        ),
        "trace" => return trace_cmd(&positional, &exp).map(|()| ExitCode::SUCCESS),
        "crashfuzz" => return crashfuzz_cmd(&harness, &positional),
        "faultsim" => return Ok(faultsim_cmd(&harness)),
        _ => return Err(CliError::UnknownCommand(cmd)),
    }
    Ok(ExitCode::SUCCESS)
}

/// `repro crashfuzz [all|log|logp|logpsf]`: run the crash-consistency
/// fuzz matrix and print the text report plus one JSON line. Exits
/// non-zero when a must-pass cell violated its oracle, a must-fail
/// cell found no inconsistency, or the SP differential diverged.
fn crashfuzz_cmd(harness: &Harness, positional: &[String]) -> Result<ExitCode, CliError> {
    use spp_bench::crashfuzz::{run_crashfuzz, Leg};
    let leg = match positional.first() {
        None => Leg::All,
        Some(s) => Leg::parse(s).ok_or_else(|| CliError::UnknownLeg(s.clone()))?,
    };
    let rep = staged("crashfuzz", 0, || run_crashfuzz(harness, leg));
    print!("{}", rep.render_text());
    println!("{}", rep.render_json());
    Ok(if rep.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `repro faultsim`: run the fault-injection matrix (benchmark x
/// variant x plan, both cores) plus the watchdog-detection leg and
/// print the text report and one JSON line. Exits non-zero if a
/// faulted run changed committed state or a crash verdict, a plan
/// never fired, or the watchdog failed to convert a wedged run into a
/// typed error.
fn faultsim_cmd(harness: &Harness) -> ExitCode {
    use spp_bench::faultsim::run_faultsim;
    let rep = staged("faultsim", 7 * 4 * 2 * 3 + 1, || run_faultsim(harness));
    print!("{}", rep.render_text());
    println!("{}", rep.render_json());
    if rep.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `repro trace <BENCH> <VARIANT>`: record one trace and print its
/// micro-op mix and per-operation averages.
fn trace_cmd(positional: &[String], exp: &Experiment) -> Result<(), CliError> {
    use spp_pmem::Variant;
    use spp_workloads::{run_benchmark, BenchId, BenchSpec, RunConfig};
    let (Some(bench), Some(variant)) = (positional.first(), positional.get(1)) else {
        return Err(CliError::MissingTraceArgs);
    };
    let id = BenchId::ALL
        .iter()
        .copied()
        .find(|b| b.abbrev().eq_ignore_ascii_case(bench))
        .ok_or_else(|| CliError::UnknownBench(bench.clone()))?;
    let variant = match variant.to_ascii_lowercase().as_str() {
        "base" => Variant::Base,
        "log" => Variant::Log,
        "logp" | "log+p" => Variant::LogP,
        "logpsf" | "log+p+sf" => Variant::LogPSf,
        _ => return Err(CliError::UnknownVariant(variant.clone())),
    };
    let spec = BenchSpec::scaled(id, exp.scale);
    let out = run_benchmark(&RunConfig {
        variant,
        spec,
        seed: exp.seed,
        capture_base: false,
    });
    let c = out.trace.counts;
    let ops = spec.sim_ops;
    println!(
        "{} / {} at scale 1/{} ({} ops recorded)",
        id.name(),
        variant,
        exp.scale,
        ops
    );
    println!("{:<22} {:>12} {:>10}", "class", "micro-ops", "per op");
    for (name, v) in [
        ("compute", c.compute),
        ("loads", c.loads),
        ("stores", c.stores),
        ("flushes (clwb/...)", c.flushes),
        ("pcommits", c.pcommits),
        ("fences", c.fences),
    ] {
        println!("{:<22} {:>12} {:>10.1}", name, v, v as f64 / ops as f64);
    }
    println!(
        "{:<22} {:>12} {:>10.1}",
        "TOTAL",
        c.total(),
        c.total() as f64 / ops as f64
    );
    println!("transactions: {}", c.transactions);
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn args(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_apply_without_flags() {
        let cli = parse_args(&args(&["all"])).unwrap();
        assert_eq!(cli.cmd, "all");
        assert_eq!(cli.exp.scale, Experiment::default().scale);
        assert_eq!(cli.exp.seed, Experiment::default().seed);
        assert!(cli.jobs >= 1);
        assert!(cli.positional.is_empty());
    }

    #[test]
    fn flags_and_positionals_parse_anywhere() {
        let cli = parse_args(&args(&[
            "trace", "--scale", "200", "LL", "--seed", "9", "logpsf", "--jobs", "3",
        ]))
        .unwrap();
        assert_eq!(cli.cmd, "trace");
        assert_eq!(cli.exp.scale, 200);
        assert_eq!(cli.exp.seed, 9);
        assert_eq!(cli.jobs, 3);
        assert_eq!(cli.positional, args(&["LL", "logpsf"]));
    }

    #[test]
    fn zero_jobs_is_a_typed_error() {
        let e = parse_args(&args(&["all", "--jobs", "0"])).unwrap_err();
        assert_eq!(
            e,
            CliError::BadValue {
                flag: "--jobs",
                given: "0".to_string(),
                want: "an integer of at least 1",
            }
        );
    }

    #[test]
    fn zero_and_negative_scale_are_typed_errors() {
        for bad in ["0", "-3", "1.5", "lots", ""] {
            let e = parse_args(&args(&["all", "--scale", bad])).unwrap_err();
            assert!(
                matches!(
                    e,
                    CliError::BadValue {
                        flag: "--scale",
                        ..
                    }
                ),
                "--scale {bad:?} gave {e:?}"
            );
        }
    }

    #[test]
    fn missing_flag_value_is_a_typed_error() {
        let e = parse_args(&args(&["all", "--seed"])).unwrap_err();
        assert_eq!(
            e,
            CliError::BadValue {
                flag: "--seed",
                given: String::new(),
                want: "a non-negative integer",
            }
        );
    }

    #[test]
    fn no_command_is_a_typed_error() {
        assert_eq!(parse_args(&[]).unwrap_err(), CliError::NoCommand);
    }

    #[test]
    fn every_error_renders_as_one_line() {
        let errors = [
            CliError::NoCommand,
            CliError::UnknownCommand("fig99".into()),
            CliError::BadValue {
                flag: "--jobs",
                given: "-2".into(),
                want: "an integer of at least 1",
            },
            CliError::MissingTraceArgs,
            CliError::UnknownBench("ZZ".into()),
            CliError::UnknownVariant("fast".into()),
            CliError::UnknownLeg("base".into()),
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty() && !s.contains('\n'), "{e:?} renders {s:?}");
        }
    }

    #[test]
    fn trace_cmd_rejects_unknown_names() {
        let exp = Experiment::default();
        assert_eq!(
            trace_cmd(&args(&["ZZ", "base"]), &exp).unwrap_err(),
            CliError::UnknownBench("ZZ".into())
        );
        assert_eq!(
            trace_cmd(&args(&["LL", "fast"]), &exp).unwrap_err(),
            CliError::UnknownVariant("fast".into())
        );
        assert_eq!(
            trace_cmd(&args(&["LL"]), &exp).unwrap_err(),
            CliError::MissingTraceArgs
        );
    }

    #[test]
    fn unknown_crashfuzz_leg_is_a_typed_error() {
        let h = Harness::new(Experiment::default(), 1);
        assert_eq!(
            crashfuzz_cmd(&h, &args(&["base"])).unwrap_err(),
            CliError::UnknownLeg("base".into())
        );
    }
}
