//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <command> [--scale N] [--seed S] [--jobs J]
//!
//! Commands:
//!   all        every table and figure (plus the ablation study)
//!   table1 | table2 | table3
//!   fig8 | fig9 | fig10 | fig11 | fig12 | fig13 | fig14
//!   ablation   SP design-choice sensitivity (beyond the paper)
//!   incremental  full vs incremental logging on the B-tree (§3.2)
//!   flushmode  clwb vs clflushopt vs clflush (§2.2 footnote)
//!   trace <BENCH> <VARIANT>  inspect one recorded trace (uop mix)
//!   json       run the suite and print machine-readable JSON
//!   multicore  shared-data multi-core scaling study: concurrent
//!              persistent structures (Treiber stack, MS queue) over
//!              one coherent memory system, 1..4 cores x {baseline,
//!              SP256} x {contended, disjoint}, reporting worst-core
//!              cycles/op plus BLT conflict/rollback accounting as one
//!              `specpersist/multicore-v1` JSON line; journaled like
//!              faultsim, exits non-zero unless the contended SP legs
//!              conflict and the disjoint legs stay conflict-free
//!   litmus     Px86 persistency-model validation: sweep the litmus
//!              catalog (plus seeded generated programs at generous
//!              scales) x {clwb, clflushopt, clflush}, checking every
//!              reachable post-crash state of the real stack — CrashSim
//!              at each persist boundary, both pipeline cores x
//!              {baseline, SP} — against the executable Px86 reference
//!              model, with the SP differential proving speculation
//!              never widens a reachable set; prints the per-program
//!              table plus one `specpersist/litmus-v1` JSON line,
//!              journaled like faultsim; exits non-zero if any leg
//!              reaches a forbidden state (the minimized witness is in
//!              the report)
//!   kv         crash-recoverable KV storage engine: WAL + COW
//!              checkpointed B+tree under a mixed YCSB-style load —
//!              baseline-vs-SP cycles across a checkpoint-interval
//!              sweep, crash recovery fuzzed at every persist boundary
//!              (clean under Log+P+Sf, witness-minimized under Log,
//!              and a must-fail leg proving an elided WAL checksum is
//!              caught), plus a bounded-memory streamed-trace leg;
//!              prints the per-cell tables plus one
//!              `specpersist/kv-v1` JSON line, journaled like
//!              faultsim; exits non-zero if any oracle fails or the
//!              SP legs regress
//!   optimize <BENCH> <VARIANT>  persist-path trace optimizer: detect
//!              redundant persist operations in one recorded trace
//!              (the same line flushed twice in an epoch, flushes
//!              never covered by a persist barrier, fences with
//!              nothing to order), elide them, replay the
//!              optimized trace on both pipeline cores x {baseline,
//!              SP} with the spp-obs probe attached, and prove safety
//!              by crashfuzzing every persist boundary of the
//!              optimized trace (plus an inverted leg eliding a
//!              required flush, which the oracle must catch); prints
//!              the before/after cycle + stall diff and one
//!              `specpersist/optimize-v1` JSON line, journaled like
//!              kv; exits non-zero if any leg fails
//!   journal check <PATH>  offline integrity walk of a journaled
//!              result manifest: verify every line's checksum and
//!              envelope, report damaged lines (bit flips, torn tail,
//!              truncation); exit 0 clean, 2 damage found, 1 missing
//!              or unreadable file
//!   crashfuzz [all|log|logp|logpsf]  crash-consistency fuzzing, the
//!              workload-level half of the persist-semantics story
//!              (litmus is the model-level half): Log+P+Sf must recover
//!              at every crash point/reordering, Log and Log+P must
//!              each yield a minimized inconsistency witness; exits
//!              non-zero if either direction fails
//!   faultsim   deterministic hardware fault injection: every
//!              benchmark x variant x fault plan must commit exactly
//!              the fault-free architectural state (only cycle counts
//!              may move), crash verdicts must hold, and the
//!              forward-progress watchdog must convert a wedged run
//!              into a typed error; exits non-zero on any divergence
//!   soak [--iters N]  bounded endurance: loop the journaled faultsim
//!              matrix plus the must-pass crashfuzz leg under derived
//!              per-iteration seeds, re-verifying journal integrity
//!              every iteration; exits non-zero on any divergence or
//!              corrupt journal line
//!   profile <BENCH> <VARIANT>  cycle-resolved observability: replay
//!              one trace on the baseline and SP256 cores with the
//!              spp-obs probe attached, print the stall-attribution
//!              table plus one `specpersist/profile-v2` JSON line, and
//!              optionally export a Chrome trace (--trace-out); exits
//!              non-zero if the probe's attribution diverges from the
//!              machine's own stall counters
//!
//! Options:
//!   --scale N  divide Table 1's op counts by N (default 50; 1 = paper)
//!   --seed S   RNG seed (default 0x5EED)
//!   --jobs J   worker threads (default: all cores; 1 = serial)
//!   --journal [PATH]  (faultsim/soak/profile/multicore/litmus/kv/
//!              optimize) record completed cells
//!              into the journaled result manifest at PATH (default:
//!              `.specpersist/journal-v1.jsonl`); a fresh run requires
//!              a fresh path
//!   --resume   (with --journal) replay verified cells from an existing
//!              journal instead of recomputing them; the resumed stdout
//!              is byte-identical to an uninterrupted run's
//!   --iters N  (soak) iteration count (default 4)
//!   --storm-bound N  (multicore) conflict-storm rollback budget per
//!              trace position before a core degrades to a typed
//!              ConflictStorm error (default 64; must be at least 1 —
//!              a zero budget would fail on the first legitimate
//!              conflict rollback)
//!   --model-knob K  (litmus; test-only) weaken one Px86 rule —
//!              `honest` (default) or `clflushopt-po` (pretend
//!              clflushopt is program-ordered like clflush); under a
//!              weakened model the checker must reach forbidden states,
//!              proving the harness would catch a real model violation
//!   --trace-out PATH  (profile) write the merged Chrome trace_event
//!              document to PATH (loadable in Perfetto or
//!              chrome://tracing)
//!   --bench-out PATH  (all/profile/kv/optimize) where to write the
//!              `specpersist/perfbench-v1` perf-trajectory record
//!              (default `BENCH_6.json`): simulated-cycles-per-second
//!              per bench x variant, wall time, peak RSS; file + stderr
//!              only, never stdout
//!   --trace-mem-cap BYTES  cap the bytes of recorded traces the
//!              harness may hold resident; a run that trips the cap
//!              fails with a typed one-line error (never an OOM kill)
//!              and dumps the per-trace byte footprint to stderr
//!
//! Invalid input (a malformed or zero --scale/--jobs, an unknown
//! command, benchmark, variant, or leg, or contradictory journal
//! flags) exits non-zero with a one-line `repro: ...` diagnostic on
//! stderr.
//!
//! Every trace is recorded exactly once per invocation and shared
//! across all simulator configurations (the `repro all` sweep replays
//! most traces several times). `--jobs` only changes wall time: the
//! report on stdout is byte-identical at every job count; stage
//! timings go to stderr.
//! ```

use std::fmt;
use std::process::ExitCode;
use std::time::Instant;

use spp_bench::litmus::ModelKnob;
use spp_bench::report;
use spp_bench::study::{staged, StudyCli, StudyError, StudyRunner};
use spp_bench::{Experiment, Harness};

const USAGE: &str = "usage: repro <all|table1|table2|table3|fig8..fig14|ablation|incremental|flushmode|trace|json|multicore|litmus|kv|optimize|crashfuzz|faultsim|soak|profile|journal> [--scale N] [--seed S] [--jobs J] [--journal [PATH] [--resume]] [--iters N] [--storm-bound N] [--trace-out PATH] [--bench-out PATH] [--trace-mem-cap BYTES]; repro journal check <PATH>";

/// A rejected invocation: every variant renders as one line, and every
/// variant exits non-zero. Parsing never panics on user input.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CliError {
    /// No command was given.
    NoCommand,
    /// The command word is not one `repro` knows.
    UnknownCommand(String),
    /// A flag's value is missing or unusable (non-numeric, negative,
    /// or below the flag's minimum).
    BadValue {
        flag: &'static str,
        given: String,
        want: &'static str,
    },
    /// `repro trace` needs a benchmark and a variant.
    MissingTraceArgs,
    /// `repro profile` needs a benchmark and a variant.
    MissingProfileArgs,
    /// `repro optimize` needs a benchmark and a variant.
    MissingOptimizeArgs,
    /// The benchmark abbreviation is not in Table 1.
    UnknownBench(String),
    /// The build-variant name is not one of the four builds.
    UnknownVariant(String),
    /// The crashfuzz leg name is not a known slice of the matrix.
    UnknownLeg(String),
    /// `--journal`/`--resume`/`--iters` given to a command that has no
    /// journal support.
    FlagUnsupported { flag: &'static str, cmd: String },
    /// `--resume` without `--journal`.
    ResumeNeedsJournal,
    /// `--resume` named a journal file that does not exist.
    ResumeMissingJournal(String),
    /// `--journal` named an existing non-empty journal without
    /// `--resume` (mixing two campaigns in one manifest is always a
    /// mistake; replaying one must be explicit).
    JournalNeedsResume(String),
    /// The journal could not be opened (the wrapped
    /// [`spp_bench::JournalError`] rendering).
    Journal(String),
    /// `repro journal` needs the `check` subcommand and a path.
    MissingJournalCheckArgs,
    /// The trace cache grew past `--trace-mem-cap` (the wrapped
    /// [`spp_bench::TraceMemCap`] rendering).
    TraceMemCap(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::NoCommand => f.write_str("no command given"),
            CliError::UnknownCommand(c) => write!(f, "unknown command {c:?}"),
            CliError::BadValue { flag, given, want } => {
                write!(f, "{flag} {given:?} is invalid (want {want})")
            }
            CliError::MissingTraceArgs => {
                f.write_str("trace needs <GH|HM|LL|SS|AT|BT|RT> <base|log|logp|logpsf>")
            }
            CliError::MissingProfileArgs => {
                f.write_str("profile needs <GH|HM|LL|SS|AT|BT|RT> <base|log|logp|logpsf>")
            }
            CliError::MissingOptimizeArgs => {
                f.write_str("optimize needs <GH|HM|LL|SS|AT|BT|RT> <base|log|logp|logpsf>")
            }
            CliError::UnknownBench(b) => {
                write!(f, "unknown benchmark {b:?} (want GH|HM|LL|SS|AT|BT|RT)")
            }
            CliError::UnknownVariant(v) => {
                write!(f, "unknown variant {v:?} (want base|log|logp|logpsf)")
            }
            CliError::UnknownLeg(l) => {
                write!(f, "unknown crashfuzz leg {l:?} (want all|log|logp|logpsf)")
            }
            CliError::FlagUnsupported { flag, cmd } => {
                write!(f, "{flag} is not supported by {cmd:?} (journaled commands: faultsim, soak, profile, multicore, litmus, kv, optimize; --iters: soak; --storm-bound: multicore; --model-knob: litmus; --trace-out: profile; --bench-out: all, profile, kv, optimize; --trace-mem-cap: any trace-recording command)")
            }
            CliError::ResumeNeedsJournal => f.write_str("--resume requires --journal <path>"),
            CliError::ResumeMissingJournal(p) => {
                write!(f, "--resume: journal {p:?} does not exist")
            }
            CliError::JournalNeedsResume(p) => {
                write!(
                    f,
                    "journal {p:?} already has entries; pass --resume to replay it or pick a fresh path"
                )
            }
            CliError::Journal(e) => f.write_str(e),
            CliError::MissingJournalCheckArgs => f.write_str("journal needs check <PATH>"),
            CliError::TraceMemCap(e) => f.write_str(e),
        }
    }
}

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Cli {
    cmd: String,
    exp: Experiment,
    jobs: usize,
    journal: Option<String>,
    resume: bool,
    iters: Option<u64>,
    storm_bound: Option<u64>,
    model_knob: Option<ModelKnob>,
    trace_out: Option<String>,
    bench_out: Option<String>,
    trace_mem_cap: Option<u64>,
    positional: Vec<String>,
}

/// Parses everything after the binary name. Flags may appear anywhere;
/// all remaining words are positional arguments for the command.
fn parse_args(args: &[String]) -> Result<Cli, CliError> {
    let Some(cmd) = args.first().cloned() else {
        return Err(CliError::NoCommand);
    };
    let mut exp = Experiment::default();
    let mut jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut journal: Option<String> = None;
    let mut resume = false;
    let mut iters: Option<u64> = None;
    let mut storm_bound: Option<u64> = None;
    let mut model_knob: Option<ModelKnob> = None;
    let mut trace_out: Option<String> = None;
    let mut bench_out: Option<String> = None;
    let mut trace_mem_cap: Option<u64> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut i = 1;
    fn flag_value(
        flag: &'static str,
        args: &[String],
        i: usize,
        min: u64,
        want: &'static str,
    ) -> Result<u64, CliError> {
        let given = args.get(i + 1).cloned().unwrap_or_default();
        match given.parse::<u64>() {
            Ok(v) if v >= min => Ok(v),
            _ => Err(CliError::BadValue { flag, given, want }),
        }
    }
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                exp.scale = flag_value("--scale", args, i, 1, "an integer of at least 1")?;
                i += 2;
            }
            "--seed" => {
                exp.seed = flag_value("--seed", args, i, 0, "a non-negative integer")?;
                i += 2;
            }
            "--jobs" => {
                jobs = flag_value("--jobs", args, i, 1, "an integer of at least 1")? as usize;
                i += 2;
            }
            "--journal" => {
                // The path is optional: bare `--journal` (end of args,
                // or another flag next) uses the conventional manifest
                // location. An explicit empty path is still an error.
                match args.get(i + 1) {
                    Some(next) if !next.starts_with("--") => {
                        if next.is_empty() {
                            return Err(CliError::BadValue {
                                flag: "--journal",
                                given: String::new(),
                                want: "a file path",
                            });
                        }
                        journal = Some(next.clone());
                        i += 2;
                    }
                    _ => {
                        journal = Some(spp_bench::journal::DEFAULT_JOURNAL_PATH.to_string());
                        i += 1;
                    }
                }
            }
            "--resume" => {
                resume = true;
                i += 1;
            }
            "--trace-out" => match args.get(i + 1) {
                Some(next) if !next.is_empty() && !next.starts_with("--") => {
                    trace_out = Some(next.clone());
                    i += 2;
                }
                _ => {
                    return Err(CliError::BadValue {
                        flag: "--trace-out",
                        given: args.get(i + 1).cloned().unwrap_or_default(),
                        want: "a file path",
                    })
                }
            },
            "--bench-out" => match args.get(i + 1) {
                Some(next) if !next.is_empty() && !next.starts_with("--") => {
                    bench_out = Some(next.clone());
                    i += 2;
                }
                _ => {
                    return Err(CliError::BadValue {
                        flag: "--bench-out",
                        given: args.get(i + 1).cloned().unwrap_or_default(),
                        want: "a file path",
                    })
                }
            },
            "--iters" => {
                iters = Some(flag_value(
                    "--iters",
                    args,
                    i,
                    1,
                    "an integer of at least 1",
                )?);
                i += 2;
            }
            "--storm-bound" => {
                // A zero budget would degrade a core on its first
                // legitimate conflict rollback, so the floor is 1.
                storm_bound = Some(flag_value(
                    "--storm-bound",
                    args,
                    i,
                    1,
                    "an integer of at least 1",
                )?);
                i += 2;
            }
            "--trace-mem-cap" => {
                // Zero would trip before the first recording; the
                // smallest honest budget is one byte.
                trace_mem_cap = Some(flag_value(
                    "--trace-mem-cap",
                    args,
                    i,
                    1,
                    "a byte count of at least 1",
                )?);
                i += 2;
            }
            "--model-knob" => {
                let given = args.get(i + 1).cloned().unwrap_or_default();
                model_knob = Some(ModelKnob::parse(&given).ok_or(CliError::BadValue {
                    flag: "--model-knob",
                    given,
                    want: "honest or clflushopt-po",
                })?);
                i += 2;
            }
            other => {
                positional.push(other.to_string());
                i += 1;
            }
        }
    }
    Ok(Cli {
        cmd,
        exp,
        jobs,
        journal,
        resume,
        iters,
        storm_bound,
        model_knob,
        trace_out,
        bench_out,
        trace_mem_cap,
        positional,
    })
}

/// Rejects journal flags on commands that cannot honor them, and
/// contradictory combinations, before any work starts.
fn check_flag_scope(cli: &Cli) -> Result<(), CliError> {
    let journaled = matches!(
        cli.cmd.as_str(),
        "faultsim" | "soak" | "profile" | "multicore" | "litmus" | "kv" | "optimize"
    );
    if cli.journal.is_some() && !journaled {
        return Err(CliError::FlagUnsupported {
            flag: "--journal",
            cmd: cli.cmd.clone(),
        });
    }
    if cli.resume && !journaled {
        return Err(CliError::FlagUnsupported {
            flag: "--resume",
            cmd: cli.cmd.clone(),
        });
    }
    if cli.iters.is_some() && cli.cmd != "soak" {
        return Err(CliError::FlagUnsupported {
            flag: "--iters",
            cmd: cli.cmd.clone(),
        });
    }
    if cli.storm_bound.is_some() && cli.cmd != "multicore" {
        return Err(CliError::FlagUnsupported {
            flag: "--storm-bound",
            cmd: cli.cmd.clone(),
        });
    }
    if cli.model_knob.is_some() && cli.cmd != "litmus" {
        return Err(CliError::FlagUnsupported {
            flag: "--model-knob",
            cmd: cli.cmd.clone(),
        });
    }
    if cli.trace_out.is_some() && cli.cmd != "profile" {
        return Err(CliError::FlagUnsupported {
            flag: "--trace-out",
            cmd: cli.cmd.clone(),
        });
    }
    if cli.bench_out.is_some() && !matches!(cli.cmd.as_str(), "all" | "profile" | "kv" | "optimize")
    {
        return Err(CliError::FlagUnsupported {
            flag: "--bench-out",
            cmd: cli.cmd.clone(),
        });
    }
    // `trace` replays one recording to stdout, `soak` spawns child
    // processes, and `journal` never simulates: none of them route
    // traces through the harness cache the cap governs.
    if cli.trace_mem_cap.is_some() && matches!(cli.cmd.as_str(), "trace" | "soak" | "journal") {
        return Err(CliError::FlagUnsupported {
            flag: "--trace-mem-cap",
            cmd: cli.cmd.clone(),
        });
    }
    if cli.resume && cli.journal.is_none() {
        return Err(CliError::ResumeNeedsJournal);
    }
    Ok(())
}

/// The CLI rendering of a [`StudyError`]: the study façade's journal
/// discipline maps 1:1 onto the typed CLI diagnostics.
impl From<StudyError> for CliError {
    fn from(e: StudyError) -> Self {
        match e {
            StudyError::ResumeMissingJournal(p) => CliError::ResumeMissingJournal(p),
            StudyError::JournalNeedsResume(p) => CliError::JournalNeedsResume(p),
            other => CliError::Journal(other.to_string()),
        }
    }
}

/// Opens the journal at `path` under the study façade's resume
/// discipline (see [`spp_bench::study::open_journal`]), mapping the
/// typed failure onto the CLI's own diagnostics.
fn open_journal(path: &std::path::Path, resume: bool) -> Result<spp_bench::Journal, CliError> {
    spp_bench::study::open_journal(path, resume).map_err(CliError::from)
}

/// The report verdict as an exit status.
fn verdict(ok: bool) -> ExitCode {
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Where the perf-trajectory record lands unless `--bench-out` says
/// otherwise. The `6` is the trajectory point's sequence number, not a
/// schema version (the document's envelope carries that).
const DEFAULT_BENCH_OUT: &str = "BENCH_6.json";

/// Writes the `specpersist/perfbench-v1` trajectory record for this
/// invocation: per bench x variant simulation throughput, end-to-end
/// wall time, and peak RSS. Wall numbers are machine-dependent, so the
/// record goes to a file and the announcement to stderr — stdout stays
/// byte-identical across `--jobs`. A run whose simulations were all
/// replayed from a journal has nothing to report and writes nothing.
fn write_perfbench(harness: &Harness, jobs: usize, wall_secs: f64, path: &str) {
    let rep = spp_bench::PerfReport {
        scale: harness.exp.scale,
        seed: harness.exp.seed,
        jobs,
        wall_secs,
        peak_rss_kb: spp_bench::perfbench::peak_rss_kb(),
        cells: harness.perf_cells(),
        extras: harness.perf_labeled_cells(),
    };
    if rep.cells.is_empty() && rep.extras.is_empty() {
        eprintln!("# perfbench: no simulations ran; {path} not written");
        return;
    }
    let mut doc = rep.render_json();
    doc.push('\n');
    match std::fs::write(path, doc) {
        Ok(()) => eprintln!(
            "# perfbench: {} cells, {:.2}s wall, peak rss {} KiB -> {path}",
            rep.cells.len() + rep.extras.len(),
            wall_secs,
            rep.peak_rss_kb
        ),
        Err(e) => eprintln!("repro: --bench-out {path:?}: {e}"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(run) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("repro: {e}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(cli: Cli) -> Result<ExitCode, CliError> {
    check_flag_scope(&cli)?;
    let Cli {
        cmd,
        exp,
        jobs,
        journal,
        resume,
        iters,
        storm_bound,
        model_knob,
        trace_out,
        bench_out,
        trace_mem_cap,
        positional,
    } = cli;
    if cmd == "journal" {
        // Pure file inspection: no harness, no simulations.
        return journal_cmd(&positional);
    }
    let study = StudyCli { journal, resume };
    let harness = Harness::new(exp, jobs);
    harness.set_trace_mem_cap(trace_mem_cap);
    let t0 = Instant::now();

    let needs_suite = matches!(
        cmd.as_str(),
        "all" | "fig8" | "fig9" | "fig10" | "fig11" | "fig12" | "fig14" | "json"
    );
    let runs = if needs_suite {
        eprintln!(
            "# running suite at scale 1/{} (seed {:#x}, {} jobs)...",
            exp.scale, exp.seed, jobs
        );
        staged("suite", 35, || harness.run_suite())
    } else {
        Vec::new()
    };

    match cmd.as_str() {
        "all" => {
            print!("{}", report::table1(&exp));
            print!("{}", report::table2());
            print!("{}", report::table3());
            print!("{}", report::fig8(&runs));
            print!("{}", report::fig9(&runs));
            print!("{}", report::fig10(&runs));
            print!("{}", report::fig11(&runs));
            print!("{}", report::fig12(&runs));
            print!(
                "{}",
                staged("fig13 SSB sweep", 49, || report::fig13(&harness))
            );
            print!("{}", report::fig14(&runs));
            print!("{}", staged("ablation", 42, || report::ablation(&harness)));
            print!(
                "{}",
                staged("logging comparison", 4, || report::incremental(&harness))
            );
            print!(
                "{}",
                staged("flush-mode ablation", 18, || report::flushmode(&harness))
            );
            print!(
                "{}",
                staged("multicore study", 24, || report::multicore(&harness))
            );
            let s = harness.cache_stats();
            eprintln!(
                "# trace cache: {} recordings, {} cached replays, {} keys, {} bytes",
                s.recordings, s.hits, s.entries, s.bytes
            );
            if trace_mem_cap.is_some() {
                // A cap is in force: show where the bytes went,
                // heaviest trace first, so the budget can be tuned.
                for (k, bytes) in harness.trace_bytes_by_key() {
                    eprintln!("#   {bytes} bytes {}/{}/{}", k.id, k.variant, k.flush_mode);
                }
            }
            // The harness contract: a trace is recorded at most once per
            // key, no matter how many figures replay it.
            assert_eq!(
                s.recordings, s.entries,
                "each (bench, variant, scale, seed, flushmode) trace must be recorded exactly once"
            );
            eprintln!(
                "# total: {:.2}s ({} jobs)",
                t0.elapsed().as_secs_f64(),
                jobs
            );
            write_perfbench(
                &harness,
                jobs,
                t0.elapsed().as_secs_f64(),
                bench_out.as_deref().unwrap_or(DEFAULT_BENCH_OUT),
            );
        }
        "table1" => print!("{}", report::table1(&exp)),
        "table2" => print!("{}", report::table2()),
        "table3" => print!("{}", report::table3()),
        "fig8" => print!("{}", report::fig8(&runs)),
        "fig9" => print!("{}", report::fig9(&runs)),
        "fig10" => print!("{}", report::fig10(&runs)),
        "fig11" => print!("{}", report::fig11(&runs)),
        "fig12" => print!("{}", report::fig12(&runs)),
        "fig13" => print!(
            "{}",
            staged("fig13 SSB sweep", 49, || report::fig13(&harness))
        ),
        "fig14" => print!("{}", report::fig14(&runs)),
        "ablation" => print!("{}", staged("ablation", 42, || report::ablation(&harness))),
        "incremental" => {
            print!(
                "{}",
                staged("logging comparison", 4, || report::incremental(&harness))
            );
        }
        "flushmode" => {
            print!(
                "{}",
                staged("flush-mode ablation", 18, || report::flushmode(&harness))
            );
        }
        "json" => println!("{}", spp_bench::json::suite_json(&runs)),
        "multicore" => {
            let code = multicore_cmd(&harness, &study, storm_bound)?;
            return check_trace_mem(&harness, code);
        }
        "litmus" => {
            let code = litmus_cmd(&harness, &study, model_knob)?;
            return check_trace_mem(&harness, code);
        }
        "kv" => {
            let code = kv_cmd(&harness, &study)?;
            write_perfbench(
                &harness,
                jobs,
                t0.elapsed().as_secs_f64(),
                bench_out.as_deref().unwrap_or(DEFAULT_BENCH_OUT),
            );
            return check_trace_mem(&harness, code);
        }
        "optimize" => {
            let code = optimize_cmd(&harness, &positional, &study)?;
            write_perfbench(
                &harness,
                jobs,
                t0.elapsed().as_secs_f64(),
                bench_out.as_deref().unwrap_or(DEFAULT_BENCH_OUT),
            );
            return check_trace_mem(&harness, code);
        }
        "trace" => return trace_cmd(&positional, &exp).map(|()| ExitCode::SUCCESS),
        "crashfuzz" => {
            let code = crashfuzz_cmd(&harness, &positional)?;
            return check_trace_mem(&harness, code);
        }
        "faultsim" => {
            let code = faultsim_cmd(&harness, &study)?;
            return check_trace_mem(&harness, code);
        }
        "soak" => return soak_cmd(&exp, jobs, iters, &study),
        "profile" => {
            let code = profile_cmd(&harness, &positional, &study, trace_out.as_deref())?;
            write_perfbench(
                &harness,
                jobs,
                t0.elapsed().as_secs_f64(),
                bench_out.as_deref().unwrap_or(DEFAULT_BENCH_OUT),
            );
            return check_trace_mem(&harness, code);
        }
        _ => return Err(CliError::UnknownCommand(cmd)),
    }
    check_trace_mem(&harness, ExitCode::SUCCESS)
}

/// The `--trace-mem-cap` gate, applied after a command's work: a
/// tripped cap is a typed failure even when every stage succeeded —
/// the run held more trace bytes than the budget allowed, which is
/// exactly what the flag exists to catch. The per-key footprint goes
/// to stderr (heaviest first) so the offending traces are named.
fn check_trace_mem(harness: &Harness, code: ExitCode) -> Result<ExitCode, CliError> {
    match harness.trace_mem_exceeded() {
        None => Ok(code),
        Some(e) => {
            for (k, bytes) in harness.trace_bytes_by_key() {
                eprintln!("#   {bytes} bytes {}/{}/{}", k.id, k.variant, k.flush_mode);
            }
            Err(CliError::TraceMemCap(e.to_string()))
        }
    }
}

/// `repro kv [--journal PATH [--resume]] [--bench-out PATH]`: the
/// crash-recoverable KV storage-engine study — WAL + checkpointed
/// B+tree under a mixed YCSB-style load: baseline-vs-SP cycles across
/// a checkpoint-interval sweep, crashfuzz at every persist boundary
/// (clean under Log+P+Sf, witness-minimized under Log, and a
/// must-fail leg proving an elided WAL checksum is caught), plus the
/// bounded-memory streamed leg. Prints the per-cell tables and one
/// `specpersist/kv-v1` JSON line; the labeled perf cells join the
/// `--bench-out` trajectory record. With a journal, completed cells
/// are recorded and `--resume` replays them byte-identically. Exits
/// non-zero if any cell failed its oracle or the SP legs regressed.
fn kv_cmd(harness: &Harness, study: &StudyCli) -> Result<ExitCode, CliError> {
    use spp_bench::kv::{run_kv_opts, KvCellSpec};
    let runner = StudyRunner::new("kv", KvCellSpec::all().len(), study)?;
    Ok(verdict(runner.run(|j| run_kv_opts(harness, j))))
}

/// `repro optimize <BENCH> <VARIANT> [--journal PATH [--resume]]
/// [--bench-out PATH]`: the persist-path trace optimizer — analyze one
/// recorded trace for redundant persist operations, elide them, replay
/// the optimized trace on both pipeline cores x {baseline, SP} with
/// the spp-obs probe attached, and prove the plan safe by crashfuzzing
/// every persist boundary of the optimized trace (plus the inverted
/// leg eliding a required flush, which the oracle must catch). Prints
/// the before/after tables and one `specpersist/optimize-v1` JSON
/// line; the labeled perf cells join the `--bench-out` trajectory
/// record. With a journal, completed cells are recorded and `--resume`
/// replays them byte-identically. Exits non-zero if any leg fails.
fn optimize_cmd(
    harness: &Harness,
    positional: &[String],
    study: &StudyCli,
) -> Result<ExitCode, CliError> {
    use spp_bench::optimize::{run_optimize_opts, OptimizeCellSpec};
    use spp_workloads::BenchId;
    let (Some(bench), Some(variant)) = (positional.first(), positional.get(1)) else {
        return Err(CliError::MissingOptimizeArgs);
    };
    let id = BenchId::ALL
        .iter()
        .copied()
        .find(|b| b.abbrev().eq_ignore_ascii_case(bench))
        .ok_or_else(|| CliError::UnknownBench(bench.clone()))?;
    let variant = spp_bench::parse_variant(variant)
        .ok_or_else(|| CliError::UnknownVariant(variant.clone()))?;
    let runner = StudyRunner::new("optimize", OptimizeCellSpec::all().len(), study)?;
    Ok(verdict(
        runner.run(|j| run_optimize_opts(harness, id, variant, j)),
    ))
}

/// `repro journal check <PATH>`: offline integrity walk of a result
/// manifest. Re-reads every line, verifying the per-entry checksum
/// and envelope, and reports each damaged line (bit flip, truncation,
/// torn tail, bad schema) on stdout. As with a resume, a torn final
/// line is sealed so later appends cannot merge into it. Typed exit
/// codes: 0 when every line verified, 2 when damage was found, 1 when
/// the file is missing or unreadable.
fn journal_cmd(positional: &[String]) -> Result<ExitCode, CliError> {
    let (Some("check"), Some(path), None) = (
        positional.first().map(String::as_str),
        positional.get(1),
        positional.get(2),
    ) else {
        return Err(CliError::MissingJournalCheckArgs);
    };
    Ok(if journal_check(path)? == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

/// The walk behind [`journal_cmd`]: verifies every line, prints one
/// line per damaged entry plus a summary, and returns the damaged-line
/// count.
fn journal_check(path: &str) -> Result<usize, CliError> {
    // `Journal::open` creates absent files; a checker must not.
    if !std::path::Path::new(path).is_file() {
        return Err(CliError::Journal(format!(
            "journal {path:?} does not exist"
        )));
    }
    let (entries, damage) = spp_bench::Journal::verify(std::path::Path::new(path))
        .map_err(|e| CliError::Journal(e.to_string()))?;
    for e in &damage {
        println!("journal check: {e}");
    }
    println!(
        "journal check: {path}: {entries} entries ok, {} damaged",
        damage.len()
    );
    Ok(damage.len())
}

/// `repro crashfuzz [all|log|logp|logpsf]`: run the crash-consistency
/// fuzz matrix and print the text report plus one JSON line. Exits
/// non-zero when a must-pass cell violated its oracle, a must-fail
/// cell found no inconsistency, or the SP differential diverged.
fn crashfuzz_cmd(harness: &Harness, positional: &[String]) -> Result<ExitCode, CliError> {
    use spp_bench::crashfuzz::{run_crashfuzz, Leg};
    let leg = match positional.first() {
        None => Leg::All,
        Some(s) => Leg::parse(s).ok_or_else(|| CliError::UnknownLeg(s.clone()))?,
    };
    let rep = staged("crashfuzz", 0, || run_crashfuzz(harness, leg));
    print!("{}", rep.render_text());
    println!("{}", rep.render_json());
    Ok(if rep.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `repro faultsim [--journal PATH [--resume]]`: run the
/// fault-injection matrix (benchmark x variant x plan, both cores)
/// plus the watchdog-detection leg on the supervised pool and print
/// the text report and one JSON line. With a journal, completed cells
/// are recorded and `--resume` replays them — the resumed stdout is
/// byte-identical to an uninterrupted run's. Exits non-zero if a
/// faulted run changed committed state or a crash verdict, a cell
/// exhausted its retry budget, a plan never fired, or the watchdog
/// failed to convert a wedged run into a typed error.
fn faultsim_cmd(harness: &Harness, study: &StudyCli) -> Result<ExitCode, CliError> {
    use spp_bench::faultsim::{run_faultsim_opts, FaultsimOpts};
    let runner = StudyRunner::new("faultsim", 7 * 4 * 2 * 3 + 1, study)?;
    Ok(verdict(runner.run(|j| {
        run_faultsim_opts(
            harness,
            FaultsimOpts {
                journal: j,
                ..FaultsimOpts::default()
            },
        )
    })))
}

/// `repro multicore [--journal PATH [--resume]]`: the shared-data
/// multi-core scaling study — Treiber-style stack and MS-style queue
/// over one coherent memory system, 1..4 cores x {baseline, SP256} x
/// {contended, disjoint}. Prints the scaling tables and one
/// `specpersist/multicore-v1` JSON line. With a journal, completed
/// cells are recorded and `--resume` replays them byte-identically.
/// Exits non-zero if any cell degraded, the contended SP legs produced
/// no BLT conflicts, or a disjoint leg conflicted. `--storm-bound`
/// tightens (or loosens) each core's conflict-storm rollback budget.
fn multicore_cmd(
    harness: &Harness,
    study: &StudyCli,
    storm_bound: Option<u64>,
) -> Result<ExitCode, CliError> {
    use spp_bench::multicore::{run_multicore_opts, MulticoreOpts};
    let runner = StudyRunner::new("multicore", 24, study)?;
    Ok(verdict(runner.run(|j| {
        run_multicore_opts(
            harness,
            MulticoreOpts {
                journal: j,
                storm_bound,
            },
        )
    })))
}

/// `repro litmus [--journal PATH [--resume]] [--model-knob K]`: Px86
/// persistency-model validation — every litmus program x flush mode is
/// one supervised cell checked against the executable reference model
/// on all seven legs (CrashSim, both cores x {baseline, SP}, and the
/// SP differentials). Prints the per-program table and one
/// `specpersist/litmus-v1` JSON line. With a journal, completed cells
/// (including failed ones, witness and all) replay byte-identically.
/// The hidden `--model-knob` weakens one model rule so CI can prove
/// the checker actually fails when the model is wrong. Exits non-zero
/// if any leg reached a forbidden state.
fn litmus_cmd(
    harness: &Harness,
    study: &StudyCli,
    model_knob: Option<ModelKnob>,
) -> Result<ExitCode, CliError> {
    use spp_bench::litmus::{litmus_programs, run_litmus_opts, LitmusOpts};
    let sims = litmus_programs(&harness.exp).len() * 3;
    let runner = StudyRunner::new("litmus", sims, study)?;
    Ok(verdict(runner.run(|j| {
        run_litmus_opts(
            harness,
            LitmusOpts {
                journal: j,
                knob: model_knob.unwrap_or_default(),
            },
        )
    })))
}

/// `repro soak [--iters N] [--journal PATH [--resume]]`: bounded
/// endurance over the journaled faultsim matrix plus the must-pass
/// crashfuzz leg, with per-iteration journal re-verification. Without
/// `--journal` the manifest lives in a pid-suffixed temp file that is
/// removed on success. Exits non-zero on any divergence, degraded
/// cell, or corrupt journal line.
fn soak_cmd(
    exp: &Experiment,
    jobs: usize,
    iters: Option<u64>,
    study: &StudyCli,
) -> Result<ExitCode, CliError> {
    use spp_bench::soak::{run_soak, DEFAULT_SOAK_ITERS};
    let iters = iters.unwrap_or(DEFAULT_SOAK_ITERS);
    let (path, is_temp) = match study.journal.as_deref() {
        Some(p) => (std::path::PathBuf::from(p), false),
        None => {
            let p =
                std::env::temp_dir().join(format!("spp-soak-journal-{}.jsonl", std::process::id()));
            let _ = std::fs::remove_file(&p);
            (p, true)
        }
    };
    let j = open_journal(&path, study.resume)?;
    let rep = staged("soak", 0, || run_soak(exp, jobs, iters, &j));
    for e in j.corrupt() {
        eprintln!("repro: journal: {e}");
    }
    eprintln!("# journal {}", j.path().display());
    print!("{}", rep.render_text());
    println!("{}", rep.render_json());
    if rep.ok() {
        if is_temp {
            let _ = std::fs::remove_file(&path);
        }
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

/// `repro profile <BENCH> <VARIANT> [--trace-out PATH] [--journal PATH
/// [--resume]]`: replay one trace on the baseline and SP256 cores with
/// the spp-obs probe attached, print the stall-attribution table and
/// one `specpersist/profile-v2` JSON line, and optionally write the
/// merged Chrome trace. With a journal the completed cell is recorded
/// (text, JSON and trace all in the payload) and `--resume` replays it
/// byte-identically. Exits non-zero if the probe's attribution diverges
/// from the machine's stall counters.
fn profile_cmd(
    harness: &Harness,
    positional: &[String],
    study: &StudyCli,
    trace_out: Option<&str>,
) -> Result<ExitCode, CliError> {
    use spp_bench::journal::{CellStatus, Entry};
    use spp_bench::json::{parse, Value};
    use spp_bench::profile::run_profile;
    use spp_workloads::BenchId;

    let (Some(bench), Some(variant)) = (positional.first(), positional.get(1)) else {
        return Err(CliError::MissingProfileArgs);
    };
    let id = BenchId::ALL
        .iter()
        .copied()
        .find(|b| b.abbrev().eq_ignore_ascii_case(bench))
        .ok_or_else(|| CliError::UnknownBench(bench.clone()))?;
    let variant = spp_bench::parse_variant(variant)
        .ok_or_else(|| CliError::UnknownVariant(variant.clone()))?;

    let runner = StudyRunner::new("profile", 2, study)?;
    let j = runner.journal();
    let key = format!(
        "profile/{}/{}/scale{}/seed{:#x}",
        id.abbrev(),
        spp_bench::variant_key(variant),
        harness.exp.scale,
        harness.exp.seed
    );
    let write_trace = |trace: &str| {
        if let Some(path) = trace_out {
            match std::fs::write(path, trace) {
                Ok(()) => eprintln!("# chrome trace: {path} ({} bytes)", trace.len()),
                Err(e) => eprintln!("repro: --trace-out {path:?}: {e}"),
            }
        }
    };

    // A verified journal entry replays the whole cell: stdout and the
    // exported trace are byte-identical to the original run's.
    if let Some(j) = j {
        if let Some(entry) = j.lookup(&key) {
            let decoded = parse(&entry.payload).ok().and_then(|v| {
                let field = |k: &str| v.get(k).and_then(Value::as_str).map(str::to_string);
                Some((
                    v.get("ok").and_then(Value::as_u64)?,
                    field("text")?,
                    field("json")?,
                    field("trace")?,
                ))
            });
            match decoded {
                Some((ok, text, json, trace)) => {
                    eprintln!("# journal {}: profile cell replayed", j.path().display());
                    print!("{text}");
                    println!("{json}");
                    write_trace(&trace);
                    return Ok(if ok == 1 {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    });
                }
                None => j.report_bad_payload(&key, "profile payload does not decode"),
            }
        }
    }

    let rep = runner.stage(|| run_profile(harness, id, variant));
    let text = rep.render_text();
    let json = rep.render_json();
    let trace = rep.chrome_trace();
    runner.report_corrupt();
    if let Some(j) = j {
        let mut payload = spp_bench::json::JsonObject::new();
        payload
            .num("ok", u8::from(rep.ok()))
            .str("text", &text)
            .str("json", &json)
            .str("trace", &trace);
        let entry = Entry {
            key,
            attempt: 1,
            status: CellStatus::Ok,
            payload: payload.render(),
        };
        if let Err(e) = j.append(&entry) {
            eprintln!("repro: journal: {e}");
        }
    }
    print!("{text}");
    println!("{json}");
    write_trace(&trace);
    Ok(if rep.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `repro trace <BENCH> <VARIANT>`: record one trace and print its
/// micro-op mix and per-operation averages.
fn trace_cmd(positional: &[String], exp: &Experiment) -> Result<(), CliError> {
    use spp_workloads::{run_benchmark, BenchId, BenchSpec, RunConfig};
    let (Some(bench), Some(variant)) = (positional.first(), positional.get(1)) else {
        return Err(CliError::MissingTraceArgs);
    };
    let id = BenchId::ALL
        .iter()
        .copied()
        .find(|b| b.abbrev().eq_ignore_ascii_case(bench))
        .ok_or_else(|| CliError::UnknownBench(bench.clone()))?;
    let variant = spp_bench::parse_variant(variant)
        .ok_or_else(|| CliError::UnknownVariant(variant.clone()))?;
    let spec = BenchSpec::scaled(id, exp.scale);
    let out = run_benchmark(&RunConfig {
        variant,
        spec,
        seed: exp.seed,
        capture_base: false,
    });
    let c = out.trace.counts;
    let ops = spec.sim_ops;
    println!(
        "{} / {} at scale 1/{} ({} ops recorded)",
        id.name(),
        variant,
        exp.scale,
        ops
    );
    println!("{:<22} {:>12} {:>10}", "class", "micro-ops", "per op");
    for (name, v) in [
        ("compute", c.compute),
        ("loads", c.loads),
        ("stores", c.stores),
        ("flushes (clwb/...)", c.flushes),
        ("pcommits", c.pcommits),
        ("fences", c.fences),
    ] {
        println!("{:<22} {:>12} {:>10.1}", name, v, v as f64 / ops as f64);
    }
    println!(
        "{:<22} {:>12} {:>10.1}",
        "TOTAL",
        c.total(),
        c.total() as f64 / ops as f64
    );
    println!("transactions: {}", c.transactions);
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn args(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_apply_without_flags() {
        let cli = parse_args(&args(&["all"])).unwrap();
        assert_eq!(cli.cmd, "all");
        assert_eq!(cli.exp.scale, Experiment::default().scale);
        assert_eq!(cli.exp.seed, Experiment::default().seed);
        assert!(cli.jobs >= 1);
        assert!(cli.positional.is_empty());
    }

    #[test]
    fn flags_and_positionals_parse_anywhere() {
        let cli = parse_args(&args(&[
            "trace", "--scale", "200", "LL", "--seed", "9", "logpsf", "--jobs", "3",
        ]))
        .unwrap();
        assert_eq!(cli.cmd, "trace");
        assert_eq!(cli.exp.scale, 200);
        assert_eq!(cli.exp.seed, 9);
        assert_eq!(cli.jobs, 3);
        assert_eq!(cli.positional, args(&["LL", "logpsf"]));
    }

    #[test]
    fn zero_jobs_is_a_typed_error() {
        let e = parse_args(&args(&["all", "--jobs", "0"])).unwrap_err();
        assert_eq!(
            e,
            CliError::BadValue {
                flag: "--jobs",
                given: "0".to_string(),
                want: "an integer of at least 1",
            }
        );
    }

    #[test]
    fn zero_and_negative_scale_are_typed_errors() {
        for bad in ["0", "-3", "1.5", "lots", ""] {
            let e = parse_args(&args(&["all", "--scale", bad])).unwrap_err();
            assert!(
                matches!(
                    e,
                    CliError::BadValue {
                        flag: "--scale",
                        ..
                    }
                ),
                "--scale {bad:?} gave {e:?}"
            );
        }
    }

    #[test]
    fn missing_flag_value_is_a_typed_error() {
        let e = parse_args(&args(&["all", "--seed"])).unwrap_err();
        assert_eq!(
            e,
            CliError::BadValue {
                flag: "--seed",
                given: String::new(),
                want: "a non-negative integer",
            }
        );
    }

    #[test]
    fn no_command_is_a_typed_error() {
        assert_eq!(parse_args(&[]).unwrap_err(), CliError::NoCommand);
    }

    #[test]
    fn every_error_renders_as_one_line() {
        let errors = [
            CliError::NoCommand,
            CliError::UnknownCommand("fig99".into()),
            CliError::BadValue {
                flag: "--jobs",
                given: "-2".into(),
                want: "an integer of at least 1",
            },
            CliError::MissingTraceArgs,
            CliError::MissingProfileArgs,
            CliError::MissingOptimizeArgs,
            CliError::UnknownBench("ZZ".into()),
            CliError::UnknownVariant("fast".into()),
            CliError::UnknownLeg("base".into()),
            CliError::FlagUnsupported {
                flag: "--journal",
                cmd: "all".into(),
            },
            CliError::ResumeNeedsJournal,
            CliError::ResumeMissingJournal("/tmp/x.jsonl".into()),
            CliError::JournalNeedsResume("/tmp/x.jsonl".into()),
            CliError::Journal("journal \"x\": denied".into()),
            CliError::MissingJournalCheckArgs,
            CliError::TraceMemCap("trace cache holds 9 bytes, exceeding --trace-mem-cap 1".into()),
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty() && !s.contains('\n'), "{e:?} renders {s:?}");
        }
    }

    #[test]
    fn journal_flags_parse() {
        let cli = parse_args(&args(&[
            "faultsim",
            "--journal",
            "j.jsonl",
            "--resume",
            "--jobs",
            "2",
        ]))
        .unwrap();
        assert_eq!(cli.journal.as_deref(), Some("j.jsonl"));
        assert!(cli.resume);
        assert!(check_flag_scope(&cli).is_ok());
        let cli = parse_args(&args(&["soak", "--iters", "3"])).unwrap();
        assert_eq!(cli.iters, Some(3));
        assert!(check_flag_scope(&cli).is_ok());
    }

    #[test]
    fn storm_bound_parses_validates_and_scopes_to_multicore() {
        let cli = parse_args(&args(&["multicore", "--storm-bound", "8"])).unwrap();
        assert_eq!(cli.storm_bound, Some(8));
        assert!(check_flag_scope(&cli).is_ok());
        // Zero (and junk) budgets are typed errors, not panics.
        for bad in ["0", "-1", "lots", ""] {
            let e = parse_args(&args(&["multicore", "--storm-bound", bad])).unwrap_err();
            assert!(
                matches!(
                    e,
                    CliError::BadValue {
                        flag: "--storm-bound",
                        ..
                    }
                ),
                "--storm-bound {bad:?} gave {e:?}"
            );
        }
        // The flag means nothing outside the multicore study.
        let cli = parse_args(&args(&["faultsim", "--storm-bound", "8"])).unwrap();
        assert_eq!(
            check_flag_scope(&cli).unwrap_err(),
            CliError::FlagUnsupported {
                flag: "--storm-bound",
                cmd: "faultsim".into(),
            }
        );
    }

    #[test]
    fn model_knob_parses_validates_and_scopes_to_litmus() {
        let cli = parse_args(&args(&["litmus", "--model-knob", "clflushopt-po"])).unwrap();
        assert_eq!(cli.model_knob, Some(ModelKnob::ClflushOptProgramOrdered));
        assert!(check_flag_scope(&cli).is_ok());
        let cli = parse_args(&args(&["litmus", "--model-knob", "honest"])).unwrap();
        assert_eq!(cli.model_knob, Some(ModelKnob::Honest));
        for bad in ["", "tso", "--journal"] {
            let e = parse_args(&args(&["litmus", "--model-knob", bad])).unwrap_err();
            assert!(
                matches!(
                    e,
                    CliError::BadValue {
                        flag: "--model-knob",
                        ..
                    }
                ),
                "--model-knob {bad:?} gave {e:?}"
            );
        }
        // Test-only means litmus-only: no other command may weaken the
        // model, even by accident.
        let cli = parse_args(&args(&["crashfuzz", "--model-knob", "honest"])).unwrap();
        assert_eq!(
            check_flag_scope(&cli).unwrap_err(),
            CliError::FlagUnsupported {
                flag: "--model-knob",
                cmd: "crashfuzz".into(),
            }
        );
    }

    #[test]
    fn litmus_is_a_journaled_command() {
        let cli = parse_args(&args(&["litmus", "--journal", "j.jsonl", "--resume"])).unwrap();
        assert_eq!(cli.journal.as_deref(), Some("j.jsonl"));
        assert!(cli.resume);
        assert!(check_flag_scope(&cli).is_ok());
    }

    #[test]
    fn resume_without_journal_is_a_typed_error() {
        let cli = parse_args(&args(&["faultsim", "--resume"])).unwrap();
        assert_eq!(
            check_flag_scope(&cli).unwrap_err(),
            CliError::ResumeNeedsJournal
        );
    }

    #[test]
    fn journal_flags_are_rejected_on_unjournaled_commands() {
        for (words, flag) in [
            (vec!["all", "--journal", "j.jsonl"], "--journal"),
            (vec!["fig8", "--resume"], "--resume"),
            (vec!["faultsim", "--iters", "2"], "--iters"),
        ] {
            let cli = parse_args(&args(&words)).unwrap();
            assert_eq!(
                check_flag_scope(&cli).unwrap_err(),
                CliError::FlagUnsupported {
                    flag,
                    cmd: words[0].to_string(),
                },
                "{words:?}"
            );
        }
    }

    #[test]
    fn journal_flag_values_are_validated() {
        // Bare `--journal` (end of args, or another flag next) falls
        // back to the conventional manifest location.
        let cli = parse_args(&args(&["faultsim", "--journal"])).unwrap();
        assert_eq!(
            cli.journal.as_deref(),
            Some(spp_bench::journal::DEFAULT_JOURNAL_PATH)
        );
        let cli = parse_args(&args(&["faultsim", "--journal", "--resume"])).unwrap();
        assert_eq!(
            cli.journal.as_deref(),
            Some(spp_bench::journal::DEFAULT_JOURNAL_PATH)
        );
        assert!(cli.resume);
        // An explicit empty path is still a typed error.
        let e = parse_args(&args(&["faultsim", "--journal", ""])).unwrap_err();
        assert!(
            matches!(
                e,
                CliError::BadValue {
                    flag: "--journal",
                    ..
                }
            ),
            "{e:?}"
        );
        let e = parse_args(&args(&["soak", "--iters", "0"])).unwrap_err();
        assert!(
            matches!(
                e,
                CliError::BadValue {
                    flag: "--iters",
                    ..
                }
            ),
            "{e:?}"
        );
    }

    #[test]
    fn open_journal_enforces_the_resume_discipline() {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "spp-repro-cli-journal-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        // Resuming a journal that does not exist is a typed error.
        assert!(matches!(
            open_journal(&p, true).unwrap_err(),
            CliError::ResumeMissingJournal(_)
        ));
        // A fresh run against a fresh path opens (and creates) it.
        open_journal(&p, false).unwrap();
        // A fresh run against an existing non-empty journal must not
        // silently mix campaigns.
        std::fs::write(&p, "x\n").unwrap();
        assert!(matches!(
            open_journal(&p, false).unwrap_err(),
            CliError::JournalNeedsResume(_)
        ));
        // Resuming it is fine (the bogus line surfaces via corrupt()).
        let j = open_journal(&p, true).unwrap();
        assert_eq!(j.corrupt().len(), 1);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn trace_cmd_rejects_unknown_names() {
        let exp = Experiment::default();
        assert_eq!(
            trace_cmd(&args(&["ZZ", "base"]), &exp).unwrap_err(),
            CliError::UnknownBench("ZZ".into())
        );
        assert_eq!(
            trace_cmd(&args(&["LL", "fast"]), &exp).unwrap_err(),
            CliError::UnknownVariant("fast".into())
        );
        assert_eq!(
            trace_cmd(&args(&["LL"]), &exp).unwrap_err(),
            CliError::MissingTraceArgs
        );
    }

    #[test]
    fn profile_flags_parse_and_scope_check() {
        // `--trace-out` with a value parses, and profile accepts the
        // journal flags (it is a journaled command).
        let cli = parse_args(&args(&[
            "profile",
            "LL",
            "logpsf",
            "--trace-out",
            "t.json",
            "--journal",
            "j.jsonl",
        ]))
        .unwrap();
        assert_eq!(cli.cmd, "profile");
        assert_eq!(cli.positional, args(&["LL", "logpsf"]));
        assert_eq!(cli.trace_out.as_deref(), Some("t.json"));
        assert_eq!(cli.journal.as_deref(), Some("j.jsonl"));
        assert!(check_flag_scope(&cli).is_ok());
        // A missing or flag-like value is a typed error.
        for words in [
            vec!["profile", "LL", "base", "--trace-out"],
            vec!["profile", "LL", "base", "--trace-out", "--jobs"],
            vec!["profile", "LL", "base", "--trace-out", ""],
        ] {
            let e = parse_args(&args(&words)).unwrap_err();
            assert!(
                matches!(
                    e,
                    CliError::BadValue {
                        flag: "--trace-out",
                        ..
                    }
                ),
                "{words:?} gave {e:?}"
            );
        }
        // `--trace-out` is profile-only.
        let cli = parse_args(&args(&["all", "--trace-out", "t.json"])).unwrap();
        assert_eq!(
            check_flag_scope(&cli).unwrap_err(),
            CliError::FlagUnsupported {
                flag: "--trace-out",
                cmd: "all".into(),
            }
        );
    }

    #[test]
    fn profile_cmd_rejects_unknown_names() {
        let h = Harness::new(Experiment::default(), 1);
        let study = StudyCli::default();
        assert_eq!(
            profile_cmd(&h, &args(&["ZZ", "base"]), &study, None).unwrap_err(),
            CliError::UnknownBench("ZZ".into())
        );
        assert_eq!(
            profile_cmd(&h, &args(&["LL", "fast"]), &study, None).unwrap_err(),
            CliError::UnknownVariant("fast".into())
        );
        assert_eq!(
            profile_cmd(&h, &args(&["LL"]), &study, None).unwrap_err(),
            CliError::MissingProfileArgs
        );
    }

    #[test]
    fn optimize_cmd_rejects_unknown_names() {
        let h = Harness::new(Experiment::default(), 1);
        let study = StudyCli::default();
        assert_eq!(
            optimize_cmd(&h, &args(&["ZZ", "base"]), &study).unwrap_err(),
            CliError::UnknownBench("ZZ".into())
        );
        assert_eq!(
            optimize_cmd(&h, &args(&["LL", "fast"]), &study).unwrap_err(),
            CliError::UnknownVariant("fast".into())
        );
        assert_eq!(
            optimize_cmd(&h, &args(&["LL"]), &study).unwrap_err(),
            CliError::MissingOptimizeArgs
        );
    }

    #[test]
    fn optimize_is_a_journaled_command_with_a_bench_out() {
        let cli = parse_args(&args(&[
            "optimize",
            "LL",
            "logpsf",
            "--journal",
            "j.jsonl",
            "--resume",
            "--bench-out",
            "b.json",
            "--trace-mem-cap",
            "4096",
        ]))
        .unwrap();
        assert_eq!(cli.positional, args(&["LL", "logpsf"]));
        assert_eq!(cli.journal.as_deref(), Some("j.jsonl"));
        assert!(cli.resume);
        assert_eq!(cli.bench_out.as_deref(), Some("b.json"));
        assert_eq!(cli.trace_mem_cap, Some(4096));
        assert!(check_flag_scope(&cli).is_ok());
        // Profile-only flags stay profile-only.
        let cli = parse_args(&args(&[
            "optimize",
            "LL",
            "logpsf",
            "--trace-out",
            "t.json",
        ]))
        .unwrap();
        assert_eq!(
            check_flag_scope(&cli).unwrap_err(),
            CliError::FlagUnsupported {
                flag: "--trace-out",
                cmd: "optimize".into(),
            }
        );
    }

    #[test]
    fn unknown_crashfuzz_leg_is_a_typed_error() {
        let h = Harness::new(Experiment::default(), 1);
        assert_eq!(
            crashfuzz_cmd(&h, &args(&["base"])).unwrap_err(),
            CliError::UnknownLeg("base".into())
        );
    }

    #[test]
    fn kv_is_a_journaled_command_with_a_bench_out() {
        let cli = parse_args(&args(&[
            "kv",
            "--journal",
            "j.jsonl",
            "--resume",
            "--bench-out",
            "b.json",
        ]))
        .unwrap();
        assert_eq!(cli.journal.as_deref(), Some("j.jsonl"));
        assert!(cli.resume);
        assert_eq!(cli.bench_out.as_deref(), Some("b.json"));
        assert!(check_flag_scope(&cli).is_ok());
        // The perf-trajectory record stays scoped: multicore has no
        // labeled cells to contribute, so `--bench-out` stays rejected
        // there.
        let cli = parse_args(&args(&["multicore", "--bench-out", "b.json"])).unwrap();
        assert_eq!(
            check_flag_scope(&cli).unwrap_err(),
            CliError::FlagUnsupported {
                flag: "--bench-out",
                cmd: "multicore".into(),
            }
        );
    }

    #[test]
    fn trace_mem_cap_parses_validates_and_scopes() {
        for cmd in ["all", "kv", "profile", "crashfuzz"] {
            let cli = parse_args(&args(&[cmd, "--trace-mem-cap", "4096"])).unwrap();
            assert_eq!(cli.trace_mem_cap, Some(4096));
            assert!(check_flag_scope(&cli).is_ok(), "{cmd}");
        }
        for bad in ["0", "-1", "lots", ""] {
            let e = parse_args(&args(&["all", "--trace-mem-cap", bad])).unwrap_err();
            assert!(
                matches!(
                    e,
                    CliError::BadValue {
                        flag: "--trace-mem-cap",
                        ..
                    }
                ),
                "--trace-mem-cap {bad:?} gave {e:?}"
            );
        }
        // Commands that never route traces through the harness cache
        // reject the cap instead of silently ignoring it.
        for cmd in ["trace", "soak", "journal"] {
            let cli = parse_args(&args(&[cmd, "--trace-mem-cap", "4096"])).unwrap();
            assert_eq!(
                check_flag_scope(&cli).unwrap_err(),
                CliError::FlagUnsupported {
                    flag: "--trace-mem-cap",
                    cmd: cmd.into(),
                },
                "{cmd}"
            );
        }
    }

    #[test]
    fn a_tripped_trace_mem_cap_is_a_typed_error() {
        use spp_bench::TraceKey;
        use spp_pmem::Variant;
        use spp_workloads::BenchId;
        let exp = Experiment {
            scale: 2400,
            seed: 7,
        };
        let h = Harness::new(exp, 1);
        h.set_trace_mem_cap(Some(1));
        // One recording holds far more than one byte: the cap trips.
        let _ = h.trace(TraceKey::new(BenchId::LinkedList, Variant::Base, &exp));
        let e = check_trace_mem(&h, ExitCode::SUCCESS).unwrap_err();
        assert!(
            matches!(e, CliError::TraceMemCap(ref s) if s.contains("--trace-mem-cap 1")),
            "{e:?}"
        );
        // Without a cap the same recording passes the gate untouched.
        let h = Harness::new(exp, 1);
        let _ = h.trace(TraceKey::new(BenchId::LinkedList, Variant::Base, &exp));
        assert!(check_trace_mem(&h, ExitCode::SUCCESS).is_ok());
    }

    #[test]
    fn journal_check_wants_the_subcommand_and_a_path() {
        for words in [
            vec![],
            vec!["check"],
            vec!["check", "a", "b"],
            vec!["verify", "a"],
        ] {
            assert_eq!(
                journal_cmd(&args(&words)).unwrap_err(),
                CliError::MissingJournalCheckArgs,
                "{words:?}"
            );
        }
        // A missing file is an open error, not a silent empty manifest
        // (Journal::open would create it).
        assert!(matches!(
            journal_check("/nonexistent/spp-journal-check.jsonl").unwrap_err(),
            CliError::Journal(_)
        ));
    }

    #[test]
    fn journal_check_verifies_flags_truncation_and_bit_flips() {
        use spp_bench::journal::{CellStatus, Entry, Journal};
        let mut p = std::env::temp_dir();
        p.push(format!(
            "spp-repro-journal-check-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        let j = Journal::open(&p).unwrap();
        for k in ["kv/a", "kv/b", "kv/c"] {
            j.append(&Entry {
                key: k.to_string(),
                attempt: 1,
                status: CellStatus::Ok,
                payload: "{\"ok\":1}".to_string(),
            })
            .unwrap();
        }
        drop(j);
        let path = p.display().to_string();
        // Pristine: every line verifies.
        assert_eq!(journal_check(&path).unwrap(), 0);
        // A kill mid-append leaves a torn final line: cut the last
        // entry in half. The damage localizes to that one line.
        let clean = std::fs::read(&p).unwrap();
        std::fs::write(&p, &clean[..clean.len() - 9]).unwrap();
        assert_eq!(journal_check(&path).unwrap(), 1);
        // A single flipped payload byte fails that entry's checksum.
        let mut flipped = clean.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        std::fs::write(&p, &flipped).unwrap();
        assert!(journal_check(&path).unwrap() >= 1);
        std::fs::remove_file(&p).unwrap();
    }
}
