//! `repro crashfuzz` — crash-consistency fuzzing and differential
//! validation.
//!
//! The paper's premise (§2, Fig. 3) is that `Log+P+Sf` is the *only*
//! failure-safe build variant and that SP preserves exactly its
//! guarantees. This module mechanizes that claim in both directions
//! instead of asserting it from hand-picked crash points:
//!
//! * **Must-pass cells**: for every benchmark × `FlushMode`, the
//!   `Log+P+Sf` build is crash-injected at every persist boundary of
//!   its trace (plus an evenly-spaced sample of non-boundary points)
//!   under several adversarial writeback reorderings
//!   ([`spp_pmem::CrashSim::image_seeded`]); recovery must restore a
//!   consistent structure at an adjacent operation boundary *every*
//!   time.
//! * **Must-fail cells**: the `Log` and `Log+P` builds must each
//!   exhibit at least one detectable inconsistency per benchmark — the
//!   witness is minimized to the lexicographically smallest
//!   `(crash_idx, seed)` pair that fails its oracle.
//! * **SP differential**: the `Log+P+Sf` trace is replayed on the
//!   baseline and SP256 cores; committed micro-op counts must agree
//!   with each other and with the trace, class by class — speculation
//!   may only move cycles, never architectural work.
//!
//! Cells fan out over [`run_indexed`], so `--jobs` changes wall time
//! only: every witness search is a deterministic scan and the report is
//! byte-identical at any job count.

use spp_cpu::{CpuConfig, SimResult};
use spp_pmem::{persist_boundaries, FlushMode, TraceCounts, Variant};
use spp_workloads::oracle::{record_bundle, BundleSpec, CrashBundle, ViolationKind};
use spp_workloads::BenchId;

use crate::json::{array, JsonObject};
use crate::{run_indexed, variant_key, Experiment, Harness, TraceKey};

/// Non-boundary crash points sampled per trace (evenly spaced).
const SAMPLED_POINTS: usize = 64;

/// Adversarial reorderings tried per crash point.
pub const SEEDS_PER_POINT: u64 = 2;

/// Which slice of the fuzz matrix to run (`repro crashfuzz [leg]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Leg {
    /// Every variant plus the SP differential.
    All,
    /// Only the must-fail `Log` cells.
    Log,
    /// Only the must-fail `Log+P` cells.
    LogP,
    /// Only the must-pass `Log+P+Sf` cells plus the SP differential.
    LogPSf,
}

impl Leg {
    /// Parses a `repro crashfuzz` leg argument.
    pub fn parse(s: &str) -> Option<Leg> {
        match s.to_ascii_lowercase().as_str() {
            "all" => Some(Leg::All),
            "log" => Some(Leg::Log),
            "logp" | "log+p" => Some(Leg::LogP),
            "logpsf" | "log+p+sf" => Some(Leg::LogPSf),
            _ => None,
        }
    }

    fn variants(self) -> &'static [Variant] {
        match self {
            Leg::All => &[Variant::Log, Variant::LogP, Variant::LogPSf],
            Leg::Log => &[Variant::Log],
            Leg::LogP => &[Variant::LogP],
            Leg::LogPSf => &[Variant::LogPSf],
        }
    }

    fn runs_sp_differential(self) -> bool {
        matches!(self, Leg::All | Leg::LogPSf)
    }
}

/// A minimal failing schedule: the lexicographically smallest
/// `(crash_idx, seed)` whose post-recovery image fails its oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Crash point (index into the recorded event stream).
    pub crash_idx: usize,
    /// Reordering seed (see [`spp_pmem::CrashSim::image_seeded`]).
    pub seed: u64,
    /// What the oracle rejected.
    pub kind: ViolationKind,
    /// Deterministic human-readable description.
    pub detail: String,
}

/// The sizing used for fuzz bundles at a given experiment scale.
///
/// Fuzzing cost is `crash points × seeds × image clones`, so bundles
/// are much smaller than the timing suite's traces; the scale knob
/// still shrinks them further for smoke runs.
pub fn fuzz_bundle_spec(
    id: BenchId,
    variant: Variant,
    mode: FlushMode,
    exp: &Experiment,
) -> BundleSpec {
    BundleSpec {
        id,
        variant,
        flush_mode: mode,
        init_ops: (4800 / exp.scale).max(8),
        sim_ops: (300 / exp.scale).max(2),
        seed: exp.seed,
    }
}

/// The crash points checked for a trace: every persist boundary
/// (exhaustive — between them only plain stores retire, so the
/// guarantee frontier cannot change) plus up to [`SAMPLED_POINTS`]
/// evenly spaced indices covering the in-between stretches.
pub fn crash_points(events: &[spp_pmem::Event]) -> Vec<usize> {
    let mut pts = persist_boundaries(events);
    let k = SAMPLED_POINTS.min(events.len());
    for i in 0..k {
        pts.push(i * events.len() / k);
    }
    pts.sort_unstable();
    pts.dedup();
    pts
}

/// Scans `(crash_idx, seed)` pairs in lexicographic order and returns
/// the first — hence minimal — failing witness, or `None` if every
/// schedule up to `max_idx` recovers.
pub fn minimal_witness(b: &CrashBundle, max_idx: usize, seeds: u64) -> Option<(Witness, usize)> {
    let mut checks = 0;
    for crash_idx in 0..=max_idx {
        for seed in 0..seeds {
            checks += 1;
            if let Err(v) = b.check_crash(crash_idx, seed) {
                return Some((
                    Witness {
                        crash_idx,
                        seed,
                        kind: v.kind,
                        detail: v.detail,
                    },
                    checks,
                ));
            }
        }
    }
    None
}

/// One fuzz cell: a `(benchmark, variant, flush mode)` bundle and its
/// oracle verdict.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// Which benchmark.
    pub id: BenchId,
    /// The build variant crashed.
    pub variant: Variant,
    /// The flush instruction the build emitted.
    pub mode: FlushMode,
    /// Recorded event count.
    pub events: usize,
    /// Crash points swept (must-pass cells).
    pub points: usize,
    /// Oracle checks executed.
    pub checks: usize,
    /// Is this a must-fail cell (`Log`/`Log+P`)?
    pub expect_violation: bool,
    /// The minimized witness (must-fail cells that did fail).
    pub witness: Option<Witness>,
    /// Unexpected violations of a must-pass cell (first few).
    pub unexpected: Vec<Witness>,
    /// Did the cell meet its expectation?
    pub ok: bool,
}

/// One SP differential row: committed micro-op classes must be
/// identical between the baseline and SP cores and match the trace.
#[derive(Debug, Clone, Copy)]
pub struct SpReport {
    /// Which benchmark.
    pub id: BenchId,
    /// Micro-ops in the `Log+P+Sf` trace.
    pub trace_uops: u64,
    /// Baseline-core committed totals.
    pub base_uops: u64,
    /// SP256-core committed totals.
    pub sp_uops: u64,
    /// Do all five committed classes and the totals agree?
    pub ok: bool,
}

/// The full crashfuzz outcome.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Scale/seed the bundles were recorded at.
    pub exp: Experiment,
    /// Reorderings tried per crash point.
    pub seeds_per_point: u64,
    /// Per-cell verdicts, in deterministic matrix order.
    pub cells: Vec<CellReport>,
    /// SP differential rows (empty unless the leg includes them).
    pub sp: Vec<SpReport>,
}

fn committed_classes(r: &SimResult) -> [u64; 6] {
    [
        r.cpu.committed_uops,
        r.cpu.loads,
        r.cpu.stores,
        r.cpu.flushes,
        r.cpu.pcommits,
        r.cpu.fences,
    ]
}

fn trace_classes(c: &TraceCounts) -> [u64; 6] {
    [
        c.total(),
        c.loads,
        c.stores,
        c.flushes,
        c.pcommits,
        c.fences,
    ]
}

fn run_cell(id: BenchId, variant: Variant, mode: FlushMode, exp: &Experiment) -> CellReport {
    let spec = fuzz_bundle_spec(id, variant, mode, exp);
    let b = record_bundle(&spec);
    let expect_violation = variant != Variant::LogPSf;
    if expect_violation {
        // Must-fail: find the lexicographically minimal witness. The
        // scan doubles as the existence proof — if it comes back empty
        // the unsafe build survived every schedule, which is exactly
        // the regression this cell exists to catch.
        let scan = minimal_witness(&b, b.events().len(), SEEDS_PER_POINT);
        let (witness, checks) = match scan {
            Some((w, n)) => (Some(w), n),
            None => (None, (b.events().len() + 1) * SEEDS_PER_POINT as usize),
        };
        CellReport {
            id,
            variant,
            mode,
            events: b.events().len(),
            points: 0,
            checks,
            expect_violation,
            ok: witness.is_some(),
            witness,
            unexpected: Vec::new(),
        }
    } else {
        // Must-pass: sweep every boundary and sampled point under
        // every seed; any violation is a failure-safety bug.
        let pts = crash_points(b.events());
        let mut unexpected = Vec::new();
        let mut checks = 0;
        for &p in &pts {
            for seed in 0..SEEDS_PER_POINT {
                checks += 1;
                if let Err(v) = b.check_crash(p, seed) {
                    if unexpected.len() < 3 {
                        unexpected.push(Witness {
                            crash_idx: p,
                            seed,
                            kind: v.kind,
                            detail: v.detail,
                        });
                    }
                }
            }
        }
        CellReport {
            id,
            variant,
            mode,
            events: b.events().len(),
            points: pts.len(),
            checks,
            expect_violation,
            ok: unexpected.is_empty(),
            witness: None,
            unexpected,
        }
    }
}

/// Runs the crashfuzz matrix for `leg` on the harness's worker budget.
///
/// Cells (and SP differential rows) are independent jobs fanned out via
/// [`run_indexed`]; results come back in input order, so the report is
/// identical at any `--jobs` value.
pub fn run_crashfuzz(h: &Harness, leg: Leg) -> FuzzReport {
    let cells: Vec<(BenchId, Variant, FlushMode)> = BenchId::ALL
        .iter()
        .flat_map(|&id| {
            leg.variants()
                .iter()
                .flat_map(move |&v| FlushMode::ALL.iter().map(move |&m| (id, v, m)))
        })
        .collect();
    let cell_reports = run_indexed(h.jobs, &cells, |_, &(id, v, m)| run_cell(id, v, m, &h.exp));
    let sp = if leg.runs_sp_differential() {
        run_indexed(h.jobs, &BenchId::ALL, |_, &id| {
            let t = h.trace(TraceKey::new(id, Variant::LogPSf, &h.exp));
            let base = crate::must_simulate(&t.events, &CpuConfig::baseline());
            let sp = crate::must_simulate(&t.events, &CpuConfig::with_sp());
            let ok = committed_classes(&base) == committed_classes(&sp)
                && committed_classes(&base) == trace_classes(&t.counts);
            SpReport {
                id,
                trace_uops: t.counts.total(),
                base_uops: base.cpu.committed_uops,
                sp_uops: sp.cpu.committed_uops,
                ok,
            }
        })
    } else {
        Vec::new()
    };
    FuzzReport {
        exp: h.exp,
        seeds_per_point: SEEDS_PER_POINT,
        cells: cell_reports,
        sp,
    }
}

impl FuzzReport {
    /// Did every cell and every SP differential meet its expectation?
    pub fn ok(&self) -> bool {
        self.cells.iter().all(|c| c.ok) && self.sp.iter().all(|s| s.ok)
    }

    /// The human-readable report (deterministic; stdout-destined).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "== crashfuzz (scale 1/{}, seed {:#x}, {} reorderings/point) ==",
            self.exp.scale, self.exp.seed, self.seeds_per_point
        );
        let _ = writeln!(
            s,
            "{:<5} {:<9} {:<11} {:>7} {:>7} {:>7}  {:<11} verdict",
            "bench", "variant", "flush", "events", "points", "checks", "expectation"
        );
        for c in &self.cells {
            let expectation = if c.expect_violation {
                "must-fail"
            } else {
                "must-pass"
            };
            let verdict = if c.expect_violation {
                match &c.witness {
                    Some(w) => format!(
                        "ok: witness (crash_idx {}, seed {}) {}",
                        w.crash_idx, w.seed, w.kind
                    ),
                    None => "FAIL: no inconsistency found".to_string(),
                }
            } else if c.ok {
                "ok: all schedules recovered".to_string()
            } else {
                let w = &c.unexpected[0];
                format!(
                    "FAIL: {} violation(s), first (crash_idx {}, seed {}) {}",
                    c.unexpected.len(),
                    w.crash_idx,
                    w.seed,
                    w.kind
                )
            };
            let _ = writeln!(
                s,
                "{:<5} {:<9} {:<11} {:>7} {:>7} {:>7}  {:<11} {}",
                c.id.abbrev(),
                variant_key(c.variant),
                c.mode.mnemonic(),
                c.events,
                c.points,
                c.checks,
                expectation,
                verdict
            );
        }
        if !self.sp.is_empty() {
            let _ = writeln!(
                s,
                "SP differential (Log+P+Sf trace, committed uop classes, baseline vs SP256):"
            );
            for r in &self.sp {
                let _ = writeln!(
                    s,
                    "{:<5} {} (trace {}, baseline {}, sp256 {})",
                    r.id.abbrev(),
                    if r.ok { "ok" } else { "FAIL" },
                    r.trace_uops,
                    r.base_uops,
                    r.sp_uops
                );
            }
        }
        let _ = writeln!(
            s,
            "crashfuzz: {} ({} cells, {} SP differentials)",
            if self.ok() { "PASS" } else { "FAIL" },
            self.cells.len(),
            self.sp.len()
        );
        s
    }

    /// The machine-readable report.
    pub fn render_json(&self) -> String {
        let cells = self.cells.iter().map(|c| {
            let mut o = JsonObject::new();
            o.str("bench", c.id.abbrev())
                .str("variant", variant_key(c.variant))
                .str("flush", c.mode.mnemonic())
                .num("events", c.events as f64)
                .num("points", c.points as f64)
                .num("checks", c.checks as f64)
                .str(
                    "expectation",
                    if c.expect_violation {
                        "violation"
                    } else {
                        "recovery"
                    },
                )
                .num("ok", u8::from(c.ok));
            let wit = |w: &Witness| {
                let mut wo = JsonObject::new();
                wo.num("crash_idx", w.crash_idx as f64)
                    .num("seed", w.seed as f64)
                    .str("kind", &w.kind.to_string())
                    .str("detail", &w.detail);
                wo.render()
            };
            if let Some(w) = &c.witness {
                o.raw("witness", wit(w));
            }
            if !c.unexpected.is_empty() {
                o.raw("unexpected", array(c.unexpected.iter().map(wit)));
            }
            o.render()
        });
        let sp = self.sp.iter().map(|r| {
            let mut o = JsonObject::new();
            o.str("bench", r.id.abbrev())
                .num("trace_uops", r.trace_uops as f64)
                .num("base_uops", r.base_uops as f64)
                .num("sp_uops", r.sp_uops as f64)
                .num("ok", u8::from(r.ok));
            o.render()
        });
        crate::schema::emit(crate::schema::CRASHFUZZ, |root| {
            root.num("scale", self.exp.scale as f64)
                .num("seed", self.exp.seed as f64)
                .num("seeds_per_point", self.seeds_per_point as f64)
                .num("ok", u8::from(self.ok()))
                .raw("cells", array(cells))
                .raw("sp", array(sp));
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_harness(jobs: usize) -> Harness {
        Harness::new(
            Experiment {
                scale: 2400, // init 8 / sim 2 per bundle: the smoke sizing
                seed: 7,
            },
            jobs,
        )
    }

    #[test]
    fn log_leg_finds_minimized_witnesses_everywhere() {
        let rep = run_crashfuzz(&smoke_harness(4), Leg::Log);
        assert_eq!(rep.cells.len(), 21, "7 benchmarks x 3 flush modes");
        for c in &rep.cells {
            assert!(c.expect_violation);
            let w = c
                .witness
                .as_ref()
                .unwrap_or_else(|| panic!("{} {} {}: no witness", c.id, c.variant, c.mode));
            // Minimality: no lexicographically smaller pair fails.
            let spec = fuzz_bundle_spec(c.id, c.variant, c.mode, &rep.exp);
            let b = record_bundle(&spec);
            for idx in 0..=w.crash_idx {
                for seed in 0..rep.seeds_per_point {
                    if (idx, seed) == (w.crash_idx, w.seed) {
                        continue;
                    }
                    if idx == w.crash_idx && seed > w.seed {
                        continue;
                    }
                    assert!(
                        b.check_crash(idx, seed).is_ok(),
                        "{}: ({idx}, {seed}) fails but witness is ({}, {})",
                        c.id,
                        w.crash_idx,
                        w.seed
                    );
                }
            }
        }
        assert!(rep.ok());
        assert!(rep.sp.is_empty(), "Log leg skips the SP differential");
    }

    #[test]
    fn logpsf_leg_is_clean_and_sp_matches() {
        let rep = run_crashfuzz(&smoke_harness(4), Leg::LogPSf);
        assert_eq!(rep.cells.len(), 21);
        for c in &rep.cells {
            assert!(!c.expect_violation);
            assert!(
                c.ok,
                "{} {} {}: {:?}",
                c.id, c.variant, c.mode, c.unexpected
            );
            assert!(c.points > 2, "boundary sweep must cover the trace");
        }
        assert_eq!(rep.sp.len(), 7);
        for r in &rep.sp {
            assert!(r.ok, "{}: SP committed classes diverged", r.id);
            assert_eq!(r.base_uops, r.sp_uops);
        }
        assert!(rep.ok());
    }

    #[test]
    fn report_is_identical_at_any_job_count() {
        let a = run_crashfuzz(&smoke_harness(1), Leg::LogP);
        let b = run_crashfuzz(&smoke_harness(8), Leg::LogP);
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.render_json(), b.render_json());
        assert!(a.ok());
    }

    #[test]
    fn json_shape_is_balanced_and_keyed() {
        let rep = run_crashfuzz(&smoke_harness(4), Leg::Log);
        let j = rep.render_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        for key in [
            "\"schema\":\"specpersist/crashfuzz-v1\"",
            "\"cells\"",
            "\"witness\"",
            "\"crash_idx\"",
        ] {
            assert!(j.contains(key), "missing {key}");
        }
    }

    #[test]
    fn leg_parsing() {
        assert_eq!(Leg::parse("all"), Some(Leg::All));
        assert_eq!(Leg::parse("Log"), Some(Leg::Log));
        assert_eq!(Leg::parse("log+p"), Some(Leg::LogP));
        assert_eq!(Leg::parse("LogPSf"), Some(Leg::LogPSf));
        assert_eq!(Leg::parse("base"), None);
    }
}
