//! `repro faultsim` — deterministic hardware fault injection and the
//! timing-only invariance check.
//!
//! A [`FaultSpec`] plan perturbs the simulated hardware at eight
//! injection sites (NVMM latency spikes, WPQ backpressure, bank
//! stalls, delayed/duplicated `pcommit` acks, SSB/checkpoint
//! exhaustion pressure). The faults are *timing-only* by construction:
//! they stretch latencies and deny resources, never drop or corrupt a
//! request. This module mechanizes the resulting invariant across the
//! whole suite:
//!
//! * **State invariance**: for every benchmark × build variant × fault
//!   plan, the faulted run on both the baseline and SP256 cores must
//!   commit exactly the same architectural work — all six committed
//!   micro-op classes — as the fault-free run and as the recorded
//!   trace itself. Only cycle counts may move.
//! * **Verdict invariance**: crash-recovery verdicts are a pure
//!   function of the recorded trace, and the state check proves the
//!   faulted runs commit exactly that trace; each cell therefore
//!   carries the trace's oracle verdict (`Log+P+Sf` recovers, `Log`
//!   and `Log+P` yield a violation, `Base` has no persist discipline
//!   to judge), recomputed from a bounded [`crate::crashfuzz`] sweep
//!   and checked against its expectation.
//! * **Watchdog detection**: one leg runs with a deliberately tiny
//!   no-retire bound, far below the 315-cycle NVMM write stall every
//!   persist barrier incurs, and requires the forward-progress
//!   watchdog to convert the run into a typed
//!   [`spp_cpu::SimError`] with a populated diagnostic snapshot
//!   instead of trusting (or hanging in) a wedged simulation. The
//!   true-livelock fixture — a speculating core whose checkpoint can
//!   never be granted — lives in `spp-cpu`'s unit tests, where the
//!   pipeline internals needed to construct it are in scope.
//!
//! Every fault stream is a splitmix64 counter stream seeded from
//! `(plan seed, component salt, site)`, so cells are pure functions of
//! their inputs: the report is byte-identical at any `--jobs` value.

use spp_cpu::{try_simulate, CpuConfig, SimErrorKind, SimResult};
use spp_mem::{FaultSpec, FaultStats};
use spp_pmem::{TraceCounts, Variant};
use spp_workloads::oracle::record_bundle;
use spp_workloads::BenchId;

use crate::crashfuzz::{crash_points, fuzz_bundle_spec, minimal_witness, SEEDS_PER_POINT};
use crate::json::{array, JsonObject};
use crate::{run_indexed, Harness, TraceKey};

/// The build variants swept by `repro faultsim` (all four: even the
/// un-instrumented `Base` build must be timing-invariant under NVMM
/// and WPQ adversity).
pub const VARIANTS: [Variant; 4] = [Variant::Base, Variant::Log, Variant::LogP, Variant::LogPSf];

/// The named fault plans swept per cell, derived from the experiment
/// seed: background-radiation `quiet` and adversarial `storm`.
pub fn plans(seed: u64) -> [(&'static str, FaultSpec); 2] {
    [
        ("quiet", FaultSpec::quiet(seed)),
        ("storm", FaultSpec::storm(seed)),
    ]
}

/// Crash points sampled for a cell's bounded must-pass verdict sweep.
const VERDICT_POINTS: usize = 16;

/// No-retire bound of the watchdog-detection leg: far below the
/// 315-cycle NVMM write stall of every persist barrier, so the first
/// long stall must trip the watchdog.
pub const WATCHDOG_DEMO_BOUND: u64 = 64;

/// One core's run under one plan (or fault-free).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Outcome {
    cycles: u64,
    classes: [u64; 6],
    faults: FaultStats,
    /// Display form of a [`spp_cpu::SimError`], if the run failed.
    error: Option<String>,
}

/// One faultsim cell: a `(benchmark, variant, plan)` triple with the
/// fault-free reference and the faulted runs on both cores.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Which benchmark.
    pub id: BenchId,
    /// The build variant replayed.
    pub variant: Variant,
    /// The fault plan name (`quiet` or `storm`).
    pub plan: &'static str,
    /// Fault-free baseline-core cycles.
    pub base_cycles: u64,
    /// Faulted baseline-core cycles.
    pub base_cycles_faulted: u64,
    /// Fault-free SP256-core cycles.
    pub sp_cycles: u64,
    /// Faulted SP256-core cycles.
    pub sp_cycles_faulted: u64,
    /// Faults injected across both faulted runs.
    pub faults_injected: u64,
    /// Latency directly added by the injected faults, cycles.
    pub extra_cycles: u64,
    /// Did all four runs commit exactly the trace's micro-op classes?
    pub state_ok: bool,
    /// The trace's crash-recovery verdict (`recovers`, `violation`,
    /// or `n/a` for `Base`).
    pub verdict: &'static str,
    /// Does the verdict match the variant's expectation?
    pub verdict_ok: bool,
    /// Simulation errors, if any faulted run failed (always a bug:
    /// plans must perturb timing, not wedge the machine).
    pub errors: Vec<String>,
}

/// The watchdog-detection leg's outcome.
#[derive(Debug, Clone)]
pub struct WatchdogReport {
    /// The benchmark whose trace was replayed.
    pub id: BenchId,
    /// The deliberately tiny no-retire bound used.
    pub bound: u64,
    /// Did the watchdog fire with [`SimErrorKind::NoRetireProgress`]?
    pub fired: bool,
    /// Simulated cycle at which the watchdog fired.
    pub cycle: u64,
    /// ROB occupancy captured in the diagnostic snapshot.
    pub rob_len: usize,
    /// The full one-line error (kind plus snapshot).
    pub detail: String,
    /// Fired as expected with a populated snapshot?
    pub ok: bool,
}

/// The full faultsim outcome.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// Scale/seed the traces were recorded at.
    pub exp: crate::Experiment,
    /// Per-cell results, in deterministic matrix order.
    pub cells: Vec<Cell>,
    /// The watchdog-detection leg.
    pub watchdog: WatchdogReport,
}

fn variant_key(v: Variant) -> &'static str {
    match v {
        Variant::Base => "base",
        Variant::Log => "log",
        Variant::LogP => "logp",
        Variant::LogPSf => "logpsf",
    }
}

fn committed_classes(r: &SimResult) -> [u64; 6] {
    [
        r.cpu.committed_uops,
        r.cpu.loads,
        r.cpu.stores,
        r.cpu.flushes,
        r.cpu.pcommits,
        r.cpu.fences,
    ]
}

fn trace_classes(c: &TraceCounts) -> [u64; 6] {
    [
        c.total(),
        c.loads,
        c.stores,
        c.flushes,
        c.pcommits,
        c.fences,
    ]
}

/// The bounded crash-recovery verdict of a `(benchmark, variant)`
/// bundle: must-fail variants scan for the minimal witness (early
/// exit on the first inconsistency), the must-pass variant sweeps an
/// evenly spaced sample of [`VERDICT_POINTS`] crash points.
fn crash_verdict(id: BenchId, variant: Variant, exp: &crate::Experiment) -> &'static str {
    let spec = fuzz_bundle_spec(id, variant, spp_pmem::FlushMode::Clwb, exp);
    let b = record_bundle(&spec);
    if variant == Variant::LogPSf {
        let pts = crash_points(b.events());
        let step = (pts.len() / VERDICT_POINTS).max(1);
        for &p in pts.iter().step_by(step) {
            for seed in 0..SEEDS_PER_POINT {
                if b.check_crash(p, seed).is_err() {
                    return "violation";
                }
            }
        }
        "recovers"
    } else if minimal_witness(&b, b.events().len(), SEEDS_PER_POINT).is_some() {
        "violation"
    } else {
        "recovers"
    }
}

fn run_one(
    h: &Harness,
    id: BenchId,
    variant: Variant,
    fault: Option<FaultSpec>,
    sp: bool,
) -> Outcome {
    let t = h.trace(TraceKey::new(id, variant, &h.exp));
    let mut cpu = if sp {
        CpuConfig::with_sp()
    } else {
        CpuConfig::baseline()
    };
    cpu.mem.fault = fault;
    match try_simulate(&t.events, &cpu) {
        Ok(r) => Outcome {
            cycles: r.cpu.cycles,
            classes: committed_classes(&r),
            faults: r.faults,
            error: None,
        },
        Err(e) => Outcome {
            error: Some(e.to_string()),
            ..Outcome::default()
        },
    }
}

fn watchdog_leg(h: &Harness) -> WatchdogReport {
    let id = BenchId::LinkedList;
    let t = h.trace(TraceKey::new(id, Variant::LogPSf, &h.exp));
    let cpu = CpuConfig {
        watchdog_cycles: WATCHDOG_DEMO_BOUND,
        ..CpuConfig::baseline()
    };
    match try_simulate(&t.events, &cpu) {
        Err(e) => {
            let fired = matches!(e.kind, SimErrorKind::NoRetireProgress { .. });
            let snapshot_populated = e.snapshot.cycle > 0 && e.snapshot.rob_len > 0;
            WatchdogReport {
                id,
                bound: WATCHDOG_DEMO_BOUND,
                fired,
                cycle: e.snapshot.cycle,
                rob_len: e.snapshot.rob_len,
                detail: e.to_string(),
                ok: fired && snapshot_populated,
            }
        }
        Ok(r) => WatchdogReport {
            id,
            bound: WATCHDOG_DEMO_BOUND,
            fired: false,
            cycle: r.cpu.cycles,
            rob_len: 0,
            detail: "run completed; watchdog never fired".to_string(),
            ok: false,
        },
    }
}

/// Runs the faultsim matrix on the harness's worker budget.
///
/// Simulations (four per cell: fault-free and faulted on the baseline
/// and SP256 cores, with fault-free runs shared between the two plans
/// of a `(benchmark, variant)` pair) and crash-verdict sweeps are
/// independent jobs fanned out via [`run_indexed`]; results come back
/// in input order, so the report is identical at any `--jobs` value.
pub fn run_faultsim(h: &Harness) -> FaultReport {
    let plans = plans(h.exp.seed);
    // Flat sim list per (bench, variant): plan 0 is fault-free, then
    // one slot per named plan; each on both cores.
    let sims: Vec<(BenchId, Variant, usize, bool)> = BenchId::ALL
        .iter()
        .flat_map(|&id| {
            VARIANTS.iter().flat_map(move |&v| {
                (0..=plans.len()).flat_map(move |p| [(id, v, p, false), (id, v, p, true)])
            })
        })
        .collect();
    let outs = run_indexed(h.jobs, &sims, |_, &(id, v, p, sp)| {
        let fault = (p > 0).then(|| plans[p - 1].1);
        run_one(h, id, v, fault, sp)
    });
    let pairs: Vec<(BenchId, Variant)> = BenchId::ALL
        .iter()
        .flat_map(|&id| VARIANTS.iter().map(move |&v| (id, v)))
        .collect();
    let verdicts = run_indexed(h.jobs, &pairs, |_, &(id, v)| {
        if v == Variant::Base {
            "n/a"
        } else {
            crash_verdict(id, v, &h.exp)
        }
    });

    let per_pair = 2 * (plans.len() + 1);
    let mut cells = Vec::new();
    for (pi, &(id, v)) in pairs.iter().enumerate() {
        let chunk = &outs[pi * per_pair..(pi + 1) * per_pair];
        let (clean_base, clean_sp) = (&chunk[0], &chunk[1]);
        let t = h.trace(TraceKey::new(id, v, &h.exp));
        let reference = trace_classes(&t.counts);
        let verdict = verdicts[pi];
        let verdict_ok = match v {
            Variant::Base => verdict == "n/a",
            Variant::LogPSf => verdict == "recovers",
            Variant::Log | Variant::LogP => verdict == "violation",
        };
        for (p, &(plan, _)) in plans.iter().enumerate() {
            let (fb, fs) = (&chunk[2 * (p + 1)], &chunk[2 * (p + 1) + 1]);
            let runs = [clean_base, clean_sp, fb, fs];
            let state_ok = runs
                .iter()
                .all(|o| o.error.is_none() && o.classes == reference);
            let errors: Vec<String> = runs.iter().filter_map(|o| o.error.clone()).collect();
            cells.push(Cell {
                id,
                variant: v,
                plan,
                base_cycles: clean_base.cycles,
                base_cycles_faulted: fb.cycles,
                sp_cycles: clean_sp.cycles,
                sp_cycles_faulted: fs.cycles,
                faults_injected: fb.faults.total() + fs.faults.total(),
                extra_cycles: fb.faults.extra_cycles + fs.faults.extra_cycles,
                state_ok,
                verdict,
                verdict_ok,
                errors,
            });
        }
    }
    FaultReport {
        exp: h.exp,
        cells,
        watchdog: watchdog_leg(h),
    }
}

impl FaultReport {
    /// Faults injected across every `storm` cell (the sweep is vacuous
    /// if the adversarial plan never fires).
    pub fn storm_faults(&self) -> u64 {
        self.cells
            .iter()
            .filter(|c| c.plan == "storm")
            .map(|c| c.faults_injected)
            .sum()
    }

    /// Cells whose faulted cycle counts differ from the fault-free
    /// reference (proof the injected faults actually perturb timing).
    pub fn perturbed_cells(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| {
                c.base_cycles_faulted != c.base_cycles || c.sp_cycles_faulted != c.sp_cycles
            })
            .count()
    }

    /// Did every cell keep state and verdict invariant, did the storm
    /// plan actually inject and perturb, and did the watchdog leg
    /// detect its wedged run?
    pub fn ok(&self) -> bool {
        self.cells.iter().all(|c| c.state_ok && c.verdict_ok)
            && self.watchdog.ok
            && self.storm_faults() > 0
            && self.perturbed_cells() > 0
    }

    /// The human-readable report (deterministic; stdout-destined).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let plans = plans(self.exp.seed);
        let mut s = String::new();
        let _ = writeln!(
            s,
            "== faultsim (scale 1/{}, seed {:#x}, plans {}) ==",
            self.exp.scale,
            self.exp.seed,
            plans.iter().map(|(n, _)| *n).collect::<Vec<_>>().join("/")
        );
        let _ = writeln!(
            s,
            "{:<5} {:<7} {:<6} {:>12} {:>12} {:>12} {:>12} {:>7} {:<9} state",
            "bench",
            "variant",
            "plan",
            "base",
            "base+fault",
            "sp256",
            "sp256+fault",
            "faults",
            "verdict"
        );
        for c in &self.cells {
            let state = if c.state_ok {
                "ok".to_string()
            } else if c.errors.is_empty() {
                "FAIL: committed state diverged".to_string()
            } else {
                format!("FAIL: {}", c.errors[0])
            };
            let verdict = if c.verdict_ok {
                c.verdict.to_string()
            } else {
                format!("FAIL:{}", c.verdict)
            };
            let _ = writeln!(
                s,
                "{:<5} {:<7} {:<6} {:>12} {:>12} {:>12} {:>12} {:>7} {:<9} {}",
                c.id.abbrev(),
                variant_key(c.variant),
                c.plan,
                c.base_cycles,
                c.base_cycles_faulted,
                c.sp_cycles,
                c.sp_cycles_faulted,
                c.faults_injected,
                verdict,
                state
            );
        }
        let w = &self.watchdog;
        let _ = writeln!(
            s,
            "watchdog leg ({} logpsf, bound {}): {}",
            w.id.abbrev(),
            w.bound,
            if w.ok {
                format!("ok: fired at cycle {} (rob {})", w.cycle, w.rob_len)
            } else {
                format!("FAIL: {}", w.detail)
            }
        );
        let _ = writeln!(
            s,
            "faultsim: {} ({} cells, {} faults under storm, {} cells perturbed)",
            if self.ok() { "PASS" } else { "FAIL" },
            self.cells.len(),
            self.storm_faults(),
            self.perturbed_cells()
        );
        s
    }

    /// The machine-readable report.
    pub fn render_json(&self) -> String {
        let cells = self.cells.iter().map(|c| {
            let mut o = JsonObject::new();
            o.str("bench", c.id.abbrev())
                .str("variant", variant_key(c.variant))
                .str("plan", c.plan)
                .num("base_cycles", c.base_cycles as f64)
                .num("base_cycles_faulted", c.base_cycles_faulted as f64)
                .num("sp_cycles", c.sp_cycles as f64)
                .num("sp_cycles_faulted", c.sp_cycles_faulted as f64)
                .num("faults", c.faults_injected as f64)
                .num("extra_cycles", c.extra_cycles as f64)
                .num("state_ok", u8::from(c.state_ok))
                .str("verdict", c.verdict)
                .num("verdict_ok", u8::from(c.verdict_ok));
            if !c.errors.is_empty() {
                o.raw(
                    "errors",
                    array(c.errors.iter().map(|e| {
                        let mut eo = JsonObject::new();
                        eo.str("error", e);
                        eo.render()
                    })),
                );
            }
            o.render()
        });
        let plan_list = plans(self.exp.seed).into_iter().map(|(name, spec)| {
            let mut o = JsonObject::new();
            o.str("name", name).num("seed", spec.seed as f64);
            o.render()
        });
        let w = &self.watchdog;
        let mut wo = JsonObject::new();
        wo.str("bench", w.id.abbrev())
            .num("bound", w.bound as f64)
            .num("fired", u8::from(w.fired))
            .num("cycle", w.cycle as f64)
            .num("rob_len", w.rob_len as f64)
            .str("detail", &w.detail)
            .num("ok", u8::from(w.ok));
        let mut root = JsonObject::new();
        root.str("schema", "specpersist/faultsim-v1")
            .num("scale", self.exp.scale as f64)
            .num("seed", self.exp.seed as f64)
            .num("ok", u8::from(self.ok()))
            .raw("plans", array(plan_list))
            .raw("cells", array(cells))
            .raw("watchdog", wo.render());
        root.render()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::Experiment;

    fn smoke_harness(jobs: usize) -> Harness {
        Harness::new(
            Experiment {
                scale: 2400,
                seed: 7,
            },
            jobs,
        )
    }

    #[test]
    fn invariance_holds_across_the_matrix_at_smoke_scale() {
        let rep = run_faultsim(&smoke_harness(4));
        assert_eq!(rep.cells.len(), 7 * 4 * 2, "bench x variant x plan");
        for c in &rep.cells {
            assert!(
                c.state_ok,
                "{} {} {}: committed state diverged ({:?})",
                c.id, c.variant, c.plan, c.errors
            );
            assert!(
                c.verdict_ok,
                "{} {} {}: verdict {}",
                c.id, c.variant, c.plan, c.verdict
            );
        }
        // Non-vacuity: the adversarial plan must actually fire and move
        // cycle counts somewhere in the matrix.
        assert!(rep.storm_faults() > 0, "storm plan never injected");
        assert!(
            rep.perturbed_cells() > 0,
            "faults never moved a cycle count"
        );
        assert!(rep.ok());
    }

    #[test]
    fn watchdog_leg_converts_stall_into_typed_error() {
        let rep = run_faultsim(&smoke_harness(4));
        let w = &rep.watchdog;
        assert!(
            w.fired,
            "watchdog must fire under a {}-cycle bound",
            w.bound
        );
        assert!(w.ok, "snapshot not populated: {}", w.detail);
        assert!(w.detail.contains("no retirement progress"), "{}", w.detail);
        assert!(w.detail.contains("rob"), "snapshot missing: {}", w.detail);
        assert!(w.cycle > 0);
    }

    #[test]
    fn report_is_identical_at_any_job_count() {
        let a = run_faultsim(&smoke_harness(1));
        let b = run_faultsim(&smoke_harness(8));
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.render_json(), b.render_json());
        assert!(a.ok());
    }

    #[test]
    fn json_shape_is_balanced_and_keyed() {
        let rep = run_faultsim(&smoke_harness(4));
        let j = rep.render_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        for key in [
            "\"schema\":\"specpersist/faultsim-v1\"",
            "\"plans\"",
            "\"cells\"",
            "\"watchdog\"",
            "\"verdict\"",
            "\"extra_cycles\"",
        ] {
            assert!(j.contains(key), "missing {key}");
        }
    }
}
