//! `repro faultsim` — deterministic hardware fault injection and the
//! timing-only invariance check.
//!
//! A [`FaultSpec`] plan perturbs the simulated hardware at eight
//! injection sites (NVMM latency spikes, WPQ backpressure, bank
//! stalls, delayed/duplicated `pcommit` acks, SSB/checkpoint
//! exhaustion pressure). The faults are *timing-only* by construction:
//! they stretch latencies and deny resources, never drop or corrupt a
//! request. This module mechanizes the resulting invariant across the
//! whole suite:
//!
//! * **State invariance**: for every benchmark × build variant × fault
//!   plan, the faulted run on both the baseline and SP256 cores must
//!   commit exactly the same architectural work — all six committed
//!   micro-op classes — as the fault-free run and as the recorded
//!   trace itself. Only cycle counts may move.
//! * **Verdict invariance**: crash-recovery verdicts are a pure
//!   function of the recorded trace, and the state check proves the
//!   faulted runs commit exactly that trace; each cell therefore
//!   carries the trace's oracle verdict (`Log+P+Sf` recovers, `Log`
//!   and `Log+P` yield a violation, `Base` has no persist discipline
//!   to judge), recomputed from a bounded [`crate::crashfuzz`] sweep
//!   and checked against its expectation.
//! * **Watchdog detection**: one leg runs with a deliberately tiny
//!   no-retire bound, far below the 315-cycle NVMM write stall every
//!   persist barrier incurs, and requires the forward-progress
//!   watchdog to convert the run into a typed
//!   [`spp_cpu::SimError`] with a populated diagnostic snapshot
//!   instead of trusting (or hanging in) a wedged simulation. The
//!   true-livelock fixture — a speculating core whose checkpoint can
//!   never be granted — lives in `spp-cpu`'s unit tests, where the
//!   pipeline internals needed to construct it are in scope.
//!
//! Every fault stream is a splitmix64 counter stream seeded from
//! `(plan seed, component salt, site)`, so cells are pure functions of
//! their inputs: the report is byte-identical at any `--jobs` value.
//!
//! The matrix runs on the [`Supervisor`]: each `(benchmark, variant)`
//! pair is one supervised cell (six simulations plus the bounded crash
//! verdict), keyed for the journaled result manifest. With a journal
//! attached (`repro faultsim --journal … [--resume]`) completed pairs
//! replay instead of recomputing, so a killed run resumes where it
//! stopped — and because every pair is a pure function of its key, the
//! resumed report is byte-identical to an uninterrupted one. A pair
//! whose simulation panics or returns a typed [`spp_cpu::SimError`] is
//! retried on the supervisor's bounded deterministic schedule and, on
//! exhaustion, degrades to a per-cell `failed` record carrying the
//! diagnostic snapshot; every other pair still reports.

use spp_cpu::{CpuConfig, SimErrorKind, SimResult, Simulator};
use spp_mem::{FaultSpec, FaultStats};
use spp_pmem::{TraceCounts, Variant};
use spp_workloads::oracle::record_bundle;
use spp_workloads::BenchId;

use crate::crashfuzz::{crash_points, fuzz_bundle_spec, minimal_witness, SEEDS_PER_POINT};
use crate::json::{array, parse, JsonObject, Value};
use crate::supervisor::{CellError, CellFailure, Supervisor};
use crate::{variant_key, Harness, Journal, TraceKey};

/// The build variants swept by `repro faultsim` (all four: even the
/// un-instrumented `Base` build must be timing-invariant under NVMM
/// and WPQ adversity).
pub const VARIANTS: [Variant; 4] = [Variant::Base, Variant::Log, Variant::LogP, Variant::LogPSf];

/// The named fault plans swept per cell, derived from the experiment
/// seed: background-radiation `quiet` and adversarial `storm`.
pub fn plans(seed: u64) -> [(&'static str, FaultSpec); 2] {
    [
        ("quiet", FaultSpec::quiet(seed)),
        ("storm", FaultSpec::storm(seed)),
    ]
}

/// Crash points sampled for a cell's bounded must-pass verdict sweep.
const VERDICT_POINTS: usize = 16;

/// No-retire bound of the watchdog-detection leg: far below the
/// 315-cycle NVMM write stall of every persist barrier, so the first
/// long stall must trip the watchdog.
pub const WATCHDOG_DEMO_BOUND: u64 = 64;

/// One core's run under one plan (or fault-free).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Outcome {
    cycles: u64,
    classes: [u64; 6],
    faults: FaultStats,
}

/// One faultsim cell: a `(benchmark, variant, plan)` triple with the
/// fault-free reference and the faulted runs on both cores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Which benchmark.
    pub id: BenchId,
    /// The build variant replayed.
    pub variant: Variant,
    /// The fault plan name (`quiet` or `storm`).
    pub plan: &'static str,
    /// Fault-free baseline-core cycles.
    pub base_cycles: u64,
    /// Faulted baseline-core cycles.
    pub base_cycles_faulted: u64,
    /// Fault-free SP256-core cycles.
    pub sp_cycles: u64,
    /// Faulted SP256-core cycles.
    pub sp_cycles_faulted: u64,
    /// Faults injected across both faulted runs.
    pub faults_injected: u64,
    /// Latency directly added by the injected faults, cycles.
    pub extra_cycles: u64,
    /// Did all four runs commit exactly the trace's micro-op classes?
    pub state_ok: bool,
    /// The trace's crash-recovery verdict (`recovers`, `violation`,
    /// or `n/a` for `Base`).
    pub verdict: &'static str,
    /// Does the verdict match the variant's expectation?
    pub verdict_ok: bool,
}

/// The watchdog-detection leg's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogReport {
    /// The benchmark whose trace was replayed.
    pub id: BenchId,
    /// The deliberately tiny no-retire bound used.
    pub bound: u64,
    /// Did the watchdog fire with [`SimErrorKind::NoRetireProgress`]?
    pub fired: bool,
    /// Simulated cycle at which the watchdog fired.
    pub cycle: u64,
    /// ROB occupancy captured in the diagnostic snapshot.
    pub rob_len: usize,
    /// The full one-line error (kind plus snapshot).
    pub detail: String,
    /// Fired as expected with a populated snapshot?
    pub ok: bool,
}

/// The full faultsim outcome.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// Scale/seed the traces were recorded at.
    pub exp: crate::Experiment,
    /// Per-cell results, in deterministic matrix order (pairs that
    /// exhausted their retry budget are absent here and present in
    /// [`FaultReport::failures`]).
    pub cells: Vec<Cell>,
    /// Pairs that exhausted the supervisor's retry budget: degraded
    /// per-cell records carrying the diagnostic snapshot, in matrix
    /// order. Any entry here fails the report.
    pub failures: Vec<CellFailure>,
    /// Supervised cells served from the journal without recomputation
    /// (stderr diagnostics only — never part of the report bytes).
    pub replayed: usize,
    /// The watchdog-detection leg.
    pub watchdog: WatchdogReport,
}

/// Options for [`run_faultsim_opts`]: journal attachment, retry
/// budget, and the fault-injection hook the supervision tests use.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultsimOpts<'j> {
    /// Replay completed pairs from (and record new ones into) this
    /// journal.
    pub journal: Option<&'j Journal>,
    /// Total attempts per pair; 0 means the supervisor default.
    pub max_attempts: u32,
    /// Fault-injection hook: panic inside this pair's cell on every
    /// attempt, demonstrating retry exhaustion and per-cell
    /// degradation without touching the simulator.
    pub inject_panic: Option<(BenchId, Variant)>,
}

fn committed_classes(r: &SimResult) -> [u64; 6] {
    [
        r.cpu.committed_uops,
        r.cpu.loads,
        r.cpu.stores,
        r.cpu.flushes,
        r.cpu.pcommits,
        r.cpu.fences,
    ]
}

fn trace_classes(c: &TraceCounts) -> [u64; 6] {
    [
        c.total(),
        c.loads,
        c.stores,
        c.flushes,
        c.pcommits,
        c.fences,
    ]
}

/// The bounded crash-recovery verdict of a `(benchmark, variant)`
/// bundle: must-fail variants scan for the minimal witness (early
/// exit on the first inconsistency), the must-pass variant sweeps an
/// evenly spaced sample of [`VERDICT_POINTS`] crash points.
fn crash_verdict(id: BenchId, variant: Variant, exp: &crate::Experiment) -> &'static str {
    let spec = fuzz_bundle_spec(id, variant, spp_pmem::FlushMode::Clwb, exp);
    let b = record_bundle(&spec);
    if variant == Variant::LogPSf {
        let pts = crash_points(b.events());
        let step = (pts.len() / VERDICT_POINTS).max(1);
        for &p in pts.iter().step_by(step) {
            for seed in 0..SEEDS_PER_POINT {
                if b.check_crash(p, seed).is_err() {
                    return "violation";
                }
            }
        }
        "recovers"
    } else if minimal_witness(&b, b.events().len(), SEEDS_PER_POINT).is_some() {
        "violation"
    } else {
        "recovers"
    }
}

fn run_one(
    h: &Harness,
    id: BenchId,
    variant: Variant,
    fault: Option<FaultSpec>,
    sp: bool,
) -> Result<Outcome, CellError> {
    let t = h.trace(TraceKey::new(id, variant, &h.exp));
    let mut cpu = if sp {
        CpuConfig::with_sp()
    } else {
        CpuConfig::baseline()
    };
    cpu.mem.fault = fault;
    match Simulator::new(&t.events).config(cpu).run() {
        Ok(r) => Ok(Outcome {
            cycles: r.cpu.cycles,
            classes: committed_classes(&r),
            faults: r.faults,
        }),
        Err(e) => Err(CellError::from_sim(&e)),
    }
}

/// One supervised `(benchmark, variant)` pair: two fault-free and four
/// faulted simulations (shared across the two plans) plus the bounded
/// crash verdict, yielding one [`Cell`] per plan. A typed
/// [`spp_cpu::SimError`] anywhere inside propagates as a [`CellError`]
/// so the supervisor can retry and, on exhaustion, degrade the pair.
fn run_pair(
    h: &Harness,
    id: BenchId,
    v: Variant,
    inject_panic: Option<(BenchId, Variant)>,
) -> Result<Vec<Cell>, CellError> {
    if inject_panic == Some((id, v)) {
        panic!("injected pair fault: {} {}", id.abbrev(), variant_key(v));
    }
    let plans = plans(h.exp.seed);
    let clean_base = run_one(h, id, v, None, false)?;
    let clean_sp = run_one(h, id, v, None, true)?;
    let t = h.trace(TraceKey::new(id, v, &h.exp));
    let reference = trace_classes(&t.counts);
    let verdict = if v == Variant::Base {
        "n/a"
    } else {
        crash_verdict(id, v, &h.exp)
    };
    let verdict_ok = match v {
        Variant::Base => verdict == "n/a",
        Variant::LogPSf => verdict == "recovers",
        Variant::Log | Variant::LogP => verdict == "violation",
    };
    let mut cells = Vec::with_capacity(plans.len());
    for (plan, spec) in plans {
        let fb = run_one(h, id, v, Some(spec), false)?;
        let fs = run_one(h, id, v, Some(spec), true)?;
        let state_ok = [&clean_base, &clean_sp, &fb, &fs]
            .iter()
            .all(|o| o.classes == reference);
        cells.push(Cell {
            id,
            variant: v,
            plan,
            base_cycles: clean_base.cycles,
            base_cycles_faulted: fb.cycles,
            sp_cycles: clean_sp.cycles,
            sp_cycles_faulted: fs.cycles,
            faults_injected: fb.faults.total() + fs.faults.total(),
            extra_cycles: fb.faults.extra_cycles + fs.faults.extra_cycles,
            state_ok,
            verdict,
            verdict_ok,
        });
    }
    Ok(cells)
}

fn watchdog_leg(h: &Harness) -> WatchdogReport {
    let id = BenchId::LinkedList;
    let t = h.trace(TraceKey::new(id, Variant::LogPSf, &h.exp));
    let cpu = CpuConfig {
        watchdog_cycles: WATCHDOG_DEMO_BOUND,
        ..CpuConfig::baseline()
    };
    match Simulator::new(&t.events).config(cpu).run() {
        Err(e) => {
            let fired = matches!(e.kind, SimErrorKind::NoRetireProgress { .. });
            let snapshot_populated = e.snapshot.cycle > 0 && e.snapshot.rob_len > 0;
            WatchdogReport {
                id,
                bound: WATCHDOG_DEMO_BOUND,
                fired,
                cycle: e.snapshot.cycle,
                rob_len: e.snapshot.rob_len,
                detail: e.to_string(),
                ok: fired && snapshot_populated,
            }
        }
        Ok(r) => WatchdogReport {
            id,
            bound: WATCHDOG_DEMO_BOUND,
            fired: false,
            cycle: r.cpu.cycles,
            rob_len: 0,
            detail: "run completed; watchdog never fired".to_string(),
            ok: false,
        },
    }
}

/// Everything besides scale/seed that determines a cell's result,
/// folded into the journal key so entries written under a different
/// configuration can never replay into this run.
fn config_hash(exp: &crate::Experiment) -> u64 {
    let ps = plans(exp.seed);
    spp_pmem::hash64(
        format!(
            "faultsim;plans={:#x},{:#x};points={VERDICT_POINTS};seeds={SEEDS_PER_POINT};wd={WATCHDOG_DEMO_BOUND}",
            ps[0].1.seed, ps[1].1.seed
        )
        .as_bytes(),
    )
}

/// The journal key of one `(benchmark, variant)` pair.
fn pair_key(id: BenchId, v: Variant, exp: &crate::Experiment) -> String {
    format!(
        "faultsim/{}/{}/s{}/x{:016x}/clwb/c{:016x}",
        id.abbrev(),
        variant_key(v),
        exp.scale,
        exp.seed,
        config_hash(exp)
    )
}

/// The journal key of the watchdog-detection leg.
fn watchdog_key(exp: &crate::Experiment) -> String {
    format!(
        "faultsim/watchdog/{}/s{}/x{:016x}/b{}/c{:016x}",
        BenchId::LinkedList.abbrev(),
        exp.scale,
        exp.seed,
        WATCHDOG_DEMO_BOUND,
        config_hash(exp)
    )
}

/// One supervised unit of the faultsim matrix.
#[derive(Debug, Clone, Copy)]
enum CellTask {
    Pair(BenchId, Variant),
    Watchdog,
}

/// A supervised unit's journalled value.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CellValue {
    Pair(Vec<Cell>),
    Watchdog(WatchdogReport),
}

fn bench_from_abbrev(s: &str) -> Option<BenchId> {
    BenchId::ALL.iter().copied().find(|b| b.abbrev() == s)
}

fn variant_from_key(s: &str) -> Option<Variant> {
    VARIANTS.iter().copied().find(|&v| variant_key(v) == s)
}

/// Maps a decoded plan name back onto the interned `&'static str` the
/// in-process runner produces, so replayed reports are byte-identical.
fn plan_from_name(s: &str) -> Option<&'static str> {
    match s {
        "quiet" => Some("quiet"),
        "storm" => Some("storm"),
        _ => None,
    }
}

fn verdict_from_name(s: &str) -> Option<&'static str> {
    match s {
        "recovers" => Some("recovers"),
        "violation" => Some("violation"),
        "n/a" => Some("n/a"),
        _ => None,
    }
}

/// One cell as a JSON object (shared by the report and the journal
/// payload codec).
fn cell_json(c: &Cell) -> String {
    let mut o = JsonObject::new();
    o.str("bench", c.id.abbrev())
        .str("variant", variant_key(c.variant))
        .str("plan", c.plan)
        .num("base_cycles", c.base_cycles as f64)
        .num("base_cycles_faulted", c.base_cycles_faulted as f64)
        .num("sp_cycles", c.sp_cycles as f64)
        .num("sp_cycles_faulted", c.sp_cycles_faulted as f64)
        .num("faults", c.faults_injected as f64)
        .num("extra_cycles", c.extra_cycles as f64)
        .num("state_ok", u8::from(c.state_ok))
        .str("verdict", c.verdict)
        .num("verdict_ok", u8::from(c.verdict_ok));
    o.render()
}

fn decode_cell(v: &Value) -> Option<Cell> {
    Some(Cell {
        id: bench_from_abbrev(v.get("bench")?.as_str()?)?,
        variant: variant_from_key(v.get("variant")?.as_str()?)?,
        plan: plan_from_name(v.get("plan")?.as_str()?)?,
        base_cycles: v.get("base_cycles")?.as_u64()?,
        base_cycles_faulted: v.get("base_cycles_faulted")?.as_u64()?,
        sp_cycles: v.get("sp_cycles")?.as_u64()?,
        sp_cycles_faulted: v.get("sp_cycles_faulted")?.as_u64()?,
        faults_injected: v.get("faults")?.as_u64()?,
        extra_cycles: v.get("extra_cycles")?.as_u64()?,
        state_ok: v.get("state_ok")?.as_u64()? != 0,
        verdict: verdict_from_name(v.get("verdict")?.as_str()?)?,
        verdict_ok: v.get("verdict_ok")?.as_u64()? != 0,
    })
}

/// The watchdog leg as a JSON object (shared by the report and the
/// journal payload codec).
fn watchdog_json(w: &WatchdogReport) -> String {
    let mut o = JsonObject::new();
    o.str("bench", w.id.abbrev())
        .num("bound", w.bound as f64)
        .num("fired", u8::from(w.fired))
        .num("cycle", w.cycle as f64)
        .num("rob_len", w.rob_len as f64)
        .str("detail", &w.detail)
        .num("ok", u8::from(w.ok));
    o.render()
}

fn encode_cell_value(v: &CellValue) -> String {
    let mut o = JsonObject::new();
    match v {
        CellValue::Pair(cells) => o.raw("cells", array(cells.iter().map(cell_json))),
        CellValue::Watchdog(w) => o.raw("watchdog", watchdog_json(w)),
    };
    o.render()
}

fn decode_cell_value(payload: &str) -> Option<CellValue> {
    let v = parse(payload).ok()?;
    if let Some(cells) = v.get("cells") {
        let arr = cells.as_arr()?;
        let mut out = Vec::with_capacity(arr.len());
        for c in arr {
            out.push(decode_cell(c)?);
        }
        return Some(CellValue::Pair(out));
    }
    let w = v.get("watchdog")?;
    Some(CellValue::Watchdog(WatchdogReport {
        id: bench_from_abbrev(w.get("bench")?.as_str()?)?,
        bound: w.get("bound")?.as_u64()?,
        fired: w.get("fired")?.as_u64()? != 0,
        cycle: w.get("cycle")?.as_u64()?,
        rob_len: w.get("rob_len")?.as_u64()? as usize,
        detail: w.get("detail")?.as_str()?.to_string(),
        ok: w.get("ok")?.as_u64()? != 0,
    }))
}

/// Runs the faultsim matrix under the [`Supervisor`].
///
/// Each `(benchmark, variant)` pair — six simulations plus the bounded
/// crash verdict — and the watchdog leg is one supervised cell: panic-
/// isolated, retried on the bounded deterministic schedule, journalled
/// under `opts.journal` when one is attached, and degraded to a
/// per-cell failure record on retry exhaustion. Outcomes come back in
/// input order, so the report is byte-identical at any `--jobs` value
/// and across interrupted-then-resumed vs. uninterrupted runs.
pub fn run_faultsim_opts(h: &Harness, opts: FaultsimOpts<'_>) -> FaultReport {
    let mut tasks: Vec<CellTask> = BenchId::ALL
        .iter()
        .flat_map(|&id| VARIANTS.iter().map(move |&v| CellTask::Pair(id, v)))
        .collect();
    tasks.push(CellTask::Watchdog);
    let sup = Supervisor {
        jobs: h.jobs,
        max_attempts: if opts.max_attempts == 0 {
            crate::supervisor::MAX_ATTEMPTS
        } else {
            opts.max_attempts
        },
        journal: opts.journal,
    };
    let outcomes = sup.run_cells(
        &tasks,
        |_, t| match t {
            CellTask::Pair(id, v) => pair_key(*id, *v, &h.exp),
            CellTask::Watchdog => watchdog_key(&h.exp),
        },
        |_, t| match t {
            CellTask::Pair(id, v) => run_pair(h, *id, *v, opts.inject_panic).map(CellValue::Pair),
            CellTask::Watchdog => Ok(CellValue::Watchdog(watchdog_leg(h))),
        },
        encode_cell_value,
        decode_cell_value,
    );
    let mut cells = Vec::new();
    let mut failures = Vec::new();
    let mut replayed = 0;
    let mut watchdog = WatchdogReport {
        id: BenchId::LinkedList,
        bound: WATCHDOG_DEMO_BOUND,
        fired: false,
        cycle: 0,
        rob_len: 0,
        detail: "watchdog leg did not run".to_string(),
        ok: false,
    };
    for (o, t) in outcomes.into_iter().zip(&tasks) {
        if o.replayed {
            replayed += 1;
        }
        match o.result {
            Ok(CellValue::Pair(mut cs)) => cells.append(&mut cs),
            Ok(CellValue::Watchdog(w)) => watchdog = w,
            Err(f) => {
                if matches!(t, CellTask::Watchdog) {
                    watchdog.detail = f.reason.clone();
                }
                failures.push(f);
            }
        }
    }
    FaultReport {
        exp: h.exp,
        cells,
        failures,
        replayed,
        watchdog,
    }
}

/// Runs the faultsim matrix with default supervision (no journal, the
/// default retry budget, no injected faults).
pub fn run_faultsim(h: &Harness) -> FaultReport {
    run_faultsim_opts(h, FaultsimOpts::default())
}

impl FaultReport {
    /// Faults injected across every `storm` cell (the sweep is vacuous
    /// if the adversarial plan never fires).
    pub fn storm_faults(&self) -> u64 {
        self.cells
            .iter()
            .filter(|c| c.plan == "storm")
            .map(|c| c.faults_injected)
            .sum()
    }

    /// Cells whose faulted cycle counts differ from the fault-free
    /// reference (proof the injected faults actually perturb timing).
    pub fn perturbed_cells(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| {
                c.base_cycles_faulted != c.base_cycles || c.sp_cycles_faulted != c.sp_cycles
            })
            .count()
    }

    /// Did every cell keep state and verdict invariant, did no pair
    /// exhaust its retry budget, did the storm plan actually inject
    /// and perturb, and did the watchdog leg detect its wedged run?
    pub fn ok(&self) -> bool {
        self.cells.iter().all(|c| c.state_ok && c.verdict_ok)
            && self.failures.is_empty()
            && self.watchdog.ok
            && self.storm_faults() > 0
            && self.perturbed_cells() > 0
    }

    /// The human-readable report (deterministic; stdout-destined).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let plans = plans(self.exp.seed);
        let mut s = String::new();
        let _ = writeln!(
            s,
            "== faultsim (scale 1/{}, seed {:#x}, plans {}) ==",
            self.exp.scale,
            self.exp.seed,
            plans.iter().map(|(n, _)| *n).collect::<Vec<_>>().join("/")
        );
        let _ = writeln!(
            s,
            "{:<5} {:<7} {:<6} {:>12} {:>12} {:>12} {:>12} {:>7} {:<9} state",
            "bench",
            "variant",
            "plan",
            "base",
            "base+fault",
            "sp256",
            "sp256+fault",
            "faults",
            "verdict"
        );
        for c in &self.cells {
            let state = if c.state_ok {
                "ok".to_string()
            } else {
                "FAIL: committed state diverged".to_string()
            };
            let verdict = if c.verdict_ok {
                c.verdict.to_string()
            } else {
                format!("FAIL:{}", c.verdict)
            };
            let _ = writeln!(
                s,
                "{:<5} {:<7} {:<6} {:>12} {:>12} {:>12} {:>12} {:>7} {:<9} {}",
                c.id.abbrev(),
                variant_key(c.variant),
                c.plan,
                c.base_cycles,
                c.base_cycles_faulted,
                c.sp_cycles,
                c.sp_cycles_faulted,
                c.faults_injected,
                verdict,
                state
            );
        }
        for f in &self.failures {
            let _ = writeln!(
                s,
                "cell {}: FAILED after {} attempts: {}",
                f.key, f.attempts, f.reason
            );
        }
        let w = &self.watchdog;
        let _ = writeln!(
            s,
            "watchdog leg ({} logpsf, bound {}): {}",
            w.id.abbrev(),
            w.bound,
            if w.ok {
                format!("ok: fired at cycle {} (rob {})", w.cycle, w.rob_len)
            } else {
                format!("FAIL: {}", w.detail)
            }
        );
        let _ = writeln!(
            s,
            "faultsim: {} ({} cells, {} failed, {} faults under storm, {} cells perturbed)",
            if self.ok() { "PASS" } else { "FAIL" },
            self.cells.len(),
            self.failures.len(),
            self.storm_faults(),
            self.perturbed_cells()
        );
        s
    }

    /// The machine-readable report.
    pub fn render_json(&self) -> String {
        let plan_list = plans(self.exp.seed).into_iter().map(|(name, spec)| {
            let mut o = JsonObject::new();
            o.str("name", name).num("seed", spec.seed as f64);
            o.render()
        });
        crate::schema::emit(crate::schema::FAULTSIM, |root| {
            root.num("scale", self.exp.scale as f64)
                .num("seed", self.exp.seed as f64)
                .num("ok", u8::from(self.ok()))
                .raw("plans", array(plan_list))
                .raw("cells", array(self.cells.iter().map(cell_json)))
                .raw("failures", array(self.failures.iter().map(|f| f.to_json())))
                .raw("watchdog", watchdog_json(&self.watchdog));
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::Experiment;

    fn smoke_harness(jobs: usize) -> Harness {
        Harness::new(
            Experiment {
                scale: 2400,
                seed: 7,
            },
            jobs,
        )
    }

    #[test]
    fn invariance_holds_across_the_matrix_at_smoke_scale() {
        let rep = run_faultsim(&smoke_harness(4));
        assert_eq!(rep.cells.len(), 7 * 4 * 2, "bench x variant x plan");
        assert!(rep.failures.is_empty(), "{:?}", rep.failures);
        for c in &rep.cells {
            assert!(
                c.state_ok,
                "{} {} {}: committed state diverged",
                c.id, c.variant, c.plan
            );
            assert!(
                c.verdict_ok,
                "{} {} {}: verdict {}",
                c.id, c.variant, c.plan, c.verdict
            );
        }
        // Non-vacuity: the adversarial plan must actually fire and move
        // cycle counts somewhere in the matrix.
        assert!(rep.storm_faults() > 0, "storm plan never injected");
        assert!(
            rep.perturbed_cells() > 0,
            "faults never moved a cycle count"
        );
        assert!(rep.ok());
    }

    #[test]
    fn watchdog_leg_converts_stall_into_typed_error() {
        let rep = run_faultsim(&smoke_harness(4));
        let w = &rep.watchdog;
        assert!(
            w.fired,
            "watchdog must fire under a {}-cycle bound",
            w.bound
        );
        assert!(w.ok, "snapshot not populated: {}", w.detail);
        assert!(w.detail.contains("no retirement progress"), "{}", w.detail);
        assert!(w.detail.contains("rob"), "snapshot missing: {}", w.detail);
        assert!(w.cycle > 0);
    }

    #[test]
    fn report_is_identical_at_any_job_count() {
        let a = run_faultsim(&smoke_harness(1));
        let b = run_faultsim(&smoke_harness(8));
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.render_json(), b.render_json());
        assert!(a.ok());
    }

    #[test]
    fn json_shape_is_balanced_and_keyed() {
        let rep = run_faultsim(&smoke_harness(4));
        let j = rep.render_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        for key in [
            "\"schema\":\"specpersist/faultsim-v1\"",
            "\"plans\"",
            "\"cells\"",
            "\"failures\"",
            "\"watchdog\"",
            "\"verdict\"",
            "\"extra_cycles\"",
        ] {
            assert!(j.contains(key), "missing {key}");
        }
        crate::json::parse(&j).expect("report must parse");
    }

    #[test]
    fn exhausted_pair_degrades_to_failed_record_while_others_report() {
        let h = smoke_harness(4);
        let rep = run_faultsim_opts(
            &h,
            FaultsimOpts {
                inject_panic: Some((BenchId::LinkedList, Variant::Log)),
                max_attempts: 2,
                ..FaultsimOpts::default()
            },
        );
        // The injected pair degrades; every other pair still reports.
        assert_eq!(rep.cells.len(), (7 * 4 - 1) * 2);
        assert_eq!(rep.failures.len(), 1);
        let f = &rep.failures[0];
        assert!(
            f.key.contains(&format!(
                "/{}/{}/",
                BenchId::LinkedList.abbrev(),
                variant_key(Variant::Log)
            )),
            "{}",
            f.key
        );
        assert_eq!(f.attempts, 2, "retry budget consumed");
        assert!(f.reason.contains("injected pair fault"), "{}", f.reason);
        assert!(!rep.ok(), "a degraded pair must fail the report");
        let text = rep.render_text();
        assert!(text.contains("FAILED after 2 attempts"), "{text}");
        assert!(text.contains("faultsim: FAIL"), "{text}");
        let json = rep.render_json();
        assert!(json.contains("injected pair fault"), "{json}");
        crate::json::parse(&json).expect("report must parse");
    }

    #[test]
    fn journaled_rerun_replays_byte_identically() {
        let mut p = std::env::temp_dir();
        p.push(format!("spp-faultsim-journal-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let h = smoke_harness(2);
        let (text, json);
        {
            let j = Journal::open(&p).unwrap();
            let rep = run_faultsim_opts(
                &h,
                FaultsimOpts {
                    journal: Some(&j),
                    ..FaultsimOpts::default()
                },
            );
            assert_eq!(rep.replayed, 0, "first run computes everything");
            assert!(rep.ok());
            text = rep.render_text();
            json = rep.render_json();
        }
        let j = Journal::open(&p).unwrap();
        assert!(j.corrupt().is_empty(), "{:?}", j.corrupt());
        let rep = run_faultsim_opts(
            &h,
            FaultsimOpts {
                journal: Some(&j),
                ..FaultsimOpts::default()
            },
        );
        assert_eq!(rep.replayed, 7 * 4 + 1, "every cell replays");
        assert_eq!(rep.render_text(), text, "replayed stdout byte-identical");
        assert_eq!(rep.render_json(), json);
        std::fs::remove_file(&p).unwrap();
    }
}
