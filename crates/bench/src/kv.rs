//! The crash-recoverable KV storage-engine study (`repro kv`).
//!
//! Three legs over the COW-checkpointed B+tree engine
//! ([`spp_workloads::kv`]) running the YCSB-style mixed profile:
//!
//! * **Perf** — a sweep over the checkpoint interval (the engine's
//!   "checkpoint buffer depth": how many WAL records accumulate before
//!   a COW checkpoint quiesces them). Each interval is traced under the
//!   `Base` build (no persistence machinery — the reference), the
//!   `Log+P+Sf` build on the baseline core, and the same trace on the
//!   SP core, so the table reads out how much of the persist-barrier
//!   cost speculation hides as checkpoint pressure varies.
//! * **Crash** — `Log+P+Sf` bundles crashed at *every* persist boundary
//!   (plus sampled in-between points) must recover through full WAL
//!   replay at every point (must-pass); `Log` bundles (no ordering or
//!   durability machinery) must fail, and the failure is minimized to
//!   the lexicographically smallest `(crash_idx, seed)` witness.
//! * **Stream** — the chunked bounded-memory pipeline
//!   ([`crate::stream`]) replays a longer run and reports its
//!   deterministic peak-memory bound alongside throughput.
//!
//! Cells are pure functions of `(spec, scale, seed)`: fanned out with
//! [`run_indexed`] (so `--jobs N` output is byte-identical to
//! `--jobs 1`) and, when a [`Journal`] is attached, keyed into the
//! manifest so an interrupted study resumes without recomputing
//! finished cells — replayed output is byte-identical.

use std::time::Instant;

use spp_cpu::{CpuConfig, Simulator};
use spp_pmem::{FlushMode, PmemEnv, Variant};
use spp_workloads::kv::{record_kv_bundle, KvBundleSpec, KvMix, KvSpec, KvWorkload};

use crate::crashfuzz::crash_points;
use crate::journal::{CellStatus, Entry, Journal};
use crate::json::{self, parse, JsonObject, Value};
use crate::parallel::run_indexed;
use crate::schema;
use crate::stream::{run_kv_streamed, KvStreamSpec};
use crate::Harness;

/// Checkpoint intervals the perf leg sweeps (WAL records between COW
/// checkpoints — the engine's checkpoint-buffer depth).
pub const CKPT_SWEEP: [u64; 3] = [4, 16, 64];

/// Reordering seeds per crash point on the crash legs.
pub const CRASH_SEEDS: u64 = 2;

/// Driver ops per chunk on the stream leg (a pinned study parameter:
/// chunk boundaries drain the pipeline, so comparing runs requires the
/// same chunking).
pub const STREAM_CHUNK_OPS: u64 = 256;

/// Which (build, core) pair a perf cell measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerfCfg {
    /// `Base` build on the baseline core — no persistence machinery.
    Ref,
    /// `Log+P+Sf` build on the baseline core.
    Baseline,
    /// `Log+P+Sf` build on the SP core.
    Sp,
}

impl PerfCfg {
    const ALL: [PerfCfg; 3] = [PerfCfg::Ref, PerfCfg::Baseline, PerfCfg::Sp];

    fn key(self) -> &'static str {
        match self {
            PerfCfg::Ref => "ref",
            PerfCfg::Baseline => "base",
            PerfCfg::Sp => "sp",
        }
    }

    fn variant(self) -> Variant {
        match self {
            PerfCfg::Ref => Variant::Base,
            _ => Variant::LogPSf,
        }
    }

    fn cpu(self) -> CpuConfig {
        match self {
            PerfCfg::Sp => CpuConfig::with_sp(),
            _ => CpuConfig::baseline(),
        }
    }
}

/// One configuration point of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvCellSpec {
    /// Timing sweep cell.
    Perf {
        /// WAL records between checkpoints.
        ckpt_every: u64,
        /// Which build/core pair.
        cfg: PerfCfg,
    },
    /// `Log+P+Sf` crashed at every persist boundary must recover.
    MustPass {
        /// Seed offset for the bundle's op stream.
        seed_off: u64,
    },
    /// `Log` must fail, with a minimized witness.
    MustFail {
        /// Seed offset for the bundle's op stream.
        seed_off: u64,
    },
    /// `Log+P+Sf` with WAL record checksums elided must fail recovery:
    /// the leg proving the oracle verifies checksummed records rather
    /// than diffing pre/post state.
    ElideChecksum,
    /// The chunked bounded-memory pipeline leg.
    Stream,
}

impl KvCellSpec {
    /// Every cell of the study, in report order.
    pub fn all() -> Vec<KvCellSpec> {
        let mut v = Vec::new();
        for ckpt_every in CKPT_SWEEP {
            for cfg in PerfCfg::ALL {
                v.push(KvCellSpec::Perf { ckpt_every, cfg });
            }
        }
        for seed_off in 0..CRASH_SEEDS {
            v.push(KvCellSpec::MustPass { seed_off });
        }
        for seed_off in 0..CRASH_SEEDS {
            v.push(KvCellSpec::MustFail { seed_off });
        }
        v.push(KvCellSpec::ElideChecksum);
        v.push(KvCellSpec::Stream);
        v
    }
}

/// A minimized must-fail witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvWitness {
    /// Crash point (index into the recorded event stream).
    pub crash_idx: u64,
    /// Reordering seed.
    pub seed: u64,
    /// What the oracle rejected (kebab label).
    pub kind: String,
}

/// One measured cell. Fields a leg does not produce stay 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvCell {
    /// The configuration measured.
    pub spec: KvCellSpec,
    /// The cell's verdict (a must-fail cell is `ok` when it *found* its
    /// witness).
    pub ok: bool,
    /// Driver ops executed.
    pub ops: u64,
    /// Recorded events.
    pub events: u64,
    /// Simulated cycles (perf and stream legs).
    pub cycles: u64,
    /// WAL records appended.
    pub mutations: u64,
    /// COW checkpoints the run took (perf leg).
    pub checkpoints: u64,
    /// Crash points swept (crash legs).
    pub points: u64,
    /// `(crash_idx, seed)` schedules checked (crash legs).
    pub checks: u64,
    /// Chunks simulated (stream leg).
    pub chunks: u64,
    /// Deterministic peak-memory bound in bytes (stream leg).
    pub peak_bound: u64,
    /// The minimized witness (must-fail cells that did fail).
    pub witness: Option<KvWitness>,
    /// What went wrong, for a failed cell.
    pub error: Option<String>,
}

impl KvCell {
    fn empty(spec: KvCellSpec) -> Self {
        KvCell {
            spec,
            ok: false,
            ops: 0,
            events: 0,
            cycles: 0,
            mutations: 0,
            checkpoints: 0,
            points: 0,
            checks: 0,
            chunks: 0,
            peak_bound: 0,
            witness: None,
            error: None,
        }
    }
}

/// The study's full result set.
#[derive(Debug, Clone)]
pub struct KvReport {
    /// Scale divisor the cells were sized from.
    pub scale: u64,
    /// Base seed of the op streams.
    pub seed: u64,
    /// Every cell, in [`KvCellSpec::all`] order.
    pub cells: Vec<KvCell>,
    /// Cells served from the journal without recomputation.
    pub replayed: usize,
}

// --- sizing (scale is a divisor: bigger scale, smaller cells) ---------

fn perf_ops(scale: u64) -> u64 {
    (24_000 / scale.max(1)).clamp(96, 2_000)
}

fn perf_init_keys(scale: u64) -> u64 {
    (6_000 / scale.max(1)).clamp(48, 200)
}

fn crash_ops(scale: u64) -> u64 {
    (6_000 / scale.max(1)).clamp(40, 120)
}

fn stream_ops(scale: u64) -> u64 {
    (200_000 / scale.max(1)).clamp(768, 8_192)
}

fn perf_spec(scale: u64, seed: u64, ckpt_every: u64) -> KvSpec {
    KvSpec {
        init_keys: perf_init_keys(scale),
        ops: perf_ops(scale),
        ckpt_every,
        wal_cap: 2 * ckpt_every,
        seed,
        mix: KvMix::MIXED,
    }
}

fn crash_spec(scale: u64, seed: u64, seed_off: u64) -> KvSpec {
    KvSpec {
        init_keys: 32,
        ops: crash_ops(scale),
        ckpt_every: 8,
        wal_cap: 16,
        seed: seed.wrapping_add(seed_off),
        mix: KvMix::MIXED,
    }
}

fn stream_spec(scale: u64, seed: u64) -> KvSpec {
    KvSpec {
        init_keys: 64,
        ops: stream_ops(scale),
        ckpt_every: 8,
        wal_cap: 16,
        seed,
        mix: KvMix::MIXED,
    }
}

fn cell_key(spec: &KvCellSpec, scale: u64, seed: u64) -> String {
    let leg = match spec {
        KvCellSpec::Perf { ckpt_every, cfg } => format!("perf/ck{ckpt_every}/{}", cfg.key()),
        KvCellSpec::MustPass { seed_off } => format!("crash/mustpass/s{seed_off}"),
        KvCellSpec::MustFail { seed_off } => format!("crash/mustfail/s{seed_off}"),
        KvCellSpec::ElideChecksum => "crash/elide".to_string(),
        KvCellSpec::Stream => "stream".to_string(),
    };
    format!("kv/{leg}/scale{scale}/seed{seed:#x}")
}

// --- cell execution ---------------------------------------------------

/// Records the mixed-profile trace for one perf cell and replays it,
/// timing the replay into the harness's perf recorder under a labeled
/// (non-Table-1) cell.
fn run_perf_cell(h: &Harness, ckpt_every: u64, cfg: PerfCfg) -> KvCell {
    let spec = perf_spec(h.exp.scale, h.exp.seed, ckpt_every);
    let mut cell = KvCell::empty(KvCellSpec::Perf { ckpt_every, cfg });
    let mut env = PmemEnv::new(cfg.variant());
    env.set_flush_mode(FlushMode::default());
    let mut w = KvWorkload::new(spec);
    env.set_recording(false);
    w.setup(&mut env);
    env.set_recording(true);
    for op in 0..spec.ops {
        w.run_op(&mut env, op);
    }
    let trace = env.take_trace();
    cell.ops = spec.ops;
    cell.events = trace.events.len() as u64;
    cell.mutations = w.stats().mutations;
    cell.checkpoints = w.engine().checkpoints();
    let started = Instant::now();
    match Simulator::new(&trace.events).config(cfg.cpu()).run() {
        Ok(r) => {
            cell.ok = true;
            cell.cycles = r.cpu.cycles;
            h.perf().record_labeled(
                &format!("kv/ck{ckpt_every}"),
                cfg.variant(),
                r.cpu.cycles,
                started.elapsed(),
            );
        }
        Err(e) => cell.error = Some(e.to_string()),
    }
    cell
}

/// Crashes a `Log+P+Sf` bundle at every persist boundary (plus sampled
/// in-between points) under [`CRASH_SEEDS`] reorderings each; every
/// schedule must recover through full WAL replay.
fn run_must_pass_cell(scale: u64, seed: u64, seed_off: u64) -> KvCell {
    let spec = crash_spec(scale, seed, seed_off);
    let mut cell = KvCell::empty(KvCellSpec::MustPass { seed_off });
    let b = record_kv_bundle(&KvBundleSpec {
        variant: Variant::LogPSf,
        flush_mode: FlushMode::default(),
        spec,
        elide_checksum: false,
    });
    let points = crash_points(b.events());
    cell.ops = spec.ops;
    cell.events = b.events().len() as u64;
    cell.mutations = b.mutation_count() as u64;
    cell.points = points.len() as u64;
    cell.ok = true;
    'sweep: for &p in &points {
        for s in 0..CRASH_SEEDS {
            cell.checks += 1;
            if let Err(v) = b.check_crash(p, s) {
                cell.ok = false;
                cell.error = Some(format!("crash_idx {p}, seed {s}: {v}"));
                break 'sweep;
            }
        }
    }
    cell
}

/// Scans a `Log` bundle's `(crash_idx, seed)` space in lexicographic
/// order; the build lacks ordering and durability machinery, so a
/// failure must exist, and the first hit is the minimal witness.
fn run_must_fail_cell(scale: u64, seed: u64, seed_off: u64) -> KvCell {
    let spec = crash_spec(scale, seed, seed_off);
    let mut cell = KvCell::empty(KvCellSpec::MustFail { seed_off });
    let b = record_kv_bundle(&KvBundleSpec {
        variant: Variant::Log,
        flush_mode: FlushMode::default(),
        spec,
        elide_checksum: false,
    });
    cell.ops = spec.ops;
    cell.events = b.events().len() as u64;
    cell.mutations = b.mutation_count() as u64;
    cell.points = b.events().len() as u64 + 1;
    'scan: for crash_idx in 0..=b.events().len() {
        for s in 0..CRASH_SEEDS {
            cell.checks += 1;
            if let Err(v) = b.check_crash(crash_idx, s) {
                cell.witness = Some(KvWitness {
                    crash_idx: crash_idx as u64,
                    seed: s,
                    kind: v.kind.to_string(),
                });
                break 'scan;
            }
        }
    }
    cell.ok = cell.witness.is_some();
    if !cell.ok {
        cell.error = Some("every schedule recovered, but Log must fail".to_string());
    }
    cell
}

/// Records the must-pass configuration again with WAL record checksums
/// elided: same build, same schedules, but recovery must now lose
/// guaranteed-durable records somewhere. Lexicographic scan; the first
/// failure is the minimal witness.
fn run_elide_cell(scale: u64, seed: u64) -> KvCell {
    let spec = crash_spec(scale, seed, 0);
    let mut cell = KvCell::empty(KvCellSpec::ElideChecksum);
    let b = record_kv_bundle(&KvBundleSpec {
        variant: Variant::LogPSf,
        flush_mode: FlushMode::default(),
        spec,
        elide_checksum: true,
    });
    cell.ops = spec.ops;
    cell.events = b.events().len() as u64;
    cell.mutations = b.mutation_count() as u64;
    cell.points = b.events().len() as u64 + 1;
    'scan: for crash_idx in 0..=b.events().len() {
        for s in 0..CRASH_SEEDS {
            cell.checks += 1;
            if let Err(v) = b.check_crash(crash_idx, s) {
                cell.witness = Some(KvWitness {
                    crash_idx: crash_idx as u64,
                    seed: s,
                    kind: v.kind.to_string(),
                });
                break 'scan;
            }
        }
    }
    cell.ok = cell.witness.is_some();
    if !cell.ok {
        cell.error =
            Some("recovery survived elided WAL checksums; the oracle is not checking them".into());
    }
    cell
}

/// Runs the chunked pipeline leg and reports its deterministic numbers.
fn run_stream_cell(scale: u64, seed: u64) -> KvCell {
    let mut cell = KvCell::empty(KvCellSpec::Stream);
    let sspec = KvStreamSpec {
        chunk_ops: STREAM_CHUNK_OPS,
        ..KvStreamSpec::new(stream_spec(scale, seed), Variant::LogPSf)
    };
    cell.ops = sspec.spec.ops;
    match run_kv_streamed(&sspec, &CpuConfig::baseline()) {
        Ok(r) => {
            cell.ok = true;
            cell.events = r.events;
            cell.cycles = r.cycles;
            cell.mutations = r.mutations;
            cell.chunks = r.chunks;
            cell.peak_bound = r.peak_bound;
        }
        Err(e) => cell.error = Some(e.to_string()),
    }
    cell
}

fn run_cell(h: &Harness, spec: &KvCellSpec) -> KvCell {
    match *spec {
        KvCellSpec::Perf { ckpt_every, cfg } => run_perf_cell(h, ckpt_every, cfg),
        KvCellSpec::MustPass { seed_off } => run_must_pass_cell(h.exp.scale, h.exp.seed, seed_off),
        KvCellSpec::MustFail { seed_off } => run_must_fail_cell(h.exp.scale, h.exp.seed, seed_off),
        KvCellSpec::ElideChecksum => run_elide_cell(h.exp.scale, h.exp.seed),
        KvCellSpec::Stream => run_stream_cell(h.exp.scale, h.exp.seed),
    }
}

// --- codec ------------------------------------------------------------

fn spec_fields(spec: &KvCellSpec, o: &mut JsonObject) {
    match spec {
        KvCellSpec::Perf { ckpt_every, cfg } => {
            o.str("leg", "perf")
                .num("ckpt_every", *ckpt_every as f64)
                .str("cfg", cfg.key());
        }
        KvCellSpec::MustPass { seed_off } => {
            o.str("leg", "mustpass").num("seed_off", *seed_off as f64);
        }
        KvCellSpec::MustFail { seed_off } => {
            o.str("leg", "mustfail").num("seed_off", *seed_off as f64);
        }
        KvCellSpec::ElideChecksum => {
            o.str("leg", "elide");
        }
        KvCellSpec::Stream => {
            o.str("leg", "stream");
        }
    }
}

/// A cell as one JSON object: the report's `cells` element and the
/// journal payload (one codec, so replays are byte-identical).
fn cell_json(c: &KvCell) -> String {
    let mut o = JsonObject::new();
    spec_fields(&c.spec, &mut o);
    o.num("ok", u8::from(c.ok))
        .num("ops", c.ops as f64)
        .num("events", c.events as f64)
        .raw("cycles", c.cycles.to_string())
        .num("mutations", c.mutations as f64)
        .num("checkpoints", c.checkpoints as f64)
        .num("points", c.points as f64)
        .num("checks", c.checks as f64)
        .num("chunks", c.chunks as f64)
        .raw("peak_bound", c.peak_bound.to_string());
    if let Some(w) = &c.witness {
        let mut wo = JsonObject::new();
        wo.num("crash_idx", w.crash_idx as f64)
            .num("seed", w.seed as f64)
            .str("kind", &w.kind);
        o.raw("witness", wo.render());
    }
    if let Some(err) = &c.error {
        o.str("error", err);
    }
    o.render()
}

/// Decodes a journal payload written by [`cell_json`] back into a cell;
/// `None` (recompute) if any field is missing or the spec disagrees.
fn decode_cell(spec: &KvCellSpec, payload: &str) -> Option<KvCell> {
    let v = parse(payload).ok()?;
    let num = |k: &str| v.get(k).and_then(Value::as_u64);
    let s = |k: &str| v.get(k).and_then(Value::as_str);
    let matches = match spec {
        KvCellSpec::Perf { ckpt_every, cfg } => {
            s("leg")? == "perf" && num("ckpt_every")? == *ckpt_every && s("cfg")? == cfg.key()
        }
        KvCellSpec::MustPass { seed_off } => {
            s("leg")? == "mustpass" && num("seed_off")? == *seed_off
        }
        KvCellSpec::MustFail { seed_off } => {
            s("leg")? == "mustfail" && num("seed_off")? == *seed_off
        }
        KvCellSpec::ElideChecksum => s("leg")? == "elide",
        KvCellSpec::Stream => s("leg")? == "stream",
    };
    if !matches {
        return None;
    }
    let witness = match v.get("witness") {
        None => None,
        Some(w) => Some(KvWitness {
            crash_idx: w.get("crash_idx").and_then(Value::as_u64)?,
            seed: w.get("seed").and_then(Value::as_u64)?,
            kind: w.get("kind").and_then(Value::as_str)?.to_string(),
        }),
    };
    Some(KvCell {
        spec: *spec,
        ok: num("ok")? == 1,
        ops: num("ops")?,
        events: num("events")?,
        cycles: num("cycles")?,
        mutations: num("mutations")?,
        checkpoints: num("checkpoints")?,
        points: num("points")?,
        checks: num("checks")?,
        chunks: num("chunks")?,
        peak_bound: num("peak_bound")?,
        witness,
        error: v.get("error").and_then(Value::as_str).map(String::from),
    })
}

// --- the study --------------------------------------------------------

/// Runs the storage-engine study: every [`KvCellSpec::all`] cell,
/// fanned out deterministically, journaled when `journal` is attached.
pub fn run_kv_opts(h: &Harness, journal: Option<&Journal>) -> KvReport {
    let scale = h.exp.scale;
    let seed = h.exp.seed;
    let specs = KvCellSpec::all();
    let cached: Vec<Option<KvCell>> = specs
        .iter()
        .map(|spec| {
            let j = journal?;
            let entry = j.lookup(&cell_key(spec, scale, seed))?;
            let decoded = decode_cell(spec, &entry.payload);
            if decoded.is_none() {
                j.report_bad_payload(&cell_key(spec, scale, seed), "kv payload does not decode");
            }
            decoded
        })
        .collect();
    let computed = run_indexed(h.jobs, &specs, |i, spec| {
        if cached[i].is_some() {
            None
        } else {
            Some(run_cell(h, spec))
        }
    });
    let mut cells = Vec::with_capacity(specs.len());
    let mut replayed = 0;
    for (i, spec) in specs.iter().enumerate() {
        let (cell, fresh) = match (&cached[i], &computed[i]) {
            (Some(c), _) => (c.clone(), false),
            (None, Some(c)) => (c.clone(), true),
            (None, None) => unreachable!("cell {i} neither cached nor computed"),
        };
        if fresh {
            if let Some(j) = journal {
                let entry = Entry {
                    key: cell_key(spec, scale, seed),
                    attempt: 1,
                    status: if cell.ok {
                        CellStatus::Ok
                    } else {
                        CellStatus::Failed
                    },
                    payload: cell_json(&cell),
                };
                if let Err(e) = j.append(&entry) {
                    eprintln!("repro: journal: {e}");
                }
            }
        } else {
            replayed += 1;
        }
        cells.push(cell);
    }
    KvReport {
        scale,
        seed,
        cells,
        replayed,
    }
}

/// Runs the study without a journal.
pub fn run_kv_study(h: &Harness) -> KvReport {
    run_kv_opts(h, None)
}

impl KvReport {
    fn perf(&self, ckpt_every: u64, cfg: PerfCfg) -> &KvCell {
        self.cells
            .iter()
            .find(|c| c.spec == KvCellSpec::Perf { ckpt_every, cfg })
            .expect("KvCellSpec::all covers the perf grid")
    }

    /// The study's verdict: every cell ok (which for must-fail cells
    /// means the witness was found).
    pub fn ok(&self) -> bool {
        self.cells.iter().all(|c| c.ok)
    }

    /// The human-readable tables.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "== KV storage engine: COW-checkpointed B+tree + WAL, mixed profile =="
        );
        let _ = writeln!(
            s,
            "{} ops, {} initial keys, seed {:#x}",
            perf_ops(self.scale),
            perf_init_keys(self.scale),
            self.seed
        );
        let _ = writeln!(s);
        let _ = writeln!(s, "-- persist-barrier cost vs checkpoint interval --");
        let _ = writeln!(
            s,
            "{:<6} {:>12} {:>12} {:>12} {:>9} {:>7}",
            "ckpt", "ref cycles", "baseline", "SP256", "SP saves", "ckpts"
        );
        for ckpt in CKPT_SWEEP {
            let r = self.perf(ckpt, PerfCfg::Ref);
            let b = self.perf(ckpt, PerfCfg::Baseline);
            let sp = self.perf(ckpt, PerfCfg::Sp);
            if !r.ok || !b.ok || !sp.ok {
                let _ = writeln!(
                    s,
                    "{ckpt:<6} degraded: {}",
                    r.error
                        .as_deref()
                        .or(b.error.as_deref())
                        .or(sp.error.as_deref())
                        .unwrap_or("unknown")
                );
                continue;
            }
            let saves = if b.cycles > 0 {
                (1.0 - sp.cycles as f64 / b.cycles as f64) * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                s,
                "{:<6} {:>12} {:>12} {:>12} {:>8.0}% {:>7}",
                ckpt, r.cycles, b.cycles, sp.cycles, saves, b.checkpoints
            );
        }
        let _ = writeln!(s);
        let _ = writeln!(s, "-- crash legs (full WAL replay recovery) --");
        for c in &self.cells {
            match &c.spec {
                KvCellSpec::MustPass { seed_off } => {
                    let _ =
                        writeln!(
                        s,
                        "Log+P+Sf s{seed_off}: {} ({} points x {} seeds, {} checks, {} mutations)",
                        if c.ok { "recovered everywhere" } else { "FAILED" },
                        c.points,
                        CRASH_SEEDS,
                        c.checks,
                        c.mutations
                    );
                    if let Some(e) = &c.error {
                        let _ = writeln!(s, "  {e}");
                    }
                }
                KvCellSpec::MustFail { seed_off } => match &c.witness {
                    Some(w) => {
                        let _ = writeln!(
                            s,
                            "Log      s{seed_off}: witness (crash_idx {}, seed {}) {} \
                             after {} checks",
                            w.crash_idx, w.seed, w.kind, c.checks
                        );
                    }
                    None => {
                        let _ =
                            writeln!(s, "Log      s{seed_off}: FAILED — every schedule recovered");
                    }
                },
                KvCellSpec::ElideChecksum => match &c.witness {
                    Some(w) => {
                        let _ = writeln!(
                            s,
                            "no-cksum s0: witness (crash_idx {}, seed {}) {} after {} checks",
                            w.crash_idx, w.seed, w.kind, c.checks
                        );
                    }
                    None => {
                        let _ = writeln!(
                            s,
                            "no-cksum s0: FAILED — recovery never noticed the elided checksums"
                        );
                    }
                },
                _ => {}
            }
        }
        let _ = writeln!(s);
        if let Some(c) = self.cells.iter().find(|c| c.spec == KvCellSpec::Stream) {
            let _ = writeln!(s, "-- streamed (bounded-memory) leg --");
            if c.ok {
                let _ = writeln!(
                    s,
                    "{} ops in {} chunks of {}: {} events, {} cycles, peak-memory bound \
                     {} bytes",
                    c.ops, c.chunks, STREAM_CHUNK_OPS, c.events, c.cycles, c.peak_bound
                );
            } else {
                let _ = writeln!(
                    s,
                    "stream leg degraded: {}",
                    c.error.as_deref().unwrap_or("unknown")
                );
            }
        }
        let _ = writeln!(s, "kv: {}", if self.ok() { "PASS" } else { "FAIL" });
        s
    }

    /// The study as one `specpersist/kv-v1` document.
    pub fn render_json(&self) -> String {
        schema::emit(schema::KV, |root| {
            root.num("scale", self.scale as f64)
                .raw("seed", self.seed.to_string())
                .num("crash_seeds", CRASH_SEEDS as f64)
                .num("stream_chunk_ops", STREAM_CHUNK_OPS as f64)
                .num("ok", u8::from(self.ok()))
                .raw("cells", json::array(self.cells.iter().map(cell_json)));
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::Experiment;

    fn harness() -> Harness {
        Harness::new(
            Experiment {
                scale: 2400,
                seed: 0x5EED,
            },
            2,
        )
    }

    #[test]
    fn study_passes_with_sp_savings_and_witnesses() {
        let h = harness();
        let rep = run_kv_study(&h);
        assert_eq!(rep.cells.len(), KvCellSpec::all().len());
        assert!(rep.ok(), "{}", rep.render_text());
        for ckpt in CKPT_SWEEP {
            let r = rep.perf(ckpt, PerfCfg::Ref);
            let b = rep.perf(ckpt, PerfCfg::Baseline);
            let sp = rep.perf(ckpt, PerfCfg::Sp);
            assert!(
                r.cycles < b.cycles,
                "persistence machinery must cost cycles (ck{ckpt})"
            );
            assert!(
                sp.cycles <= b.cycles,
                "SP must not slow the persistent build down (ck{ckpt})"
            );
        }
        for c in &rep.cells {
            if let KvCellSpec::MustFail { .. } = c.spec {
                let w = c.witness.as_ref().unwrap();
                assert!(w.crash_idx as usize <= c.events as usize);
            }
            if c.spec == KvCellSpec::ElideChecksum {
                // Every persist op is honest here — the only defect is
                // the elided record checksum, so the oracle must reject
                // the recovered *state*, not the tree structure.
                let w = c.witness.as_ref().unwrap();
                assert_eq!(w.kind, "state-mismatch", "{w:?}");
            }
        }
        // The perf leg feeds the labeled perf cells (one per sweep
        // point x variant actually simulated).
        assert!(!h.perf_labeled_cells().is_empty());
        assert!(rep.render_text().contains("kv: PASS"));
        assert!(rep
            .render_json()
            .starts_with("{\"schema\":\"specpersist/kv-v1\""));
    }

    #[test]
    fn jobs_do_not_change_the_bytes() {
        let a = run_kv_study(&Harness::new(harness().exp, 1));
        let b = run_kv_study(&Harness::new(harness().exp, 8));
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.render_json(), b.render_json());
    }

    #[test]
    fn journaled_rerun_replays_byte_identically() {
        let mut p = std::env::temp_dir();
        p.push(format!("spp-kv-journal-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let h = harness();
        let (text, json) = {
            let j = Journal::open(&p).unwrap();
            let rep = run_kv_opts(&h, Some(&j));
            assert_eq!(rep.replayed, 0, "first run computes everything");
            (rep.render_text(), rep.render_json())
        };
        let j = Journal::open(&p).unwrap();
        let rep = run_kv_opts(&h, Some(&j));
        assert_eq!(rep.replayed, rep.cells.len(), "every cell replays");
        assert_eq!(rep.render_text(), text, "replayed stdout byte-identical");
        assert_eq!(rep.render_json(), json);
        let _ = std::fs::remove_file(&p);
    }
}
