//! One home for every `specpersist/*` document schema.
//!
//! Each machine-readable output the harness writes — the suite sweep,
//! the crash-consistency fuzzer, the fault-injection matrix, the soak
//! report, journal manifest lines, and the stall profile — opens with
//! the same envelope: a `schema` field carrying a versioned identifier
//! like `specpersist/suite-v1`, placed *first* so a reader (or a human
//! with `head -c 40`) can dispatch on the document kind before parsing
//! the rest. Before this module each writer spelled its identifier
//! inline; now the identifiers live here as [`Schema`] constants,
//! [`emit`] builds the envelope so the field cannot drift out of first
//! position, and [`validate`] is the one reader-side check. Golden-file
//! tests (`tests/schema_golden.rs`) pin the rendered bytes of every
//! document kind.
//!
//! Versioning contract: any change to a document's field set or
//! meaning bumps its [`Schema::version`]; readers reject identifiers
//! they do not recognize (see the journal's `BadSchema` handling)
//! rather than guessing.

use std::fmt;

use crate::json::{parse, JsonObject, JsonParseError, Value};

/// A named, versioned document schema.
///
/// The wire identifier is stored alongside its parts so it is available
/// in `const` contexts; [`Schema::id`] returns it and a unit test pins
/// it to `specpersist/{name}-v{version}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schema {
    name: &'static str,
    version: u32,
    id: &'static str,
}

/// The full-suite results document (everything figs. 8-12/14 need).
pub const SUITE: Schema = Schema {
    name: "suite",
    version: 1,
    id: "specpersist/suite-v1",
};

/// The crash-consistency fuzzing report.
pub const CRASHFUZZ: Schema = Schema {
    name: "crashfuzz",
    version: 1,
    id: "specpersist/crashfuzz-v1",
};

/// The hardware fault-injection matrix report.
pub const FAULTSIM: Schema = Schema {
    name: "faultsim",
    version: 1,
    id: "specpersist/faultsim-v1",
};

/// The long-running soak report.
pub const SOAK: Schema = Schema {
    name: "soak",
    version: 1,
    id: "specpersist/soak-v1",
};

/// One line of the journaled result manifest.
pub const JOURNAL: Schema = Schema {
    name: "journal",
    version: 1,
    id: "specpersist/journal-v1",
};

/// The cycle-resolved stall/latency profile (`repro profile`).
pub const PROFILE: Schema = Schema {
    name: "profile",
    version: 2,
    id: "specpersist/profile-v2",
};

/// The harness performance-trajectory record (`BENCH_*.json`):
/// simulated-cycles-per-second throughput per bench x variant cell,
/// wall time, and peak RSS of the producing run.
pub const PERFBENCH: Schema = Schema {
    name: "perfbench",
    version: 1,
    id: "specpersist/perfbench-v1",
};

/// The shared-data multi-core scaling study (`repro multicore`).
pub const MULTICORE: Schema = Schema {
    name: "multicore",
    version: 1,
    id: "specpersist/multicore-v1",
};

/// The Px86 litmus validation report (`repro litmus`).
pub const LITMUS: Schema = Schema {
    name: "litmus",
    version: 1,
    id: "specpersist/litmus-v1",
};

/// The crash-recoverable KV storage-engine study (`repro kv`).
pub const KV: Schema = Schema {
    name: "kv",
    version: 1,
    id: "specpersist/kv-v1",
};

/// The persist-path trace-optimizer report (`repro optimize`).
pub const OPTIMIZE: Schema = Schema {
    name: "optimize",
    version: 1,
    id: "specpersist/optimize-v1",
};

/// Every schema the harness knows, for exhaustive self-checks.
pub const ALL: [Schema; 11] = [
    SUITE, CRASHFUZZ, FAULTSIM, SOAK, JOURNAL, PROFILE, PERFBENCH, MULTICORE, LITMUS, KV, OPTIMIZE,
];

impl Schema {
    /// The document kind, e.g. `suite`.
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// The schema version (bumped on any field-set or meaning change).
    pub const fn version(&self) -> u32 {
        self.version
    }

    /// The full wire identifier, e.g. `specpersist/suite-v1`.
    pub const fn id(&self) -> &'static str {
        self.id
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id)
    }
}

/// Renders one document in `schema`'s envelope: the `schema` field is
/// emitted first, then `fill` appends the payload fields.
pub fn emit(schema: Schema, fill: impl FnOnce(&mut JsonObject)) -> String {
    let mut root = JsonObject::new();
    root.str("schema", schema.id());
    fill(&mut root);
    root.render()
}

/// Why a document failed [`validate`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SchemaError {
    /// The bytes are not a parseable JSON document.
    Parse(JsonParseError),
    /// The document parsed but its envelope carries the wrong (or no)
    /// schema identifier.
    Mismatch {
        /// The identifier expected.
        want: &'static str,
        /// The identifier found (empty if absent or not a string).
        found: String,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Parse(e) => write!(f, "schema envelope: {e}"),
            SchemaError::Mismatch { want, found } => {
                write!(f, "schema {found:?} is not {want:?}")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

/// Parses `json` and checks that its envelope carries `schema`'s
/// identifier, returning the parsed document for further decoding.
pub fn validate(json: &str, schema: Schema) -> Result<Value, SchemaError> {
    let v = parse(json).map_err(SchemaError::Parse)?;
    let found = v.get("schema").and_then(Value::as_str).unwrap_or("");
    if found != schema.id() {
        return Err(SchemaError::Mismatch {
            want: schema.id(),
            found: found.to_string(),
        });
    }
    Ok(v)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn stored_identifiers_match_their_parts() {
        for s in ALL {
            assert_eq!(
                s.id(),
                format!("specpersist/{}-v{}", s.name(), s.version()),
                "{s:?}"
            );
            assert_eq!(s.to_string(), s.id());
        }
    }

    #[test]
    fn identifiers_are_unique() {
        for (i, a) in ALL.iter().enumerate() {
            for b in &ALL[i + 1..] {
                assert_ne!(a.id(), b.id());
            }
        }
    }

    #[test]
    fn emit_places_the_schema_field_first() {
        let doc = emit(SUITE, |o| {
            o.num("x", 1.0);
        });
        assert!(
            doc.starts_with(r#"{"schema":"specpersist/suite-v1","#),
            "{doc}"
        );
        validate(&doc, SUITE).unwrap();
    }

    #[test]
    fn validate_rejects_wrong_and_missing_schemas() {
        let doc = emit(SOAK, |_| {});
        assert!(matches!(
            validate(&doc, SUITE).unwrap_err(),
            SchemaError::Mismatch { want, .. } if want == SUITE.id()
        ));
        assert!(matches!(
            validate("{}", SUITE).unwrap_err(),
            SchemaError::Mismatch { ref found, .. } if found.is_empty()
        ));
        assert!(matches!(
            validate("{", SUITE).unwrap_err(),
            SchemaError::Parse(_)
        ));
    }

    #[test]
    fn errors_render_as_one_line() {
        let errs = [
            validate("{", SUITE).unwrap_err(),
            validate("{}", JOURNAL).unwrap_err(),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty() && !s.contains('\n'), "{s:?}");
        }
    }
}
