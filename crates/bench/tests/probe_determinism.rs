//! Probe neutrality, end to end: attaching observability must never
//! change a single architectural counter.
//!
//! Every bench × variant cell is simulated three ways — probe disabled,
//! `NullProbe` attached, and a full `Collector` attached — under both
//! the baseline and the speculative-persistence core. All three
//! `SimResult`s must be identical (derived `PartialEq` over every
//! counter in every sub-struct).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use spp_bench::{run_indexed, Experiment, Harness, TraceKey};
use spp_cpu::{CpuConfig, SimResult, Simulator};
use spp_obs::{Collector, NullProbe, ProbeHandle};
use spp_pmem::{Event, Variant};
use spp_workloads::BenchId;

fn sim(events: &[Event], cfg: CpuConfig, probe: ProbeHandle) -> SimResult {
    Simulator::new(events)
        .config(cfg)
        .probe(probe)
        .run()
        .expect("cached traces must simulate cleanly")
}

#[test]
fn instrumentation_never_changes_a_single_counter() {
    let exp = Experiment {
        scale: 2400,
        seed: 0xD15C,
    };
    let h = Harness::new(exp, 4);
    let cells: Vec<(BenchId, Variant)> = BenchId::ALL
        .iter()
        .flat_map(|&id| Variant::ALL.iter().map(move |&v| (id, v)))
        .collect();
    assert_eq!(cells.len(), 7 * 4, "the full bench x variant grid");

    // Probe handles are !Send by design, so each worker constructs its
    // own collectors inside the closure; only plain results cross back.
    let checked = run_indexed(4, &cells, |_, &(id, variant)| {
        let trace = h.trace(TraceKey::new(id, variant, &exp));
        for cfg in [CpuConfig::baseline(), CpuConfig::with_sp()] {
            let plain = sim(&trace.events, cfg, ProbeHandle::disabled());
            let nulled = sim(&trace.events, cfg, ProbeHandle::new(NullProbe));
            let collector = Collector::shared();
            let collected = sim(&trace.events, cfg, ProbeHandle::new(collector.clone()));
            assert_eq!(
                plain, nulled,
                "{id:?}/{variant:?}: NullProbe perturbed the machine"
            );
            assert_eq!(
                plain, collected,
                "{id:?}/{variant:?}: Collector perturbed the machine"
            );
            // The collector must actually have observed the run — a
            // vacuous pass (events never emitted) would prove nothing.
            // Every bench trace stalls retirement somewhere, whatever
            // the variant, so attribution is never all-zero.
            let s = collector.borrow().summary();
            let observed = s.stalls.fence + s.stalls.backend + s.pcommits + s.wpq.transitions > 0;
            assert!(
                observed,
                "{id:?}/{variant:?}: instrumented run observed nothing"
            );
        }
        true
    });
    assert_eq!(checked.len(), cells.len());
}
