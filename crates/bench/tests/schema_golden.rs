//! Golden-file pinning of every `specpersist/*-v1` document.
//!
//! Each writer renders a small, fully deterministic experiment and is
//! byte-compared against a checked-in golden. This catches accidental
//! wire-format drift (field order, number formatting, envelope shape)
//! that unit tests on individual fields would miss.
//!
//! To regenerate after an *intentional* format change:
//!
//! ```text
//! BLESS=1 cargo test -p spp-bench --test schema_golden
//! ```
#![allow(clippy::unwrap_used, clippy::expect_used)]

use spp_bench::crashfuzz::{run_crashfuzz, Leg};
use spp_bench::faultsim::run_faultsim;
use spp_bench::journal::{CellStatus, Entry, Journal};
use spp_bench::kv::run_kv_study;
use spp_bench::litmus::run_litmus;
use spp_bench::multicore::run_multicore_study;
use spp_bench::optimize::run_optimize_study;
use spp_bench::profile::run_profile;
use spp_bench::soak::run_soak;
use spp_bench::{json, schema, Experiment, Harness};
use spp_pmem::Variant;
use spp_workloads::BenchId;

/// The one experiment every golden uses: tiny, fixed seed, fixed jobs.
fn exp() -> Experiment {
    Experiment {
        scale: 2400,
        seed: 7,
    }
}

fn harness() -> Harness {
    Harness::new(exp(), 2)
}

/// Byte-compares `actual` against `tests/goldens/<name>`, or rewrites
/// the golden when `BLESS` is set in the environment.
fn golden(name: &str, actual: &str) {
    let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.push("tests");
    p.push("goldens");
    p.push(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(p.parent().unwrap()).unwrap();
        std::fs::write(&p, actual).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&p).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with BLESS=1",
            p.display()
        )
    });
    assert_eq!(
        actual, want,
        "{name} diverged from its golden; if the format change is \
         intentional, regenerate with BLESS=1"
    );
}

/// Every golden must also pass its own schema validation — the golden
/// pins the bytes, the validator pins the envelope.
fn check(name: &str, doc: &str, s: schema::Schema) {
    schema::validate(doc, s).unwrap_or_else(|e| panic!("{name}: {e}"));
    golden(name, doc);
}

#[test]
fn suite_document_is_stable() {
    let runs = harness().run_suite();
    check("suite.json", &json::suite_json(&runs), schema::SUITE);
}

#[test]
fn crashfuzz_document_is_stable() {
    let rep = run_crashfuzz(&harness(), Leg::Log);
    check("crashfuzz.json", &rep.render_json(), schema::CRASHFUZZ);
}

#[test]
fn faultsim_document_is_stable() {
    let rep = run_faultsim(&harness());
    check("faultsim.json", &rep.render_json(), schema::FAULTSIM);
}

#[test]
fn soak_document_is_stable() {
    let mut p = std::env::temp_dir();
    p.push(format!("spp-golden-soak-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&p);
    let journal = Journal::open(&p).unwrap();
    let rep = run_soak(&exp(), 2, 1, &journal);
    std::fs::remove_file(&p).unwrap();
    check("soak.json", &rep.render_json(), schema::SOAK);
}

#[test]
fn multicore_document_is_stable() {
    let rep = run_multicore_study(&harness());
    check("multicore.json", &rep.render_json(), schema::MULTICORE);
}

#[test]
fn kv_document_is_stable() {
    let rep = run_kv_study(&harness());
    check("kv.json", &rep.render_json(), schema::KV);
}

#[test]
fn litmus_document_is_stable() {
    let rep = run_litmus(&harness());
    check("litmus.json", &rep.render_json(), schema::LITMUS);
}

#[test]
fn optimize_document_is_stable() {
    let rep = run_optimize_study(&harness(), BenchId::LinkedList, Variant::LogP);
    check("optimize.json", &rep.render_json(), schema::OPTIMIZE);
}

#[test]
fn profile_document_is_stable() {
    let rep = run_profile(&harness(), BenchId::LinkedList, Variant::LogPSf);
    check("profile.json", &rep.render_json(), schema::PROFILE);
}

#[test]
fn journal_line_is_stable() {
    let mut p = std::env::temp_dir();
    p.push(format!("spp-golden-journal-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&p);
    let journal = Journal::open(&p).unwrap();
    journal
        .append(&Entry {
            key: "golden/demo".to_string(),
            attempt: 1,
            status: CellStatus::Ok,
            payload: "{\"ok\":1}".to_string(),
        })
        .unwrap();
    let line = std::fs::read_to_string(&p).unwrap();
    std::fs::remove_file(&p).unwrap();
    // The line is itself a schema document (trailing newline aside).
    schema::validate(line.trim_end(), schema::JOURNAL).unwrap();
    golden("journal.jsonl", &line);
}
